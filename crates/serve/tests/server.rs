//! Integration tests for the query server: routing, warmth, overflow
//! admission, cancellation, and — above all — result equivalence between
//! concurrent serving and sequential execution.

use std::collections::HashMap;
use std::time::Duration;

use blog_core::engine::{best_first, BestFirstConfig};
use blog_core::weight::{WeightParams, WeightStore, WeightView};
use blog_logic::{parse_program, parse_query_shared, Program, SolveConfig};
use blog_parallel::FrontierPolicy;
use blog_serve::{
    Admission, CacheConfig, CacheMode, ExecMode, Outcome, QueryRequest, QueryServer, Routing,
    ServeConfig, ServedFrom, SessionId, UpdateOp,
};
use blog_spd::{Geometry, PagedStoreConfig, PolicyKind};
use blog_workloads::{tenant_mix_program, tenant_mix_requests, FamilyParams, TenantMix};

const FAMILY: &str = "
    gf(X,Z) :- f(X,Y), f(Y,Z).
    gf(X,Z) :- f(X,Y), m(Y,Z).
    f(curt,elain). f(sam,larry). f(dan,pat). f(larry,den).
    f(pat,john). f(larry,doug).
    m(elain,john). m(marian,elain). m(peg,den). m(peg,doug).
";

fn store_cfg(db_len: usize, capacity_tracks: usize) -> PagedStoreConfig {
    let blocks_per_track = 2;
    let n_sps = 2;
    let tracks_needed = db_len.div_ceil(blocks_per_track as usize);
    PagedStoreConfig {
        geometry: Geometry {
            n_sps,
            n_cylinders: (tracks_needed.div_ceil(n_sps as usize) + 1) as u32,
            blocks_per_track,
        },
        capacity_tracks,
        policy: PolicyKind::TwoQ,
        ..PagedStoreConfig::default()
    }
}

/// Sequential ground truth: sorted solution texts for one query text.
fn sequential_solutions(p: &Program, text: &str) -> Vec<String> {
    let q = parse_query_shared(&p.db, text).expect("query parses");
    let weights = WeightStore::new(WeightParams::default());
    let mut overlay = HashMap::new();
    let mut view = WeightView::new(&mut overlay, &weights);
    let cfg = BestFirstConfig {
        learn: false,
        ..BestFirstConfig::default()
    };
    let r = best_first(&p.db, &q, &mut view, &cfg);
    let mut texts: Vec<String> = r.solutions.iter().map(|s| s.solution.to_text(&p.db)).collect();
    texts.sort();
    texts
}

#[test]
fn serves_family_queries_exactly() {
    let p = parse_program(FAMILY).unwrap();
    let server = QueryServer::new(&p.db, store_cfg(p.db.len(), 4), ServeConfig::default());
    let requests = vec![
        QueryRequest::new(1, "gf(sam, G)"),
        QueryRequest::new(2, "gf(curt, G)"),
        QueryRequest::new(1, "gf(sam, G)"),
    ];
    let report = server.serve(requests);
    assert_eq!(report.responses.len(), 3);
    assert_eq!(report.stats.completed, 3);
    for (i, text) in ["gf(sam, G)", "gf(curt, G)", "gf(sam, G)"].iter().enumerate() {
        let r = &report.responses[i];
        assert_eq!(r.request, i, "responses in batch order");
        match &r.outcome {
            Outcome::Completed { solutions } => {
                assert_eq!(solutions, &sequential_solutions(&p, text), "{text}");
            }
            other => panic!("{text}: {other:?}"),
        }
    }
    // Same session, affinity routing: same pool both times, warm second.
    assert_eq!(report.responses[0].pool, report.responses[2].pool);
    assert!(!report.responses[0].warm);
    assert!(report.responses[2].warm);
}

#[test]
fn or_parallel_exec_mode_matches_sequential() {
    let p = parse_program(FAMILY).unwrap();
    for policy in [
        FrontierPolicy::SharedHeap,
        FrontierPolicy::Sharded { d: 512 },
    ] {
        let server = QueryServer::new(
            &p.db,
            store_cfg(p.db.len(), 4),
            ServeConfig {
                exec: ExecMode::OrParallel {
                    n_workers: 3,
                    policy,
                },
                ..ServeConfig::default()
            },
        );
        let report = server.serve(vec![QueryRequest::new(9, "gf(sam, G)")]);
        assert_eq!(
            report.responses[0].outcome.solutions(),
            sequential_solutions(&p, "gf(sam, G)"),
            "{policy:?}"
        );
    }
}

#[test]
fn round_robin_deals_across_pools() {
    let p = parse_program(FAMILY).unwrap();
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 4),
        ServeConfig {
            n_pools: 3,
            routing: Routing::RoundRobin,
            ..ServeConfig::default()
        },
    );
    // One hot session, six requests: RR spreads them over all pools.
    let report = server.serve((0..6).map(|_| QueryRequest::new(7, "gf(sam, G)")).collect());
    let pools: std::collections::BTreeSet<usize> =
        report.responses.iter().map(|r| r.pool).collect();
    assert_eq!(pools.len(), 3, "round-robin uses every pool: {pools:?}");
    // Affinity on the same load keeps one pool.
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 4),
        ServeConfig {
            n_pools: 3,
            routing: Routing::SessionAffinity,
            ..ServeConfig::default()
        },
    );
    let report = server.serve((0..6).map(|_| QueryRequest::new(7, "gf(sam, G)")).collect());
    let pools: std::collections::BTreeSet<usize> =
        report.responses.iter().map(|r| r.pool).collect();
    assert_eq!(pools.len(), 1, "affinity keeps the session home");
}

#[test]
fn overflow_threshold_diverts_a_hot_session() {
    let p = parse_program(FAMILY).unwrap();
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 4),
        ServeConfig {
            n_pools: 2,
            routing: Routing::SessionAffinity,
            overflow_threshold: Some(2),
            ..ServeConfig::default()
        },
    );
    let report = server.serve((0..8).map(|_| QueryRequest::new(7, "gf(sam, G)")).collect());
    assert!(
        report.stats.overflow_admissions > 0,
        "a hot session past the threshold must divert"
    );
    let pools: std::collections::BTreeSet<usize> =
        report.responses.iter().map(|r| r.pool).collect();
    assert_eq!(pools.len(), 2, "diverted requests land on the other pool");
    // Queue peaks stay near the threshold: 8 requests over 2 pools with
    // threshold 2 must not pile 7 deep anywhere.
    for pr in &report.stats.per_pool {
        assert!(pr.queue_peak <= 5, "pool {} peaked at {}", pr.pool, pr.queue_peak);
    }
    // Every response still exact.
    let expect = sequential_solutions(&p, "gf(sam, G)");
    for r in &report.responses {
        assert_eq!(r.outcome.solutions(), expect);
    }
}

#[test]
fn malformed_and_unknown_queries_reject_without_engine_work() {
    let p = parse_program(FAMILY).unwrap();
    let server = QueryServer::new(&p.db, store_cfg(p.db.len(), 4), ServeConfig::default());
    let report = server.serve(vec![
        QueryRequest::new(1, "gf(sam,"),
        QueryRequest::new(2, "zebra(sam, G)"),
        QueryRequest::new(3, "gf(sam, G)"),
    ]);
    assert_eq!(report.stats.rejected, 2);
    assert_eq!(report.stats.completed, 1);
    for r in &report.responses[..2] {
        assert!(matches!(r.outcome, Outcome::Rejected { .. }));
        assert_eq!(r.stats.nodes_expanded, 0);
        assert_eq!(r.store_accesses, 0);
    }
    // A rejection touches none of the session's tracks, so it must not
    // mark the session warm for the next request.
    let retry = server.serve(vec![QueryRequest::new(1, "gf(sam, G)")]);
    assert!(
        !retry.responses[0].warm,
        "a rejected request must not warm its session"
    );
    let after = server.serve(vec![QueryRequest::new(1, "gf(sam, G)")]);
    assert!(after.responses[0].warm, "a completed request does");
}

#[test]
fn per_request_node_budget_truncates() {
    let p = parse_program(
        "
        edge(a,b). edge(b,a).
        path(X,Y) :- edge(X,Y).
        path(X,Z) :- edge(X,Y), path(Y,Z).
    ",
    )
    .unwrap();
    let server = QueryServer::new(&p.db, store_cfg(p.db.len(), 4), ServeConfig::default());
    let report = server.serve(vec![
        QueryRequest::new(1, "path(a, X)").with_max_nodes(100)
    ]);
    let r = &report.responses[0];
    assert!(r.outcome.is_completed(), "budget exhaustion is not cancellation");
    assert!(r.stats.truncated, "but it is reported as truncation");
    assert!(r.stats.nodes_expanded <= 101);
}

#[test]
fn deadline_cancels_mid_flight_and_keeps_partials() {
    // Unbounded left-recursive search; only the deadline can stop it.
    let p = parse_program(
        "
        edge(a,b). edge(b,a).
        path(X,Y) :- edge(X,Y).
        path(X,Z) :- edge(X,Y), path(Y,Z).
    ",
    )
    .unwrap();
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 4),
        ServeConfig {
            n_pools: 1,
            solve: SolveConfig {
                max_nodes: None,
                ..SolveConfig::all()
            },
            ..ServeConfig::default()
        },
    );
    let t0 = std::time::Instant::now();
    let report = server.serve(vec![
        QueryRequest::new(1, "path(a, X)").with_deadline(Duration::from_millis(30))
    ]);
    let elapsed = t0.elapsed();
    let r = &report.responses[0];
    assert!(
        matches!(r.outcome, Outcome::Cancelled { .. }),
        "unbounded search must be reaped: {:?}",
        r.outcome
    );
    assert!(r.stats.truncated);
    assert_eq!(report.stats.cancelled, 1);
    assert!(
        elapsed < Duration::from_secs(20),
        "reaper must fire promptly, took {elapsed:?}"
    );
}

#[test]
fn expired_in_queue_requests_are_shed_unrun() {
    // One slow request ahead of a zero-deadline one on a single pool:
    // the second expires while queued and must not run at all.
    let p = parse_program(
        "
        edge(a,b). edge(b,a).
        path(X,Y) :- edge(X,Y).
        path(X,Z) :- edge(X,Y), path(Y,Z).
    ",
    )
    .unwrap();
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 4),
        ServeConfig {
            n_pools: 1,
            ..ServeConfig::default()
        },
    );
    let report = server.serve(vec![
        QueryRequest::new(1, "path(a, X)").with_max_nodes(2_000),
        QueryRequest::new(2, "path(a, X)").with_deadline(Duration::ZERO),
    ]);
    let shed = &report.responses[1];
    assert!(matches!(shed.outcome, Outcome::Cancelled { .. }));
    assert_eq!(shed.stats.nodes_expanded, 0, "shed without engine work");
    assert_eq!(shed.store_accesses, 0);
}

#[test]
fn store_cache_stays_warm_across_batches() {
    let p = parse_program(FAMILY).unwrap();
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 16),
        ServeConfig {
            n_pools: 1,
            ..ServeConfig::default()
        },
    );
    let cold = server.serve(vec![QueryRequest::new(1, "gf(sam, G)")]);
    let warm = server.serve(vec![QueryRequest::new(1, "gf(sam, G)")]);
    let cold_rate = cold.responses[0].store_hit_rate();
    let warm_rate = warm.responses[0].store_hit_rate();
    assert!(
        warm_rate > cold_rate,
        "second batch must hit the resident tracks: {cold_rate} -> {warm_rate}"
    );
    assert!(warm.responses[0].warm, "session ledger persists too");
}

#[test]
fn serve_stats_are_internally_consistent() {
    let mix = TenantMix {
        n_tenants: 3,
        queries_per_tenant: 5,
        ..TenantMix::default()
    };
    let (p, metas) = tenant_mix_program(&mix);
    let requests: Vec<QueryRequest> = tenant_mix_requests(&mix, &metas)
        .into_iter()
        .map(|r| QueryRequest::new(r.tenant as u64, r.text).with_tenant(r.tenant as u32))
        .collect();
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 8),
        ServeConfig {
            n_pools: 2,
            ..ServeConfig::default()
        },
    );
    let report = server.serve(requests);
    let s = &report.stats;
    assert_eq!(s.requests, 15);
    assert_eq!(
        s.completed + s.cancelled + s.rejected + s.overloaded,
        s.requests
    );
    assert_eq!(s.rejected, 0);
    assert_eq!(s.overloaded, 0);
    assert_eq!(
        s.per_pool.iter().map(|p| p.served).sum::<usize>(),
        s.requests
    );
    // Store counters balance: the run's delta equals the pool touches,
    // equals the per-response attribution.
    let pool_accesses: u64 = s.per_pool.iter().map(|p| p.touches.accesses).sum();
    let response_accesses: u64 = report.responses.iter().map(|r| r.store_accesses).sum();
    assert_eq!(s.store.accesses, pool_accesses);
    assert_eq!(s.store.accesses, response_accesses);
    assert_eq!(s.store.hits + s.store.misses, s.store.accesses);
    assert_eq!(s.warm.accesses + s.cold.accesses, s.store.accesses);
    assert_eq!(s.warm.requests + s.cold.requests, s.requests);
    assert!(s.throughput_rps > 0.0);
    assert!(s.p99_ms >= s.p50_ms);
    assert!(s.store.lock_acquisitions > 0);
    // Every response exact vs sequential.
    let originals = tenant_mix_requests(&mix, &metas);
    for r in &report.responses {
        let text = &originals[r.request].text;
        assert_eq!(
            r.outcome.solutions(),
            sequential_solutions(&p, text),
            "request {} ({text})",
            r.request
        );
    }
}

#[test]
fn tenant_mix_affinity_beats_round_robin_on_warm_hits() {
    // The §5 claim in miniature: drifting sessions with disjoint working
    // sets through a capacity-limited shared cache — affinity keeps each
    // session's tracks warm between its bursts, round-robin scatters the
    // session across pools so its repeat queries run cold.
    let mix = TenantMix {
        n_tenants: 6,
        queries_per_tenant: 8,
        drift: 0.1,
        burst: 2,
        family: FamilyParams {
            generations: 3,
            branching: 3,
            ..FamilyParams::default()
        },
        ..TenantMix::default()
    };
    let (p, metas) = tenant_mix_program(&mix);
    let gen_requests = || -> Vec<QueryRequest> {
        tenant_mix_requests(&mix, &metas)
            .into_iter()
            .map(|r| QueryRequest::new(r.tenant as u64, r.text).with_tenant(r.tenant as u32))
            .collect()
    };
    // Capacity: a couple of tenants' working sets, not all six.
    let tracks_total = p.db.len().div_ceil(2);
    let capacity = (tracks_total / 3).max(2);
    let run = |routing: Routing| {
        let server = QueryServer::new(
            &p.db,
            store_cfg(p.db.len(), capacity),
            ServeConfig {
                n_pools: 2,
                routing,
                ..ServeConfig::default()
            },
        );
        server.serve(gen_requests()).stats
    };
    let aff = run(Routing::SessionAffinity);
    let rr = run(Routing::RoundRobin);
    let aff_rate = aff.store.hits as f64 / aff.store.accesses as f64;
    let rr_rate = rr.store.hits as f64 / rr.store.accesses as f64;
    assert!(
        aff_rate > rr_rate,
        "affinity {aff_rate:.3} must beat round-robin {rr_rate:.3} on hit rate"
    );
    assert!(
        aff.warm.hit_rate() >= aff.cold.hit_rate(),
        "warm requests hit at least as often as cold ones: warm {:.3} cold {:.3}",
        aff.warm.hit_rate(),
        aff.cold.hit_rate()
    );
}

fn cached_config(mode: CacheMode) -> ServeConfig {
    ServeConfig {
        cache: CacheConfig {
            mode,
            ..CacheConfig::default()
        },
        ..ServeConfig::default()
    }
}

#[test]
fn answer_cache_hits_bypass_the_engine() {
    let p = parse_program(FAMILY).unwrap();
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 8),
        cached_config(CacheMode::Precise),
    );
    let first = server.serve(vec![QueryRequest::new(1, "gf(sam, G)")]);
    assert_eq!(first.responses[0].served_from, ServedFrom::Engine);
    assert_eq!(first.stats.cache.fills, 1);
    assert_eq!(first.stats.cache.hits, 0);
    // An alpha-variant of the same query from a *different* session hits
    // the cache: no engine, no store traffic, exact answers.
    let second = server.serve(vec![QueryRequest::new(2, "gf(sam, Who)")]);
    let r = &second.responses[0];
    assert_eq!(r.served_from, ServedFrom::Cache);
    assert_eq!(r.outcome.solutions(), sequential_solutions(&p, "gf(sam, G)"));
    assert_eq!(r.stats.nodes_expanded, 0, "hit bypasses the engine");
    assert_eq!(r.store_accesses, 0, "hit touches no tracks");
    assert!(r.warm, "a cache hit is a warm response");
    assert_eq!(second.stats.cache.hits, 1);
    assert_eq!(second.stats.cache.fills, 0);
}

#[test]
fn commits_invalidate_touched_predicates_and_spare_the_rest() {
    let p = parse_program(FAMILY).unwrap();
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 8),
        cached_config(CacheMode::Precise),
    );
    // Two entries: gf/2 depends on {gf, f, m}; m(peg, X) on {m} only.
    server.serve(vec![
        QueryRequest::new(1, "gf(sam, G)"),
        QueryRequest::new(2, "m(peg, X)"),
    ]);
    // Commit touching f/2 only.
    server
        .apply_update(&[UpdateOp::Assert {
            text: "f(larry,zoe).".into(),
        }])
        .unwrap();
    let report = server.serve(vec![
        QueryRequest::new(3, "gf(sam, G)"),
        QueryRequest::new(4, "m(peg, X)"),
    ]);
    let gf = &report.responses[0];
    let m = &report.responses[1];
    assert_eq!(
        gf.served_from,
        ServedFrom::Engine,
        "gf depends on the touched f/2 — its entry must die"
    );
    assert!(
        gf.outcome
            .solutions()
            .iter()
            .any(|s| s.contains("zoe")),
        "re-run sees the committed fact: {:?}",
        gf.outcome.solutions()
    );
    assert_eq!(
        m.served_from,
        ServedFrom::Cache,
        "m/2 is disjoint from the commit — its entry survives"
    );
    assert_eq!(report.stats.cache.invalidations, 0, "invalidation happened at commit time");

    // The ClearAll ablation drops both under the same schedule.
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 8),
        cached_config(CacheMode::ClearAll),
    );
    server.serve(vec![
        QueryRequest::new(1, "gf(sam, G)"),
        QueryRequest::new(2, "m(peg, X)"),
    ]);
    server
        .apply_update(&[UpdateOp::Assert {
            text: "f(larry,zoe).".into(),
        }])
        .unwrap();
    let report = server.serve(vec![
        QueryRequest::new(3, "gf(sam, G)"),
        QueryRequest::new(4, "m(peg, X)"),
    ]);
    for r in &report.responses {
        assert_eq!(
            r.served_from,
            ServedFrom::Engine,
            "clear-all keeps nothing across a commit"
        );
    }
}

#[test]
fn open_loop_interleaves_submissions_and_commits_deterministically() {
    let p = parse_program(FAMILY).unwrap();
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 8),
        cached_config(CacheMode::Precise),
    );
    let (report, marker) = server.serve_open(|s| {
        let a = s.submit(QueryRequest::new(1, "gf(sam, G)"));
        assert!(matches!(a, Admission::Queued { request: 0, .. }));
        s.quiesce();
        s.update(
            SessionId(9),
            &[UpdateOp::Assert {
                text: "f(larry,zoe).".into(),
            }],
        );
        s.submit(QueryRequest::new(1, "gf(sam, G)"));
        s.quiesce();
        assert_eq!(s.pending(), 0);
        42
    });
    assert_eq!(marker, 42, "driver result is returned");
    assert_eq!(report.responses.len(), 2);
    assert_eq!(report.updates.len(), 1);
    assert_eq!(report.stats.commits, 1);
    let before = &report.responses[0];
    let after = &report.responses[1];
    assert!(before.epoch < after.epoch, "second query sees the commit");
    assert!(!before.outcome.solutions().iter().any(|s| s.contains("zoe")));
    assert!(after.outcome.solutions().iter().any(|s| s.contains("zoe")));
    // Same canonical query, but the commit invalidated the entry: both
    // ran on an engine, and the second filled a fresh window.
    assert_eq!(after.served_from, ServedFrom::Engine);
    assert_eq!(report.stats.cache.invalidations, 1);
    assert_eq!(report.stats.cache.fills, 2);
}

#[test]
fn governor_refuses_submissions_past_the_byte_budget() {
    // Budget fits exactly one request reservation; a slow in-flight
    // request therefore forces the next submission to be refused.
    let p = parse_program(
        "
        edge(a,b). edge(b,a).
        path(X,Y) :- edge(X,Y).
        path(X,Z) :- edge(X,Y), path(Y,Z).
    ",
    )
    .unwrap();
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 4),
        ServeConfig {
            n_pools: 1,
            cache: CacheConfig {
                mode: CacheMode::Precise,
                budget_bytes: Some(16 * 1024),
                request_reserve_bytes: 16 * 1024,
            },
            ..ServeConfig::default()
        },
    );
    let (report, ()) = server.serve_open(|s| {
        let a = s.submit(QueryRequest::new(1, "path(a, X)").with_max_nodes(3_000));
        assert!(matches!(a, Admission::Queued { .. }));
        let b = s.submit(QueryRequest::new(2, "path(a, X)"));
        assert!(
            matches!(b, Admission::Overloaded { request: 1 }),
            "budget holds one reservation: {b:?}"
        );
        // Once the first request finishes, its reservation frees and
        // admission recovers.
        s.quiesce();
        let c = s.submit(QueryRequest::new(3, "gf(a, X)"));
        assert!(matches!(c, Admission::Queued { .. }), "{c:?}");
    });
    assert_eq!(report.responses.len(), 3);
    assert_eq!(report.stats.overloaded, 1);
    assert_eq!(
        report.stats.completed + report.stats.cancelled + report.stats.rejected
            + report.stats.overloaded,
        report.stats.requests
    );
    let refused = &report.responses[1];
    assert!(matches!(refused.outcome, Outcome::Overloaded { .. }));
    assert_eq!(refused.stats.nodes_expanded, 0);
    assert_eq!(refused.store_accesses, 0);
}

// --- Resilience: retries, panic isolation, breakers, degraded serving.

use blog_serve::{BreakerConfig, FaultPlan, FaultSite, RetryPolicy};

/// A retry policy tuned for tests: a deep budget and near-zero backoff.
fn eager_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 50,
        base_backoff: Duration::from_micros(10),
        max_backoff: Duration::from_micros(100),
    }
}

/// A breaker that effectively never trips (for tests isolating retries).
fn no_breaker() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: u32::MAX,
        cooldown: Duration::from_secs(10),
    }
}

#[test]
fn transient_faults_are_absorbed_by_retries() {
    let p = parse_program(FAMILY).unwrap();
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 4),
        ServeConfig {
            n_pools: 1,
            fault: Some(FaultPlan::transient(42, 0.05)),
            retry: eager_retry(),
            breaker: no_breaker(),
            ..ServeConfig::default()
        },
    );
    let report = server.serve(vec![
        QueryRequest::new(1, "gf(sam, G)"),
        QueryRequest::new(2, "gf(curt, G)"),
        QueryRequest::new(1, "gf(sam, G)"),
    ]);
    assert_eq!(report.stats.completed, 3, "retries mask every transient fault");
    assert_eq!(report.stats.failed, 0);
    assert!(report.stats.store.transient_faults > 0, "the plan actually fired");
    assert!(report.stats.retries > 0, "recovery took retries");
    for (r, text) in report.responses.iter().zip(["gf(sam, G)", "gf(curt, G)", "gf(sam, G)"]) {
        assert_eq!(
            r.outcome.solutions(),
            sequential_solutions(&p, text),
            "a retried answer is still the exact sequential solution set"
        );
    }
}

#[test]
fn no_retry_ablation_fails_instead_of_answering_wrong() {
    let p = parse_program(FAMILY).unwrap();
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 4),
        ServeConfig {
            n_pools: 1,
            fault: Some(FaultPlan::transient(42, 0.05)),
            retry: RetryPolicy::none(),
            breaker: no_breaker(),
            ..ServeConfig::default()
        },
    );
    let report = server.serve(vec![
        QueryRequest::new(1, "gf(sam, G)"),
        QueryRequest::new(2, "gf(curt, G)"),
        QueryRequest::new(1, "gf(sam, G)"),
    ]);
    assert_eq!(report.stats.retries, 0);
    assert!(report.stats.failed > 0, "same schedule, no retries: requests fail");
    for r in &report.responses {
        match &r.outcome {
            Outcome::Completed { solutions } => {
                // A lucky fault-free request still answers exactly.
                let text = if r.session == SessionId(2) { "gf(curt, G)" } else { "gf(sam, G)" };
                assert_eq!(solutions, &sequential_solutions(&p, text));
            }
            Outcome::Failed { advice, .. } => {
                assert!(advice.retryable, "transient failures invite resubmission");
                assert!(r.outcome.solutions().is_empty(), "no partial answers");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}

#[test]
fn permanent_damage_fails_with_give_up_advice() {
    let p = parse_program(FAMILY).unwrap();
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 4),
        ServeConfig {
            n_pools: 1,
            fault: Some(FaultPlan::new(7).with_site(FaultSite::permanent_track(1.0))),
            retry: eager_retry(),
            breaker: no_breaker(),
            ..ServeConfig::default()
        },
    );
    let report = server.serve(vec![
        QueryRequest::new(1, "gf(sam, G)"),
        QueryRequest::new(2, "gf(curt, G)"),
    ]);
    assert_eq!(report.stats.failed, 2, "damaged medium: retrying is useless");
    assert_eq!(report.stats.completed, 0);
    for r in &report.responses {
        let Some(advice) = r.outcome.retry_advice() else {
            panic!("expected Failed, got {:?}", r.outcome);
        };
        assert!(!advice.retryable, "permanent faults say give up");
    }
}

#[test]
fn injected_panics_are_isolated_to_the_request() {
    let p = parse_program(FAMILY).unwrap();
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 4),
        ServeConfig {
            n_pools: 1,
            fault: Some(FaultPlan::new(3).with_site(FaultSite::panic(1.0))),
            retry: RetryPolicy::none(),
            breaker: no_breaker(),
            ..ServeConfig::default()
        },
    );
    // Both requests panic inside the engine; the pool worker survives
    // both (the second executes, the batch drains, the call returns).
    let report = server.serve(vec![
        QueryRequest::new(1, "gf(sam, G)"),
        QueryRequest::new(2, "gf(curt, G)"),
    ]);
    assert_eq!(report.stats.failed, 2);
    for r in &report.responses {
        match &r.outcome {
            Outcome::Failed { error, .. } => {
                assert!(error.contains("panic"), "{error}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }
}

#[test]
fn open_breaker_serves_cached_answers_degraded() {
    let p = parse_program(FAMILY).unwrap();
    let config = ServeConfig {
        n_pools: 1,
        retry: RetryPolicy::none(),
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(30),
        },
        cache: CacheConfig {
            mode: CacheMode::Precise,
            budget_bytes: None,
            request_reserve_bytes: 1024,
        },
        ..ServeConfig::default()
    };
    // Measure the cache-filling batch's touch count on an identical
    // fault-free server, then schedule a hard transient storm from the
    // very next touch: the fill runs clean, everything after it fails.
    let probe = QueryServer::new(&p.db, store_cfg(p.db.len(), 4), config.clone());
    let fill_touches = probe
        .serve(vec![QueryRequest::new(1, "gf(sam, G)")])
        .stats
        .store
        .accesses;
    let plan = FaultPlan::new(11)
        .with_site(FaultSite::transient_read(1.0).between(fill_touches, u64::MAX));
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 4),
        ServeConfig {
            fault: Some(plan),
            ..config
        },
    );
    // Batch 1: fill the cache while storage is healthy.
    let fill = server.serve(vec![QueryRequest::new(1, "gf(sam, G)")]);
    assert_eq!(fill.stats.completed, 1);
    assert_eq!(fill.stats.store.transient_faults, 0, "storm starts after the fill");
    // Batch 2: three uncached queries fail against the storm and trip
    // the pool's breaker.
    let storm = server.serve(vec![
        QueryRequest::new(2, "gf(curt, G)"),
        QueryRequest::new(3, "gf(curt, G)"),
        QueryRequest::new(4, "gf(curt, G)"),
    ]);
    assert_eq!(storm.stats.failed, 3);
    assert_eq!(storm.stats.breaker_opens, 1, "third consecutive failure trips");
    // Batch 3: the breaker is open — the cached query is still answered
    // (degraded cache-only serving); the uncached one fails fast with a
    // cooldown hint, touching no storage.
    let degraded = server.serve(vec![
        QueryRequest::new(1, "gf(sam, G)"),
        QueryRequest::new(5, "gf(curt, G)"),
    ]);
    assert_eq!(degraded.stats.degraded_cache_hits, 1);
    let hit = &degraded.responses[0];
    assert_eq!(hit.served_from, ServedFrom::Cache);
    assert_eq!(hit.outcome.solutions(), sequential_solutions(&p, "gf(sam, G)"));
    let miss = &degraded.responses[1];
    match &miss.outcome {
        Outcome::Failed { advice, .. } => {
            assert!(advice.retryable);
            assert!(advice.retry_after > Duration::ZERO, "come back after cooldown");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(degraded.stats.store.transient_faults, 0, "degraded path reads no pages");
}

#[test]
fn breaker_reroutes_admissions_to_healthy_pools() {
    let p = parse_program(FAMILY).unwrap();
    // Pool 1's path to the disk is permanently sick; pool 0 is fine.
    let plan = FaultPlan::new(5).with_site(FaultSite::transient_read(1.0).for_pool(1));
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 4),
        ServeConfig {
            n_pools: 2,
            routing: Routing::RoundRobin,
            fault: Some(plan),
            retry: RetryPolicy::none(),
            breaker: BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_secs(30),
            },
            ..ServeConfig::default()
        },
    );
    // Paced one at a time so each admission sees the breaker state the
    // previous request left behind.
    let (report, ()) = server.serve_open(|s| {
        for i in 0..6 {
            s.submit(QueryRequest::new(100 + i, "gf(sam, G)"));
            s.quiesce();
        }
    });
    assert_eq!(report.stats.failed, 1, "only pool 1's first victim fails");
    assert!(
        report.stats.breaker_reroutes >= 1,
        "later round-robin admissions to pool 1 divert to pool 0"
    );
    for r in &report.responses {
        if r.outcome.is_completed() {
            assert_eq!(r.outcome.solutions(), sequential_solutions(&p, "gf(sam, G)"));
        }
    }
}

#[test]
fn breaker_storm_traces_the_full_transition_cycle() {
    use blog_serve::TraceConfig;
    let p = parse_program(FAMILY).unwrap();
    // Every touch in [0, 3) faults: the first three requests each fail
    // on their first clause fetch, tripping the single pool's breaker
    // at the threshold (the T13 breaker-storm scenario).
    let plan = FaultPlan::new(9).with_site(FaultSite::transient_read(1.0).between(0, 3));
    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 4),
        ServeConfig {
            n_pools: 1,
            fault: Some(plan),
            retry: RetryPolicy::none(),
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(50),
            },
            trace: TraceConfig::always_on(),
            ..ServeConfig::default()
        },
    );
    let storm = server.serve(vec![
        QueryRequest::new(1, "gf(sam, G)"),
        QueryRequest::new(2, "gf(sam, G)"),
        QueryRequest::new(3, "gf(sam, G)"),
    ]);
    assert_eq!(storm.stats.failed, 3);
    assert_eq!(storm.stats.breaker_opens, 1, "third consecutive failure trips");
    std::thread::sleep(Duration::from_millis(60));
    // Cooldown elapsed: the next request is the half-open probe; the
    // storm window is spent, so it runs clean and closes the breaker.
    let probe = server.serve(vec![QueryRequest::new(4, "gf(sam, G)")]);
    assert_eq!(probe.stats.completed, 1);
    assert_eq!(
        probe.responses[0].outcome.solutions(),
        sequential_solutions(&p, "gf(sam, G)")
    );

    // Every request was traced (sample 1-in-1); the breaker transition
    // events across the flight recorder, in timestamp order, must spell
    // the exact Closed -> Open -> HalfOpen -> Closed cycle.
    let mut transitions: Vec<(u64, String)> = server
        .tracer()
        .recorder()
        .snapshot()
        .iter()
        .flat_map(|t| t.events.iter().map(|e| (e.at_ns, e.name.clone())))
        .filter(|(_, name)| name.starts_with("breaker_"))
        .collect();
    transitions.sort();
    let names: Vec<&str> = transitions.iter().map(|(_, n)| n.as_str()).collect();
    assert_eq!(names, ["breaker_open", "breaker_half_open", "breaker_closed"]);
    // And the trees themselves are well-formed.
    for t in server.tracer().recorder().snapshot() {
        t.well_formed().expect("trace tree is well-formed");
    }
}
