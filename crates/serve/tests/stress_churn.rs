//! Churn stress for the MVCC write path at the serving layer: writer
//! threads and the update lane mutate the store while pools drain query
//! batches, with every run under a watchdog (mirroring
//! `blog-parallel`'s `stress_termination.rs`) so a lost wakeup or a
//! reader blocked on a committing writer fails the test instead of
//! hanging the suite.
//!
//! Correctness is the ISSUE's epoch contract, checked two ways:
//!
//! - **Mixed batches** (`serve_mixed`): the update lane applies a
//!   deterministic churn stream mid-batch; every query response is
//!   diffed against a sequential oracle rebuilt at the response's epoch.
//! - **Free-running writers** (`apply_update` from N threads): each
//!   writer logs its committed transactions; responses are diffed the
//!   same way. A torn page — a reader observing half a commit — cannot
//!   produce the exact solution set of *any* single epoch, let alone the
//!   one it was admitted at.
//!
//! Both run under MVCC and the stop-the-world baseline: the modes differ
//! in blocking, never in answers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use blog_core::engine::{best_first, BestFirstConfig};
use blog_core::weight::{WeightParams, WeightStore, WeightView};
use blog_logic::{clause_to_source, parse_program, parse_query_shared, ClauseId, Program};
use blog_serve::{
    CommitMode, QueryRequest, QueryServer, ServeConfig, UpdateOp, UpdateOutcome, UpdateRequest,
};
use blog_spd::{Geometry, PagedStoreConfig, PolicyKind};
use blog_workloads::{
    churn_updates, tenant_mix_program, tenant_mix_requests, ChurnOp, ChurnSpec, FamilyParams,
    TenantMix,
};

/// Per-run watchdog budget, matching `stress_termination.rs`.
const WATCHDOG: Duration = Duration::from_secs(10);

fn mix() -> TenantMix {
    TenantMix {
        n_tenants: 3,
        queries_per_tenant: 6,
        drift: 0.2,
        burst: 2,
        family: FamilyParams {
            generations: 3,
            branching: 3,
            ..FamilyParams::default()
        },
        ..TenantMix::default()
    }
}

/// Geometry for the seed plus `headroom` churned clauses, cache small
/// enough that writers and readers fight over residency.
fn store_cfg(db_len: usize, headroom: usize) -> PagedStoreConfig {
    let blocks_per_track = 2u32;
    let n_sps = 2u32;
    let tracks_needed = (db_len + headroom).div_ceil(blocks_per_track as usize);
    PagedStoreConfig {
        geometry: Geometry {
            n_sps,
            n_cylinders: (tracks_needed.div_ceil(n_sps as usize) + 1) as u32,
            blocks_per_track,
        },
        capacity_tracks: db_len.div_ceil(blocks_per_track as usize).div_ceil(2).max(2),
        policy: PolicyKind::TwoQ,
        ..PagedStoreConfig::default()
    }
}

/// Sequential solutions of `text` against `db`, sorted.
fn sequential_solutions(p: &Program, text: &str) -> Vec<String> {
    let q = parse_query_shared(&p.db, text).expect("oracle query parses");
    let weights = WeightStore::new(WeightParams::default());
    let mut overlay = HashMap::new();
    let mut view = WeightView::new(&mut overlay, &weights);
    let cfg = BestFirstConfig {
        learn: false,
        ..BestFirstConfig::default()
    };
    let r = best_first(&p.db, &q, &mut view, &cfg);
    let mut texts: Vec<String> = r.solutions.iter().map(|s| s.solution.to_text(&p.db)).collect();
    texts.sort();
    texts
}

/// `(epoch, asserted (id, text) pairs, retracted ids)` — the unit the
/// per-epoch oracle replays, from whichever side produced the commit.
type CommitLog = (u64, Vec<(u32, String)>, Vec<u32>);

/// Diff every response against a sequential database rebuilt at the
/// response's epoch from the seed program plus the committed `logs`.
fn verify_per_epoch(
    p: &Program,
    query_texts: &[String],
    responses: &[blog_serve::QueryResponse],
    mut logs: Vec<CommitLog>,
    what: &str,
) {
    logs.sort_by_key(|(e, _, _)| *e);
    let mut epochs: Vec<u64> = responses.iter().map(|r| r.epoch).collect();
    epochs.sort_unstable();
    epochs.dedup();
    let mut alive: Vec<Option<String>> = p
        .db
        .clauses()
        .iter()
        .map(|c| Some(clause_to_source(p.db.symbols(), c)))
        .collect();
    let mut next = 0usize;
    for &epoch in &epochs {
        while next < logs.len() && logs[next].0 <= epoch {
            let (_, asserted, retracted) = &logs[next];
            for (id, text) in asserted {
                let id = *id as usize;
                if alive.len() <= id {
                    alive.resize(id + 1, None);
                }
                alive[id] = Some(text.clone());
            }
            for id in retracted {
                alive[*id as usize] = None;
            }
            next += 1;
        }
        let src: String = alive.iter().flatten().fold(String::new(), |mut acc, t| {
            acc.push_str(t);
            acc.push('\n');
            acc
        });
        let oracle = parse_program(&src).expect("oracle program parses");
        let mut truth: HashMap<&str, Vec<String>> = HashMap::new();
        for r in responses.iter().filter(|r| r.epoch == epoch) {
            let text = query_texts[r.request].as_str();
            let expect = truth
                .entry(text)
                .or_insert_with(|| sequential_solutions(&oracle, text));
            assert_eq!(
                r.outcome.solutions(),
                expect.as_slice(),
                "{what}: request {} ({text}) diverged from its epoch-{epoch} snapshot",
                r.request,
            );
        }
    }
}

/// Run `f` on a detached thread under the watchdog. Detached, not
/// scoped: a scoped join would block on exactly the hang this suite
/// exists to catch. On timeout the stuck thread is leaked and the test
/// fails loudly.
fn with_watchdog(what: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(WATCHDOG)
        .unwrap_or_else(|_| panic!("deadlock or crash: {what} did not finish in {WATCHDOG:?}"));
}

// ---------------------------------------------------------------------------
// Update lane: deterministic churn through serve_mixed
// ---------------------------------------------------------------------------

fn run_mixed_batch(mode: CommitMode) {
    let m = mix();
    let (p, metas) = tenant_mix_program(&m);
    let originals = tenant_mix_requests(&m, &metas);
    let query_texts: Vec<String> = originals.iter().map(|r| r.text.clone()).collect();
    let queries: Vec<QueryRequest> = originals
        .iter()
        .map(|r| QueryRequest::new(r.tenant as u64, r.text.clone()).with_tenant(r.tenant as u32))
        .collect();

    let spec = ChurnSpec {
        n_updates: 12,
        ops_per_update: 2,
        assert_share: 0.6,
        seed: 3,
    };
    let stream = churn_updates(&p.db, &metas, &spec);
    let updates: Vec<UpdateRequest> = stream
        .iter()
        .enumerate()
        .map(|(i, u)| {
            let ops: Vec<UpdateOp> = u
                .ops
                .iter()
                .map(|op| match op {
                    ChurnOp::Assert { text } => UpdateOp::Assert { text: text.clone() },
                    ChurnOp::Retract { id } => UpdateOp::Retract { id: *id },
                })
                .collect();
            // Stagger commits across the batch so queries land at many
            // different epochs.
            UpdateRequest::new(1_000 + u.tenant as u64, ops)
                .with_not_before(Duration::from_millis(i as u64))
        })
        .collect();

    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 256),
        ServeConfig {
            n_pools: 2,
            commit: mode,
            ..ServeConfig::default()
        },
    );
    let report = server.serve_mixed(queries, updates);

    // Every update committed (the churn generator only retracts live
    // facts when its stream is applied in order — which the single
    // update lane guarantees), at strictly increasing epochs.
    assert_eq!(report.updates.len(), stream.len());
    let mut last = 0;
    let mut logs: Vec<CommitLog> = Vec::new();
    for (i, u) in report.updates.iter().enumerate() {
        assert_eq!(u.request, i, "update responses in submission order");
        let UpdateOutcome::Committed { asserted } = &u.outcome else {
            panic!("update {i} rejected: {:?}", u.outcome);
        };
        assert!(u.epoch > last, "update lane epochs must increase: {i}");
        last = u.epoch;
        let mut texts = stream[i].ops.iter().filter_map(|op| match op {
            ChurnOp::Assert { text } => Some(text.clone()),
            ChurnOp::Retract { .. } => None,
        });
        let asserted: Vec<(u32, String)> = asserted
            .iter()
            .map(|cid| (cid.0, texts.next().expect("one text per asserted id")))
            .collect();
        let retracted: Vec<u32> = stream[i]
            .ops
            .iter()
            .filter_map(|op| match op {
                ChurnOp::Retract { id } => Some(id.0),
                ChurnOp::Assert { .. } => None,
            })
            .collect();
        logs.push((u.epoch, asserted, retracted));
    }
    assert_eq!(report.stats.commits, stream.len() as u64);
    assert_eq!(report.stats.final_epoch, last);

    verify_per_epoch(&p, &query_texts, &report.responses, logs, "mixed batch");

    // No readers or stashed versions survive the batch.
    let s = server.store().mvcc_stats();
    assert_eq!(server.store().reader_count(), 0, "leaked epoch pin");
    assert_eq!(s.stashed_pages, 0, "stash leak after batch");
}

#[test]
fn mixed_batch_is_epoch_exact_under_mvcc() {
    with_watchdog("mixed batch (mvcc)", || run_mixed_batch(CommitMode::Mvcc));
}

#[test]
fn mixed_batch_is_epoch_exact_under_stop_the_world() {
    with_watchdog("mixed batch (stw)", || {
        run_mixed_batch(CommitMode::StopTheWorld)
    });
}

// ---------------------------------------------------------------------------
// Free-running writers: N threads churning while M pools serve
// ---------------------------------------------------------------------------

fn run_writer_storm(mode: CommitMode, n_writers: usize, n_pools: usize) {
    let m = mix();
    let (p, metas) = tenant_mix_program(&m);
    let originals = tenant_mix_requests(&m, &metas);
    let query_texts: Vec<String> = originals.iter().map(|r| r.text.clone()).collect();
    let queries: Vec<QueryRequest> = originals
        .iter()
        .map(|r| QueryRequest::new(r.tenant as u64, r.text.clone()).with_tenant(r.tenant as u32))
        .collect();

    let server = QueryServer::new(
        &p.db,
        store_cfg(p.db.len(), 1024),
        ServeConfig {
            n_pools,
            commit: mode,
            ..ServeConfig::default()
        },
    );

    let stop = AtomicBool::new(false);
    let mut logs: Vec<CommitLog> = Vec::new();
    let mut report = None;
    std::thread::scope(|scope| {
        let (server, stop, metas) = (&server, &stop, &metas);
        let handles: Vec<_> = (0..n_writers)
            .map(|w| {
                scope.spawn(move || {
                    // Each writer churns one tenant and retracts only its
                    // own asserts, so every transaction commits and the
                    // union of logs is the total commit record.
                    let tenant = w % metas.len();
                    let parent = &metas[tenant].persons[1][w % metas[tenant].persons[1].len()];
                    let mut own: Vec<(u32, String)> = Vec::new();
                    let mut log: Vec<CommitLog> = Vec::new();
                    let mut i = 0usize;
                    while !stop.load(Ordering::Acquire) && log.len() < 60 {
                        if own.len() < 3 {
                            let text = format!("t{tenant}_f({parent},s{w}x{i}).");
                            i += 1;
                            let (epoch, ids) = server
                                .apply_update(&[UpdateOp::Assert { text: text.clone() }])
                                .expect("headroom covers every writer");
                            own.push((ids[0].0, text.clone()));
                            log.push((epoch, vec![(ids[0].0, text)], vec![]));
                        } else {
                            let (id, _) = own.remove(0);
                            let (epoch, _) = server
                                .apply_update(&[UpdateOp::Retract { id: ClauseId(id) }])
                                .expect("own asserts are live");
                            log.push((epoch, vec![], vec![id]));
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    log
                })
            })
            .collect();
        report = Some(server.serve(queries));
        stop.store(true, Ordering::Release);
        for h in handles {
            logs.extend(h.join().expect("writer thread panicked"));
        }
    });
    let report = report.expect("serve ran");

    assert!(
        logs.iter().map(|(e, _, _)| *e).max().unwrap_or(0) > 0,
        "writers must land commits during the batch"
    );
    verify_per_epoch(
        &p,
        &query_texts,
        &report.responses,
        logs,
        &format!("writer storm ({} w={n_writers} p={n_pools})", mode.name()),
    );
    assert_eq!(server.store().reader_count(), 0, "leaked epoch pin");
    assert_eq!(server.store().stash_depth(), 0, "stash leak after batch");
}

#[test]
fn writer_storm_is_epoch_exact_under_mvcc() {
    with_watchdog("writer storm (mvcc 4x3)", || {
        run_writer_storm(CommitMode::Mvcc, 4, 3)
    });
}

#[test]
fn writer_storm_is_epoch_exact_under_stop_the_world() {
    with_watchdog("writer storm (stw 4x3)", || {
        run_writer_storm(CommitMode::StopTheWorld, 4, 3)
    });
}

#[test]
fn single_writer_single_pool_still_interleaves() {
    with_watchdog("writer storm (mvcc 1x1)", || {
        run_writer_storm(CommitMode::Mvcc, 1, 1)
    });
}

// ---------------------------------------------------------------------------
// Repeated batches: nothing accumulates
// ---------------------------------------------------------------------------

#[test]
fn repeated_churn_batches_retire_everything() {
    with_watchdog("repeated batches", || {
        let p = Arc::new(
            parse_program(
                "
                gf(X,Z) :- f(X,Y), f(Y,Z).
                f(curt,elain). f(sam,larry). f(larry,den). f(larry,doug).
            ",
            )
            .unwrap(),
        );
        let server = QueryServer::new(&p.db, store_cfg(p.db.len(), 128), ServeConfig::default());
        let mut retired = 0;
        for round in 0..5 {
            let update = UpdateRequest::assert_text(9, format!("f(den,r{round})."));
            let report = server.serve_mixed(
                vec![QueryRequest::new(1, "gf(sam, G)"), QueryRequest::new(2, "gf(sam, G)")],
                vec![update],
            );
            assert!(report.updates[0].outcome.is_committed());
            let s = server.store().mvcc_stats();
            assert_eq!(s.committed_epoch, round + 1);
            assert_eq!(s.stashed_pages, 0, "round {round}: stash leak");
            assert_eq!(server.store().reader_count(), 0);
            assert!(
                s.pages_retired >= retired,
                "round {round}: retirement went backwards"
            );
            retired = s.pages_retired;
        }
        // The final database answers like its sequential equivalent.
        let full = parse_program(
            "
            gf(X,Z) :- f(X,Y), f(Y,Z).
            f(curt,elain). f(sam,larry). f(larry,den). f(larry,doug).
            f(den,r0). f(den,r1). f(den,r2). f(den,r3). f(den,r4).
        ",
        )
        .unwrap();
        let report = server.serve(vec![QueryRequest::new(3, "gf(sam, G)")]);
        assert_eq!(
            report.responses[0].outcome.solutions(),
            sequential_solutions(&full, "gf(sam, G)").as_slice()
        );
    });
}

// ---------------------------------------------------------------------------
// Fault storm: injected storage faults + writer churn, under the watchdog
// ---------------------------------------------------------------------------

use blog_serve::{BreakerConfig, FaultPlan, FaultSite, RetryPolicy};

/// Writer churn and a three-kind fault storm (transient reads, latency
/// spikes, injected engine panics) at once: the serving layer must stay
/// live (watchdog), leak nothing, answer every request exactly once, and
/// every response it *does* complete must still be the exact sequential
/// solution set of its epoch — resilience never buys availability with
/// wrong answers.
#[test]
fn fault_storm_with_writer_churn_is_live_and_exact() {
    with_watchdog("fault storm (2 writers, 2 pools)", || {
        let m = mix();
        let (p, metas) = tenant_mix_program(&m);
        let originals = tenant_mix_requests(&m, &metas);
        let query_texts: Vec<String> = originals.iter().map(|r| r.text.clone()).collect();
        let queries: Vec<QueryRequest> = originals
            .iter()
            .map(|r| {
                QueryRequest::new(r.tenant as u64, r.text.clone()).with_tenant(r.tenant as u32)
            })
            .collect();

        let plan = FaultPlan::new(0xD15EA5E)
            .with_site(FaultSite::transient_read(0.03))
            .with_site(FaultSite::latency_spike(0.02, 5))
            .with_site(FaultSite::panic(0.002));
        let server = QueryServer::new(
            &p.db,
            store_cfg(p.db.len(), 1024),
            ServeConfig {
                n_pools: 2,
                fault: Some(plan),
                retry: RetryPolicy {
                    max_retries: 50,
                    base_backoff: Duration::from_micros(10),
                    max_backoff: Duration::from_micros(200),
                },
                breaker: BreakerConfig {
                    failure_threshold: u32::MAX,
                    cooldown: Duration::from_secs(1),
                },
                ..ServeConfig::default()
            },
        );

        let stop = AtomicBool::new(false);
        let mut logs: Vec<CommitLog> = Vec::new();
        let mut report = None;
        std::thread::scope(|scope| {
            let (server, stop, metas) = (&server, &stop, &metas);
            let handles: Vec<_> = (0..2)
                .map(|w| {
                    scope.spawn(move || {
                        let tenant = w % metas.len();
                        let parent =
                            &metas[tenant].persons[1][w % metas[tenant].persons[1].len()];
                        let mut own: Vec<(u32, String)> = Vec::new();
                        let mut log: Vec<CommitLog> = Vec::new();
                        let mut i = 0usize;
                        while !stop.load(Ordering::Acquire) && log.len() < 40 {
                            if own.len() < 3 {
                                let text = format!("t{tenant}_f({parent},s{w}x{i}).");
                                i += 1;
                                let (epoch, ids) = server
                                    .apply_update(&[UpdateOp::Assert { text: text.clone() }])
                                    .expect("headroom covers every writer");
                                own.push((ids[0].0, text.clone()));
                                log.push((epoch, vec![(ids[0].0, text)], vec![]));
                            } else {
                                let (id, _) = own.remove(0);
                                let (epoch, _) = server
                                    .apply_update(&[UpdateOp::Retract { id: ClauseId(id) }])
                                    .expect("own asserts are live");
                                log.push((epoch, vec![], vec![id]));
                            }
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        log
                    })
                })
                .collect();
            report = Some(server.serve(queries));
            stop.store(true, Ordering::Release);
            for h in handles {
                logs.extend(h.join().expect("writer thread panicked"));
            }
        });
        let report = report.expect("serve ran");

        // Liveness + bookkeeping: every request answered exactly once,
        // no stranded worker (the batch returned), nothing leaked.
        assert_eq!(
            report.stats.completed
                + report.stats.cancelled
                + report.stats.rejected
                + report.stats.overloaded
                + report.stats.failed,
            report.stats.requests,
            "every submission gets exactly one outcome"
        );
        assert!(report.stats.store.transient_faults > 0, "the storm fired");
        assert!(report.stats.retries > 0, "retries did the absorbing");
        assert!(report.stats.completed > 0, "the storm was survivable");
        assert_eq!(server.store().reader_count(), 0, "leaked epoch pin");
        assert_eq!(server.store().stash_depth(), 0, "stash leak after batch");

        // Soundness: completed responses (only) replay against the
        // per-epoch oracle; Failed ones returned no solutions at all.
        for r in &report.responses {
            if !r.outcome.is_completed() {
                assert!(r.outcome.solutions().is_empty() || matches!(r.outcome, blog_serve::Outcome::Cancelled { .. }));
            }
        }
        let completed: Vec<blog_serve::QueryResponse> = report
            .responses
            .iter()
            .filter(|r| r.outcome.is_completed())
            .cloned()
            .collect();
        verify_per_epoch(&p, &query_texts, &completed, logs, "fault storm");
    });
}

/// A driver that panics mid-flight (after submitting work) must not
/// strand the pool workers on their queue condvars: admission closes via
/// the drop guard, the pools drain, the panic propagates to the caller,
/// and the server keeps serving afterwards.
#[test]
fn driver_panic_mid_flight_releases_workers() {
    with_watchdog("driver panic mid-flight", || {
        let p = parse_program(
            "
            gf(X,Z) :- f(X,Y), f(Y,Z).
            f(curt,elain). f(sam,larry). f(larry,den). f(larry,doug).
        ",
        )
        .unwrap();
        let server = QueryServer::new(&p.db, store_cfg(p.db.len(), 64), ServeConfig::default());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            server.serve_open(|s| {
                s.submit(QueryRequest::new(1, "gf(sam, G)"));
                s.submit(QueryRequest::new(2, "gf(sam, G)"));
                panic!("driver fell over mid-flight");
            })
        }));
        assert!(result.is_err(), "the driver's panic must propagate");
        // Workers were released (no deadlocked join), queues drained, and
        // the server still answers exactly.
        let report = server.serve(vec![QueryRequest::new(3, "gf(sam, G)")]);
        assert_eq!(report.stats.completed, 1);
        assert_eq!(
            report.responses[0].outcome.solutions(),
            sequential_solutions(&p, "gf(sam, G)").as_slice()
        );
        assert_eq!(server.store().reader_count(), 0, "no stranded epoch pins");
    });
}
