//! # blog-serve — the query-serving subsystem
//!
//! Everything below this crate accelerates *one* query: the paged clause
//! store, the scan-resistant replacement policies, structure-sharing
//! search state, the sharded frontier. The paper's §5 scenario — and the
//! reason any of it matters at production scale — is **many users
//! issuing streams of similar queries against one clause base**: "where
//! a user tries a second and third query that is similar to the first
//! one with some minor changes, later searches should become more
//! efficient". This crate is that serving layer.
//!
//! A [`QueryServer`] owns one shared snapshot-isolated
//! [`MvccClauseStore`](blog_spd::MvccClauseStore) and a fixed set of
//! **worker pools** (OS threads). Each [`QueryRequest`] — query text,
//! session id, optional deadline / node budget / solutions cap — is
//! admitted to a pool queue and executed through the existing engines
//! (sequential best-first, or the OR-parallel executor) against a
//! per-request epoch-pinned [`Snapshot`](blog_spd::Snapshot) of the
//! store, pool-tagged so hits and faults stay attributable to the pool
//! (and session mix) that generated them.
//!
//! The store being MVCC is what makes the server *live*: an **update
//! lane** ([`QueryServer::serve_mixed`], [`UpdateRequest`]) asserts and
//! retracts clauses between epochs while queries run. Every
//! [`QueryResponse`] is tagged with the [`epoch`](QueryResponse::epoch)
//! it executed at, and the contract — a query admitted at epoch `E`
//! returns exactly the sequential solution set of the epoch-`E` snapshot
//! — is enforced by the churn test suites against a single-threaded
//! oracle rebuilt per epoch. [`ServeConfig::commit`] selects snapshot
//! isolation ([`CommitMode::Mvcc`]) or the stop-the-world baseline the
//! T10 experiment measures it against.
//!
//! The scheduler's one real decision is **session affinity**
//! ([`Routing::SessionAffinity`]): requests from the same session hash
//! to the same pool, so one session's similar queries are serviced
//! consecutively and find their clause tracks still resident — the §5
//! cache-warmth effect, now produced by scheduling rather than luck.
//! [`Routing::RoundRobin`] is the ablation. Admission-time work
//! stealing (an [`overflow_threshold`](ServeConfig::overflow_threshold))
//! bounds queue skew when one session floods its home pool.
//!
//! Per-request cancellation reuses the engines'
//! [`CancelToken`](blog_logic::CancelToken) plumbing (the OR-parallel
//! frontier folds it into the same abort flag its node budget uses): a
//! deadline reaper thread trips the token of any in-flight request past
//! its deadline, and the engine returns with whatever solutions it had.
//!
//! **Serving v2** adds three coupled pieces on top of that scheduler:
//!
//! - An **answer cache** ([`AnswerCache`], tabling-lite): complete
//!   solution sets are memoized under the query's canonical
//!   (alpha-invariant) text and an epoch-validity window, and
//!   invalidated *per predicate* — a commit only drops entries whose
//!   recorded dependency footprint intersects the transaction's touched
//!   `(pred, arity)` set ([`CacheMode::Precise`];
//!   [`CacheMode::ClearAll`] is the invalidate-everything ablation).
//!   Hits bypass the engines entirely and are tagged
//!   [`ServedFrom::Cache`].
//! - A **streaming front door** ([`QueryServer::serve_open`],
//!   [`Submitter`]): requests are submitted while the pools are already
//!   draining — open-loop arrivals, mid-flight overflow stealing, the
//!   same deadline reaper — instead of the closed-batch
//!   [`serve`](QueryServer::serve) admission (now a wrapper).
//! - A **memory governor** ([`CacheConfig::budget_bytes`]): one
//!   store-wide byte budget covers cache entries and per-request
//!   admission reservations; cache entries are evicted LRU under
//!   pressure, and submissions that cannot fit are refused with
//!   [`Outcome::Overloaded`] rather than queued.
//!
//! **Resilience** hardens the request path against a faulty store. A
//! deterministic [`FaultPlan`] ([`ServeConfig::fault`]) injects
//! transient read errors, permanent track damage, latency spikes and
//! worker panics at the paging layer; per-request retries with
//! exponential backoff ([`RetryPolicy`]) absorb the transient ones, a
//! panic shield turns an unwinding engine into an [`Outcome::Failed`]
//! instead of a stranded pool worker, a per-pool circuit breaker
//! ([`BreakerConfig`]) routes admissions around pools that storage keeps
//! defeating, and while a breaker is open the pool still answers from
//! valid answer-cache entries — degraded cache-only serving. Every
//! failure-ish outcome carries machine-readable [`RetryAdvice`]. The
//! invariant throughout: a response is the pinned epoch's exact
//! sequential solution set, an honest `Cancelled` partial, or a
//! `Failed` — never a silently shortened answer (the T13 chaos
//! experiment enforces this against a per-epoch oracle).
//!
//! [`ServeStats`] reports the serving picture — per-pool throughput and
//! p50/p99 latency, queue depths, admission overflow, answer-cache
//! hits/fills/invalidations, store hit rate split warm-vs-cold by
//! session — so the T9/T12 sweeps can attribute wins to scheduling and
//! caching and losses to store contention (the store's lock meters)
//! rather than guessing.

mod cache;
mod request;
mod server;
mod stats;
pub mod tuning;

pub use blog_obs::{
    to_chrome_trace, to_jsonl, FlightRecorder, TraceConfig, TraceRecord, Tracer,
};
pub use blog_spd::{CommitMode, FaultKind, FaultPlan, FaultScope, FaultSite, IndexPolicy};
pub use cache::{AnswerCache, CacheConfig, CacheKey, CacheMode, CacheStats};
pub use request::{
    Outcome, QueryRequest, QueryResponse, RetryAdvice, ServedFrom, SessionId, UpdateOp,
    UpdateOutcome, UpdateRequest, UpdateResponse,
};
pub use server::{
    Admission, BreakerConfig, ExecMode, QueryServer, RetryPolicy, Routing, ServeConfig, Submitter,
};
pub use stats::{PoolReport, ServeReport, ServeStats, WarmthSplit};
