//! The serving telemetry surface: per-pool throughput and latency,
//! queue behavior, and the store picture split warm-vs-cold.

use blog_spd::{PagedStoreStats, PoolTouchStats};
use serde::Serialize;

use crate::cache::CacheStats;
use crate::request::QueryResponse;

/// One pool's slice of a serve run.
#[derive(Clone, Copy, Default, Debug, Serialize)]
pub struct PoolReport {
    /// Pool index.
    pub pool: usize,
    /// Requests this pool executed.
    pub served: usize,
    /// Deepest its admission queue ever got.
    pub queue_peak: usize,
    /// Nodes expanded across its requests.
    pub nodes_expanded: u64,
    /// Median service latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile service latency, milliseconds.
    pub p99_ms: f64,
    /// This pool's touches of the shared store.
    pub touches: PoolTouchStats,
}

/// Store traffic attributed to one warmth class of requests.
#[derive(Clone, Copy, Default, Debug, Serialize)]
pub struct WarmthSplit {
    /// Requests in the class.
    pub requests: usize,
    /// Their clause touches through the shared store.
    pub accesses: u64,
    /// Touches that hit a resident track.
    pub hits: u64,
}

impl WarmthSplit {
    /// Hit rate in `[0, 1]` (zero when nothing was accessed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.hits as f64 / self.accesses as f64
    }

    fn add(&mut self, r: &QueryResponse) {
        self.requests += 1;
        self.accesses += r.store_accesses;
        self.hits += r.store_hits;
    }
}

/// Aggregate picture of one [`serve`](crate::QueryServer::serve) run.
#[derive(Clone, Debug, Serialize)]
pub struct ServeStats {
    /// Wall-clock of the whole batch, seconds.
    pub wall_s: f64,
    /// Requests admitted.
    pub requests: usize,
    /// Requests that ran to their natural end.
    pub completed: usize,
    /// Requests cancelled by deadline.
    pub cancelled: usize,
    /// Requests rejected at parse.
    pub rejected: usize,
    /// Submissions refused by the memory governor (they never reached a
    /// pool; excluded from the latency percentiles below).
    pub overloaded: usize,
    /// Requests that ran but could not produce a trustworthy answer:
    /// retry budget exhausted on transient storage faults, permanently
    /// damaged storage, an engine panic, or an open circuit breaker with
    /// no cached answer ([`Outcome::Failed`](crate::Outcome::Failed)).
    pub failed: usize,
    /// Engine attempts re-run after a transient storage fault or an
    /// engine panic (each retry is one extra attempt beyond the first).
    pub retries: u64,
    /// Closed→open (and half-open→open) circuit-breaker transitions.
    pub breaker_opens: u64,
    /// Admissions diverted off their routed pool because its breaker was
    /// open and still cooling.
    pub breaker_reroutes: u64,
    /// Requests answered from the answer cache while their pool's
    /// breaker was open — the degraded cache-only serving path.
    pub degraded_cache_hits: u64,
    /// Requests per second of wall-clock.
    pub throughput_rps: f64,
    /// Median service latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile service latency, milliseconds.
    pub p99_ms: f64,
    /// Median admission-queue wait, milliseconds.
    pub wait_p50_ms: f64,
    /// 99th-percentile admission-queue wait, milliseconds.
    pub wait_p99_ms: f64,
    /// Admissions diverted off their routed pool by the overflow
    /// threshold (the work-stealing admission path).
    pub overflow_admissions: u64,
    /// Write transactions committed during the run (the update lane's
    /// epoch bumps; 0 for a read-only batch).
    pub commits: u64,
    /// The store's committed epoch when the batch finished.
    pub final_epoch: u64,
    /// Per-pool slices.
    pub per_pool: Vec<PoolReport>,
    /// The shared store's counters over the run (deltas, lock meters
    /// included).
    pub store: PagedStoreStats,
    /// Candidate resolutions that went through the first-argument bitmap
    /// index (copy of `store.index_hits`, hoisted so report tables can
    /// cite it without digging into the store block).
    pub index_hits: u64,
    /// Candidates the index pruned before any unification attempt
    /// (copy of `store.index_prunes`).
    pub index_prunes: u64,
    /// Candidates handed to engines over the run (copy of
    /// `store.candidates_scanned`).
    pub candidates_scanned: u64,
    /// Answer-cache counters over the run (deltas; byte gauges are the
    /// end-of-run values).
    pub cache: CacheStats,
    /// Store traffic of *warm* requests (session had already completed
    /// a request on the serving pool).
    pub warm: WarmthSplit,
    /// Store traffic of *cold* requests (first contact of this session
    /// with the serving pool).
    pub cold: WarmthSplit,
}

/// Everything a serve run returns.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// One response per request, in batch order.
    pub responses: Vec<QueryResponse>,
    /// One response per update, in batch order (empty for
    /// [`serve`](crate::QueryServer::serve)).
    pub updates: Vec<crate::request::UpdateResponse>,
    /// The aggregate picture.
    pub stats: ServeStats,
}

/// `q`-quantile (0..=1) of an **unsorted** sample, by sorting a copy;
/// 0.0 for an empty sample. Nearest-rank, so p99 of 10 samples is the
/// largest.
pub(crate) fn percentile_ms(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

pub(crate) fn warmth_splits(responses: &[QueryResponse]) -> (WarmthSplit, WarmthSplit) {
    let mut warm = WarmthSplit::default();
    let mut cold = WarmthSplit::default();
    for r in responses {
        if matches!(
            r.outcome,
            crate::Outcome::Rejected { .. }
                | crate::Outcome::Overloaded { .. }
                | crate::Outcome::Failed { .. }
        ) {
            continue;
        }
        if r.warm {
            warm.add(r);
        } else {
            cold.add(r);
        }
    }
    (warm, cold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|n| n as f64).collect();
        assert_eq!(percentile_ms(&v, 0.5), 50.0);
        assert_eq!(percentile_ms(&v, 0.99), 99.0);
        assert_eq!(percentile_ms(&v, 1.0), 100.0);
        assert_eq!(percentile_ms(&[7.0], 0.99), 7.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
        // Unsorted input is handled.
        assert_eq!(percentile_ms(&[3.0, 1.0, 2.0], 0.5), 2.0);
    }

    #[test]
    fn warmth_split_hit_rate() {
        let s = WarmthSplit {
            requests: 2,
            accesses: 10,
            hits: 4,
        };
        assert!((s.hit_rate() - 0.4).abs() < 1e-12);
        assert_eq!(WarmthSplit::default().hit_rate(), 0.0);
    }
}
