//! The serving telemetry surface: per-pool throughput and latency,
//! queue behavior, and the store picture split warm-vs-cold.

use blog_spd::{PagedStoreStats, PoolTouchStats};
use serde::Serialize;

use crate::cache::CacheStats;
use crate::request::QueryResponse;

/// One pool's slice of a serve run.
#[derive(Clone, Copy, Default, Debug, Serialize)]
pub struct PoolReport {
    /// Pool index.
    pub pool: usize,
    /// Requests this pool executed.
    pub served: usize,
    /// Deepest its admission queue ever got.
    pub queue_peak: usize,
    /// Nodes expanded across its requests.
    pub nodes_expanded: u64,
    /// Median service latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile service latency, milliseconds.
    pub p99_ms: f64,
    /// This pool's touches of the shared store.
    pub touches: PoolTouchStats,
}

/// Store traffic attributed to one warmth class of requests.
#[derive(Clone, Copy, Default, Debug, Serialize)]
pub struct WarmthSplit {
    /// Requests in the class.
    pub requests: usize,
    /// Their clause touches through the shared store.
    pub accesses: u64,
    /// Touches that hit a resident track.
    pub hits: u64,
}

impl WarmthSplit {
    /// Hit rate in `[0, 1]` (zero when nothing was accessed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.hits as f64 / self.accesses as f64
    }

    fn add(&mut self, r: &QueryResponse) {
        self.requests += 1;
        self.accesses += r.store_accesses;
        self.hits += r.store_hits;
    }
}

/// Aggregate picture of one [`serve`](crate::QueryServer::serve) run.
#[derive(Clone, Debug, Serialize)]
pub struct ServeStats {
    /// Wall-clock of the whole batch, seconds.
    pub wall_s: f64,
    /// Requests admitted.
    pub requests: usize,
    /// Requests that ran to their natural end.
    pub completed: usize,
    /// Requests cancelled by deadline.
    pub cancelled: usize,
    /// Requests rejected at parse.
    pub rejected: usize,
    /// Submissions refused by the memory governor (they never reached a
    /// pool; excluded from the latency percentiles below).
    pub overloaded: usize,
    /// Requests that ran but could not produce a trustworthy answer:
    /// retry budget exhausted on transient storage faults, permanently
    /// damaged storage, an engine panic, or an open circuit breaker with
    /// no cached answer ([`Outcome::Failed`](crate::Outcome::Failed)).
    pub failed: usize,
    /// Engine attempts re-run after a transient storage fault or an
    /// engine panic (each retry is one extra attempt beyond the first).
    pub retries: u64,
    /// Closed→open (and half-open→open) circuit-breaker transitions.
    pub breaker_opens: u64,
    /// Admissions diverted off their routed pool because its breaker was
    /// open and still cooling.
    pub breaker_reroutes: u64,
    /// Requests answered from the answer cache while their pool's
    /// breaker was open — the degraded cache-only serving path.
    pub degraded_cache_hits: u64,
    /// Requests per second of wall-clock.
    pub throughput_rps: f64,
    /// Median service latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile service latency, milliseconds.
    pub p99_ms: f64,
    /// Median admission-queue wait, milliseconds.
    pub wait_p50_ms: f64,
    /// 99th-percentile admission-queue wait, milliseconds.
    pub wait_p99_ms: f64,
    /// Admissions diverted off their routed pool by the overflow
    /// threshold (the work-stealing admission path).
    pub overflow_admissions: u64,
    /// Write transactions committed during the run (the update lane's
    /// epoch bumps; 0 for a read-only batch).
    pub commits: u64,
    /// The store's committed epoch when the batch finished.
    pub final_epoch: u64,
    /// Per-pool slices.
    pub per_pool: Vec<PoolReport>,
    /// The shared store's counters over the run (deltas, lock meters
    /// included).
    pub store: PagedStoreStats,
    /// Candidate resolutions that went through the first-argument bitmap
    /// index (copy of `store.index_hits`, hoisted so report tables can
    /// cite it without digging into the store block).
    pub index_hits: u64,
    /// Candidates the index pruned before any unification attempt
    /// (copy of `store.index_prunes`).
    pub index_prunes: u64,
    /// Candidates handed to engines over the run (copy of
    /// `store.candidates_scanned`).
    pub candidates_scanned: u64,
    /// Answer-cache counters over the run (deltas; byte gauges are the
    /// end-of-run values).
    pub cache: CacheStats,
    /// Store traffic of *warm* requests (session had already completed
    /// a request on the serving pool).
    pub warm: WarmthSplit,
    /// Store traffic of *cold* requests (first contact of this session
    /// with the serving pool).
    pub cold: WarmthSplit,
}

impl ServeStats {
    /// The whole aggregate picture as one JSON object (store and cache
    /// blocks nested; per-pool slices as an array).
    pub fn to_json(&self) -> blog_obs::Json {
        use blog_obs::Json;
        let split = |s: &WarmthSplit| {
            Json::Obj(vec![
                ("requests".into(), Json::int(s.requests as u64)),
                ("accesses".into(), Json::int(s.accesses)),
                ("hits".into(), Json::int(s.hits)),
                ("hit_rate".into(), Json::Num(s.hit_rate())),
            ])
        };
        Json::Obj(vec![
            ("wall_s".into(), Json::Num(self.wall_s)),
            ("requests".into(), Json::int(self.requests as u64)),
            ("completed".into(), Json::int(self.completed as u64)),
            ("cancelled".into(), Json::int(self.cancelled as u64)),
            ("rejected".into(), Json::int(self.rejected as u64)),
            ("overloaded".into(), Json::int(self.overloaded as u64)),
            ("failed".into(), Json::int(self.failed as u64)),
            ("retries".into(), Json::int(self.retries)),
            ("breaker_opens".into(), Json::int(self.breaker_opens)),
            ("breaker_reroutes".into(), Json::int(self.breaker_reroutes)),
            (
                "degraded_cache_hits".into(),
                Json::int(self.degraded_cache_hits),
            ),
            ("throughput_rps".into(), Json::Num(self.throughput_rps)),
            ("p50_ms".into(), Json::Num(self.p50_ms)),
            ("p99_ms".into(), Json::Num(self.p99_ms)),
            ("wait_p50_ms".into(), Json::Num(self.wait_p50_ms)),
            ("wait_p99_ms".into(), Json::Num(self.wait_p99_ms)),
            (
                "overflow_admissions".into(),
                Json::int(self.overflow_admissions),
            ),
            ("commits".into(), Json::int(self.commits)),
            ("final_epoch".into(), Json::int(self.final_epoch)),
            (
                "per_pool".into(),
                Json::Arr(
                    self.per_pool
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("pool".into(), Json::int(p.pool as u64)),
                                ("served".into(), Json::int(p.served as u64)),
                                ("queue_peak".into(), Json::int(p.queue_peak as u64)),
                                ("nodes_expanded".into(), Json::int(p.nodes_expanded)),
                                ("p50_ms".into(), Json::Num(p.p50_ms)),
                                ("p99_ms".into(), Json::Num(p.p99_ms)),
                                ("accesses".into(), Json::int(p.touches.accesses)),
                                ("hits".into(), Json::int(p.touches.hits)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("store".into(), self.store.to_json()),
            ("cache".into(), self.cache.to_json()),
            ("warm".into(), split(&self.warm)),
            ("cold".into(), split(&self.cold)),
        ])
    }
}

impl blog_obs::RecordInto for ServeStats {
    fn record_into(&self, registry: &blog_obs::Registry) {
        registry.counter("serve.requests").add(self.requests as u64);
        registry.counter("serve.completed").add(self.completed as u64);
        registry.counter("serve.cancelled").add(self.cancelled as u64);
        registry.counter("serve.rejected").add(self.rejected as u64);
        registry.counter("serve.overloaded").add(self.overloaded as u64);
        registry.counter("serve.failed").add(self.failed as u64);
        registry.counter("serve.retries").add(self.retries);
        registry.counter("serve.breaker_opens").add(self.breaker_opens);
        registry
            .counter("serve.breaker_reroutes")
            .add(self.breaker_reroutes);
        registry
            .counter("serve.degraded_cache_hits")
            .add(self.degraded_cache_hits);
        registry.counter("serve.commits").add(self.commits);
        registry
            .counter("serve.overflow_admissions")
            .add(self.overflow_admissions);
        registry.gauge("serve.throughput_rps").set(self.throughput_rps);
        registry.histogram("serve.p50_ms").record_ms(self.p50_ms);
        registry.histogram("serve.p99_ms").record_ms(self.p99_ms);
        self.store.record_into(registry);
        self.cache.record_into(registry);
    }
}

/// Everything a serve run returns.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// One response per request, in batch order.
    pub responses: Vec<QueryResponse>,
    /// One response per update, in batch order (empty for
    /// [`serve`](crate::QueryServer::serve)).
    pub updates: Vec<crate::request::UpdateResponse>,
    /// The aggregate picture.
    pub stats: ServeStats,
}

/// Fold an unsorted millisecond sample into one log-linear
/// [`blog_obs::Histogram`] — the shared percentile path of every serve
/// report (pool latency, batch service, queue wait). Quantiles read
/// back within one bucket width (≤ 1/32 relative) of the exact
/// nearest-rank answer; see `histogram_agrees_with_sorted_percentiles`.
pub(crate) fn hist_ms(samples: &[f64]) -> blog_obs::Histogram {
    let h = blog_obs::Histogram::new();
    for &ms in samples {
        h.record_ms(ms);
    }
    h
}

/// `q`-quantile (0..=1) of an **unsorted** sample, by sorting a copy;
/// 0.0 for an empty sample. Nearest-rank, so p99 of 10 samples is the
/// largest. Retained as the exact reference the histogram path is
/// tested against (reports themselves go through [`hist_ms`]).
#[cfg(test)]
pub(crate) fn percentile_ms(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

pub(crate) fn warmth_splits(responses: &[QueryResponse]) -> (WarmthSplit, WarmthSplit) {
    let mut warm = WarmthSplit::default();
    let mut cold = WarmthSplit::default();
    for r in responses {
        if matches!(
            r.outcome,
            crate::Outcome::Rejected { .. }
                | crate::Outcome::Overloaded { .. }
                | crate::Outcome::Failed { .. }
        ) {
            continue;
        }
        if r.warm {
            warm.add(r);
        } else {
            cold.add(r);
        }
    }
    (warm, cold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|n| n as f64).collect();
        assert_eq!(percentile_ms(&v, 0.5), 50.0);
        assert_eq!(percentile_ms(&v, 0.99), 99.0);
        assert_eq!(percentile_ms(&v, 1.0), 100.0);
        assert_eq!(percentile_ms(&[7.0], 0.99), 7.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
        // Unsorted input is handled.
        assert_eq!(percentile_ms(&[3.0, 1.0, 2.0], 0.5), 2.0);
    }

    #[test]
    fn histogram_agrees_with_sorted_percentiles() {
        // Latencies spanning several decades (0.01 ms .. ~10 s), in
        // scrambled order — the shape a serve run actually produces.
        let samples: Vec<f64> = (1..=500u64)
            .map(|n| (blog_obs::splitmix64(n) % 1_000_000_000) as f64 / 1e5)
            .collect();
        let h = hist_ms(&samples);
        for q in [0.5, 0.9, 0.99, 1.0] {
            let exact = percentile_ms(&samples, q);
            let approx = h.quantile_ms(q);
            let exact_ns = (exact * 1e6).round() as u64;
            let width_ns = blog_obs::registry::bucket_width(exact_ns);
            let diff_ns = ((approx - exact) * 1e6).abs().round() as u64;
            assert!(
                diff_ns <= width_ns,
                "q={q}: exact {exact} ms vs histogram {approx} ms \
                 (diff {diff_ns} ns > bucket width {width_ns} ns)"
            );
        }
        // Empty sample behaves like the sorted path.
        assert_eq!(hist_ms(&[]).quantile_ms(0.5), 0.0);
    }

    #[test]
    fn warmth_split_hit_rate() {
        let s = WarmthSplit {
            requests: 2,
            accesses: 10,
            hits: 4,
        };
        assert!((s.hit_rate() - 0.4).abs() < 1e-12);
        assert_eq!(WarmthSplit::default().hit_rate(), 0.0);
    }
}
