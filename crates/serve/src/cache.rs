//! The answer cache (tabling-lite) and the store-wide memory governor.
//!
//! **Cache.** An [`AnswerCache`] memoizes whole solution sets: the key is
//! the query's canonical text (see [`blog_logic::canonical_query`]) plus
//! the effective engine limits, the value a sorted `Vec<String>` of
//! rendered solutions tagged with an **epoch-validity window**
//! `[valid_from, valid_to]` and the query's **dependency footprint** —
//! every `(functor, arity)` the engine resolved candidates for (see
//! [`blog_spd::Snapshot::recording_deps`]). A lookup hits only when the
//! request's pinned epoch falls inside the window, so a hit is provably
//! the sequential solution set of that epoch.
//!
//! **Invalidation.** On every commit the server calls
//! [`on_commit`](AnswerCache::on_commit) with the transaction's base
//! epoch, new epoch, and touched predicates (see
//! [`blog_spd::WriteTxn::touched_preds`]). An entry whose window ends at
//! the base epoch is *extended* to the new epoch when its footprint is
//! disjoint from the touched set (the commit cannot have changed any
//! candidate set the query looked at), and dropped otherwise. Entries
//! whose window ends before the base epoch witnessed a commit the cache
//! was not told about (a direct [`blog_spd::MvccClauseStore::begin_write`]
//! bypassing the server) and are dropped conservatively.
//!
//! **Governor.** One byte budget covers cached answers *and* per-request
//! admission reservations: [`try_admit`](AnswerCache::try_admit) evicts
//! least-recently-used entries to make room for incoming work and refuses
//! admission ([`Outcome::Overloaded`](crate::Outcome::Overloaded)) when
//! even an empty cache cannot fit another reservation — the reservation /
//! spill discipline, applied to serving: shed load instead of thrashing
//! the cache.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::server::lock_unpoisoned;

use blog_logic::Sym;
use serde::Serialize;

/// What the answer cache does with fills and commits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheMode {
    /// No caching: every query runs an engine. The default, and the
    /// baseline the T12 sweep measures against.
    Off,
    /// Cache complete solution sets; each commit invalidates only the
    /// entries whose dependency footprint intersects the transaction's
    /// touched predicates.
    Precise,
    /// Cache, but every commit clears the whole cache — the
    /// invalidate-everything ablation T12 compares precision against.
    ClearAll,
}

impl CacheMode {
    /// Machine-readable label for sweep tables.
    pub fn label(&self) -> &'static str {
        match self {
            CacheMode::Off => "off",
            CacheMode::Precise => "precise",
            CacheMode::ClearAll => "clear-all",
        }
    }
}

/// Answer-cache and memory-governor configuration.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Caching / invalidation behavior.
    pub mode: CacheMode,
    /// Store-wide byte budget shared by cached answers and per-request
    /// admission reservations; `None` = ungoverned (never overloads,
    /// never evicts).
    pub budget_bytes: Option<usize>,
    /// Bytes one admitted request reserves until its response is
    /// produced (its queue slot, parse buffers, and search-state
    /// headroom under the same budget as the cache).
    pub request_reserve_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            mode: CacheMode::Off,
            budget_bytes: None,
            request_reserve_bytes: 16 * 1024,
        }
    }
}

/// The cache key: canonical query text plus every engine limit that
/// shapes the solution set. Alpha-equivalent query texts collapse to one
/// key; the same text under different limits does not.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Canonical query text (see [`blog_logic::canonical_query`]).
    pub canon: String,
    /// Effective node budget of the run.
    pub max_nodes: Option<u64>,
    /// Effective solutions cap of the run.
    pub max_solutions: Option<usize>,
    /// Effective depth limit of the run.
    pub max_depth: Option<u32>,
}

/// Cumulative cache and governor counters (monotone; report deltas with
/// [`CacheStats::delta`]). `entries`, `bytes`, and `reserved_bytes` are
/// point-in-time gauges.
#[derive(Clone, Copy, Default, Debug, Serialize)]
pub struct CacheStats {
    /// Lookups attempted (cache enabled, query parsed).
    pub lookups: u64,
    /// Lookups answered from the cache (engine bypassed).
    pub hits: u64,
    /// Complete results inserted.
    pub fills: u64,
    /// Entries dropped because a commit touched a footprint predicate
    /// (under [`CacheMode::ClearAll`], every entry a commit cleared).
    pub invalidations: u64,
    /// Entries dropped because their window ended before a commit's base
    /// epoch (a commit bypassed the server's notification path).
    pub expired: u64,
    /// Entries evicted least-recently-used to fit the byte budget.
    pub evictions: u64,
    /// Fills skipped because the result could not fit the budget.
    pub skipped_fills: u64,
    /// Admissions refused because even eviction could not free a
    /// reservation ([`Outcome::Overloaded`](crate::Outcome::Overloaded)).
    pub overloaded: u64,
    /// Entries resident now.
    pub entries: usize,
    /// Bytes of cached answers resident now.
    pub bytes: usize,
    /// Bytes reserved by in-flight requests now.
    pub reserved_bytes: usize,
}

impl blog_obs::RecordInto for CacheStats {
    fn record_into(&self, registry: &blog_obs::Registry) {
        registry.counter("cache.lookups").add(self.lookups);
        registry.counter("cache.hits").add(self.hits);
        registry.counter("cache.fills").add(self.fills);
        registry.counter("cache.invalidations").add(self.invalidations);
        registry.counter("cache.expired").add(self.expired);
        registry.counter("cache.evictions").add(self.evictions);
        registry.counter("cache.skipped_fills").add(self.skipped_fills);
        registry.counter("cache.overloaded").add(self.overloaded);
        registry.gauge("cache.entries").set(self.entries as f64);
        registry.gauge("cache.bytes").set(self.bytes as f64);
        registry
            .gauge("cache.reserved_bytes")
            .set(self.reserved_bytes as f64);
        registry.gauge("cache.hit_rate").set(self.hit_rate());
    }
}

impl CacheStats {
    /// Hit rate over attempted lookups, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / self.lookups as f64
    }

    /// Every counter and gauge (plus the derived hit rate) as one JSON
    /// object.
    pub fn to_json(&self) -> blog_obs::Json {
        use blog_obs::Json;
        Json::Obj(vec![
            ("lookups".into(), Json::int(self.lookups)),
            ("hits".into(), Json::int(self.hits)),
            ("fills".into(), Json::int(self.fills)),
            ("invalidations".into(), Json::int(self.invalidations)),
            ("expired".into(), Json::int(self.expired)),
            ("evictions".into(), Json::int(self.evictions)),
            ("skipped_fills".into(), Json::int(self.skipped_fills)),
            ("overloaded".into(), Json::int(self.overloaded)),
            ("entries".into(), Json::int(self.entries as u64)),
            ("bytes".into(), Json::int(self.bytes as u64)),
            ("reserved_bytes".into(), Json::int(self.reserved_bytes as u64)),
            ("hit_rate".into(), Json::Num(self.hit_rate())),
        ])
    }

    /// Counter-wise `after - before` (gauges keep their `after` value).
    pub fn delta(before: CacheStats, after: CacheStats) -> CacheStats {
        CacheStats {
            lookups: after.lookups - before.lookups,
            hits: after.hits - before.hits,
            fills: after.fills - before.fills,
            invalidations: after.invalidations - before.invalidations,
            expired: after.expired - before.expired,
            evictions: after.evictions - before.evictions,
            skipped_fills: after.skipped_fills - before.skipped_fills,
            overloaded: after.overloaded - before.overloaded,
            entries: after.entries,
            bytes: after.bytes,
            reserved_bytes: after.reserved_bytes,
        }
    }
}

/// One cached solution set.
struct Entry {
    /// Sorted rendered solutions, shared with hit responses.
    solutions: Arc<Vec<String>>,
    /// Sorted dependency footprint recorded at fill time.
    deps: Vec<(Sym, u32)>,
    /// Epoch the filling query pinned.
    valid_from: u64,
    /// Last epoch the entry is known valid at (extended by disjoint
    /// commits).
    valid_to: u64,
    /// Budget charge for this entry.
    bytes: usize,
    /// LRU clock value of the last hit or fill.
    last_used: u64,
}

#[derive(Default)]
struct Counters {
    lookups: u64,
    hits: u64,
    fills: u64,
    invalidations: u64,
    expired: u64,
    evictions: u64,
    skipped_fills: u64,
    overloaded: u64,
}

struct Inner {
    entries: HashMap<CacheKey, Entry>,
    /// Bytes charged by resident entries.
    cache_bytes: usize,
    /// Bytes reserved by admitted, unfinished requests.
    reserved_bytes: usize,
    /// LRU clock.
    tick: u64,
    counters: Counters,
}

impl Inner {
    fn remove_entry_bytes(&mut self, bytes: usize) {
        self.cache_bytes -= bytes;
    }

    /// Evict least-recently-used entries until `need` more bytes fit
    /// under `budget` (alongside reservations), or the cache is empty.
    /// Returns whether the headroom was produced.
    fn make_room(&mut self, budget: usize, need: usize) -> bool {
        while self.cache_bytes + self.reserved_bytes + need > budget {
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                return false;
            };
            let e = self.entries.remove(&victim).expect("victim is resident");
            self.remove_entry_bytes(e.bytes);
            self.counters.evictions += 1;
        }
        true
    }
}

/// The answer cache + memory governor. See the module docs for the
/// protocol; [`QueryServer`](crate::QueryServer) owns exactly one.
pub struct AnswerCache {
    config: CacheConfig,
    inner: Mutex<Inner>,
}

impl AnswerCache {
    /// An empty cache under `config`.
    pub fn new(config: CacheConfig) -> AnswerCache {
        AnswerCache {
            config,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                cache_bytes: 0,
                reserved_bytes: 0,
                tick: 0,
                counters: Counters::default(),
            }),
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Whether lookups and fills do anything at all.
    pub fn enabled(&self) -> bool {
        self.config.mode != CacheMode::Off
    }

    /// The solutions for `key` if a cached window covers `epoch`.
    pub fn lookup(&self, key: &CacheKey, epoch: u64) -> Option<Arc<Vec<String>>> {
        if !self.enabled() {
            return None;
        }
        let mut inner = lock_unpoisoned(&self.inner);
        inner.counters.lookups += 1;
        inner.tick += 1;
        let tick = inner.tick;
        let hit = match inner.entries.get_mut(key) {
            Some(e) if e.valid_from <= epoch && epoch <= e.valid_to => {
                e.last_used = tick;
                Some(Arc::clone(&e.solutions))
            }
            _ => None,
        };
        if hit.is_some() {
            inner.counters.hits += 1;
        }
        hit
    }

    /// Insert a **complete** result executed at `epoch` with dependency
    /// footprint `deps`. The caller asserts completeness (not truncated,
    /// not cancelled, not capped): partial results are order-dependent
    /// and must never be memoized. Under a budget, LRU entries are
    /// evicted to fit; a result that cannot fit is skipped (counted, not
    /// an error).
    pub fn fill(&self, key: CacheKey, epoch: u64, deps: Vec<(Sym, u32)>, solutions: Arc<Vec<String>>) {
        if !self.enabled() {
            return;
        }
        let bytes = entry_bytes(&key, &deps, &solutions);
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(old) = inner.entries.get(&key) {
            if old.valid_to >= epoch {
                // A fresher result for this key is already resident; a
                // slow query that pinned an older epoch must not clobber
                // it.
                return;
            }
            // Replacing a staler entry frees its charge first.
            let freed = old.bytes;
            inner.entries.remove(&key);
            inner.remove_entry_bytes(freed);
        }
        if let Some(budget) = self.config.budget_bytes {
            if !inner.make_room(budget, bytes) {
                inner.counters.skipped_fills += 1;
                return;
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            key,
            Entry {
                solutions,
                deps,
                valid_from: epoch,
                valid_to: epoch,
                bytes,
                last_used: tick,
            },
        );
        inner.cache_bytes += bytes;
        inner.counters.fills += 1;
    }

    /// Tell the cache a transaction with `touched` head predicates
    /// committed, moving the store from `base` to `new_epoch`. Must be
    /// called in commit order (the server serializes commits through one
    /// mutex). Entries valid through `base` either extend to `new_epoch`
    /// (footprint disjoint from `touched`) or drop; entries that already
    /// lag behind `base` drop as expired.
    pub fn on_commit(&self, base: u64, new_epoch: u64, touched: &[(Sym, u32)]) {
        if !self.enabled() || new_epoch == base {
            return;
        }
        let mut inner = lock_unpoisoned(&self.inner);
        let clear_all = self.config.mode == CacheMode::ClearAll;
        let mut freed = 0usize;
        let mut invalidations = 0u64;
        let mut expired = 0u64;
        inner.entries.retain(|_, e| {
            if clear_all {
                invalidations += 1;
                freed += e.bytes;
                return false;
            }
            if e.valid_to >= new_epoch {
                return true;
            }
            if e.valid_to == base {
                if touched.iter().any(|t| e.deps.binary_search(t).is_ok()) {
                    invalidations += 1;
                    freed += e.bytes;
                    false
                } else {
                    e.valid_to = new_epoch;
                    true
                }
            } else {
                expired += 1;
                freed += e.bytes;
                false
            }
        });
        inner.counters.invalidations += invalidations;
        inner.counters.expired += expired;
        inner.cache_bytes -= freed;
    }

    /// Reserve one request's bytes under the budget, evicting LRU cache
    /// entries to make room. Returns `false` — refuse admission — when
    /// even an empty cache cannot fit the reservation. Ungoverned caches
    /// always admit. Pair every `true` with one [`release`](Self::release).
    pub fn try_admit(&self) -> bool {
        let Some(budget) = self.config.budget_bytes else {
            return true;
        };
        let need = self.config.request_reserve_bytes;
        let mut inner = lock_unpoisoned(&self.inner);
        if inner.make_room(budget, need) {
            inner.reserved_bytes += need;
            true
        } else {
            inner.counters.overloaded += 1;
            false
        }
    }

    /// Release one admitted request's reservation.
    pub fn release(&self) {
        if self.config.budget_bytes.is_none() {
            return;
        }
        let mut inner = lock_unpoisoned(&self.inner);
        inner.reserved_bytes -= self.config.request_reserve_bytes;
    }

    /// Snapshot of the counters and gauges.
    pub fn stats(&self) -> CacheStats {
        let inner = lock_unpoisoned(&self.inner);
        CacheStats {
            lookups: inner.counters.lookups,
            hits: inner.counters.hits,
            fills: inner.counters.fills,
            invalidations: inner.counters.invalidations,
            expired: inner.counters.expired,
            evictions: inner.counters.evictions,
            skipped_fills: inner.counters.skipped_fills,
            overloaded: inner.counters.overloaded,
            entries: inner.entries.len(),
            bytes: inner.cache_bytes,
            reserved_bytes: inner.reserved_bytes,
        }
    }
}

/// Budget charge of one entry: solution text, key text, footprint, and a
/// fixed struct overhead — an estimate, applied consistently so the
/// budget is a real ceiling on what the cache holds.
fn entry_bytes(key: &CacheKey, deps: &[(Sym, u32)], solutions: &[String]) -> usize {
    const ENTRY_OVERHEAD: usize = 128;
    const STRING_OVERHEAD: usize = std::mem::size_of::<String>();
    ENTRY_OVERHEAD
        + key.canon.len()
        + std::mem::size_of_val(deps)
        + solutions
            .iter()
            .map(|s| s.len() + STRING_OVERHEAD)
            .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(canon: &str) -> CacheKey {
        CacheKey {
            canon: canon.to_string(),
            max_nodes: None,
            max_solutions: None,
            max_depth: None,
        }
    }

    fn sols(texts: &[&str]) -> Arc<Vec<String>> {
        Arc::new(texts.iter().map(|s| s.to_string()).collect())
    }

    fn precise(budget: Option<usize>) -> AnswerCache {
        AnswerCache::new(CacheConfig {
            mode: CacheMode::Precise,
            budget_bytes: budget,
            request_reserve_bytes: 256,
        })
    }

    const P: (Sym, u32) = (Sym(1), 2);
    const Q: (Sym, u32) = (Sym(2), 2);

    #[test]
    fn off_mode_never_caches() {
        let cache = AnswerCache::new(CacheConfig::default());
        assert!(!cache.enabled());
        cache.fill(key("p(_0)"), 0, vec![P], sols(&["_0 = a"]));
        assert!(cache.lookup(&key("p(_0)"), 0).is_none());
        assert_eq!(cache.stats().fills, 0);
        assert!(cache.try_admit(), "ungoverned: always admits");
    }

    #[test]
    fn hit_only_inside_the_validity_window() {
        let cache = precise(None);
        cache.fill(key("p(_0)"), 3, vec![P], sols(&["_0 = a"]));
        assert!(cache.lookup(&key("p(_0)"), 2).is_none(), "before window");
        assert_eq!(*cache.lookup(&key("p(_0)"), 3).unwrap(), *sols(&["_0 = a"]));
        assert!(cache.lookup(&key("p(_0)"), 4).is_none(), "after window");
        assert!(cache.lookup(&key("q(_0)"), 3).is_none(), "other key");
        let s = cache.stats();
        assert_eq!((s.lookups, s.hits, s.fills), (4, 1, 1));
    }

    #[test]
    fn disjoint_commit_extends_touched_commit_invalidates() {
        let cache = precise(None);
        cache.fill(key("p(_0)"), 0, vec![P], sols(&["_0 = a"]));
        cache.fill(key("q(_0)"), 0, vec![Q], sols(&["_0 = b"]));
        // Commit touching only q/2: p survives and extends, q drops.
        cache.on_commit(0, 1, &[Q]);
        assert!(cache.lookup(&key("p(_0)"), 1).is_some(), "extended to 1");
        assert!(cache.lookup(&key("q(_0)"), 1).is_none());
        assert!(cache.lookup(&key("q(_0)"), 0).is_none(), "dropped entirely");
        let s = cache.stats();
        assert_eq!((s.invalidations, s.entries), (1, 1));
    }

    #[test]
    fn lagging_entries_expire_on_the_next_notified_commit() {
        let cache = precise(None);
        cache.fill(key("p(_0)"), 0, vec![P], sols(&["_0 = a"]));
        // A commit the cache never heard about moved the store 0 -> 1;
        // the next notified commit has base 1: the [0,0] entry lags.
        cache.on_commit(1, 2, &[Q]);
        assert!(cache.lookup(&key("p(_0)"), 2).is_none());
        let s = cache.stats();
        assert_eq!((s.expired, s.invalidations, s.entries), (1, 0, 0));
    }

    #[test]
    fn clear_all_mode_drops_everything_per_commit() {
        let cache = AnswerCache::new(CacheConfig {
            mode: CacheMode::ClearAll,
            ..CacheConfig::default()
        });
        cache.fill(key("p(_0)"), 0, vec![P], sols(&["_0 = a"]));
        cache.fill(key("q(_0)"), 0, vec![Q], sols(&["_0 = b"]));
        cache.on_commit(0, 1, &[Q]);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn refill_after_invalidation_reopens_the_window() {
        let cache = precise(None);
        cache.fill(key("p(_0)"), 0, vec![P], sols(&["_0 = a"]));
        cache.on_commit(0, 1, &[P]);
        assert!(cache.lookup(&key("p(_0)"), 1).is_none());
        cache.fill(key("p(_0)"), 1, vec![P], sols(&["_0 = a", "_0 = z"]));
        assert_eq!(cache.lookup(&key("p(_0)"), 1).unwrap().len(), 2);
    }

    #[test]
    fn budget_evicts_lru_and_bounds_bytes() {
        let budget = 2048;
        let cache = precise(Some(budget));
        for i in 0..64 {
            cache.fill(
                key(&format!("p{i}(_0)")),
                0,
                vec![P],
                sols(&["_0 = some_solution_text"]),
            );
            assert!(cache.stats().bytes <= budget, "budget is a ceiling");
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "64 entries cannot fit 2 KiB");
        assert!(s.entries < 64);
        // The most recent fill is resident; the oldest is not.
        assert!(cache.lookup(&key("p63(_0)"), 0).is_some());
        assert!(cache.lookup(&key("p0(_0)"), 0).is_none());
    }

    #[test]
    fn admission_reserves_evicts_and_overloads() {
        let cache = AnswerCache::new(CacheConfig {
            mode: CacheMode::Precise,
            budget_bytes: Some(1024),
            request_reserve_bytes: 400,
        });
        cache.fill(key("p(_0)"), 0, vec![P], sols(&["_0 = a"]));
        assert!(cache.stats().bytes > 0);
        // Two reservations fit (evicting the entry if needed), a third
        // cannot: 3 * 400 > 1024 even with the cache empty.
        assert!(cache.try_admit());
        assert!(cache.try_admit());
        assert!(!cache.try_admit(), "overloaded");
        let s = cache.stats();
        assert_eq!(s.reserved_bytes, 800);
        assert_eq!(s.overloaded, 1);
        assert_eq!(s.entries, 0, "the reservation evicted the entry");
        cache.release();
        cache.release();
        assert_eq!(cache.stats().reserved_bytes, 0);
        assert!(cache.try_admit(), "admits again after release");
        cache.release();
    }

    #[test]
    fn oversized_results_are_skipped_not_inserted() {
        let cache = precise(Some(256));
        let big: Vec<String> = (0..64).map(|i| format!("_0 = solution_{i}")).collect();
        cache.fill(key("p(_0)"), 0, vec![P], Arc::new(big));
        let s = cache.stats();
        assert_eq!((s.entries, s.skipped_fills), (0, 1));
        assert_eq!(s.bytes, 0);
    }

    #[test]
    fn stats_delta_subtracts_counters_keeps_gauges() {
        let before = CacheStats {
            lookups: 10,
            hits: 4,
            entries: 7,
            bytes: 100,
            ..CacheStats::default()
        };
        let after = CacheStats {
            lookups: 25,
            hits: 9,
            entries: 3,
            bytes: 40,
            ..CacheStats::default()
        };
        let d = CacheStats::delta(before, after);
        assert_eq!((d.lookups, d.hits), (15, 5));
        assert_eq!((d.entries, d.bytes), (3, 40));
        assert!((CacheStats::default().hit_rate() - 0.0).abs() < 1e-12);
        assert!((d.hit_rate() - 5.0 / 15.0).abs() < 1e-12);
    }
}
