//! Calibrated store sizing for multi-tenant serving.
//!
//! The T9 experiments, the `serve` criterion bench, and the
//! `serve_demo` example all measure the same regime; keeping the recipe
//! in one place keeps them measuring the same thing.

use blog_spd::{Geometry, PagedStoreConfig, PolicyKind};

/// The store configuration of the T9 serving regime for a database of
/// `db_len` clauses: 4-block tracks over 4 SPs, scan-resistant 2Q, and
/// a cache sized at 3/5 of the database's tracks — enough for every
/// pool's *current* tenant working set to stay resident at once, but
/// not for the whole tenant population. That gap is the point: in this
/// regime the scheduler's routing (session affinity vs round-robin),
/// not the replacement policy, decides which sessions run warm.
pub fn working_set_store_config(db_len: usize) -> PagedStoreConfig {
    let blocks_per_track = 4usize;
    let tracks_total = db_len.div_ceil(blocks_per_track);
    PagedStoreConfig {
        geometry: Geometry {
            n_sps: 4,
            n_cylinders: (tracks_total / 4 + 1) as u32,
            blocks_per_track: blocks_per_track as u32,
        },
        capacity_tracks: (tracks_total * 3 / 5).max(2),
        policy: PolicyKind::TwoQ,
        ..PagedStoreConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_always_holds_the_database() {
        for db_len in [1usize, 7, 16, 100, 513, 4097] {
            let cfg = working_set_store_config(db_len);
            assert!(
                cfg.geometry.capacity() as usize >= db_len,
                "db_len {db_len}: capacity {}",
                cfg.geometry.capacity()
            );
            assert!(cfg.capacity_tracks >= 2);
            // The cache never holds the whole database once it spans
            // enough tracks to matter.
            let tracks_total = db_len.div_ceil(4);
            if tracks_total >= 5 {
                assert!(cfg.capacity_tracks < tracks_total, "db_len {db_len}");
            }
        }
    }
}
