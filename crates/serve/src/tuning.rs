//! Calibrated store sizing for multi-tenant serving.
//!
//! The T9 experiments, the `serve` criterion bench, and the
//! `serve_demo` example all measure the same regime; keeping the recipe
//! in one place keeps them measuring the same thing.

use blog_spd::{Geometry, PagedStoreConfig, PolicyKind};

/// The store configuration of the T9 serving regime for a database of
/// `db_len` clauses: 4-block tracks over 4 SPs, scan-resistant 2Q, and
/// a cache sized at 3/5 of the database's tracks — enough for every
/// pool's *current* tenant working set to stay resident at once, but
/// not for the whole tenant population. That gap is the point: in this
/// regime the scheduler's routing (session affinity vs round-robin),
/// not the replacement policy, decides which sessions run warm.
pub fn working_set_store_config(db_len: usize) -> PagedStoreConfig {
    let blocks_per_track = 4usize;
    let tracks_total = db_len.div_ceil(blocks_per_track);
    PagedStoreConfig {
        geometry: Geometry {
            n_sps: 4,
            n_cylinders: (tracks_total / 4 + 1) as u32,
            blocks_per_track: blocks_per_track as u32,
        },
        capacity_tracks: (tracks_total * 3 / 5).max(2),
        policy: PolicyKind::TwoQ,
        ..PagedStoreConfig::default()
    }
}

/// The T9 store sized for *churn*: geometry headroom for `headroom`
/// clauses asserted beyond the seed database (asserts allocate fresh
/// blocks; a store sized exactly to the seed rejects the first assert
/// with `CapacityExhausted`), while the cache stays sized to the **seed**
/// working set — churn should contend for the same cache the read-only
/// regime was tuned for, not get a bigger one for free.
pub fn churn_store_config(db_len: usize, headroom: usize) -> PagedStoreConfig {
    let mut cfg = working_set_store_config(db_len + headroom);
    let seed_tracks = db_len.div_ceil(cfg.geometry.blocks_per_track as usize);
    cfg.capacity_tracks = (seed_tracks * 3 / 5).max(2);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_always_holds_the_database() {
        for db_len in [1usize, 7, 16, 100, 513, 4097] {
            let cfg = working_set_store_config(db_len);
            assert!(
                cfg.geometry.capacity() as usize >= db_len,
                "db_len {db_len}: capacity {}",
                cfg.geometry.capacity()
            );
            assert!(cfg.capacity_tracks >= 2);
            // The cache never holds the whole database once it spans
            // enough tracks to matter.
            let tracks_total = db_len.div_ceil(4);
            if tracks_total >= 5 {
                assert!(cfg.capacity_tracks < tracks_total, "db_len {db_len}");
            }
        }
    }

    #[test]
    fn churn_geometry_holds_seed_plus_headroom() {
        for (db_len, headroom) in [(16usize, 8usize), (100, 40), (513, 0), (7, 100)] {
            let cfg = churn_store_config(db_len, headroom);
            assert!(
                cfg.geometry.capacity() as usize >= db_len + headroom,
                "db_len {db_len} + headroom {headroom}: capacity {}",
                cfg.geometry.capacity()
            );
            // The cache is sized to the seed, matching the read-only
            // regime for the same database.
            assert_eq!(
                cfg.capacity_tracks,
                working_set_store_config(db_len).capacity_tracks,
                "db_len {db_len}"
            );
        }
    }
}
