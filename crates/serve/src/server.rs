//! The scheduler: the open submit/drain loop, pool queues, affinity
//! routing, overflow admission, the deadline reaper, the update lane,
//! the answer cache, and the memory governor.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use blog_core::engine::{best_first_with, BestFirstConfig};
use blog_core::weight::{WeightParams, WeightStore, WeightView};
use blog_logic::{
    canonical_query, parse_query_symbols, CancelToken, ClauseDb, ClauseId, SearchStats,
    SolveConfig,
};
use blog_parallel::{par_best_first_with, FrontierPolicy, ParallelConfig};
use blog_spd::{
    CommitMode, FaultPlan, IndexPolicy, MvccClauseStore, MvccError, PagedStoreConfig,
    PagedStoreStats,
};

use crate::cache::{AnswerCache, CacheConfig, CacheKey, CacheStats};
use crate::request::{
    Outcome, QueryRequest, QueryResponse, RetryAdvice, ServedFrom, UpdateOp, UpdateOutcome,
    UpdateRequest, UpdateResponse,
};
use crate::stats::{hist_ms, warmth_splits, PoolReport, ServeReport, ServeStats};

use blog_obs::{SpanCtx, SpanId, TraceHandle, Tracer};

/// Seed of the server's deterministic trace sampler: the same config
/// and request sequence always sample the same requests with the same
/// trace ids, so flight-recorder contents are reproducible.
const TRACE_SEED: u64 = 0xB10C_0B5E_7E1E_A55E;

/// Lock a mutex, recovering from poisoning.
///
/// Invariant that makes the recovery sound: every critical section in
/// this crate leaves its protected data consistent at each statement
/// boundary (counters bump atomically, collections push whole elements),
/// so a thread that panicked while holding a lock — an injected engine
/// panic, an assert in a driver callback — cannot have left torn state
/// behind. Propagating the poison instead would let one isolated request
/// failure strand every worker sharing the lock, which is exactly what
/// the panic-isolation path exists to prevent.
pub(crate) fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// How requests map to pools.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Routing {
    /// Hash the session id onto a pool: one session's stream of similar
    /// queries is serviced consecutively by one pool, so its clause
    /// tracks are still resident when the "second and third query"
    /// arrive — §5's warmth produced by scheduling.
    SessionAffinity,
    /// Ignore sessions; deal requests round-robin (the ablation: same
    /// offered load, no deliberate warmth).
    RoundRobin,
}

impl Routing {
    /// Machine-readable label for sweep tables.
    pub fn label(&self) -> &'static str {
        match self {
            Routing::SessionAffinity => "affinity",
            Routing::RoundRobin => "round-robin",
        }
    }
}

/// Which engine executes a request.
#[derive(Clone, Copy, Debug)]
pub enum ExecMode {
    /// The sequential best-first engine: one pool = one processor.
    Sequential,
    /// The OR-parallel executor: every request fans out over
    /// `n_workers` threads that share the pool's store view (and
    /// therefore its touch attribution).
    OrParallel {
        /// Worker threads per request.
        n_workers: usize,
        /// Frontier sharing policy for those workers.
        policy: FrontierPolicy,
    },
}

/// Per-request retry budget for transient storage faults and engine
/// panics. Attempt `n` (0-based retry count) backs off for
/// `base_backoff * 2^n` capped at `max_backoff`, plus a deterministic
/// per-request jitter of up to 25% so a burst of faulted requests does
/// not re-converge on the store in lockstep.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Extra engine attempts after the first (0 = never retry — the T13
    /// ablation).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (first fault fails the request).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }
}

/// Per-pool circuit breaker configuration. A pool whose requests keep
/// failing against storage (retry budgets exhausted, permanent faults,
/// engine panics) trips open: new requests on that pool are served from
/// the answer cache only (or failed fast) instead of queueing behind a
/// sick disk path, and admissions reroute to healthy pools. After
/// `cooldown` the next request probes the pool (half-open); one success
/// closes the breaker, one failure re-opens it.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive request-level storage failures that trip the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker routes around the pool before probing.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(25),
        }
    }
}

/// One pool's breaker state. Failures are counted at *request*
/// granularity (a request that recovered via retries is a success), so
/// transient noise the retry budget absorbs never trips the breaker —
/// only requests that storage actually defeated do.
#[derive(Clone, Copy, Debug)]
enum BreakerState {
    Closed { consecutive: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker pools (each is one OS thread draining its own queue).
    pub n_pools: usize,
    /// Request → pool mapping.
    pub routing: Routing,
    /// Admission-time work stealing: when the routed pool's queue is at
    /// least this deep, the request is diverted to the currently
    /// shortest queue instead (`None` = never divert). This caps the
    /// queue skew a hot session can build while keeping the common case
    /// on its warm pool.
    pub overflow_threshold: Option<usize>,
    /// Engine per request.
    pub exec: ExecMode,
    /// Base limits for every request (`QueryRequest` fields override
    /// per request).
    pub solve: SolveConfig,
    /// Nanoseconds each simulated SPD fault tick stalls the serving
    /// thread (0 = accounting only). With a nonzero stall, pools overlap
    /// one another's disk latency — the multiprogramming form of the
    /// paper's latency hiding, and the mechanism by which serving
    /// throughput scales with pool count even when queries are
    /// CPU-light. The update lane's commit I/O stalls under the same
    /// scale.
    pub stall_ns_per_tick: u64,
    /// How a committing update treats in-flight queries:
    /// [`CommitMode::Mvcc`] (readers never wait) or the
    /// [`CommitMode::StopTheWorld`] baseline (every clause fetch waits
    /// out the commit) — the T10 ablation.
    pub commit: CommitMode,
    /// Candidate-selection policy for the server's store (applied to the
    /// store config at construction, so serving sweeps flip it in one
    /// place): [`blog_spd::IndexPolicy::FirstArg`] narrows by the goal's
    /// bound first argument through the per-epoch bitmap index;
    /// [`blog_spd::IndexPolicy::None`] is the scan-everything baseline.
    pub index: IndexPolicy,
    /// How often the deadline reaper rescans in-flight requests.
    pub reaper_poll: Duration,
    /// Answer cache and memory governor (see [`CacheConfig`]); default
    /// [`CacheMode::Off`](crate::CacheMode::Off) and ungoverned, which
    /// reproduces the pre-cache server exactly.
    pub cache: CacheConfig,
    /// Deterministic storage fault schedule (see [`FaultPlan`]). When
    /// `Some`, it overrides whatever plan the store config carries — one
    /// knob for serving chaos experiments. `None` leaves the store
    /// config's plan (usually also `None`: a fault-free store).
    pub fault: Option<FaultPlan>,
    /// Retry budget for transient storage faults and engine panics.
    pub retry: RetryPolicy,
    /// Per-pool circuit breaker (see [`BreakerConfig`]).
    pub breaker: BreakerConfig,
    /// Request tracing (see [`blog_obs::TraceConfig`]): sampled requests
    /// record a span tree (queue wait → attempt → engine → store events
    /// → cache) into the server's flight recorder
    /// ([`QueryServer::tracer`]). Default off — every instrumentation
    /// site reduces to a branch on `None`.
    pub trace: blog_obs::TraceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            n_pools: 2,
            routing: Routing::SessionAffinity,
            overflow_threshold: None,
            exec: ExecMode::Sequential,
            solve: SolveConfig::all(),
            stall_ns_per_tick: 0,
            commit: CommitMode::Mvcc,
            index: IndexPolicy::default(),
            reaper_poll: Duration::from_micros(200),
            cache: CacheConfig::default(),
            fault: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            trace: blog_obs::TraceConfig::off(),
        }
    }
}

/// One admitted request waiting in a pool queue.
struct Job {
    idx: usize,
    request: QueryRequest,
    cancel: CancelToken,
    deadline: Option<Instant>,
    enqueued: Instant,
    /// Trace handle when this request was sampled (created at
    /// admission, so the root span covers queue wait too).
    trace: Option<TraceHandle>,
}

/// One pool's open queue: jobs, a wakeup for its worker, and live
/// depth/peak gauges (depth is what overflow stealing compares).
struct PoolQueue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    depth: AtomicUsize,
    peak: AtomicUsize,
}

impl PoolQueue {
    fn new() -> PoolQueue {
        PoolQueue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            depth: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }
}

/// Submission/completion ledger (under one mutex so
/// [`Submitter::quiesce`] can wait on it).
#[derive(Default)]
struct Progress {
    queued: usize,
    finished: usize,
}

/// Everything one open serve run shares between the driver, the pool
/// workers, and the reaper.
struct OpenState {
    queues: Vec<PoolQueue>,
    /// `true` while the driver may still submit; flipping it (with every
    /// queue's condvar notified under its lock) releases idle workers.
    accepting: AtomicBool,
    progress: Mutex<Progress>,
    /// Notified on every completion (for `quiesce`).
    idle: Condvar,
    next_query: AtomicUsize,
    next_update: AtomicUsize,
    overflow: AtomicU64,
    /// Deadlines of in-flight requests, grown by submissions, pruned by
    /// the reaper as they fire.
    reaper_watch: Mutex<Vec<(Instant, CancelToken)>>,
    /// Responses for submissions the governor refused (they never reach
    /// a pool queue).
    overloaded: Mutex<Vec<QueryResponse>>,
    updates: Mutex<Vec<UpdateResponse>>,
}

impl OpenState {
    fn new(n_pools: usize) -> OpenState {
        OpenState {
            queues: (0..n_pools).map(|_| PoolQueue::new()).collect(),
            accepting: AtomicBool::new(true),
            progress: Mutex::new(Progress::default()),
            idle: Condvar::new(),
            next_query: AtomicUsize::new(0),
            next_update: AtomicUsize::new(0),
            overflow: AtomicU64::new(0),
            reaper_watch: Mutex::new(Vec::new()),
            overloaded: Mutex::new(Vec::new()),
            updates: Mutex::new(Vec::new()),
        }
    }

    fn in_flight(&self) -> usize {
        let p = lock_unpoisoned(&self.progress);
        p.queued - p.finished
    }
}

/// The immediate verdict of one [`Submitter::submit`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Admission {
    /// Admitted onto `pool`'s queue; the response will carry index
    /// `request`.
    Queued {
        /// Request index in the run (response order).
        request: usize,
        /// The pool the request was routed (or overflow-diverted) to.
        pool: usize,
    },
    /// Refused by the memory governor: the store-wide byte budget cannot
    /// fit another request reservation even after evicting the whole
    /// answer cache. An [`Outcome::Overloaded`] response is already
    /// recorded under `request` — back off and resubmit later.
    Overloaded {
        /// Request index in the run (response order).
        request: usize,
    },
}

/// The open front door of a running [`QueryServer::serve_open`] call:
/// submit queries and apply updates **while the pools are draining**.
/// Shareable across driver threads (`&Submitter` is `Send + Sync`).
pub struct Submitter<'a> {
    server: &'a QueryServer,
    state: &'a OpenState,
    t0: Instant,
}

impl Submitter<'_> {
    /// When this serve run started (the zero point of
    /// [`UpdateRequest::not_before`]-style delays).
    pub fn started(&self) -> Instant {
        self.t0
    }

    /// Submit one query: the memory governor reserves its bytes (or
    /// refuses — [`Admission::Overloaded`]), routing picks its pool
    /// (overflow stealing consults **live** queue depths, so it fires
    /// mid-flight), and its deadline joins the reaper's watch list. The
    /// queue's worker is woken; the response is collected by the
    /// enclosing [`QueryServer::serve_open`] call.
    pub fn submit(&self, request: QueryRequest) -> Admission {
        let state = self.state;
        let n_pools = state.queues.len();
        let idx = state.next_query.fetch_add(1, Ordering::Relaxed);
        let mut pool = self.server.route(request.session.0);
        if let Some(threshold) = self.server.config.overflow_threshold {
            if state.queues[pool].depth.load(Ordering::Relaxed) >= threshold {
                let shortest = (0..n_pools)
                    .min_by_key(|&p| state.queues[p].depth.load(Ordering::Relaxed))
                    .expect("n_pools >= 1");
                if state.queues[shortest].depth.load(Ordering::Relaxed)
                    < state.queues[pool].depth.load(Ordering::Relaxed)
                {
                    pool = shortest;
                    state.overflow.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Breaker reroute: a pool whose breaker is open and still
        // cooling gets no new work while any healthy pool exists —
        // affinity warmth is worth less than an answer. (When the
        // cooldown has elapsed, the request is allowed through as the
        // half-open probe; when every pool is sick, the routed pool
        // keeps it and serves degraded.)
        if self.server.breaker_cooling(pool) {
            let healthy = (0..n_pools)
                .filter(|&q| q != pool && !self.server.breaker_cooling(q))
                .min_by_key(|&q| state.queues[q].depth.load(Ordering::Relaxed));
            if let Some(alt) = healthy {
                pool = alt;
                self.server.breaker_reroutes.fetch_add(1, Ordering::Relaxed);
            }
        }
        if !self.server.cache.try_admit() {
            lock_unpoisoned(&state.overloaded).push(QueryResponse {
                request: idx,
                session: request.session,
                tenant: request.tenant,
                pool,
                epoch: self.server.store.committed_epoch(),
                outcome: Outcome::Overloaded {
                    // The governor frees bytes as in-flight requests
                    // finish; one service quantum is a sensible earliest
                    // resubmit.
                    advice: RetryAdvice::after(self.server.config.retry.base_backoff),
                },
                stats: blog_logic::SearchStats::default(),
                queue_wait: Duration::ZERO,
                service: Duration::ZERO,
                warm: false,
                served_from: ServedFrom::Engine,
                store_accesses: 0,
                store_hits: 0,
            });
            return Admission::Overloaded { request: idx };
        }
        let now = Instant::now();
        let cancel = CancelToken::new();
        let deadline = request.deadline.map(|d| now + d);
        if let Some(at) = deadline {
            lock_unpoisoned(&state.reaper_watch).push((at, cancel.clone()));
        }
        // Sampling decision at admission, so the root span covers the
        // queue wait; the handle rides in the job to the pool worker.
        let trace = self
            .server
            .tracer
            .start(idx as u64, format!("s{} {}", request.session.0, request.text));
        if let Some(h) = &trace {
            h.event(SpanId::ROOT, "admitted", format!("pool {pool}"));
        }
        lock_unpoisoned(&state.progress).queued += 1;
        let q = &state.queues[pool];
        {
            let mut jobs = lock_unpoisoned(&q.jobs);
            jobs.push_back(Job {
                idx,
                request,
                cancel,
                deadline,
                enqueued: now,
                trace,
            });
            let depth = q.depth.fetch_add(1, Ordering::Relaxed) + 1;
            q.peak.fetch_max(depth, Ordering::Relaxed);
            q.available.notify_one();
        }
        Admission::Queued { request: idx, pool }
    }

    /// Apply one update batch on the caller's thread (the update lane of
    /// an open run): commits between epochs while queries run, and the
    /// answer cache is notified in commit order.
    pub fn update(&self, session: crate::SessionId, ops: &[UpdateOp]) -> UpdateResponse {
        let idx = self.state.next_update.fetch_add(1, Ordering::Relaxed);
        // Updates sample from the same tracer as queries, in a disjoint
        // index namespace (high bit set) so trace ids never collide.
        let trace = self
            .server
            .tracer
            .start((1 << 62) | idx as u64, format!("update s{}", session.0));
        let response = match self
            .server
            .apply_update_traced(ops, trace.as_ref().map(|h| SpanCtx::new(h.clone(), SpanId::ROOT)))
        {
            Ok((epoch, asserted)) => UpdateResponse {
                request: idx,
                session,
                epoch,
                outcome: UpdateOutcome::Committed { asserted },
            },
            Err(e) => UpdateResponse {
                request: idx,
                session,
                epoch: self.server.store.committed_epoch(),
                outcome: UpdateOutcome::Rejected {
                    error: e.to_string(),
                },
            },
        };
        if let Some(h) = trace {
            self.server.tracer.finish(h);
        }
        lock_unpoisoned(&self.state.updates).push(response.clone());
        response
    }

    /// Queries submitted but not yet answered.
    pub fn pending(&self) -> usize {
        self.state.in_flight()
    }

    /// Block until every query submitted so far has a response — the
    /// deterministic barrier interleaved commit/query schedules need.
    pub fn quiesce(&self) {
        let mut prog = lock_unpoisoned(&self.state.progress);
        while prog.finished < prog.queued {
            prog = self
                .state
                .idle
                .wait(prog)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// The multi-session query server. See the crate docs for the model.
///
/// The server owns a snapshot-isolated [`MvccClauseStore`] seeded from
/// the clause database at construction (the database itself is not
/// retained — the store's epoch-0 state *is* the database), a frozen
/// [`WeightStore`] snapshot, and an [`AnswerCache`] governed by the
/// store-wide byte budget. Queries execute against per-request
/// epoch-pinned snapshots; the update lane
/// ([`serve_mixed`](Self::serve_mixed), [`apply_update`](Self::apply_update))
/// commits asserts and retracts between epochs without blocking readers.
/// The store's cache persists across batches, so a second batch starts
/// warm — servers don't reboot between requests.
pub struct QueryServer {
    weights: WeightStore,
    store: MvccClauseStore,
    cache: AnswerCache,
    config: ServeConfig,
    /// Session → pool that last completed one of its requests (the
    /// warmth ledger; persists across batches).
    sessions: Mutex<HashMap<u64, usize>>,
    /// Round-robin cursor (persists across batches so consecutive
    /// batches keep rotating).
    rr_next: AtomicUsize,
    /// Serializes [`apply_update`](Self::apply_update) commits *and*
    /// their cache notifications, so [`AnswerCache::on_commit`] observes
    /// base/new epoch pairs in true commit order.
    update_order: Mutex<()>,
    /// One circuit breaker per pool (state persists across batches: a
    /// pool that tripped at the end of one run is still sick at the
    /// start of the next).
    breakers: Vec<Mutex<BreakerState>>,
    /// Cumulative resilience meters (serve runs report deltas).
    retries: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_reroutes: AtomicU64,
    degraded_cache_hits: AtomicU64,
    /// Request tracing: deterministic sampler plus the flight recorder
    /// completed traces land in (persists across batches, like every
    /// other server-lifetime meter).
    tracer: Tracer,
}

impl QueryServer {
    /// A server seeded from `db` with default (untrained) weights.
    ///
    /// # Panics
    /// Panics if `config.n_pools == 0` or the store geometry cannot hold
    /// the database (see [`MvccClauseStore::new`]). Size the geometry
    /// with headroom (see [`tuning::churn_store_config`](crate::tuning::churn_store_config))
    /// when the update lane will assert clauses.
    pub fn new(db: &ClauseDb, store_config: PagedStoreConfig, config: ServeConfig) -> QueryServer {
        Self::with_weights(
            db,
            store_config,
            config,
            WeightStore::new(WeightParams::default()),
        )
    }

    /// A server executing against a trained weight snapshot (weights are
    /// frozen for the server's lifetime: serving never learns, so
    /// concurrent and sequential execution provably enumerate the same
    /// solution sets).
    pub fn with_weights(
        db: &ClauseDb,
        store_config: PagedStoreConfig,
        config: ServeConfig,
        weights: WeightStore,
    ) -> QueryServer {
        assert!(config.n_pools >= 1, "need at least one pool");
        if let ExecMode::OrParallel { n_workers, .. } = config.exec {
            assert!(n_workers >= 1, "need at least one worker per request");
        }
        let mut store_config = store_config.with_index(config.index);
        if config.fault.is_some() {
            store_config = store_config.with_fault(config.fault.clone());
        }
        let store = MvccClauseStore::new(db, store_config, config.commit);
        store.set_write_stall(config.stall_ns_per_tick);
        let cache = AnswerCache::new(config.cache.clone());
        let breakers = (0..config.n_pools)
            .map(|_| Mutex::new(BreakerState::Closed { consecutive: 0 }))
            .collect();
        let config_trace = config.trace;
        QueryServer {
            weights,
            store,
            cache,
            config,
            sessions: Mutex::new(HashMap::new()),
            rr_next: AtomicUsize::new(0),
            update_order: Mutex::new(()),
            breakers,
            retries: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
            breaker_reroutes: AtomicU64::new(0),
            degraded_cache_hits: AtomicU64::new(0),
            tracer: Tracer::new(config_trace, TRACE_SEED),
        }
    }

    /// The shared store (for inspecting cache and epoch state between
    /// batches).
    pub fn store(&self) -> &MvccClauseStore {
        &self.store
    }

    /// The answer cache (for inspecting hit/fill/invalidation counters
    /// between batches).
    pub fn answer_cache(&self) -> &AnswerCache {
        &self.cache
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The request tracer (sampler plus flight recorder). Snapshot its
    /// [`recorder`](Tracer::recorder) after a run to inspect or export
    /// the sampled requests' span trees.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Route one session id under the configured policy.
    fn route(&self, session: u64) -> usize {
        match self.config.routing {
            Routing::SessionAffinity => (splitmix(session) % self.config.n_pools as u64) as usize,
            Routing::RoundRobin => {
                self.rr_next.fetch_add(1, Ordering::Relaxed) % self.config.n_pools
            }
        }
    }

    /// Whether pool `p`'s breaker is open and still inside its cooldown
    /// (the admission-time reroute predicate; does not transition state).
    fn breaker_cooling(&self, p: usize) -> bool {
        match *lock_unpoisoned(&self.breakers[p]) {
            BreakerState::Open { since } => since.elapsed() < self.config.breaker.cooldown,
            _ => false,
        }
    }

    /// Execution-time breaker gate for pool `p`: `None` = run an engine
    /// (closed, or open-and-cooled — the state moves to half-open and
    /// this request is the probe); `Some(remaining)` = the breaker is
    /// open for another `remaining`, serve degraded.
    fn breaker_admit(&self, p: usize, trace: Option<&TraceHandle>) -> Option<Duration> {
        let mut state = lock_unpoisoned(&self.breakers[p]);
        match *state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => None,
            BreakerState::Open { since } => {
                let elapsed = since.elapsed();
                if elapsed >= self.config.breaker.cooldown {
                    *state = BreakerState::HalfOpen;
                    if let Some(h) = trace {
                        h.event(
                            SpanId::ROOT,
                            "breaker_half_open",
                            format!("pool {p}: cooldown elapsed, this request probes"),
                        );
                    }
                    None
                } else {
                    Some(self.config.breaker.cooldown - elapsed)
                }
            }
        }
    }

    /// A request on pool `p` got a real answer out of storage: reset the
    /// failure streak (and close a half-open breaker — the probe passed).
    fn breaker_success(&self, p: usize, trace: Option<&TraceHandle>) {
        let mut state = lock_unpoisoned(&self.breakers[p]);
        if matches!(*state, BreakerState::HalfOpen) {
            if let Some(h) = trace {
                h.event(
                    SpanId::ROOT,
                    "breaker_closed",
                    format!("pool {p}: half-open probe succeeded"),
                );
            }
        }
        *state = BreakerState::Closed { consecutive: 0 };
    }

    /// A request on pool `p` was defeated by storage (retry budget
    /// exhausted, permanent fault, or engine panic): extend the streak,
    /// tripping the breaker at the threshold; a failed half-open probe
    /// re-opens immediately.
    fn breaker_failure(&self, p: usize, trace: Option<&TraceHandle>) {
        let mut state = lock_unpoisoned(&self.breakers[p]);
        let mut opened = false;
        match *state {
            BreakerState::Closed { consecutive } => {
                let consecutive = consecutive + 1;
                if consecutive >= self.config.breaker.failure_threshold {
                    *state = BreakerState::Open { since: Instant::now() };
                    self.breaker_opens.fetch_add(1, Ordering::Relaxed);
                    opened = true;
                } else {
                    *state = BreakerState::Closed { consecutive };
                }
            }
            BreakerState::HalfOpen => {
                *state = BreakerState::Open { since: Instant::now() };
                self.breaker_opens.fetch_add(1, Ordering::Relaxed);
                opened = true;
            }
            BreakerState::Open { .. } => {}
        }
        if opened {
            if let Some(h) = trace {
                h.event(
                    SpanId::ROOT,
                    "breaker_open",
                    format!("pool {p}: failure streak hit the threshold"),
                );
            }
        }
    }

    /// Backoff before retry number `attempt` (1-based) of request `idx`:
    /// exponential in the attempt, capped, plus a deterministic
    /// per-(request, attempt) jitter of up to 25%.
    fn backoff_delay(&self, idx: usize, attempt: u32) -> Duration {
        let policy = &self.config.retry;
        let exp = policy
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(policy.max_backoff);
        let jitter = splitmix(((idx as u64) << 8) ^ attempt as u64) % 256;
        capped + capped.mul_f64(jitter as f64 / 1024.0)
    }

    /// Apply one batch of ops as a single atomic transaction and commit.
    /// Returns the committed epoch and the clause ids allocated by the
    /// asserts; on any failing op the transaction is dropped (nothing
    /// changes) and the op's error comes back.
    ///
    /// This is the update lane's primitive; it can also be called
    /// directly — including from other threads while
    /// [`serve`](Self::serve) is running, which is exactly the churn the
    /// T10/T12 experiments measure. Commits through this path notify the
    /// answer cache with the transaction's touched predicates, in commit
    /// order (commits that bypass it — a raw
    /// [`MvccClauseStore::begin_write`] — leave the cache behind, which
    /// is safe: lagging entries expire instead of ever serving stale).
    pub fn apply_update(
        &self,
        ops: &[crate::request::UpdateOp],
    ) -> Result<(u64, Vec<ClauseId>), MvccError> {
        self.apply_update_traced(ops, None)
    }

    /// [`apply_update`](Self::apply_update) with the commit reported
    /// onto `trace`'s span tree: a `writer_wait` span while the update
    /// serializes behind earlier writers, then the store's own
    /// `commit_io` / `commit_install` spans and `retire` event (see
    /// [`blog_spd::WriteTxn::with_trace`]).
    pub fn apply_update_traced(
        &self,
        ops: &[crate::request::UpdateOp],
        trace: Option<SpanCtx>,
    ) -> Result<(u64, Vec<ClauseId>), MvccError> {
        let wait_span = trace.as_ref().map(|t| t.span("writer_wait"));
        let _order = lock_unpoisoned(&self.update_order);
        let mut txn = self.store.begin_write().with_trace(trace.clone());
        drop(wait_span);
        let mut asserted = Vec::new();
        for op in ops {
            match op {
                crate::request::UpdateOp::Assert { text } => {
                    asserted.extend(txn.assert_text(text)?)
                }
                crate::request::UpdateOp::Retract { id } => txn.retract(*id)?,
            }
        }
        let base = txn.base_epoch();
        let touched = txn.touched_preds();
        let epoch = txn.commit();
        self.cache.on_commit(base, epoch, &touched);
        Ok((epoch, asserted))
    }

    /// Serve a read-only batch of requests to completion and report.
    ///
    /// A convenience wrapper over [`serve_open`](Self::serve_open): the
    /// whole batch is submitted (the *offered load*) while the pools
    /// drain concurrently; the call returns when every request has a
    /// response. Responses come back in batch order.
    pub fn serve(&self, requests: Vec<QueryRequest>) -> ServeReport {
        self.serve_mixed(requests, Vec::new())
    }

    /// Serve queries and updates together: pools drain the query queues
    /// while a dedicated **update lane** thread applies each
    /// [`UpdateRequest`] in batch order (honoring
    /// [`not_before`](UpdateRequest::not_before) delays), committing
    /// between epochs. Every query response carries the
    /// [`epoch`](QueryResponse::epoch) it executed at; its solutions are
    /// exactly the sequential solution set of that epoch's snapshot.
    ///
    /// Implemented on the open loop: requests are submitted while the
    /// pools are already draining, exactly as a network front end would
    /// deliver them.
    pub fn serve_mixed(
        &self,
        requests: Vec<QueryRequest>,
        updates: Vec<UpdateRequest>,
    ) -> ServeReport {
        let (report, ()) = self.serve_open(move |s| {
            std::thread::scope(|scope| {
                if !updates.is_empty() {
                    let updates = &updates;
                    scope.spawn(move || {
                        for update in updates {
                            if let Some(delay) = update.not_before {
                                let at = s.started() + delay;
                                let now = Instant::now();
                                if now < at {
                                    std::thread::sleep(at - now);
                                }
                            }
                            s.update(update.session, &update.ops);
                        }
                    });
                }
                for request in requests {
                    s.submit(request);
                }
            });
        });
        report
    }

    /// Run an **open** serving session: pool workers and the deadline
    /// reaper start immediately, then `driver` runs on the calling thread
    /// with a [`Submitter`] — submitting queries, applying updates, and
    /// pacing arrivals however it likes (Poisson load generators, network
    /// accept loops, interleaved commit/query schedules). When `driver`
    /// returns, admission closes, the pools drain what remains, and the
    /// report covers **every** submission, including the ones the memory
    /// governor refused ([`Outcome::Overloaded`]).
    ///
    /// Returns the report and the driver's own result.
    pub fn serve_open<R>(&self, driver: impl FnOnce(&Submitter<'_>) -> R) -> (ServeReport, R) {
        let n_pools = self.config.n_pools;
        let t0 = Instant::now();
        let state = OpenState::new(n_pools);
        let store_before = self.store.stats();
        let mvcc_before = self.store.mvcc_stats();
        let cache_before = self.cache.stats();
        let pools_before: Vec<_> = (0..n_pools).map(|p| self.store.pool_stats(p)).collect();
        let retries_before = self.retries.load(Ordering::Relaxed);
        let breaker_opens_before = self.breaker_opens.load(Ordering::Relaxed);
        let breaker_reroutes_before = self.breaker_reroutes.load(Ordering::Relaxed);
        let degraded_before = self.degraded_cache_hits.load(Ordering::Relaxed);

        // Live pool-thread count, decremented by a drop guard so the
        // reaper still exits (and the scope can propagate the panic)
        // when a pool thread unwinds without draining its queue.
        let pools_alive = AtomicUsize::new(n_pools);
        struct AliveGuard<'a>(&'a AtomicUsize);
        impl Drop for AliveGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Release);
            }
        }

        let mut per_pool_responses: Vec<Vec<QueryResponse>> = Vec::with_capacity(n_pools);
        let mut driver_result: Option<R> = None;
        std::thread::scope(|scope| {
            let state = &state;
            let pools_alive = &pools_alive;
            let handles: Vec<_> = (0..n_pools)
                .map(|p| {
                    scope.spawn(move || {
                        let _alive = AliveGuard(pools_alive);
                        let queue = &state.queues[p];
                        let mut out = Vec::new();
                        loop {
                            let job = {
                                let mut jobs = lock_unpoisoned(&queue.jobs);
                                loop {
                                    if let Some(job) = jobs.pop_front() {
                                        queue.depth.fetch_sub(1, Ordering::Relaxed);
                                        break Some(job);
                                    }
                                    if !state.accepting.load(Ordering::Acquire) {
                                        break None;
                                    }
                                    jobs = queue
                                        .available
                                        .wait(jobs)
                                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                                }
                            };
                            let Some(job) = job else { break };
                            out.push(self.execute(p, job));
                            self.cache.release();
                            let mut prog = lock_unpoisoned(&state.progress);
                            prog.finished += 1;
                            state.idle.notify_all();
                        }
                        out
                    })
                })
                .collect();
            {
                let poll = self.config.reaper_poll;
                scope.spawn(move || loop {
                    let now = Instant::now();
                    lock_unpoisoned(&state.reaper_watch).retain(|(at, token)| {
                        if now >= *at {
                            token.cancel();
                            false
                        } else {
                            true
                        }
                    });
                    let open = state.accepting.load(Ordering::Acquire);
                    if (!open && state.in_flight() == 0)
                        || pools_alive.load(Ordering::Acquire) == 0
                    {
                        break;
                    }
                    std::thread::sleep(poll);
                });
            }

            // Closes admission when dropped: workers drain what is queued
            // and exit. Taking each queue's lock before notifying closes
            // the race with a worker that just observed `accepting ==
            // true` and is about to wait. A drop guard (not a plain
            // statement) so a panicking driver still releases the
            // workers and the scope can propagate its panic instead of
            // deadlocking on join.
            struct CloseGuard<'a>(&'a OpenState);
            impl Drop for CloseGuard<'_> {
                fn drop(&mut self) {
                    self.0.accepting.store(false, Ordering::Release);
                    for queue in &self.0.queues {
                        let _jobs = lock_unpoisoned(&queue.jobs);
                        queue.available.notify_all();
                    }
                }
            }
            let close = CloseGuard(state);

            let submitter = Submitter {
                server: self,
                state,
                t0,
            };
            driver_result = Some(driver(&submitter));

            drop(close);
            for h in handles {
                per_pool_responses.push(h.join().expect("pool thread panicked"));
            }
        });
        let wall_s = t0.elapsed().as_secs_f64();

        // --- Report assembly.
        let queue_peaks: Vec<usize> = state
            .queues
            .iter()
            .map(|q| q.peak.load(Ordering::Relaxed))
            .collect();
        let mut per_pool = Vec::with_capacity(n_pools);
        for (p, responses) in per_pool_responses.iter().enumerate() {
            let latencies: Vec<f64> = responses
                .iter()
                .map(|r| r.service.as_secs_f64() * 1e3)
                .collect();
            let pool_hist = hist_ms(&latencies);
            let after = self.store.pool_stats(p);
            let before = pools_before[p];
            per_pool.push(PoolReport {
                pool: p,
                served: responses.len(),
                queue_peak: queue_peaks[p],
                nodes_expanded: responses.iter().map(|r| r.stats.nodes_expanded).sum(),
                p50_ms: pool_hist.quantile_ms(0.5),
                p99_ms: pool_hist.quantile_ms(0.99),
                touches: blog_spd::PoolTouchStats {
                    accesses: after.accesses - before.accesses,
                    hits: after.hits - before.hits,
                    misses: after.misses - before.misses,
                    fault_ticks: after.fault_ticks - before.fault_ticks,
                },
            });
        }
        let mut responses: Vec<QueryResponse> = per_pool_responses.into_iter().flatten().collect();
        responses.extend(
            state
                .overloaded
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        responses.sort_by_key(|r| r.request);
        let mut update_responses = state
            .updates
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        update_responses.sort_by_key(|r| r.request);
        let total = responses.len();
        // Latency percentiles cover requests that reached a pool;
        // governor-refused submissions never ran and would only dilute
        // the signal with zeros.
        let executed: Vec<&QueryResponse> = responses
            .iter()
            .filter(|r| !matches!(r.outcome, Outcome::Overloaded { .. }))
            .collect();
        let service_ms: Vec<f64> = executed
            .iter()
            .map(|r| r.service.as_secs_f64() * 1e3)
            .collect();
        let wait_ms: Vec<f64> = executed
            .iter()
            .map(|r| r.queue_wait.as_secs_f64() * 1e3)
            .collect();
        let service_hist = hist_ms(&service_ms);
        let wait_hist = hist_ms(&wait_ms);
        let (warm, cold) = warmth_splits(&responses);
        let completed = responses.iter().filter(|r| r.outcome.is_completed()).count();
        let cancelled = responses
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Cancelled { .. }))
            .count();
        let rejected = responses
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Rejected { .. }))
            .count();
        let overloaded = responses
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Overloaded { .. }))
            .count();
        let failed = responses
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Failed { .. }))
            .count();
        let mvcc_after = self.store.mvcc_stats();
        let store = stats_delta(store_before, self.store.stats());
        let cache = CacheStats::delta(cache_before, self.cache.stats());
        let stats = ServeStats {
            wall_s,
            requests: total,
            completed,
            cancelled,
            rejected,
            overloaded,
            failed,
            retries: self.retries.load(Ordering::Relaxed) - retries_before,
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed) - breaker_opens_before,
            breaker_reroutes: self.breaker_reroutes.load(Ordering::Relaxed)
                - breaker_reroutes_before,
            degraded_cache_hits: self.degraded_cache_hits.load(Ordering::Relaxed)
                - degraded_before,
            throughput_rps: if wall_s > 0.0 { total as f64 / wall_s } else { 0.0 },
            p50_ms: service_hist.quantile_ms(0.5),
            p99_ms: service_hist.quantile_ms(0.99),
            wait_p50_ms: wait_hist.quantile_ms(0.5),
            wait_p99_ms: wait_hist.quantile_ms(0.99),
            overflow_admissions: state.overflow.load(Ordering::Relaxed),
            commits: mvcc_after.commits - mvcc_before.commits,
            final_epoch: mvcc_after.committed_epoch,
            per_pool,
            index_hits: store.index_hits,
            index_prunes: store.index_prunes,
            candidates_scanned: store.candidates_scanned,
            store,
            cache,
            warm,
            cold,
        };
        let report = ServeReport {
            responses,
            updates: update_responses,
            stats,
        };
        (report, driver_result.expect("driver ran"))
    }

    /// Execute one job on pool `p`.
    fn execute(&self, p: usize, mut job: Job) -> QueryResponse {
        let started = Instant::now();
        let queue_wait = started - job.enqueued;
        let session = job.request.session;
        if let Some(h) = &job.trace {
            // Backdated to handle creation (= admission), ended now:
            // the whole time this job sat in the pool queue.
            h.span_at(SpanId::ROOT, "queue_wait", h.start_ns()).finish();
        }
        let warm_before = lock_unpoisoned(&self.sessions)
            .get(&session.0)
            .is_some_and(|&home| home == p);
        let pool_before = self.store.pool_stats(p);

        // A request whose deadline expired while queued (or whose token
        // the reaper already tripped) is answered without touching an
        // engine (load shedding).
        let shed = job.deadline.is_some_and(|at| started >= at) || job.cancel.is_cancelled();
        let (outcome, stats, epoch, served_from) = if shed {
            job.cancel.cancel();
            if let Some(h) = &job.trace {
                h.event(SpanId::ROOT, "shed", "deadline expired in queue");
            }
            (
                Outcome::Cancelled {
                    partial: Vec::new(),
                },
                SearchStats::default(),
                self.store.committed_epoch(),
                ServedFrom::Engine,
            )
        } else if let Some(remaining) = self.breaker_admit(p, job.trace.as_ref()) {
            self.execute_degraded(p, &job, remaining)
        } else {
            self.execute_attempts(p, &job)
        };
        // The pool has now seen this session — but only if an engine ran
        // to an answer: a parse rejection, an expired-in-queue shed, a
        // failure, or an answer-cache hit touched none of the session's
        // tracks, so marking it warm would dilute the warm-vs-cold split
        // the serving report exists to measure.
        if !matches!(outcome, Outcome::Rejected { .. } | Outcome::Failed { .. })
            && !shed
            && served_from == ServedFrom::Engine
        {
            lock_unpoisoned(&self.sessions).insert(session.0, p);
        }
        let pool_after = self.store.pool_stats(p);
        if let Some(h) = job.trace.take() {
            let label = match &outcome {
                Outcome::Completed { .. } => "completed",
                Outcome::Cancelled { .. } => "cancelled",
                Outcome::Rejected { .. } => "rejected",
                Outcome::Failed { .. } => "failed",
                Outcome::Overloaded { .. } => "overloaded",
            };
            h.event(
                SpanId::ROOT,
                "outcome",
                format!("{label} from {served_from:?} epoch {epoch}"),
            );
            self.tracer.finish(h);
        }
        QueryResponse {
            request: job.idx,
            session,
            tenant: job.request.tenant,
            pool: p,
            epoch,
            outcome,
            stats,
            queue_wait,
            service: started.elapsed(),
            // Warm = the session's tracks were already resident on this
            // pool, or the answer itself was served from the cache — both
            // are §5's "later searches become more efficient".
            warm: warm_before || served_from == ServedFrom::Cache,
            served_from,
            store_accesses: pool_after.accesses - pool_before.accesses,
            store_hits: pool_after.hits - pool_before.hits,
        }
    }

    /// Serve one request with pool `p`'s breaker open: the engine — and
    /// the sick storage path behind it — is never touched. A still-valid
    /// answer-cache entry for the canonical query answers the request
    /// anyway ([`ServedFrom::Cache`], counted as a degraded cache hit);
    /// anything else fails fast, with the breaker's remaining cooldown
    /// as the client's retry hint.
    fn execute_degraded(
        &self,
        p: usize,
        job: &Job,
        remaining: Duration,
    ) -> (Outcome, SearchStats, u64, ServedFrom) {
        if let Some(h) = &job.trace {
            h.event(
                SpanId::ROOT,
                "degraded",
                format!("pool {p} breaker open for {remaining:?}; cache-only"),
            );
        }
        // Pinning a snapshot reads no pages: the symbol table and epoch
        // live in memory, so parse + cache lookup are safe against any
        // storage fault.
        let snap = self.store.begin_read().for_pool(p);
        let epoch = snap.epoch();
        match parse_query_symbols(snap.symbols(), &job.request.text) {
            Err(e) => (
                Outcome::Rejected {
                    error: e.to_string(),
                },
                SearchStats::default(),
                epoch,
                ServedFrom::Engine,
            ),
            Ok(query) => {
                let mut solve = self.config.solve.clone();
                if job.request.max_nodes.is_some() {
                    solve.max_nodes = job.request.max_nodes;
                }
                if job.request.max_solutions.is_some() {
                    solve.max_solutions = job.request.max_solutions;
                }
                let key = self.cache.enabled().then(|| CacheKey {
                    canon: canonical_query(snap.symbols(), &query),
                    max_nodes: solve.max_nodes,
                    max_solutions: solve.max_solutions,
                    max_depth: solve.max_depth,
                });
                let hit = key.as_ref().and_then(|k| self.cache.lookup(k, epoch));
                if let Some(h) = &job.trace {
                    h.event(
                        SpanId::ROOT,
                        "cache_lookup",
                        if hit.is_some() { "hit" } else { "miss" },
                    );
                }
                match hit {
                    Some(solutions) => {
                        self.degraded_cache_hits.fetch_add(1, Ordering::Relaxed);
                        (
                            Outcome::Completed {
                                solutions: (*solutions).clone(),
                            },
                            SearchStats::default(),
                            epoch,
                            ServedFrom::Cache,
                        )
                    }
                    None => (
                        Outcome::Failed {
                            error: format!(
                                "pool {p} circuit breaker open; no cached answer covers epoch {epoch}"
                            ),
                            advice: RetryAdvice::after(remaining),
                        },
                        SearchStats::default(),
                        epoch,
                        ServedFrom::Engine,
                    ),
                }
            }
        }
    }

    /// Run one request's engine attempts on pool `p`: a fresh
    /// epoch-pinned snapshot per attempt, a panic shield around the
    /// engine, and the retry budget absorbing transient storage faults.
    ///
    /// The soundness rule of the whole path: a response is either the
    /// pinned epoch's **exact** sequential solution set (engine ran
    /// fault-free; cache fills only happen here), an honestly-labelled
    /// `Cancelled` partial, or a `Failed` — partial solutions from a
    /// faulted or panicked attempt are discarded, never served as if
    /// they were the answer.
    fn execute_attempts(&self, p: usize, job: &Job) -> (Outcome, SearchStats, u64, ServedFrom) {
        let h = job.trace.as_ref();
        let mut attempt: u32 = 0;
        loop {
            // One span per attempt; everything the attempt does (parse,
            // cache lookup, engine, store events) nests under it.
            let attempt_span = h.map(|h| h.span(SpanId::ROOT, format!("attempt{attempt}")));
            let attempt_id = attempt_span.as_ref().map_or(SpanId::ROOT, |g| g.id());
            // Pin the epoch *before* parsing: the query is admitted at
            // this snapshot, parsed against its symbol table (so text
            // mentioning vocabulary from a later epoch rejects, exactly
            // as it would have sequentially), and executed against its
            // pages whatever commits land meanwhile. A retry pins a
            // *fresh* snapshot — commits may have landed during the
            // backoff, and the response's epoch tag must match the pages
            // the successful attempt actually read.
            let mut snap = self
                .store
                .begin_read()
                .for_pool(p)
                .with_stall(self.config.stall_ns_per_tick)
                .with_trace(h.map(|h| SpanCtx::new(h.clone(), attempt_id)));
            let epoch = snap.epoch();
            let parse_span = h.map(|h| h.span(attempt_id, "parse"));
            let query = match parse_query_symbols(snap.symbols(), &job.request.text) {
                Err(e) => {
                    return (
                        Outcome::Rejected {
                            error: e.to_string(),
                        },
                        SearchStats::default(),
                        epoch,
                        ServedFrom::Engine,
                    )
                }
                Ok(query) => query,
            };
            drop(parse_span);
            let mut solve = self.config.solve.clone();
            if job.request.max_nodes.is_some() {
                solve.max_nodes = job.request.max_nodes;
            }
            if job.request.max_solutions.is_some() {
                solve.max_solutions = job.request.max_solutions;
            }
            // The cache key is the canonical (alpha-invariant) query
            // text plus every limit that shapes the solution set.
            let key = self.cache.enabled().then(|| CacheKey {
                canon: canonical_query(snap.symbols(), &query),
                max_nodes: solve.max_nodes,
                max_solutions: solve.max_solutions,
                max_depth: solve.max_depth,
            });
            let hit = key.as_ref().and_then(|k| self.cache.lookup(k, epoch));
            if let Some(h) = h {
                if key.is_some() {
                    h.event(
                        attempt_id,
                        "cache_lookup",
                        if hit.is_some() { "hit" } else { "miss" },
                    );
                }
            }
            if let Some(solutions) = hit {
                // Answer-cache hit: the engine is bypassed entirely; the
                // cached set is provably the sequential solution set of
                // this epoch. The breaker is left alone — a hit probes
                // nothing about the pool's storage path.
                return (
                    Outcome::Completed {
                        solutions: (*solutions).clone(),
                    },
                    SearchStats::default(),
                    epoch,
                    ServedFrom::Cache,
                );
            }
            if key.is_some() {
                snap = snap.recording_deps();
            }
            let budget = solve.max_nodes;
            let cap = solve.max_solutions;
            // The engine span also parents what runs *inside* the
            // engine: per-worker spans and frontier events from the
            // OR-parallel executor arrive through `solve.trace`.
            let engine_span = h.map(|h| h.span(attempt_id, "engine"));
            let engine_id = engine_span.as_ref().map_or(attempt_id, |g| g.id());
            solve.trace = h.map(|h| SpanCtx::new(h.clone(), engine_id));
            // The engine runs behind a panic shield: an injected storage
            // panic (FaultKind::Panic) or any engine bug fails this
            // *attempt* instead of unwinding through the pool worker —
            // which would strand the queue's condvar waiters and take
            // every later request on the pool down with it.
            let run = catch_unwind(AssertUnwindSafe(|| match self.config.exec {
                ExecMode::Sequential => {
                    let mut overlay = HashMap::new();
                    let mut wview = WeightView::new(&mut overlay, &self.weights);
                    let cfg = BestFirstConfig {
                        solve,
                        learn: false,
                        cancel: Some(job.cancel.clone()),
                        ..BestFirstConfig::default()
                    };
                    let r = best_first_with(&snap, &query, &mut wview, &cfg);
                    let texts = r
                        .solutions
                        .iter()
                        .map(|s| s.solution.to_text_syms(snap.symbols()))
                        .collect::<Vec<_>>();
                    (texts, r.stats, r.store_error)
                }
                ExecMode::OrParallel { n_workers, policy } => {
                    let cfg = ParallelConfig {
                        n_workers,
                        policy,
                        solve,
                        learn: false,
                        cancel: Some(job.cancel.clone()),
                        ..ParallelConfig::default()
                    };
                    let r = par_best_first_with(&snap, &query, &self.weights, &cfg);
                    let texts = r
                        .solutions
                        .iter()
                        .map(|s| s.solution.to_text_syms(snap.symbols()))
                        .collect::<Vec<_>>();
                    (texts, r.stats, r.store_error)
                }
            }));
            drop(engine_span);
            let retry_left = attempt < self.config.retry.max_retries && !job.cancel.is_cancelled();
            match run {
                Err(payload) => {
                    // Panic isolation. The attempt's snapshot is gone and
                    // every lock it could have poisoned recovers (see
                    // `lock_unpoisoned`); injected panics are positional
                    // in the fault schedule, so a retry draws fresh luck
                    // exactly like a transient read fault.
                    if retry_left {
                        attempt += 1;
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        if let Some(h) = h {
                            h.event(attempt_id, "retry", "engine panicked");
                        }
                        drop(attempt_span);
                        let _backoff = h.map(|h| h.span(SpanId::ROOT, "backoff"));
                        std::thread::sleep(self.backoff_delay(job.idx, attempt));
                        continue;
                    }
                    self.breaker_failure(p, h);
                    return (
                        Outcome::Failed {
                            error: format!("engine panicked: {}", panic_text(&payload)),
                            advice: RetryAdvice::after(self.config.breaker.cooldown),
                        },
                        SearchStats::default(),
                        epoch,
                        ServedFrom::Engine,
                    );
                }
                Ok((_, stats, Some(e))) => {
                    // The engine aborted on a storage fault; whatever it
                    // had enumerated is discarded (see the method docs).
                    if e.is_transient() && retry_left {
                        attempt += 1;
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        if let Some(h) = h {
                            h.event(attempt_id, "retry", format!("transient fault: {e}"));
                        }
                        drop(attempt_span);
                        let _backoff = h.map(|h| h.span(SpanId::ROOT, "backoff"));
                        std::thread::sleep(self.backoff_delay(job.idx, attempt));
                        continue;
                    }
                    self.breaker_failure(p, h);
                    let advice = if e.is_transient() {
                        RetryAdvice::after(self.backoff_delay(job.idx, attempt + 1))
                    } else {
                        RetryAdvice::give_up()
                    };
                    return (
                        Outcome::Failed {
                            error: e.to_string(),
                            advice,
                        },
                        stats,
                        epoch,
                        ServedFrom::Engine,
                    );
                }
                Ok((mut texts, stats, None)) => {
                    self.breaker_success(p, h);
                    texts.sort();
                    // Classify from what actually stopped the engine,
                    // not from the token alone: a reaper firing *after*
                    // the search ran to its natural end (or to its node
                    // budget) must not relabel a finished answer.
                    let budget_exhausted = budget.is_some_and(|b| stats.nodes_expanded >= b);
                    let cancelled =
                        stats.truncated && !budget_exhausted && job.cancel.is_cancelled();
                    if cancelled {
                        return (
                            Outcome::Cancelled { partial: texts },
                            stats,
                            epoch,
                            ServedFrom::Engine,
                        );
                    }
                    // Memoize only **complete** enumerations: truncated,
                    // depth-cut, or solution-capped results depend on
                    // expansion order (the OR-parallel engine's is
                    // nondeterministic) and must never be served to a
                    // later request. Fault-free by construction here, so
                    // an injected fault can never pollute the cache.
                    let complete = !stats.truncated
                        && !stats.depth_cutoff
                        && cap.is_none_or(|c| texts.len() < c);
                    if complete {
                        if let Some(k) = key {
                            if let Some(h) = h {
                                h.event(
                                    attempt_id,
                                    "cache_fill",
                                    format!("{} solutions", texts.len()),
                                );
                            }
                            let solutions = Arc::new(texts.clone());
                            self.cache.fill(k, epoch, snap.recorded_deps(), solutions);
                        }
                    }
                    return (
                        Outcome::Completed { solutions: texts },
                        stats,
                        epoch,
                        ServedFrom::Engine,
                    );
                }
            }
        }
    }
}

/// SplitMix64 finalizer: spreads consecutive session ids uniformly over
/// pools (consecutive ids modulo `n_pools` would alias tenants to pools
/// in generated workloads).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Best-effort text of a caught panic payload (panics raise `&str` or
/// `String` in practice; anything else gets a placeholder).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Field-wise `after - before` of the store counters.
fn stats_delta(before: PagedStoreStats, after: PagedStoreStats) -> PagedStoreStats {
    PagedStoreStats {
        accesses: after.accesses - before.accesses,
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        evictions: after.evictions - before.evictions,
        fault_ticks: after.fault_ticks - before.fault_ticks,
        lock_acquisitions: after.lock_acquisitions - before.lock_acquisitions,
        lock_contended: after.lock_contended.saturating_sub(before.lock_contended),
        index_hits: after.index_hits - before.index_hits,
        index_prunes: after.index_prunes - before.index_prunes,
        candidates_scanned: after.candidates_scanned - before.candidates_scanned,
        transient_faults: after.transient_faults - before.transient_faults,
        permanent_faults: after.permanent_faults - before.permanent_faults,
        latency_spikes: after.latency_spikes - before.latency_spikes,
        latency_spike_ticks: after.latency_spike_ticks - before.latency_spike_ticks,
    }
}
