//! The scheduler: pool queues, affinity routing, overflow admission,
//! the deadline reaper, the update lane, and the per-pool execution loop.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use blog_core::engine::{best_first_with, BestFirstConfig};
use blog_core::weight::{WeightParams, WeightStore, WeightView};
use blog_logic::{parse_query_symbols, CancelToken, ClauseDb, ClauseId, SolveConfig};
use blog_parallel::{par_best_first_with, FrontierPolicy, ParallelConfig};
use blog_spd::{
    CommitMode, IndexPolicy, MvccClauseStore, MvccError, PagedStoreConfig, PagedStoreStats,
};

use crate::request::{
    Outcome, QueryRequest, QueryResponse, UpdateOutcome, UpdateRequest, UpdateResponse,
};
use crate::stats::{percentile_ms, warmth_splits, PoolReport, ServeReport, ServeStats};

/// How requests map to pools.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Routing {
    /// Hash the session id onto a pool: one session's stream of similar
    /// queries is serviced consecutively by one pool, so its clause
    /// tracks are still resident when the "second and third query"
    /// arrive — §5's warmth produced by scheduling.
    SessionAffinity,
    /// Ignore sessions; deal requests round-robin (the ablation: same
    /// offered load, no deliberate warmth).
    RoundRobin,
}

impl Routing {
    /// Machine-readable label for sweep tables.
    pub fn label(&self) -> &'static str {
        match self {
            Routing::SessionAffinity => "affinity",
            Routing::RoundRobin => "round-robin",
        }
    }
}

/// Which engine executes a request.
#[derive(Clone, Copy, Debug)]
pub enum ExecMode {
    /// The sequential best-first engine: one pool = one processor.
    Sequential,
    /// The OR-parallel executor: every request fans out over
    /// `n_workers` threads that share the pool's store view (and
    /// therefore its touch attribution).
    OrParallel {
        /// Worker threads per request.
        n_workers: usize,
        /// Frontier sharing policy for those workers.
        policy: FrontierPolicy,
    },
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker pools (each is one OS thread draining its own queue).
    pub n_pools: usize,
    /// Request → pool mapping.
    pub routing: Routing,
    /// Admission-time work stealing: when the routed pool's queue is at
    /// least this deep, the request is diverted to the currently
    /// shortest queue instead (`None` = never divert). This caps the
    /// queue skew a hot session can build while keeping the common case
    /// on its warm pool.
    pub overflow_threshold: Option<usize>,
    /// Engine per request.
    pub exec: ExecMode,
    /// Base limits for every request (`QueryRequest` fields override
    /// per request).
    pub solve: SolveConfig,
    /// Nanoseconds each simulated SPD fault tick stalls the serving
    /// thread (0 = accounting only). With a nonzero stall, pools overlap
    /// one another's disk latency — the multiprogramming form of the
    /// paper's latency hiding, and the mechanism by which serving
    /// throughput scales with pool count even when queries are
    /// CPU-light. The update lane's commit I/O stalls under the same
    /// scale.
    pub stall_ns_per_tick: u64,
    /// How a committing update treats in-flight queries:
    /// [`CommitMode::Mvcc`] (readers never wait) or the
    /// [`CommitMode::StopTheWorld`] baseline (every clause fetch waits
    /// out the commit) — the T10 ablation.
    pub commit: CommitMode,
    /// Candidate-selection policy for the server's store (applied to the
    /// store config at construction, so serving sweeps flip it in one
    /// place): [`blog_spd::IndexPolicy::FirstArg`] narrows by the goal's
    /// bound first argument through the per-epoch bitmap index;
    /// [`blog_spd::IndexPolicy::None`] is the scan-everything baseline.
    pub index: IndexPolicy,
    /// How often the deadline reaper rescans in-flight requests.
    pub reaper_poll: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            n_pools: 2,
            routing: Routing::SessionAffinity,
            overflow_threshold: None,
            exec: ExecMode::Sequential,
            solve: SolveConfig::all(),
            stall_ns_per_tick: 0,
            commit: CommitMode::Mvcc,
            index: IndexPolicy::default(),
            reaper_poll: Duration::from_micros(200),
        }
    }
}

/// One admitted request waiting in a pool queue.
struct Job {
    idx: usize,
    request: QueryRequest,
    cancel: CancelToken,
    deadline: Option<Instant>,
    enqueued: Instant,
}

/// The multi-session query server. See the crate docs for the model.
///
/// The server owns a snapshot-isolated [`MvccClauseStore`] seeded from
/// the clause database at construction (the database itself is not
/// retained — the store's epoch-0 state *is* the database), plus a
/// frozen [`WeightStore`] snapshot. Queries execute against per-request
/// epoch-pinned snapshots; the update lane
/// ([`serve_mixed`](Self::serve_mixed), [`apply_update`](Self::apply_update))
/// commits asserts and retracts between epochs without blocking readers.
/// The store's cache persists across batches, so a second batch starts
/// warm — servers don't reboot between requests.
pub struct QueryServer {
    weights: WeightStore,
    store: MvccClauseStore,
    config: ServeConfig,
    /// Session → pool that last completed one of its requests (the
    /// warmth ledger; persists across batches).
    sessions: Mutex<HashMap<u64, usize>>,
    /// Round-robin cursor (persists across batches so consecutive
    /// batches keep rotating).
    rr_next: AtomicUsize,
}

impl QueryServer {
    /// A server seeded from `db` with default (untrained) weights.
    ///
    /// # Panics
    /// Panics if `config.n_pools == 0` or the store geometry cannot hold
    /// the database (see [`MvccClauseStore::new`]). Size the geometry
    /// with headroom (see [`tuning::churn_store_config`](crate::tuning::churn_store_config))
    /// when the update lane will assert clauses.
    pub fn new(db: &ClauseDb, store_config: PagedStoreConfig, config: ServeConfig) -> QueryServer {
        Self::with_weights(
            db,
            store_config,
            config,
            WeightStore::new(WeightParams::default()),
        )
    }

    /// A server executing against a trained weight snapshot (weights are
    /// frozen for the server's lifetime: serving never learns, so
    /// concurrent and sequential execution provably enumerate the same
    /// solution sets).
    pub fn with_weights(
        db: &ClauseDb,
        store_config: PagedStoreConfig,
        config: ServeConfig,
        weights: WeightStore,
    ) -> QueryServer {
        assert!(config.n_pools >= 1, "need at least one pool");
        if let ExecMode::OrParallel { n_workers, .. } = config.exec {
            assert!(n_workers >= 1, "need at least one worker per request");
        }
        let store = MvccClauseStore::new(db, store_config.with_index(config.index), config.commit);
        store.set_write_stall(config.stall_ns_per_tick);
        QueryServer {
            weights,
            store,
            config,
            sessions: Mutex::new(HashMap::new()),
            rr_next: AtomicUsize::new(0),
        }
    }

    /// The shared store (for inspecting cache and epoch state between
    /// batches).
    pub fn store(&self) -> &MvccClauseStore {
        &self.store
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Route one session id under the configured policy.
    fn route(&self, session: u64) -> usize {
        match self.config.routing {
            Routing::SessionAffinity => (splitmix(session) % self.config.n_pools as u64) as usize,
            Routing::RoundRobin => {
                self.rr_next.fetch_add(1, Ordering::Relaxed) % self.config.n_pools
            }
        }
    }

    /// Apply one batch of ops as a single atomic transaction and commit.
    /// Returns the committed epoch and the clause ids allocated by the
    /// asserts; on any failing op the transaction is dropped (nothing
    /// changes) and the op's error comes back.
    ///
    /// This is the update lane's primitive; it can also be called
    /// directly — including from other threads while
    /// [`serve`](Self::serve) is running, which is exactly the churn the
    /// T10 experiment measures.
    pub fn apply_update(
        &self,
        ops: &[crate::request::UpdateOp],
    ) -> Result<(u64, Vec<ClauseId>), MvccError> {
        let mut txn = self.store.begin_write();
        let mut asserted = Vec::new();
        for op in ops {
            match op {
                crate::request::UpdateOp::Assert { text } => {
                    asserted.extend(txn.assert_text(text)?)
                }
                crate::request::UpdateOp::Retract { id } => txn.retract(*id)?,
            }
        }
        Ok((txn.commit(), asserted))
    }

    /// Serve a read-only batch of requests to completion and report.
    ///
    /// The whole batch is admitted first (the *offered load*), then the
    /// pools drain their queues concurrently; the call returns when
    /// every request has a response. Responses come back in batch order.
    pub fn serve(&self, requests: Vec<QueryRequest>) -> ServeReport {
        self.serve_mixed(requests, Vec::new())
    }

    /// Serve queries and updates together: pools drain the query queues
    /// while a dedicated **update lane** thread applies each
    /// [`UpdateRequest`] in batch order (honoring
    /// [`not_before`](UpdateRequest::not_before) delays), committing
    /// between epochs. Every query response carries the
    /// [`epoch`](QueryResponse::epoch) it executed at; its solutions are
    /// exactly the sequential solution set of that epoch's snapshot.
    pub fn serve_mixed(
        &self,
        requests: Vec<QueryRequest>,
        updates: Vec<UpdateRequest>,
    ) -> ServeReport {
        let n_pools = self.config.n_pools;
        let t0 = Instant::now();

        // --- Admission: route every request, overflow-diverting off
        // deep queues onto the currently shortest one.
        let mut queues: Vec<VecDeque<Job>> = (0..n_pools).map(|_| VecDeque::new()).collect();
        let mut overflow_admissions = 0u64;
        let mut reaper_watch: Vec<(Instant, CancelToken)> = Vec::new();
        for (idx, request) in requests.into_iter().enumerate() {
            let mut pool = self.route(request.session.0);
            if let Some(threshold) = self.config.overflow_threshold {
                if queues[pool].len() >= threshold {
                    let shortest = (0..n_pools)
                        .min_by_key(|&p| queues[p].len())
                        .expect("n_pools >= 1");
                    if queues[shortest].len() < queues[pool].len() {
                        pool = shortest;
                        overflow_admissions += 1;
                    }
                }
            }
            let now = Instant::now();
            let cancel = CancelToken::new();
            let deadline = request.deadline.map(|d| now + d);
            if let Some(at) = deadline {
                reaper_watch.push((at, cancel.clone()));
            }
            queues[pool].push_back(Job {
                idx,
                request,
                cancel,
                deadline,
                enqueued: now,
            });
        }
        let queue_peaks: Vec<usize> = queues.iter().map(VecDeque::len).collect();
        let total: usize = queue_peaks.iter().sum();
        let store_before = self.store.stats();
        let mvcc_before = self.store.mvcc_stats();
        let pools_before: Vec<_> = (0..n_pools).map(|p| self.store.pool_stats(p)).collect();

        // --- Drain: one thread per pool, the update lane, plus a
        // deadline reaper.
        let remaining = AtomicUsize::new(total);
        // Live pool-thread count, decremented by a drop guard so the
        // reaper still exits (and the scope can propagate the panic)
        // when a pool thread unwinds without draining its queue.
        let pools_alive = AtomicUsize::new(n_pools);
        struct AliveGuard<'a>(&'a AtomicUsize);
        impl Drop for AliveGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Release);
            }
        }
        let queues: Vec<Mutex<VecDeque<Job>>> = queues.into_iter().map(Mutex::new).collect();
        let mut per_pool_responses: Vec<Vec<QueryResponse>> = Vec::with_capacity(n_pools);
        let mut update_responses: Vec<UpdateResponse> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_pools)
                .map(|p| {
                    let queue = &queues[p];
                    let remaining = &remaining;
                    let pools_alive = &pools_alive;
                    scope.spawn(move || {
                        let _alive = AliveGuard(pools_alive);
                        let mut out = Vec::new();
                        loop {
                            let job = queue.lock().unwrap().pop_front();
                            let Some(job) = job else { break };
                            out.push(self.execute(p, job));
                            remaining.fetch_sub(1, Ordering::Release);
                        }
                        out
                    })
                })
                .collect();
            let update_lane = (!updates.is_empty()).then(|| {
                let updates = &updates;
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(updates.len());
                    for (idx, update) in updates.iter().enumerate() {
                        if let Some(delay) = update.not_before {
                            let at = t0 + delay;
                            let now = Instant::now();
                            if now < at {
                                std::thread::sleep(at - now);
                            }
                        }
                        let outcome = match self.apply_update(&update.ops) {
                            Ok((epoch, asserted)) => UpdateResponse {
                                request: idx,
                                session: update.session,
                                epoch,
                                outcome: UpdateOutcome::Committed { asserted },
                            },
                            Err(e) => UpdateResponse {
                                request: idx,
                                session: update.session,
                                epoch: self.store.committed_epoch(),
                                outcome: UpdateOutcome::Rejected {
                                    error: e.to_string(),
                                },
                            },
                        };
                        out.push(outcome);
                    }
                    out
                })
            });
            if !reaper_watch.is_empty() {
                let remaining = &remaining;
                let pools_alive = &pools_alive;
                let watch = &reaper_watch;
                let poll = self.config.reaper_poll;
                scope.spawn(move || {
                    while remaining.load(Ordering::Acquire) > 0
                        && pools_alive.load(Ordering::Acquire) > 0
                    {
                        let now = Instant::now();
                        for (at, token) in watch {
                            if now >= *at {
                                token.cancel();
                            }
                        }
                        std::thread::sleep(poll);
                    }
                });
            }
            for h in handles {
                per_pool_responses.push(h.join().expect("pool thread panicked"));
            }
            if let Some(h) = update_lane {
                update_responses = h.join().expect("update lane panicked");
            }
        });
        let wall_s = t0.elapsed().as_secs_f64();

        // --- Report assembly.
        let mut per_pool = Vec::with_capacity(n_pools);
        for (p, responses) in per_pool_responses.iter().enumerate() {
            let latencies: Vec<f64> = responses
                .iter()
                .map(|r| r.service.as_secs_f64() * 1e3)
                .collect();
            let after = self.store.pool_stats(p);
            let before = pools_before[p];
            per_pool.push(PoolReport {
                pool: p,
                served: responses.len(),
                queue_peak: queue_peaks[p],
                nodes_expanded: responses.iter().map(|r| r.stats.nodes_expanded).sum(),
                p50_ms: percentile_ms(&latencies, 0.5),
                p99_ms: percentile_ms(&latencies, 0.99),
                touches: blog_spd::PoolTouchStats {
                    accesses: after.accesses - before.accesses,
                    hits: after.hits - before.hits,
                    misses: after.misses - before.misses,
                    fault_ticks: after.fault_ticks - before.fault_ticks,
                },
            });
        }
        let mut responses: Vec<QueryResponse> =
            per_pool_responses.into_iter().flatten().collect();
        responses.sort_by_key(|r| r.request);
        let service_ms: Vec<f64> = responses
            .iter()
            .map(|r| r.service.as_secs_f64() * 1e3)
            .collect();
        let wait_ms: Vec<f64> = responses
            .iter()
            .map(|r| r.queue_wait.as_secs_f64() * 1e3)
            .collect();
        let (warm, cold) = warmth_splits(&responses);
        let completed = responses
            .iter()
            .filter(|r| r.outcome.is_completed())
            .count();
        let cancelled = responses
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Cancelled { .. }))
            .count();
        let mvcc_after = self.store.mvcc_stats();
        let store = stats_delta(store_before, self.store.stats());
        let stats = ServeStats {
            wall_s,
            requests: total,
            completed,
            cancelled,
            rejected: total - completed - cancelled,
            throughput_rps: if wall_s > 0.0 { total as f64 / wall_s } else { 0.0 },
            p50_ms: percentile_ms(&service_ms, 0.5),
            p99_ms: percentile_ms(&service_ms, 0.99),
            wait_p50_ms: percentile_ms(&wait_ms, 0.5),
            wait_p99_ms: percentile_ms(&wait_ms, 0.99),
            overflow_admissions,
            commits: mvcc_after.commits - mvcc_before.commits,
            final_epoch: mvcc_after.committed_epoch,
            per_pool,
            index_hits: store.index_hits,
            index_prunes: store.index_prunes,
            candidates_scanned: store.candidates_scanned,
            store,
            warm,
            cold,
        };
        ServeReport {
            responses,
            updates: update_responses,
            stats,
        }
    }

    /// Execute one job on pool `p`.
    fn execute(&self, p: usize, job: Job) -> QueryResponse {
        let started = Instant::now();
        let queue_wait = started - job.enqueued;
        let session = job.request.session;
        let warm = self
            .sessions
            .lock()
            .unwrap()
            .get(&session.0)
            .is_some_and(|&home| home == p);
        let pool_before = self.store.pool_stats(p);

        // A request whose deadline expired while queued (or whose token
        // the reaper already tripped) is answered without touching an
        // engine (load shedding).
        let shed = job.deadline.is_some_and(|at| started >= at) || job.cancel.is_cancelled();
        let (outcome, stats, epoch) = if shed {
            job.cancel.cancel();
            (
                Outcome::Cancelled {
                    partial: Vec::new(),
                },
                blog_logic::SearchStats::default(),
                self.store.committed_epoch(),
            )
        } else {
            // Pin the epoch *before* parsing: the query is admitted at
            // this snapshot, parsed against its symbol table (so text
            // mentioning vocabulary from a later epoch rejects, exactly
            // as it would have sequentially), and executed against its
            // pages whatever commits land meanwhile.
            let snap = self
                .store
                .begin_read()
                .for_pool(p)
                .with_stall(self.config.stall_ns_per_tick);
            let epoch = snap.epoch();
            match parse_query_symbols(snap.symbols(), &job.request.text) {
                Err(e) => (
                    Outcome::Rejected {
                        error: e.to_string(),
                    },
                    blog_logic::SearchStats::default(),
                    epoch,
                ),
                Ok(query) => {
                    let mut solve = self.config.solve.clone();
                    if job.request.max_nodes.is_some() {
                        solve.max_nodes = job.request.max_nodes;
                    }
                    if job.request.max_solutions.is_some() {
                        solve.max_solutions = job.request.max_solutions;
                    }
                    let budget = solve.max_nodes;
                    let (mut texts, stats) = match self.config.exec {
                        ExecMode::Sequential => {
                            let mut overlay = HashMap::new();
                            let mut wview = WeightView::new(&mut overlay, &self.weights);
                            let cfg = BestFirstConfig {
                                solve,
                                learn: false,
                                cancel: Some(job.cancel.clone()),
                                ..BestFirstConfig::default()
                            };
                            let r = best_first_with(&snap, &query, &mut wview, &cfg);
                            (
                                r.solutions
                                    .iter()
                                    .map(|s| s.solution.to_text_syms(snap.symbols()))
                                    .collect::<Vec<_>>(),
                                r.stats,
                            )
                        }
                        ExecMode::OrParallel { n_workers, policy } => {
                            let cfg = ParallelConfig {
                                n_workers,
                                policy,
                                solve,
                                learn: false,
                                cancel: Some(job.cancel.clone()),
                                ..ParallelConfig::default()
                            };
                            let r = par_best_first_with(&snap, &query, &self.weights, &cfg);
                            (
                                r.solutions
                                    .iter()
                                    .map(|s| s.solution.to_text_syms(snap.symbols()))
                                    .collect::<Vec<_>>(),
                                r.stats,
                            )
                        }
                    };
                    texts.sort();
                    // Classify from what actually stopped the engine, not
                    // from the token alone: a reaper firing *after* the
                    // search ran to its natural end (or to its node
                    // budget) must not relabel a finished answer.
                    let budget_exhausted =
                        budget.is_some_and(|b| stats.nodes_expanded >= b);
                    let cancelled =
                        stats.truncated && !budget_exhausted && job.cancel.is_cancelled();
                    if cancelled {
                        (Outcome::Cancelled { partial: texts }, stats, epoch)
                    } else {
                        (Outcome::Completed { solutions: texts }, stats, epoch)
                    }
                }
            }
        };
        // The pool has now seen this session — but only if an engine ran:
        // a parse rejection or an expired-in-queue shed touched none of
        // the session's tracks, so marking it warm would dilute the
        // warm-vs-cold split the serving report exists to measure.
        if !matches!(outcome, Outcome::Rejected { .. }) && !shed {
            self.sessions.lock().unwrap().insert(session.0, p);
        }
        let pool_after = self.store.pool_stats(p);
        QueryResponse {
            request: job.idx,
            session,
            tenant: job.request.tenant,
            pool: p,
            epoch,
            outcome,
            stats,
            queue_wait,
            service: started.elapsed(),
            warm,
            store_accesses: pool_after.accesses - pool_before.accesses,
            store_hits: pool_after.hits - pool_before.hits,
        }
    }
}

/// SplitMix64 finalizer: spreads consecutive session ids uniformly over
/// pools (consecutive ids modulo `n_pools` would alias tenants to pools
/// in generated workloads).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Field-wise `after - before` of the store counters.
fn stats_delta(before: PagedStoreStats, after: PagedStoreStats) -> PagedStoreStats {
    PagedStoreStats {
        accesses: after.accesses - before.accesses,
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        evictions: after.evictions - before.evictions,
        fault_ticks: after.fault_ticks - before.fault_ticks,
        lock_acquisitions: after.lock_acquisitions - before.lock_acquisitions,
        lock_contended: after.lock_contended.saturating_sub(before.lock_contended),
        index_hits: after.index_hits - before.index_hits,
        index_prunes: after.index_prunes - before.index_prunes,
        candidates_scanned: after.candidates_scanned - before.candidates_scanned,
    }
}
