//! The scheduler: pool queues, affinity routing, overflow admission,
//! the deadline reaper, and the per-pool execution loop.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use blog_core::engine::{best_first_with, BestFirstConfig};
use blog_core::weight::{WeightParams, WeightStore, WeightView};
use blog_logic::{parse_query_shared, CancelToken, ClauseDb, SolveConfig};
use blog_parallel::{par_best_first_with, FrontierPolicy, ParallelConfig};
use blog_spd::{PagedClauseStore, PagedStoreConfig, PagedStoreStats};

use crate::request::{Outcome, QueryRequest, QueryResponse};
use crate::stats::{percentile_ms, warmth_splits, PoolReport, ServeReport, ServeStats};

/// How requests map to pools.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Routing {
    /// Hash the session id onto a pool: one session's stream of similar
    /// queries is serviced consecutively by one pool, so its clause
    /// tracks are still resident when the "second and third query"
    /// arrive — §5's warmth produced by scheduling.
    SessionAffinity,
    /// Ignore sessions; deal requests round-robin (the ablation: same
    /// offered load, no deliberate warmth).
    RoundRobin,
}

impl Routing {
    /// Machine-readable label for sweep tables.
    pub fn label(&self) -> &'static str {
        match self {
            Routing::SessionAffinity => "affinity",
            Routing::RoundRobin => "round-robin",
        }
    }
}

/// Which engine executes a request.
#[derive(Clone, Copy, Debug)]
pub enum ExecMode {
    /// The sequential best-first engine: one pool = one processor.
    Sequential,
    /// The OR-parallel executor: every request fans out over
    /// `n_workers` threads that share the pool's store view (and
    /// therefore its touch attribution).
    OrParallel {
        /// Worker threads per request.
        n_workers: usize,
        /// Frontier sharing policy for those workers.
        policy: FrontierPolicy,
    },
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker pools (each is one OS thread draining its own queue).
    pub n_pools: usize,
    /// Request → pool mapping.
    pub routing: Routing,
    /// Admission-time work stealing: when the routed pool's queue is at
    /// least this deep, the request is diverted to the currently
    /// shortest queue instead (`None` = never divert). This caps the
    /// queue skew a hot session can build while keeping the common case
    /// on its warm pool.
    pub overflow_threshold: Option<usize>,
    /// Engine per request.
    pub exec: ExecMode,
    /// Base limits for every request (`QueryRequest` fields override
    /// per request).
    pub solve: SolveConfig,
    /// Nanoseconds each simulated SPD fault tick stalls the serving
    /// thread (0 = accounting only). With a nonzero stall, pools overlap
    /// one another's disk latency — the multiprogramming form of the
    /// paper's latency hiding, and the mechanism by which serving
    /// throughput scales with pool count even when queries are
    /// CPU-light.
    pub stall_ns_per_tick: u64,
    /// How often the deadline reaper rescans in-flight requests.
    pub reaper_poll: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            n_pools: 2,
            routing: Routing::SessionAffinity,
            overflow_threshold: None,
            exec: ExecMode::Sequential,
            solve: SolveConfig::all(),
            stall_ns_per_tick: 0,
            reaper_poll: Duration::from_micros(200),
        }
    }
}

/// One admitted request waiting in a pool queue.
struct Job {
    idx: usize,
    request: QueryRequest,
    cancel: CancelToken,
    deadline: Option<Instant>,
    enqueued: Instant,
}

/// The multi-session query server. See the crate docs for the model.
///
/// The server borrows the clause database (read-only — queries are
/// parsed through [`parse_query_shared`]) and owns the shared
/// [`PagedClauseStore`] plus a frozen [`WeightStore`] snapshot. The
/// store's cache persists across [`serve`](Self::serve) batches, so a
/// second batch starts warm — servers don't reboot between requests.
pub struct QueryServer<'db> {
    db: &'db ClauseDb,
    weights: WeightStore,
    store: PagedClauseStore<'db>,
    config: ServeConfig,
    /// Session → pool that last completed one of its requests (the
    /// warmth ledger; persists across batches).
    sessions: Mutex<HashMap<u64, usize>>,
    /// Round-robin cursor (persists across batches so consecutive
    /// batches keep rotating).
    rr_next: AtomicUsize,
}

impl<'db> QueryServer<'db> {
    /// A server over `db` with default (untrained) weights.
    ///
    /// # Panics
    /// Panics if `config.n_pools == 0` or the store geometry cannot hold
    /// the database (see [`PagedClauseStore::new`]).
    pub fn new(
        db: &'db ClauseDb,
        store_config: PagedStoreConfig,
        config: ServeConfig,
    ) -> QueryServer<'db> {
        Self::with_weights(
            db,
            store_config,
            config,
            WeightStore::new(WeightParams::default()),
        )
    }

    /// A server executing against a trained weight snapshot (weights are
    /// frozen for the server's lifetime: serving never learns, so
    /// concurrent and sequential execution provably enumerate the same
    /// solution sets).
    pub fn with_weights(
        db: &'db ClauseDb,
        store_config: PagedStoreConfig,
        config: ServeConfig,
        weights: WeightStore,
    ) -> QueryServer<'db> {
        assert!(config.n_pools >= 1, "need at least one pool");
        if let ExecMode::OrParallel { n_workers, .. } = config.exec {
            assert!(n_workers >= 1, "need at least one worker per request");
        }
        QueryServer {
            db,
            weights,
            store: PagedClauseStore::new(db, store_config),
            config,
            sessions: Mutex::new(HashMap::new()),
            rr_next: AtomicUsize::new(0),
        }
    }

    /// The shared store (for inspecting cache state between batches).
    pub fn store(&self) -> &PagedClauseStore<'db> {
        &self.store
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Route one session id under the configured policy.
    fn route(&self, session: u64) -> usize {
        match self.config.routing {
            Routing::SessionAffinity => (splitmix(session) % self.config.n_pools as u64) as usize,
            Routing::RoundRobin => {
                self.rr_next.fetch_add(1, Ordering::Relaxed) % self.config.n_pools
            }
        }
    }

    /// Serve a batch of requests to completion and report.
    ///
    /// The whole batch is admitted first (the *offered load*), then the
    /// pools drain their queues concurrently; the call returns when
    /// every request has a response. Responses come back in batch order.
    pub fn serve(&self, requests: Vec<QueryRequest>) -> ServeReport {
        let n_pools = self.config.n_pools;
        let t0 = Instant::now();

        // --- Admission: route every request, overflow-diverting off
        // deep queues onto the currently shortest one.
        let mut queues: Vec<VecDeque<Job>> = (0..n_pools).map(|_| VecDeque::new()).collect();
        let mut overflow_admissions = 0u64;
        let mut reaper_watch: Vec<(Instant, CancelToken)> = Vec::new();
        for (idx, request) in requests.into_iter().enumerate() {
            let mut pool = self.route(request.session.0);
            if let Some(threshold) = self.config.overflow_threshold {
                if queues[pool].len() >= threshold {
                    let shortest = (0..n_pools)
                        .min_by_key(|&p| queues[p].len())
                        .expect("n_pools >= 1");
                    if queues[shortest].len() < queues[pool].len() {
                        pool = shortest;
                        overflow_admissions += 1;
                    }
                }
            }
            let now = Instant::now();
            let cancel = CancelToken::new();
            let deadline = request.deadline.map(|d| now + d);
            if let Some(at) = deadline {
                reaper_watch.push((at, cancel.clone()));
            }
            queues[pool].push_back(Job {
                idx,
                request,
                cancel,
                deadline,
                enqueued: now,
            });
        }
        let queue_peaks: Vec<usize> = queues.iter().map(VecDeque::len).collect();
        let total: usize = queue_peaks.iter().sum();
        let store_before = self.store.stats();
        let pools_before: Vec<_> = (0..n_pools).map(|p| self.store.pool_stats(p)).collect();

        // --- Drain: one thread per pool, plus a deadline reaper.
        let remaining = AtomicUsize::new(total);
        // Live pool-thread count, decremented by a drop guard so the
        // reaper still exits (and the scope can propagate the panic)
        // when a pool thread unwinds without draining its queue.
        let pools_alive = AtomicUsize::new(n_pools);
        struct AliveGuard<'a>(&'a AtomicUsize);
        impl Drop for AliveGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Release);
            }
        }
        let queues: Vec<Mutex<VecDeque<Job>>> = queues.into_iter().map(Mutex::new).collect();
        let mut per_pool_responses: Vec<Vec<QueryResponse>> = Vec::with_capacity(n_pools);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_pools)
                .map(|p| {
                    let queue = &queues[p];
                    let remaining = &remaining;
                    let pools_alive = &pools_alive;
                    scope.spawn(move || {
                        let _alive = AliveGuard(pools_alive);
                        let mut out = Vec::new();
                        loop {
                            let job = queue.lock().unwrap().pop_front();
                            let Some(job) = job else { break };
                            out.push(self.execute(p, job));
                            remaining.fetch_sub(1, Ordering::Release);
                        }
                        out
                    })
                })
                .collect();
            if !reaper_watch.is_empty() {
                let remaining = &remaining;
                let pools_alive = &pools_alive;
                let watch = &reaper_watch;
                let poll = self.config.reaper_poll;
                scope.spawn(move || {
                    while remaining.load(Ordering::Acquire) > 0
                        && pools_alive.load(Ordering::Acquire) > 0
                    {
                        let now = Instant::now();
                        for (at, token) in watch {
                            if now >= *at {
                                token.cancel();
                            }
                        }
                        std::thread::sleep(poll);
                    }
                });
            }
            for h in handles {
                per_pool_responses.push(h.join().expect("pool thread panicked"));
            }
        });
        let wall_s = t0.elapsed().as_secs_f64();

        // --- Report assembly.
        let mut per_pool = Vec::with_capacity(n_pools);
        for (p, responses) in per_pool_responses.iter().enumerate() {
            let latencies: Vec<f64> = responses
                .iter()
                .map(|r| r.service.as_secs_f64() * 1e3)
                .collect();
            let after = self.store.pool_stats(p);
            let before = pools_before[p];
            per_pool.push(PoolReport {
                pool: p,
                served: responses.len(),
                queue_peak: queue_peaks[p],
                nodes_expanded: responses.iter().map(|r| r.stats.nodes_expanded).sum(),
                p50_ms: percentile_ms(&latencies, 0.5),
                p99_ms: percentile_ms(&latencies, 0.99),
                touches: blog_spd::PoolTouchStats {
                    accesses: after.accesses - before.accesses,
                    hits: after.hits - before.hits,
                    misses: after.misses - before.misses,
                    fault_ticks: after.fault_ticks - before.fault_ticks,
                },
            });
        }
        let mut responses: Vec<QueryResponse> =
            per_pool_responses.into_iter().flatten().collect();
        responses.sort_by_key(|r| r.request);
        let service_ms: Vec<f64> = responses
            .iter()
            .map(|r| r.service.as_secs_f64() * 1e3)
            .collect();
        let wait_ms: Vec<f64> = responses
            .iter()
            .map(|r| r.queue_wait.as_secs_f64() * 1e3)
            .collect();
        let (warm, cold) = warmth_splits(&responses);
        let completed = responses
            .iter()
            .filter(|r| r.outcome.is_completed())
            .count();
        let cancelled = responses
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Cancelled { .. }))
            .count();
        let stats = ServeStats {
            wall_s,
            requests: total,
            completed,
            cancelled,
            rejected: total - completed - cancelled,
            throughput_rps: if wall_s > 0.0 { total as f64 / wall_s } else { 0.0 },
            p50_ms: percentile_ms(&service_ms, 0.5),
            p99_ms: percentile_ms(&service_ms, 0.99),
            wait_p50_ms: percentile_ms(&wait_ms, 0.5),
            wait_p99_ms: percentile_ms(&wait_ms, 0.99),
            overflow_admissions,
            per_pool,
            store: stats_delta(store_before, self.store.stats()),
            warm,
            cold,
        };
        ServeReport { responses, stats }
    }

    /// Execute one job on pool `p`.
    fn execute(&self, p: usize, job: Job) -> QueryResponse {
        let started = Instant::now();
        let queue_wait = started - job.enqueued;
        let session = job.request.session;
        let warm = self
            .sessions
            .lock()
            .unwrap()
            .get(&session.0)
            .is_some_and(|&home| home == p);
        let pool_before = self.store.pool_stats(p);

        // A request whose deadline expired while queued (or whose token
        // the reaper already tripped) is answered without touching an
        // engine (load shedding).
        let shed = job.deadline.is_some_and(|at| started >= at) || job.cancel.is_cancelled();
        let outcome = if shed {
            job.cancel.cancel();
            (
                Outcome::Cancelled {
                    partial: Vec::new(),
                },
                blog_logic::SearchStats::default(),
            )
        } else {
            match parse_query_shared(self.db, &job.request.text) {
                Err(e) => (
                    Outcome::Rejected {
                        error: e.to_string(),
                    },
                    blog_logic::SearchStats::default(),
                ),
                Ok(query) => {
                    let mut solve = self.config.solve.clone();
                    if job.request.max_nodes.is_some() {
                        solve.max_nodes = job.request.max_nodes;
                    }
                    if job.request.max_solutions.is_some() {
                        solve.max_solutions = job.request.max_solutions;
                    }
                    let view = self.store.pool_view(p).with_stall(self.config.stall_ns_per_tick);
                    let budget = solve.max_nodes;
                    let (mut texts, stats) = match self.config.exec {
                        ExecMode::Sequential => {
                            let mut overlay = HashMap::new();
                            let mut wview = WeightView::new(&mut overlay, &self.weights);
                            let cfg = BestFirstConfig {
                                solve,
                                learn: false,
                                cancel: Some(job.cancel.clone()),
                                ..BestFirstConfig::default()
                            };
                            let r = best_first_with(&view, &query, &mut wview, &cfg);
                            (
                                r.solutions
                                    .iter()
                                    .map(|s| s.solution.to_text(self.db))
                                    .collect::<Vec<_>>(),
                                r.stats,
                            )
                        }
                        ExecMode::OrParallel { n_workers, policy } => {
                            let cfg = ParallelConfig {
                                n_workers,
                                policy,
                                solve,
                                learn: false,
                                cancel: Some(job.cancel.clone()),
                                ..ParallelConfig::default()
                            };
                            let r = par_best_first_with(&view, &query, &self.weights, &cfg);
                            (
                                r.solutions
                                    .iter()
                                    .map(|s| s.solution.to_text(self.db))
                                    .collect::<Vec<_>>(),
                                r.stats,
                            )
                        }
                    };
                    texts.sort();
                    // Classify from what actually stopped the engine, not
                    // from the token alone: a reaper firing *after* the
                    // search ran to its natural end (or to its node
                    // budget) must not relabel a finished answer.
                    let budget_exhausted =
                        budget.is_some_and(|b| stats.nodes_expanded >= b);
                    let cancelled =
                        stats.truncated && !budget_exhausted && job.cancel.is_cancelled();
                    if cancelled {
                        (Outcome::Cancelled { partial: texts }, stats)
                    } else {
                        (Outcome::Completed { solutions: texts }, stats)
                    }
                }
            }
        };
        let (outcome, stats) = outcome;
        // The pool has now seen this session — but only if an engine ran:
        // a parse rejection or an expired-in-queue shed touched none of
        // the session's tracks, so marking it warm would dilute the
        // warm-vs-cold split the serving report exists to measure.
        if !matches!(outcome, Outcome::Rejected { .. }) && !shed {
            self.sessions.lock().unwrap().insert(session.0, p);
        }
        let pool_after = self.store.pool_stats(p);
        QueryResponse {
            request: job.idx,
            session,
            tenant: job.request.tenant,
            pool: p,
            outcome,
            stats,
            queue_wait,
            service: started.elapsed(),
            warm,
            store_accesses: pool_after.accesses - pool_before.accesses,
            store_hits: pool_after.hits - pool_before.hits,
        }
    }
}

/// SplitMix64 finalizer: spreads consecutive session ids uniformly over
/// pools (consecutive ids modulo `n_pools` would alias tenants to pools
/// in generated workloads).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Field-wise `after - before` of the store counters.
fn stats_delta(before: PagedStoreStats, after: PagedStoreStats) -> PagedStoreStats {
    PagedStoreStats {
        accesses: after.accesses - before.accesses,
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        evictions: after.evictions - before.evictions,
        fault_ticks: after.fault_ticks - before.fault_ticks,
        lock_acquisitions: after.lock_acquisitions - before.lock_acquisitions,
        lock_contended: after.lock_contended.saturating_sub(before.lock_contended),
    }
}
