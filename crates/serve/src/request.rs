//! Requests and responses — the server's wire-shaped surface.

use std::time::Duration;

use blog_logic::{ClauseId, SearchStats};

/// Identity of one user session: the unit of cache-warmth affinity.
///
/// Requests sharing a `SessionId` are assumed to be the paper's "second
/// and third query that is similar to the first"; the scheduler routes
/// them to the same pool under [`Routing::SessionAffinity`](crate::Routing).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SessionId(pub u64);

/// One query submitted to the server.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// The issuing session (drives affinity routing and warmth stats).
    pub session: SessionId,
    /// The issuing tenant, for reporting only — tenants are a property
    /// of the *workload* (disjoint working sets); the scheduler sees
    /// sessions.
    pub tenant: u32,
    /// Query text, parsed read-only against the shared database (so a
    /// malformed query rejects without touching any engine).
    pub text: String,
    /// Wall-clock budget measured from admission; past it the request's
    /// cancel token is tripped and the search stops where it stands.
    pub deadline: Option<Duration>,
    /// Node-expansion budget for this request (overrides the server's
    /// default when set).
    pub max_nodes: Option<u64>,
    /// Stop after this many solutions (overrides the server's default
    /// when set).
    pub max_solutions: Option<usize>,
}

impl QueryRequest {
    /// A request with no per-request limits.
    pub fn new(session: u64, text: impl Into<String>) -> QueryRequest {
        QueryRequest {
            session: SessionId(session),
            tenant: 0,
            text: text.into(),
            deadline: None,
            max_nodes: None,
            max_solutions: None,
        }
    }

    /// Tag the issuing tenant.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Set a wall-clock deadline (measured from admission).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set a node-expansion budget.
    pub fn with_max_nodes(mut self, budget: u64) -> Self {
        self.max_nodes = Some(budget);
        self
    }

    /// Cap the number of solutions.
    pub fn with_max_solutions(mut self, cap: usize) -> Self {
        self.max_solutions = Some(cap);
        self
    }
}

/// Machine-readable client backoff hint, carried by the outcomes a
/// client may want to resubmit after ([`Outcome::Overloaded`],
/// [`Outcome::Failed`]) — so open-loop drivers can implement
/// client-side backoff without parsing error strings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryAdvice {
    /// Whether resubmitting can possibly succeed. `false` means the
    /// failure is permanent (damaged storage, an unparseable state) and
    /// the client should surface the error instead of retrying.
    pub retryable: bool,
    /// How long to wait before resubmitting (zero when `retryable` is
    /// `false`, or when the server has no reason to ask for a delay).
    pub retry_after: Duration,
}

impl RetryAdvice {
    /// "Resubmit after `delay`."
    pub fn after(delay: Duration) -> RetryAdvice {
        RetryAdvice {
            retryable: true,
            retry_after: delay,
        }
    }

    /// "Do not resubmit — this will keep failing."
    pub fn give_up() -> RetryAdvice {
        RetryAdvice {
            retryable: false,
            retry_after: Duration::ZERO,
        }
    }
}

/// How a request ended.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The search ran to its natural end (or its *node budget* — see
    /// [`SearchStats::truncated`] for that distinction). Solutions are
    /// rendered binding texts, sorted, so two runs compare by `==`.
    Completed {
        /// Sorted rendered solutions.
        solutions: Vec<String>,
    },
    /// The deadline reaper tripped the request's cancel token mid-search
    /// (or before it started). Whatever solutions the engine had already
    /// found are kept — a timed-out user still sees partial answers.
    Cancelled {
        /// Sorted rendered solutions found before cancellation.
        partial: Vec<String>,
    },
    /// The query text did not parse against the shared database (syntax
    /// error or a symbol the program never defined).
    Rejected {
        /// Parse error text.
        error: String,
    },
    /// The memory governor refused the submission: the store-wide byte
    /// budget could not fit the request's reservation even after
    /// evicting the answer cache. The request never reached a pool —
    /// back off per `advice` and resubmit.
    Overloaded {
        /// When to resubmit.
        advice: RetryAdvice,
    },
    /// The request ran but could not produce a trustworthy answer: the
    /// store faulted past the retry budget, the storage is permanently
    /// damaged, the executing engine panicked, or the pool's circuit
    /// breaker was open with no valid cache entry to serve. **No partial
    /// solutions are returned** — a failed request never reports a
    /// half-enumerated set as if it were the answer.
    Failed {
        /// Human-readable failure description.
        error: String,
        /// Whether (and when) resubmitting could succeed.
        advice: RetryAdvice,
    },
}

impl Outcome {
    /// Whether this is a [`Completed`](Outcome::Completed) outcome.
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed { .. })
    }

    /// The rendered solutions, however the request ended (empty for
    /// rejections, governor refusals and failures).
    pub fn solutions(&self) -> &[String] {
        match self {
            Outcome::Completed { solutions } => solutions,
            Outcome::Cancelled { partial } => partial,
            Outcome::Rejected { .. } | Outcome::Overloaded { .. } | Outcome::Failed { .. } => &[],
        }
    }

    /// The backoff hint, for the outcomes that carry one.
    pub fn retry_advice(&self) -> Option<RetryAdvice> {
        match self {
            Outcome::Overloaded { advice } | Outcome::Failed { advice, .. } => Some(*advice),
            _ => None,
        }
    }
}

/// Where a completed answer came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServedFrom {
    /// A search engine ran against an epoch-pinned snapshot.
    Engine,
    /// The answer cache: a prior complete enumeration of the same
    /// canonical query, still valid at this request's epoch, was
    /// returned without touching any engine.
    Cache,
}

impl ServedFrom {
    /// Machine-readable label for sweep tables.
    pub fn label(&self) -> &'static str {
        match self {
            ServedFrom::Engine => "engine",
            ServedFrom::Cache => "cache",
        }
    }
}

/// One served request, with its scheduling and execution telemetry.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Index of the request in the submitted batch (responses are
    /// returned in batch order whatever order pools finished in).
    pub request: usize,
    /// Echo of the request's session.
    pub session: SessionId,
    /// Echo of the request's tenant.
    pub tenant: u32,
    /// The pool that executed the request.
    pub pool: usize,
    /// The store epoch the request executed at: its solutions are
    /// exactly the sequential solution set of the epoch-`epoch` snapshot,
    /// whatever updates committed while the search ran.
    pub epoch: u64,
    /// How the request ended.
    pub outcome: Outcome,
    /// Engine work counters for this request.
    pub stats: SearchStats,
    /// Time between admission and a pool picking the request up.
    pub queue_wait: Duration,
    /// Time the pool spent executing (parse + search + render).
    pub service: Duration,
    /// Whether this request rode prior work: the session had already
    /// completed a request *on this pool* (track warmth produced by
    /// affinity routing), or the answer came straight from the answer
    /// cache ([`served_from`](Self::served_from) says which).
    pub warm: bool,
    /// Whether the answer came from an engine run or the answer cache.
    pub served_from: ServedFrom,
    /// Clause touches this request routed through the shared store.
    pub store_accesses: u64,
    /// How many of those touches hit a resident track.
    pub store_hits: u64,
}

impl QueryResponse {
    /// This request's store hit rate in `[0, 1]`.
    pub fn store_hit_rate(&self) -> f64 {
        if self.store_accesses == 0 {
            return 0.0;
        }
        self.store_hits as f64 / self.store_accesses as f64
    }
}

/// One mutation inside an [`UpdateRequest`].
#[derive(Clone, Debug)]
pub enum UpdateOp {
    /// Parse `text` as clause source (facts and rules, no queries) and
    /// assert every clause, interning any vocabulary the program has
    /// never seen — this is the one path by which new constants and
    /// functors enter the store; the query parse path keeps rejecting
    /// unknown symbols against its snapshot's table.
    Assert {
        /// Clause source text, e.g. `"f(larry,zoe)."`.
        text: String,
    },
    /// Retract one clause by id (ids are dense and never reused; asserts
    /// report the ids they allocated).
    Retract {
        /// The clause to retract.
        id: ClauseId,
    },
}

/// A batch of mutations applied as **one atomic transaction**: either
/// every op commits under a single new epoch, or none do.
#[derive(Clone, Debug)]
pub struct UpdateRequest {
    /// The issuing session (reporting only — updates are not routed to
    /// pools; they run on the server's update lane).
    pub session: SessionId,
    /// The mutations, applied in order inside one transaction.
    pub ops: Vec<UpdateOp>,
    /// Earliest time this update may start, measured from batch
    /// admission — lets a mixed batch interleave commits into the middle
    /// of the query stream deterministically (`None` = immediately).
    pub not_before: Option<Duration>,
}

impl UpdateRequest {
    /// An update with the given ops and no start delay.
    pub fn new(session: u64, ops: Vec<UpdateOp>) -> UpdateRequest {
        UpdateRequest {
            session: SessionId(session),
            ops,
            not_before: None,
        }
    }

    /// Convenience: a single-assert update.
    pub fn assert_text(session: u64, text: impl Into<String>) -> UpdateRequest {
        UpdateRequest::new(session, vec![UpdateOp::Assert { text: text.into() }])
    }

    /// Convenience: a single-retract update.
    pub fn retract(session: u64, id: ClauseId) -> UpdateRequest {
        UpdateRequest::new(session, vec![UpdateOp::Retract { id }])
    }

    /// Set the earliest start time (from batch admission).
    pub fn with_not_before(mut self, delay: Duration) -> Self {
        self.not_before = Some(delay);
        self
    }
}

/// How an update ended.
#[derive(Clone, Debug)]
pub enum UpdateOutcome {
    /// The transaction committed.
    Committed {
        /// Clause ids allocated by the update's asserts, in op order.
        asserted: Vec<ClauseId>,
    },
    /// An op failed (parse error, unknown retract target, capacity…);
    /// the whole transaction was aborted and nothing changed.
    Rejected {
        /// The failing op's error text.
        error: String,
    },
}

impl UpdateOutcome {
    /// Whether this is a [`Committed`](UpdateOutcome::Committed) outcome.
    pub fn is_committed(&self) -> bool {
        matches!(self, UpdateOutcome::Committed { .. })
    }
}

/// One applied (or rejected) update.
#[derive(Clone, Debug)]
pub struct UpdateResponse {
    /// Index of the update in the submitted batch.
    pub request: usize,
    /// Echo of the update's session.
    pub session: SessionId,
    /// The epoch this update committed as (for rejections, the epoch
    /// that was committed when the update failed). Queries tagged with
    /// an [`epoch`](QueryResponse::epoch) `>=` this value see the
    /// update's effects; older snapshots never do.
    pub epoch: u64,
    /// How the update ended.
    pub outcome: UpdateOutcome,
}
