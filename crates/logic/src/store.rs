//! The clause database with the paper's weighted-pointer layout.
//!
//! Section 5 / figure 4 of the paper store the program as "a linked list
//! data structure, with blocks representing each Horn clause … and
//! pointers to blocks representing other rules or facts in the database
//! that can resolve the rule", one weight per pointer — i.e. an inverted
//! file from every body goal to its candidate resolvers.
//!
//! [`ClauseDb`] reproduces exactly that: clauses are blocks, and for every
//! body-goal position of every clause (plus, lazily, every query goal) the
//! db precomputes the ordered candidate list. A *pointer* is identified by
//! [`PointerKey`](crate::node::PointerKey) = (caller clause, goal index,
//! target clause); the B-LOG weight store in `blog-core` hangs weights off
//! those keys, which is the software form of "weights are stored with the
//! pointers, rather than at the beginning of each block".

use std::borrow::Cow;
use std::collections::HashMap;

use crate::bindings::BindingLookup;
use crate::clause::{Clause, ClauseId};
use crate::symbol::{Sym, SymbolTable};
use crate::term::Term;

/// How candidate clauses are selected for a goal.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub enum IndexMode {
    /// All clauses of the goal's predicate, in program order — the
    /// figure-4 pointer list exactly as stored. This is the default so
    /// work counters match the paper's model one-to-one.
    #[default]
    PredicateOnly,
    /// Additionally filter by the goal's (dereferenced) first argument,
    /// the classic Prolog-engine optimization: candidates whose head
    /// first argument cannot match are skipped without a unification
    /// attempt. Never changes the solution set, only the attempt counts.
    FirstArg,
}

/// First-argument index key: the principal functor of a bound argument.
///
/// Public so secondary indexes (the bitmap clause index in `blog-spd`)
/// can key on exactly the same discriminator the database's own
/// first-argument index uses — the differential oracle tests rely on
/// both sides agreeing on what "the leading functor" means.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArgKey {
    /// A constant (`sam`).
    Atom(Sym),
    /// An integer (`42`).
    Int(i64),
    /// A compound term's principal functor (`point/2`).
    Struct(Sym, u32),
}

/// The [`ArgKey`] of a (dereferenced) term, `None` for unbound variables
/// — which match any head, so they cannot narrow a candidate set.
pub fn arg_key(t: &Term) -> Option<ArgKey> {
    match t {
        Term::Var(_) => None,
        Term::Atom(s) => Some(ArgKey::Atom(*s)),
        Term::Int(n) => Some(ArgKey::Int(*n)),
        Term::Struct(f, args) => Some(ArgKey::Struct(*f, args.len() as u32)),
    }
}

/// Per-predicate first-argument index.
#[derive(Default, Clone, Debug)]
struct FirstArgIndex {
    /// Clauses whose head first argument is the given constant, sorted.
    by_key: HashMap<ArgKey, Vec<ClauseId>>,
    /// Clauses whose head first argument is a variable (match anything),
    /// sorted.
    var_headed: Vec<ClauseId>,
}

/// Errors raised when inserting ill-formed clauses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DbError {
    /// Clause head was a variable or integer.
    UncallableHead,
    /// A body goal was a variable or integer.
    UncallableGoal { goal_idx: usize },
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::UncallableHead => write!(f, "clause head is not a callable term"),
            DbError::UncallableGoal { goal_idx } => {
                write!(f, "body goal {goal_idx} is not a callable term")
            }
        }
    }
}

impl std::error::Error for DbError {}

/// The clause database: symbol table, clause blocks, predicate index and
/// the per-goal candidate ("pointer") lists of figure 4.
#[derive(Default, Clone, Debug)]
pub struct ClauseDb {
    symbols: SymbolTable,
    clauses: Vec<Clause>,
    /// Predicate `(functor, arity)` → clauses defining it, in program order.
    index: HashMap<(Sym, u32), Vec<ClauseId>>,
    /// `clause_goal_candidates[c][g]` = candidate resolvers for goal `g` of
    /// clause `c` — the figure-4 pointer lists. Rebuilt on insertion.
    clause_goal_candidates: Vec<Vec<Vec<ClauseId>>>,
    candidates_dirty: bool,
    /// First-argument indexes per predicate (built with the pointers).
    first_arg: HashMap<(Sym, u32), FirstArgIndex>,
    /// Candidate-selection mode.
    index_mode: IndexMode,
}

impl ClauseDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a symbol name.
    pub fn intern(&mut self, name: &str) -> Sym {
        self.symbols.intern(name)
    }

    /// The symbol table (read-only).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Look up an interned symbol by name.
    pub fn sym(&self, name: &str) -> Option<Sym> {
        self.symbols.get(name)
    }

    /// Add a clause block. Returns its id.
    pub fn add_clause(&mut self, clause: Clause) -> Result<ClauseId, DbError> {
        if clause.head.functor().is_none() {
            return Err(DbError::UncallableHead);
        }
        for (goal_idx, g) in clause.body.iter().enumerate() {
            if g.functor().is_none() {
                return Err(DbError::UncallableGoal { goal_idx });
            }
        }
        let id = ClauseId(self.clauses.len() as u32);
        let pred = clause.head_pred();
        self.index.entry(pred).or_default().push(id);
        self.clauses.push(clause);
        self.candidates_dirty = true;
        Ok(id)
    }

    /// Convenience: add a fact.
    pub fn add_fact(&mut self, head: Term) -> Result<ClauseId, DbError> {
        self.add_clause(Clause::fact(head))
    }

    /// The clause with id `id`.
    pub fn clause(&self, id: ClauseId) -> &Clause {
        &self.clauses[id.index()]
    }

    /// All clauses, in insertion order.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clause blocks.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Clauses defining predicate `(functor, arity)`, in program order —
    /// Prolog's textual clause order, which the baselines rely on.
    pub fn resolvers(&self, pred: (Sym, u32)) -> &[ClauseId] {
        self.index.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Candidate resolvers for a goal term (by its functor). Goals that are
    /// unbound variables or integers have no candidates.
    pub fn candidates_for(&self, goal: &Term) -> &[ClauseId] {
        match goal.functor() {
            Some(pred) => self.resolvers(pred),
            None => &[],
        }
    }

    /// Finalize the figure-4 pointer lists after a batch of insertions.
    ///
    /// Called automatically by [`parse_program`](crate::parse_program);
    /// callers constructing databases by hand should call it once all
    /// clauses are in (it is idempotent).
    pub fn build_pointers(&mut self) {
        self.clause_goal_candidates.clear();
        self.clause_goal_candidates.reserve(self.clauses.len());
        let lists: Vec<Vec<Vec<ClauseId>>> = self
            .clauses
            .iter()
            .map(|c| {
                c.body
                    .iter()
                    .map(|g| self.candidates_for(g).to_vec())
                    .collect()
            })
            .collect();
        self.clause_goal_candidates = lists;
        self.build_first_arg_index();
        self.candidates_dirty = false;
    }

    fn build_first_arg_index(&mut self) {
        self.first_arg.clear();
        for (i, clause) in self.clauses.iter().enumerate() {
            let pred = clause.head_pred();
            let entry = self.first_arg.entry(pred).or_default();
            let first_arg = match &clause.head {
                Term::Struct(_, args) => Some(&args[0]),
                _ => None,
            };
            match first_arg.and_then(arg_key) {
                Some(key) => entry.by_key.entry(key).or_default().push(ClauseId(i as u32)),
                None => entry.var_headed.push(ClauseId(i as u32)),
            }
        }
    }

    /// Select the candidate-selection mode (see [`IndexMode`]).
    pub fn set_index_mode(&mut self, mode: IndexMode) {
        self.index_mode = mode;
    }

    /// The current candidate-selection mode.
    pub fn index_mode(&self) -> IndexMode {
        self.index_mode
    }

    /// Candidate resolvers for a goal under the current [`IndexMode`],
    /// dereferencing the goal's first argument through `bindings`.
    ///
    /// With `FirstArg` indexing, the returned list is the program-order
    /// merge of the matching-constant bucket and the variable-headed
    /// clauses; candidates that cannot match are absent. The result is
    /// always a subsequence of [`candidates_for`](Self::candidates_for).
    pub fn candidates_for_resolved<'a>(
        &'a self,
        goal: &Term,
        bindings: &dyn BindingLookup,
    ) -> Cow<'a, [ClauseId]> {
        let full = self.candidates_for(goal);
        if self.index_mode == IndexMode::PredicateOnly {
            return Cow::Borrowed(full);
        }
        let Some(pred) = goal.functor() else {
            return Cow::Borrowed(full);
        };
        // Only compound goals have a first argument to index on.
        let Term::Struct(_, args) = goal else {
            return Cow::Borrowed(full);
        };
        let first = bindings.walk(&args[0]);
        let Some(key) = arg_key(first) else {
            return Cow::Borrowed(full); // unbound: every clause may match
        };
        let Some(index) = self.first_arg.get(&pred) else {
            return Cow::Borrowed(full);
        };
        let matching = index.by_key.get(&key).map(Vec::as_slice).unwrap_or(&[]);
        if index.var_headed.is_empty() {
            return Cow::Borrowed(matching);
        }
        // Merge two sorted id lists to preserve program order.
        let mut merged = Vec::with_capacity(matching.len() + index.var_headed.len());
        let (mut a, mut b) = (matching.iter().peekable(), index.var_headed.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    if x < y {
                        merged.push(x);
                        a.next();
                    } else {
                        merged.push(y);
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&y)) => {
                    merged.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        Cow::Owned(merged)
    }

    /// The precomputed pointer list for goal `goal_idx` of clause `caller`.
    ///
    /// # Panics
    /// Panics if [`build_pointers`](Self::build_pointers) has not been
    /// called since the last insertion.
    pub fn pointer_list(&self, caller: ClauseId, goal_idx: usize) -> &[ClauseId] {
        assert!(
            !self.candidates_dirty,
            "ClauseDb::build_pointers must be called after insertions"
        );
        &self.clause_goal_candidates[caller.index()][goal_idx]
    }

    /// Whether pointer lists are up to date.
    pub fn pointers_built(&self) -> bool {
        !self.candidates_dirty && self.clause_goal_candidates.len() == self.clauses.len()
    }

    /// Total number of figure-4 pointers in the database (arcs in the
    /// "inverted file"). Used by experiments to report database size.
    pub fn pointer_count(&self) -> usize {
        self.clause_goal_candidates
            .iter()
            .flat_map(|per_clause| per_clause.iter())
            .map(Vec::len)
            .sum()
    }

    /// All predicates defined in the database.
    pub fn predicates(&self) -> impl Iterator<Item = (Sym, u32)> + '_ {
        self.index.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::Bindings;
    use crate::term::VarId;

    fn family_db() -> ClauseDb {
        let mut db = ClauseDb::new();
        let f = db.intern("f");
        let gf = db.intern("gf");
        let sam = db.intern("sam");
        let larry = db.intern("larry");
        let den = db.intern("den");
        // gf(X,Z) :- f(X,Y), f(Y,Z).
        db.add_clause(Clause::new(
            Term::app(gf, vec![Term::Var(VarId(0)), Term::Var(VarId(2))]),
            vec![
                Term::app(f, vec![Term::Var(VarId(0)), Term::Var(VarId(1))]),
                Term::app(f, vec![Term::Var(VarId(1)), Term::Var(VarId(2))]),
            ],
        ))
        .unwrap();
        db.add_fact(Term::app(f, vec![Term::Atom(sam), Term::Atom(larry)]))
            .unwrap();
        db.add_fact(Term::app(f, vec![Term::Atom(larry), Term::Atom(den)]))
            .unwrap();
        db.build_pointers();
        db
    }

    #[test]
    fn resolvers_in_program_order() {
        let db = family_db();
        let f = db.sym("f").unwrap();
        let ids = db.resolvers((f, 2));
        assert_eq!(ids, &[ClauseId(1), ClauseId(2)]);
    }

    #[test]
    fn pointer_lists_cover_body_goals() {
        let db = family_db();
        // Rule 0 has two body goals, each resolvable by the two f/2 facts.
        assert_eq!(db.pointer_list(ClauseId(0), 0), &[ClauseId(1), ClauseId(2)]);
        assert_eq!(db.pointer_list(ClauseId(0), 1), &[ClauseId(1), ClauseId(2)]);
        assert_eq!(db.pointer_count(), 4);
    }

    #[test]
    fn uncallable_head_rejected() {
        let mut db = ClauseDb::new();
        let err = db.add_fact(Term::Int(3)).unwrap_err();
        assert_eq!(err, DbError::UncallableHead);
    }

    #[test]
    fn uncallable_goal_rejected() {
        let mut db = ClauseDb::new();
        let p = db.intern("p");
        let err = db
            .add_clause(Clause::new(
                Term::app(p, vec![Term::Var(VarId(0))]),
                vec![Term::Var(VarId(0))],
            ))
            .unwrap_err();
        assert_eq!(err, DbError::UncallableGoal { goal_idx: 0 });
    }

    #[test]
    fn unknown_predicate_has_no_candidates() {
        let db = family_db();
        let mut db2 = db.clone();
        let q = db2.intern("q");
        assert!(db2.resolvers((q, 1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "build_pointers")]
    fn pointer_list_panics_when_dirty() {
        let mut db = family_db();
        let p = db.intern("p");
        db.add_fact(Term::app(p, vec![Term::Int(1)])).unwrap();
        let _ = db.pointer_list(ClauseId(0), 0);
    }

    #[test]
    fn first_arg_index_filters_bound_goals() {
        let mut db = family_db();
        db.set_index_mode(IndexMode::FirstArg);
        let f = db.sym("f").unwrap();
        let sam = db.sym("sam").unwrap();
        let goal = Term::app(f, vec![Term::Atom(sam), Term::Var(VarId(0))]);
        let b = Bindings::new();
        let filtered = db.candidates_for_resolved(&goal, &b);
        // Only f(sam,larry) has first argument sam.
        assert_eq!(filtered.as_ref(), &[ClauseId(1)]);
    }

    #[test]
    fn first_arg_index_keeps_unbound_goals_full() {
        let mut db = family_db();
        db.set_index_mode(IndexMode::FirstArg);
        let f = db.sym("f").unwrap();
        let goal = Term::app(f, vec![Term::Var(VarId(0)), Term::Var(VarId(1))]);
        let b = Bindings::new();
        let filtered = db.candidates_for_resolved(&goal, &b);
        assert_eq!(filtered.as_ref(), db.resolvers((f, 2)));
    }

    #[test]
    fn first_arg_index_merges_var_headed_clauses_in_order() {
        let mut db = ClauseDb::new();
        let p = db.intern("p");
        let a = db.intern("a");
        let b_ = db.intern("b");
        // p(a). p(X). p(b). — a goal p(a) must see clauses 0 and 1, in order.
        db.add_fact(Term::app(p, vec![Term::Atom(a)])).unwrap();
        db.add_clause(Clause::new(Term::app(p, vec![Term::Var(VarId(0))]), vec![]))
            .unwrap();
        db.add_fact(Term::app(p, vec![Term::Atom(b_)])).unwrap();
        db.build_pointers();
        db.set_index_mode(IndexMode::FirstArg);
        let goal = Term::app(p, vec![Term::Atom(a)]);
        let filtered = db.candidates_for_resolved(&goal, &Bindings::new());
        assert_eq!(filtered.as_ref(), &[ClauseId(0), ClauseId(1)]);
    }

    #[test]
    fn first_arg_index_derefs_through_bindings() {
        let mut db = family_db();
        db.set_index_mode(IndexMode::FirstArg);
        let f = db.sym("f").unwrap();
        let larry = db.sym("larry").unwrap();
        // Goal f(V, W) with V already bound to larry.
        let goal = Term::app(f, vec![Term::Var(VarId(0)), Term::Var(VarId(1))]);
        let mut b = Bindings::new();
        let mut tr = crate::Trail::new();
        b.bind(&mut tr, VarId(0), Term::Atom(larry));
        let filtered = db.candidates_for_resolved(&goal, &b);
        // f(larry,den) is clause 2 in the test db (den only).
        assert_eq!(filtered.as_ref(), &[ClauseId(2)]);
    }

    #[test]
    fn predicate_only_mode_is_the_default() {
        let db = family_db();
        assert_eq!(db.index_mode(), IndexMode::PredicateOnly);
        let f = db.sym("f").unwrap();
        let sam = db.sym("sam").unwrap();
        let goal = Term::app(f, vec![Term::Atom(sam), Term::Var(VarId(0))]);
        let all = db.candidates_for_resolved(&goal, &Bindings::new());
        assert_eq!(all.as_ref(), db.resolvers((f, 2)));
    }
}
