//! Robinson unification over the binding store.
//!
//! Implemented iteratively with an explicit work stack so that deep terms
//! cannot overflow the call stack. The occurs check is optional and off by
//! default, matching the DEC-10 Prolog the paper takes as its baseline;
//! the B-LOG engines run with whatever the caller configures, so baseline
//! and best-first searches always unify identically.

use crate::bindings::{BindingLookup, BindingWrite, Trail};
use crate::term::{Term, VarId};

/// Attempt to unify `a` and `b` under `bindings`.
///
/// Generic over the binding representation: the flat
/// [`Bindings`](crate::bindings::Bindings) store and the persistent
/// [`DeltaBindings`](crate::frames::DeltaBindings) frame builder both
/// implement [`BindingWrite`], so every engine unifies through exactly
/// this code whatever its search-state representation.
///
/// On success, returns `true` with the new bindings recorded on `trail`.
/// On failure, returns `false` — the caller must undo to its own trail
/// mark (bindings made before the failure point are *not* rolled back
/// here, exactly like a WAM-style engine).
pub fn unify<B: BindingWrite + ?Sized>(
    bindings: &mut B,
    trail: &mut Trail,
    a: &Term,
    b: &Term,
    occurs_check: bool,
) -> bool {
    let mut stack: Vec<(Term, Term)> = vec![(a.clone(), b.clone())];
    while let Some((x, y)) = stack.pop() {
        let x = bindings.walk(&x).clone();
        let y = bindings.walk(&y).clone();
        match (x, y) {
            (Term::Var(v), Term::Var(w)) if v == w => {}
            (Term::Var(v), t) | (t, Term::Var(v)) => {
                if occurs_check && occurs(bindings, v, &t) {
                    return false;
                }
                bindings.bind(trail, v, t);
            }
            (Term::Atom(p), Term::Atom(q)) => {
                if p != q {
                    return false;
                }
            }
            (Term::Int(p), Term::Int(q)) => {
                if p != q {
                    return false;
                }
            }
            (Term::Struct(f, xs), Term::Struct(g, ys)) => {
                if f != g || xs.len() != ys.len() {
                    return false;
                }
                for (xa, ya) in xs.iter().zip(ys.iter()) {
                    stack.push((xa.clone(), ya.clone()));
                }
            }
            _ => return false,
        }
    }
    true
}

/// Whether variable `v` occurs in `t` after dereferencing through
/// `bindings`.
pub fn occurs<B: BindingLookup + ?Sized>(bindings: &B, v: VarId, t: &Term) -> bool {
    let mut stack: Vec<Term> = vec![t.clone()];
    while let Some(u) = stack.pop() {
        match bindings.walk(&u) {
            Term::Var(w) => {
                if *w == v {
                    return true;
                }
            }
            Term::Atom(_) | Term::Int(_) => {}
            Term::Struct(_, args) => {
                for a in args.iter() {
                    stack.push(a.clone());
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::Bindings;
    use crate::symbol::Sym;

    fn atom(i: u32) -> Term {
        Term::Atom(Sym(i))
    }
    fn var(i: u32) -> Term {
        Term::Var(VarId(i))
    }
    fn app(f: u32, args: Vec<Term>) -> Term {
        Term::app(Sym(f), args)
    }

    fn fresh() -> (Bindings, Trail) {
        (Bindings::new(), Trail::new())
    }

    #[test]
    fn atoms_unify_iff_equal() {
        let (mut b, mut t) = fresh();
        assert!(unify(&mut b, &mut t, &atom(1), &atom(1), false));
        assert!(!unify(&mut b, &mut t, &atom(1), &atom(2), false));
    }

    #[test]
    fn ints_unify_iff_equal() {
        let (mut b, mut t) = fresh();
        assert!(unify(&mut b, &mut t, &Term::Int(5), &Term::Int(5), false));
        assert!(!unify(&mut b, &mut t, &Term::Int(5), &Term::Int(6), false));
    }

    #[test]
    fn var_binds_to_term() {
        let (mut b, mut t) = fresh();
        assert!(unify(&mut b, &mut t, &var(0), &atom(3), false));
        assert_eq!(b.walk(&var(0)), &atom(3));
    }

    #[test]
    fn structs_unify_argwise() {
        let (mut b, mut t) = fresh();
        let lhs = app(0, vec![var(0), atom(2)]);
        let rhs = app(0, vec![atom(1), var(1)]);
        assert!(unify(&mut b, &mut t, &lhs, &rhs, false));
        assert_eq!(b.walk(&var(0)), &atom(1));
        assert_eq!(b.walk(&var(1)), &atom(2));
    }

    #[test]
    fn functor_mismatch_fails() {
        let (mut b, mut t) = fresh();
        assert!(!unify(
            &mut b,
            &mut t,
            &app(0, vec![atom(1)]),
            &app(1, vec![atom(1)]),
            false
        ));
    }

    #[test]
    fn arity_mismatch_fails() {
        let (mut b, mut t) = fresh();
        assert!(!unify(
            &mut b,
            &mut t,
            &app(0, vec![atom(1)]),
            &app(0, vec![atom(1), atom(2)]),
            false
        ));
    }

    #[test]
    fn atom_vs_struct_fails() {
        let (mut b, mut t) = fresh();
        assert!(!unify(&mut b, &mut t, &atom(0), &app(0, vec![atom(1)]), false));
    }

    #[test]
    fn same_var_unifies_without_binding() {
        let (mut b, mut t) = fresh();
        assert!(unify(&mut b, &mut t, &var(4), &var(4), false));
        assert!(t.is_empty());
    }

    #[test]
    fn var_var_aliasing() {
        let (mut b, mut t) = fresh();
        assert!(unify(&mut b, &mut t, &var(0), &var(1), false));
        assert!(unify(&mut b, &mut t, &var(1), &atom(9), false));
        assert_eq!(b.walk(&var(0)), &atom(9));
    }

    #[test]
    fn occurs_check_rejects_cyclic() {
        let (mut b, mut t) = fresh();
        let cyc = app(0, vec![var(0)]);
        assert!(!unify(&mut b, &mut t, &var(0), &cyc, true));
    }

    #[test]
    fn without_occurs_check_cyclic_binds() {
        // DEC-10 Prolog behaviour: X = f(X) silently succeeds.
        let (mut b, mut t) = fresh();
        let cyc = app(0, vec![var(1)]);
        assert!(unify(&mut b, &mut t, &var(0), &cyc, false));
    }

    #[test]
    fn occurs_dereferences_chains() {
        let (mut b, mut tr) = fresh();
        // v1 := f(v2); does v2 occur in v1?
        assert!(unify(&mut b, &mut tr, &var(1), &app(0, vec![var(2)]), false));
        assert!(occurs(&b, VarId(2), &var(1)));
        assert!(!occurs(&b, VarId(3), &var(1)));
    }

    #[test]
    fn deep_terms_do_not_overflow() {
        // A term nested 100_000 deep would kill a recursive unifier; our
        // explicit work stack handles it. The nested term's *Drop* is
        // recursive in debug builds, so run on a thread with a large
        // stack — unify itself must succeed well within it.
        std::thread::Builder::new()
            .stack_size(256 * 1024 * 1024)
            .spawn(|| {
                let mut t1 = atom(0);
                let mut t2 = atom(0);
                for _ in 0..100_000 {
                    t1 = app(1, vec![t1]);
                    t2 = app(1, vec![t2]);
                }
                let (mut b, mut tr) = fresh();
                assert!(unify(&mut b, &mut tr, &t1, &t2, false));
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn failed_unification_leaves_partial_bindings_on_trail() {
        // Callers are responsible for undoing; verify the contract.
        let (mut b, mut tr) = fresh();
        let mark = tr.mark();
        let lhs = app(0, vec![var(0), atom(1)]);
        let rhs = app(0, vec![atom(5), atom(2)]);
        assert!(!unify(&mut b, &mut tr, &lhs, &rhs, false));
        b.undo_to(&mut tr, mark);
        assert!(b.get(VarId(0)).is_none());
    }
}
