//! A small Prolog-ish reader.
//!
//! Supports exactly the language the paper uses (facts, rules, queries —
//! figure 1) plus integers and lists, which the workload generators use:
//!
//! ```text
//! gf(X,Z) :- f(X,Y), f(Y,Z).      % a rule
//! f(curt, elain).                 % a fact
//! ?- gf(sam, G).                  % a query
//! ```
//!
//! Variables start with an uppercase letter or `_`; atoms start lowercase
//! or are quoted (`'Like This'`); `%` starts a line comment. Lists use the
//! usual `[a, b | Tail]` sugar desugared onto `'.'/2` and `[]`.

use std::collections::HashMap;
use std::fmt;

use crate::clause::Clause;
use crate::store::ClauseDb;
use crate::term::{Term, VarId};

/// A parsed query: conjunction of goals plus the user's variable names
/// (query variable `i` is named `var_names[i]`).
#[derive(Clone, Debug)]
pub struct Query {
    /// The conjunction, in textual order.
    pub goals: Vec<Term>,
    /// Original source names of query variables, indexed by [`VarId`].
    pub var_names: Vec<String>,
}

impl Query {
    /// The variable id for source name `name`, if it appears in the query.
    pub fn var(&self, name: &str) -> Option<VarId> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u32))
    }
}

/// A parsed program: the clause database plus its queries.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// The clause store, with pointer lists already built.
    pub db: ClauseDb,
    /// Queries in source order.
    pub queries: Vec<Query>,
}

/// Parse failure with 1-based line/column.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Atom(String),
    Var(String),
    Int(i64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Pipe,
    Comma,
    Dot,
    ColonDash,
    QueryDash,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

struct Spanned {
    tok: Tok,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn next_tok(&mut self) -> Result<Spanned, ParseError> {
        self.skip_ws();
        let (line, col) = (self.line, self.col);
        let mk = |tok| Spanned { tok, line, col };
        let Some(c) = self.peek() else {
            return Ok(mk(Tok::Eof));
        };
        match c {
            b'(' => {
                self.bump();
                Ok(mk(Tok::LParen))
            }
            b')' => {
                self.bump();
                Ok(mk(Tok::RParen))
            }
            b'[' => {
                self.bump();
                Ok(mk(Tok::LBracket))
            }
            b']' => {
                self.bump();
                Ok(mk(Tok::RBracket))
            }
            b'|' => {
                self.bump();
                Ok(mk(Tok::Pipe))
            }
            b',' => {
                self.bump();
                Ok(mk(Tok::Comma))
            }
            b'.' => {
                self.bump();
                Ok(mk(Tok::Dot))
            }
            b':' => {
                self.bump();
                if self.peek() == Some(b'-') {
                    self.bump();
                    Ok(mk(Tok::ColonDash))
                } else {
                    Err(self.err("expected '-' after ':'"))
                }
            }
            b'?' => {
                self.bump();
                if self.peek() == Some(b'-') {
                    self.bump();
                    Ok(mk(Tok::QueryDash))
                } else {
                    Err(self.err("expected '-' after '?'"))
                }
            }
            b'\'' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'\'') => break,
                        Some(ch) => s.push(ch as char),
                        None => return Err(self.err("unterminated quoted atom")),
                    }
                }
                Ok(mk(Tok::Atom(s)))
            }
            b'-' if self.peek2().is_some_and(|d| d.is_ascii_digit()) => {
                self.bump();
                let n = self.lex_int()?;
                Ok(mk(Tok::Int(-n)))
            }
            c if c.is_ascii_digit() => {
                let n = self.lex_int()?;
                Ok(mk(Tok::Int(n)))
            }
            c if c.is_ascii_lowercase() => {
                let s = self.lex_ident();
                Ok(mk(Tok::Atom(s)))
            }
            c if c.is_ascii_uppercase() || c == b'_' => {
                let s = self.lex_ident();
                Ok(mk(Tok::Var(s)))
            }
            c => Err(self.err(format!("unexpected character '{}'", c as char))),
        }
    }

    fn lex_int(&mut self) -> Result<i64, ParseError> {
        let mut n: i64 = 0;
        while let Some(c) = self.peek() {
            if !c.is_ascii_digit() {
                break;
            }
            self.bump();
            n = n
                .checked_mul(10)
                .and_then(|m| m.checked_add((c - b'0') as i64))
                .ok_or_else(|| self.err("integer literal overflows i64"))?;
        }
        Ok(n)
    }

    fn lex_ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    lookahead: Spanned,
    db: ClauseDb,
    /// Variable name → index, reset per clause/query.
    vars: HashMap<String, VarId>,
    var_names: Vec<String>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let lookahead = lexer.next_tok()?;
        Ok(Parser {
            lexer,
            lookahead,
            db: ClauseDb::new(),
            vars: HashMap::new(),
            var_names: Vec::new(),
        })
    }

    fn advance(&mut self) -> Result<Spanned, ParseError> {
        let next = self.lexer.next_tok()?;
        Ok(std::mem::replace(&mut self.lookahead, next))
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.lookahead.line,
            col: self.lookahead.col,
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.lookahead.tok == tok {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}")))
        }
    }

    fn fresh_clause_scope(&mut self) {
        self.vars.clear();
        self.var_names.clear();
    }

    fn var_id(&mut self, name: String) -> VarId {
        // An `_` on its own is always a fresh anonymous variable.
        if name == "_" {
            let id = VarId(self.var_names.len() as u32);
            self.var_names.push(format!("_G{}", id.0));
            return id;
        }
        if let Some(&id) = self.vars.get(&name) {
            return id;
        }
        let id = VarId(self.var_names.len() as u32);
        self.vars.insert(name.clone(), id);
        self.var_names.push(name);
        id
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.advance()?.tok {
            Tok::Int(n) => Ok(Term::Int(n)),
            Tok::Var(name) => Ok(Term::Var(self.var_id(name))),
            Tok::Atom(name) => {
                if self.lookahead.tok == Tok::LParen {
                    self.advance()?;
                    let mut args = vec![self.parse_term()?];
                    while self.lookahead.tok == Tok::Comma {
                        self.advance()?;
                        args.push(self.parse_term()?);
                    }
                    self.expect(Tok::RParen, "')' closing argument list")?;
                    let f = self.db.intern(&name);
                    Ok(Term::app(f, args))
                } else {
                    Ok(Term::Atom(self.db.intern(&name)))
                }
            }
            Tok::LBracket => self.parse_list(),
            other => Err(self.err_here(format!("expected a term, found {other:?}"))),
        }
    }

    fn parse_list(&mut self) -> Result<Term, ParseError> {
        let nil = Term::Atom(self.db.intern("[]"));
        if self.lookahead.tok == Tok::RBracket {
            self.advance()?;
            return Ok(nil);
        }
        let mut items = vec![self.parse_term()?];
        while self.lookahead.tok == Tok::Comma {
            self.advance()?;
            items.push(self.parse_term()?);
        }
        let tail = if self.lookahead.tok == Tok::Pipe {
            self.advance()?;
            self.parse_term()?
        } else {
            nil
        };
        self.expect(Tok::RBracket, "']' closing list")?;
        let cons = self.db.intern(".");
        Ok(items
            .into_iter()
            .rev()
            .fold(tail, |acc, item| Term::app(cons, vec![item, acc])))
    }

    fn parse_goals(&mut self) -> Result<Vec<Term>, ParseError> {
        let mut goals = vec![self.parse_term()?];
        while self.lookahead.tok == Tok::Comma {
            self.advance()?;
            goals.push(self.parse_term()?);
        }
        Ok(goals)
    }

    fn parse_program(mut self) -> Result<Program, ParseError> {
        let mut queries = Vec::new();
        loop {
            match self.lookahead.tok {
                Tok::Eof => break,
                Tok::QueryDash => {
                    self.advance()?;
                    self.fresh_clause_scope();
                    let goals = self.parse_goals()?;
                    self.expect(Tok::Dot, "'.' ending query")?;
                    queries.push(Query {
                        goals,
                        var_names: std::mem::take(&mut self.var_names),
                    });
                }
                _ => {
                    self.fresh_clause_scope();
                    let head = self.parse_term()?;
                    let body = if self.lookahead.tok == Tok::ColonDash {
                        self.advance()?;
                        self.parse_goals()?
                    } else {
                        Vec::new()
                    };
                    self.expect(Tok::Dot, "'.' ending clause")?;
                    self.db
                        .add_clause(Clause::new(head, body))
                        .map_err(|e| self.err_here(e.to_string()))?;
                }
            }
        }
        self.db.build_pointers();
        Ok(Program {
            db: self.db,
            queries,
        })
    }
}

/// Parse a full program (clauses and `?-` queries).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    Parser::new(src)?.parse_program()
}

/// Parse a single query body (no leading `?-`, no trailing `.` required)
/// against an existing database, so sessions can pose new queries without
/// re-reading the program.
pub fn parse_query(db: &mut ClauseDb, src: &str) -> Result<Query, ParseError> {
    let mut p = Parser::new(src)?;
    // Reuse the existing database's symbol table by swapping it in.
    std::mem::swap(&mut p.db, db);
    let res = (|| {
        if p.lookahead.tok == Tok::QueryDash {
            p.advance()?;
        }
        let goals = p.parse_goals()?;
        if p.lookahead.tok == Tok::Dot {
            p.advance()?;
        }
        if p.lookahead.tok != Tok::Eof {
            return Err(p.err_here("trailing input after query"));
        }
        Ok(goals)
    })();
    std::mem::swap(&mut p.db, db);
    let goals = res?;
    Ok(Query {
        goals,
        var_names: p.var_names,
    })
}

/// Rebuild `t` with every symbol pushed through `resolve` (called with
/// the symbol's *name* in the scratch table it was parsed into). Errors
/// carry the offending name.
fn remap_term(
    t: &Term,
    scratch: &SymbolTable,
    resolve: &mut dyn FnMut(&str) -> Result<crate::symbol::Sym, String>,
) -> Result<Term, String> {
    match t {
        Term::Var(v) => Ok(Term::Var(*v)),
        Term::Int(n) => Ok(Term::Int(*n)),
        Term::Atom(s) => Ok(Term::Atom(resolve(scratch.name(*s))?)),
        Term::Struct(f, args) => {
            let f = resolve(scratch.name(*f))?;
            let args = args
                .iter()
                .map(|a| remap_term(a, scratch, resolve))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Term::app(f, args))
        }
    }
}

use crate::symbol::SymbolTable;

/// [`parse_query`] against a **frozen** symbol table: `symbols` is only
/// read, so many server pools can parse concurrently while other threads
/// search (or write new epochs of) the same database.
///
/// Symbols are resolved through the existing table instead of being
/// interned; a query mentioning an atom or functor the program never
/// defined is rejected with a parse error. (Such a goal could only fail
/// anyway — no clause head can contain a symbol that is not in the
/// table — so refusing it early turns a silent empty answer into a
/// diagnosable client error, which is what a multi-tenant server wants.)
pub fn parse_query_symbols(symbols: &SymbolTable, src: &str) -> Result<Query, ParseError> {
    // Parse into a scratch symbol table, then remap every symbol into the
    // shared table by name.
    let mut scratch = ClauseDb::new();
    let parsed = parse_query(&mut scratch, src)?;
    let mut resolve =
        |name: &str| symbols.get(name).ok_or_else(|| name.to_string());
    let goals = parsed
        .goals
        .iter()
        .map(|g| remap_term(g, scratch.symbols(), &mut resolve))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|name| ParseError {
            message: format!("unknown symbol `{name}` (not defined by the program)"),
            line: 1,
            col: 1,
        })?;
    Ok(Query {
        goals,
        var_names: parsed.var_names,
    })
}

/// [`parse_query_symbols`] addressed by database (the historical entry
/// point; the symbol table is the only part of `db` it reads).
pub fn parse_query_shared(db: &ClauseDb, src: &str) -> Result<Query, ParseError> {
    parse_query_symbols(db.symbols(), src)
}

/// Parse clause text (facts and rules, **no** `?-` queries) while
/// interning any new constants or functors into `symbols`.
///
/// This is the write-path twin of [`parse_query_symbols`]: an update
/// transaction hands in its private copy-on-write symbol table, so new
/// tenants can introduce vocabulary without the read-only parse path
/// giving up its rejection guarantee. Returned clauses use the caller's
/// table; the scratch table the text was lexed into is discarded.
pub fn parse_clauses_interning(
    symbols: &mut SymbolTable,
    src: &str,
) -> Result<Vec<Clause>, ParseError> {
    let scratch = parse_program(src)?;
    if !scratch.queries.is_empty() {
        return Err(ParseError {
            message: "queries are not allowed in an update (assert clauses only)".into(),
            line: 1,
            col: 1,
        });
    }
    let mut resolve = |name: &str| Ok::<_, String>(symbols.intern(name));
    let mut out = Vec::with_capacity(scratch.db.len());
    for clause in scratch.db.clauses() {
        let head = remap_term(&clause.head, scratch.db.symbols(), &mut resolve)
            .expect("interning resolver is infallible");
        let body = clause
            .body
            .iter()
            .map(|g| {
                remap_term(g, scratch.db.symbols(), &mut resolve)
                    .expect("interning resolver is infallible")
            })
            .collect();
        out.push(Clause::new(head, body));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarId;

    #[test]
    fn parses_figure_1_program() {
        let src = "
            gf(X,Z) :- f(X,Y), f(Y,Z).
            gf(X,Z) :- f(X,Y), m(Y,Z).
            f(curt,elain). f(sam,larry). f(dan,pat). f(larry,den).
            f(pat,john). f(larry,doug).
            m(elain,john). m(marian,elain). m(peg,den). m(peg,doug).
            ?- gf(sam,G).
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.db.len(), 12);
        assert_eq!(p.queries.len(), 1);
        let q = &p.queries[0];
        assert_eq!(q.var_names, vec!["G"]);
        assert_eq!(q.var("G"), Some(VarId(0)));
    }

    #[test]
    fn clause_vars_are_scoped_per_clause() {
        let p = parse_program("p(X) :- q(X). r(X).").unwrap();
        // Both clauses see their X as var 0.
        assert_eq!(p.db.clause(crate::ClauseId(0)).n_vars, 1);
        assert_eq!(p.db.clause(crate::ClauseId(1)).n_vars, 1);
    }

    #[test]
    fn anonymous_vars_are_fresh() {
        let p = parse_program("p(_, _).").unwrap();
        assert_eq!(p.db.clause(crate::ClauseId(0)).n_vars, 2);
    }

    #[test]
    fn integers_and_negatives() {
        let p = parse_program("age(sam, 70). delta(-3).").unwrap();
        assert_eq!(p.db.len(), 2);
    }

    #[test]
    fn quoted_atoms() {
        let p = parse_program("likes('Sam Smith', jazz).").unwrap();
        assert!(p.db.sym("Sam Smith").is_some());
    }

    #[test]
    fn lists_desugar_to_cons() {
        let p = parse_program("l([a, b]). e([]). t([H|T]).").unwrap();
        let c = p.db.clause(crate::ClauseId(0));
        // l('.'(a, '.'(b, [])))
        match &c.head {
            Term::Struct(_, args) => match &args[0] {
                Term::Struct(cons, inner) => {
                    assert_eq!(p.db.symbols().name(*cons), ".");
                    assert_eq!(inner.len(), 2);
                }
                other => panic!("expected cons cell, got {other:?}"),
            },
            other => panic!("expected struct head, got {other:?}"),
        }
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program("% a comment\np(a). % another\n").unwrap();
        assert_eq!(p.db.len(), 1);
    }

    #[test]
    fn error_reports_position() {
        let err = parse_program("p(a)\nq(b).").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn missing_dot_is_an_error() {
        assert!(parse_program("p(a)").is_err());
    }

    #[test]
    fn parse_query_reuses_db_symbols() {
        let mut p = parse_program("f(a,b).").unwrap();
        let before = p.db.symbols().len();
        let q = parse_query(&mut p.db, "f(a, X)").unwrap();
        assert_eq!(q.goals.len(), 1);
        assert_eq!(q.var_names, vec!["X"]);
        // 'f' and 'a' were already interned.
        assert_eq!(p.db.symbols().len(), before);
    }

    #[test]
    fn parse_query_rejects_trailing_garbage() {
        let mut p = parse_program("f(a,b).").unwrap();
        assert!(parse_query(&mut p.db, "f(a,X). oops").is_err());
    }

    #[test]
    fn parse_query_shared_reads_only() {
        let p = parse_program("f(a,b). f(b,c). g(c,d).").unwrap();
        let before = p.db.symbols().len();
        let q = parse_query_shared(&p.db, "f(a, X), g(X, Y)").unwrap();
        assert_eq!(q.goals.len(), 2);
        assert_eq!(q.var_names, vec!["X", "Y"]);
        assert_eq!(p.db.symbols().len(), before, "no interning happened");
        // The remapped query must behave exactly like the mutably-parsed one.
        let mut db2 = p.db.clone();
        let q_mut = parse_query(&mut db2, "f(a, X), g(X, Y)").unwrap();
        assert_eq!(format!("{:?}", q.goals), format!("{:?}", q_mut.goals));
    }

    #[test]
    fn parse_query_shared_rejects_unknown_symbols() {
        let p = parse_program("f(a,b).").unwrap();
        let err = parse_query_shared(&p.db, "f(zebra, X)").unwrap_err();
        assert!(err.message.contains("zebra"), "{err}");
        let err = parse_query_shared(&p.db, "nosuchpred(a)").unwrap_err();
        assert!(err.message.contains("nosuchpred"), "{err}");
    }

    #[test]
    fn parse_query_shared_still_reports_syntax_errors() {
        let p = parse_program("f(a,b).").unwrap();
        assert!(parse_query_shared(&p.db, "f(a,").is_err());
    }

    #[test]
    fn parse_query_symbols_matches_shared_path() {
        let p = parse_program("f(a,b). g(b,c).").unwrap();
        let q = parse_query_symbols(p.db.symbols(), "f(a, X), g(X, Y)").unwrap();
        let q2 = parse_query_shared(&p.db, "f(a, X), g(X, Y)").unwrap();
        assert_eq!(format!("{:?}", q.goals), format!("{:?}", q2.goals));
        assert!(parse_query_symbols(p.db.symbols(), "f(zebra, X)").is_err());
    }

    #[test]
    fn parse_clauses_interning_adds_new_symbols() {
        let p = parse_program("f(a,b).").unwrap();
        let mut syms = p.db.symbols().clone();
        let before = syms.len();
        let clauses =
            parse_clauses_interning(&mut syms, "f(b, zebra). gf(X,Z) :- f(X,Y), f(Y,Z).")
                .unwrap();
        assert_eq!(clauses.len(), 2);
        assert!(syms.len() > before, "new constants were interned");
        assert!(syms.get("zebra").is_some());
        assert!(syms.get("gf").is_some());
        // Existing symbols resolve to their old handles.
        assert_eq!(syms.get("f"), p.db.sym("f"));
        // Rules keep their variable structure.
        assert_eq!(clauses[1].n_vars, 3);
        // The shared read path still rejects what the *original* table
        // doesn't know.
        assert!(parse_query_shared(&p.db, "gf(a, X)").is_err());
        assert!(parse_query_symbols(&syms, "gf(a, X)").is_ok());
    }

    #[test]
    fn parse_clauses_interning_rejects_queries() {
        let mut syms = SymbolTable::new();
        assert!(parse_clauses_interning(&mut syms, "f(a,b). ?- f(a,X).").is_err());
    }

    #[test]
    fn multi_goal_query() {
        let mut p = parse_program("f(a,b). g(b,c).").unwrap();
        let q = parse_query(&mut p.db, "f(a,X), g(X,Y)").unwrap();
        assert_eq!(q.goals.len(), 2);
        assert_eq!(q.var_names, vec!["X", "Y"]);
    }
}
