//! # blog-logic — the logic-programming substrate for B-LOG
//!
//! This crate implements everything the B-LOG paper (Lipovski &
//! Hermenegildo, ICPP 1985) assumes as given: a Horn-clause database with
//! the weighted-pointer ("inverted file") layout of the paper's figure 4, a
//! unification engine, a small Prolog-ish parser, and the *baseline* search
//! strategies B-LOG is compared against — Prolog's depth-first SLD
//! resolution, breadth-first search, and iterative deepening.
//!
//! The B-LOG contribution itself (weights, bounds, best-first
//! branch-and-bound, sessions) lives in the `blog-core` crate and drives
//! search through the [`expand`] primitive defined here, so
//! every strategy — baseline or best-first — resolves goals through exactly
//! the same unification and clause-indexing code.
//!
//! ## Quick tour
//!
//! ```
//! use blog_logic::{parse_program, solve::{dfs_all, SolveConfig}};
//!
//! let src = "
//!     gf(X,Z) :- f(X,Y), f(Y,Z).
//!     gf(X,Z) :- f(X,Y), m(Y,Z).
//!     f(curt,elain).  f(sam,larry).
//!     f(dan,pat).     f(larry,den).
//!     f(pat,john).    f(larry,doug).
//!     m(elain,john).  m(marian,elain).
//!     m(peg,den).     m(peg,doug).
//!     ?- gf(sam,G).
//! ";
//! let program = parse_program(src).unwrap();
//! let query = &program.queries[0];
//! let result = dfs_all(&program.db, query, &SolveConfig::default());
//! let names: Vec<String> = result
//!     .solutions
//!     .iter()
//!     .map(|s| s.binding_text(&program.db, "G").unwrap())
//!     .collect();
//! assert_eq!(names, vec!["den", "doug"]);
//! ```

pub mod bindings;
pub mod canon;
pub mod clause;
pub mod frames;
pub mod goals;
pub mod node;
pub mod parser;
pub mod pretty;
pub mod solve;
pub mod source;
pub mod store;
pub mod symbol;
pub mod term;
pub mod unify;

pub use bindings::{BindingLookup, BindingWrite, Bindings, Trail};
pub use canon::canonical_query;
pub use clause::{Clause, ClauseId};
pub use frames::{BindingFrame, DeltaBindings, DEFAULT_FLATTEN_THRESHOLD};
pub use goals::GoalStack;
pub use node::{
    expand, expand_via, try_expand_via, Caller, Expansion, Goal, NodeState, PointerKey, SearchNode,
    StateRepr,
};
pub use source::{ClauseSource, SourceStats, StoreError, StoreErrorKind};
pub use parser::{
    parse_clauses_interning, parse_program, parse_query, parse_query_shared,
    parse_query_symbols, ParseError, Program, Query,
};
pub use pretty::{clause_to_source, term_to_string, term_to_string_syms};
pub use solve::{
    bfs_all, dfs_all, iterative_deepening, CancelToken, SearchStats, Solution, SolveConfig,
    SolveResult,
};
pub use store::{arg_key, ArgKey, ClauseDb, IndexMode};
pub use symbol::{Sym, SymbolTable};
pub use term::{Term, VarId};
pub use unify::unify;
