//! Baseline SLD search strategies.
//!
//! These are the comparators the paper positions B-LOG against in section
//! 3: Prolog's **depth-first** search ("useful in single processor
//! implementations, \[but\] does not lend itself easily to parallel
//! processing"), **breadth-first** search ("tends to work near the root of
//! the tree, doing extra work before a solution is found"), and — as the
//! standard completeness fix for depth-first — iterative deepening.
//!
//! The depth-first engine uses the classic trail/backtracking discipline;
//! breadth-first clones nodes into a FIFO frontier. Both count work with
//! the same [`SearchStats`] so results are directly comparable with the
//! best-first engine in `blog-core`.

use std::collections::VecDeque;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use serde::Serialize;

use crate::bindings::{Bindings, Trail};
use crate::goals::GoalStack;
use crate::node::{expand, Caller, ExpandStats, Goal, SearchNode, StateRepr};
use crate::parser::Query;
use crate::pretty::term_to_string;
use crate::store::ClauseDb;
use crate::term::{Term, VarId};
use crate::unify::unify;

/// A cooperative cancellation flag shared between a search and whoever
/// may need to stop it mid-flight (a deadline reaper, a user hitting
/// Ctrl-C, a server shedding load).
///
/// Cloning is cheap (`Arc`); every clone observes the same flag. Engines
/// that accept a token check it once per node expansion — the same
/// cadence at which the OR-parallel frontier's `done` flag from the
/// sharded-frontier work is observed — and report the cut as
/// [`SearchStats::truncated`], exactly like an exhausted node budget.
/// Cancellation is one-way: there is no `reset`, so a token describes a
/// single request's lifetime.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trip the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](Self::cancel) has been called on any clone.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Limits and switches shared by all engines.
#[derive(Clone, Debug)]
pub struct SolveConfig {
    /// Stop after this many solutions (`None` = enumerate all).
    pub max_solutions: Option<usize>,
    /// Do not expand nodes at this chain length (`None` = unlimited).
    /// Needed for completeness on left-recursive programs.
    pub max_depth: Option<u32>,
    /// Abort the search after expanding this many nodes.
    pub max_nodes: Option<u64>,
    /// Search-state representation for the sprouting (frontier-based)
    /// engines: structure-sharing frames by default, copy-per-child as
    /// the measurable baseline. The trail-based depth-first engine never
    /// sprouts and ignores this.
    pub state_repr: StateRepr,
    /// Span context of the request this solve belongs to (`None` — the
    /// default — means untraced: every instrumentation site downstream
    /// is a branch on `None`). Engines and executors parent their spans
    /// and events (worker spans, frontier dive/steal events) under it.
    pub trace: Option<blog_obs::SpanCtx>,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            max_solutions: None,
            max_depth: None,
            max_nodes: Some(10_000_000),
            state_repr: StateRepr::default(),
            trace: None,
        }
    }
}

impl SolveConfig {
    /// Enumerate every solution, no depth limit.
    pub fn all() -> Self {
        Self::default()
    }

    /// Stop at the first solution.
    pub fn first() -> Self {
        SolveConfig {
            max_solutions: Some(1),
            ..Self::default()
        }
    }

    /// Set a depth limit.
    pub fn with_max_depth(mut self, d: u32) -> Self {
        self.max_depth = Some(d);
        self
    }

    /// Set a node budget.
    pub fn with_max_nodes(mut self, n: u64) -> Self {
        self.max_nodes = Some(n);
        self
    }

    /// Set the search-state representation.
    pub fn with_state_repr(mut self, repr: StateRepr) -> Self {
        self.state_repr = repr;
        self
    }

    /// Attach the request's span context (see [`SolveConfig::trace`]).
    pub fn with_trace(mut self, trace: Option<blog_obs::SpanCtx>) -> Self {
        self.trace = trace;
        self
    }
}

/// Work counters, comparable across every engine in the workspace.
#[derive(Clone, Copy, Default, Debug, Serialize)]
pub struct SearchStats {
    /// OR-tree nodes whose first goal was resolved.
    pub nodes_expanded: u64,
    /// Head unifications attempted.
    pub unify_attempts: u64,
    /// Head unifications that succeeded.
    pub unify_successes: u64,
    /// Solutions recorded.
    pub solutions: u64,
    /// Failure leaves reached (a node with goals left but no children).
    pub failures: u64,
    /// Largest frontier (breadth-first/best-first) or choice-point stack
    /// (depth-first) observed.
    pub max_frontier: usize,
    /// Whether the depth limit cut off at least one chain.
    pub depth_cutoff: bool,
    /// Whether the node budget aborted the search.
    pub truncated: bool,
    /// Bytes of search state physically copied sprouting children (the
    /// §6 copying cost; see
    /// [`ExpandStats::bytes_copied`](crate::node::ExpandStats)). Zero for
    /// the trail-based depth-first engine, which never sprouts.
    pub bytes_copied: u64,
}

impl SearchStats {
    /// Fold another engine's counters into this one (used by iterative
    /// deepening and by the parallel executor's per-worker merge).
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes_expanded += other.nodes_expanded;
        self.unify_attempts += other.unify_attempts;
        self.unify_successes += other.unify_successes;
        self.solutions += other.solutions;
        self.failures += other.failures;
        self.max_frontier = self.max_frontier.max(other.max_frontier);
        self.depth_cutoff |= other.depth_cutoff;
        self.truncated |= other.truncated;
        self.bytes_copied += other.bytes_copied;
    }
}

/// One solution: the query variables fully resolved.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Source names of the query variables (shared across solutions).
    pub var_names: Arc<Vec<String>>,
    /// Resolved term for each query variable, by [`VarId`] index.
    pub terms: Vec<Term>,
    /// Chain length (arcs from the root) at which this solution closed.
    pub depth: u32,
}

impl Solution {
    /// Resolved binding of the query variable with source name `name`,
    /// rendered as text.
    pub fn binding_text(&self, db: &ClauseDb, name: &str) -> Option<String> {
        let idx = self.var_names.iter().position(|n| n == name)?;
        Some(term_to_string(db, &self.terms[idx]))
    }

    /// Render the whole solution as `X = …, Y = …`.
    pub fn to_text(&self, db: &ClauseDb) -> String {
        self.to_text_syms(db.symbols())
    }

    /// [`Solution::to_text`] addressed by symbol table, for callers that
    /// hold an epoch-pinned snapshot rather than a whole database.
    pub fn to_text_syms(&self, symbols: &crate::symbol::SymbolTable) -> String {
        if self.var_names.is_empty() {
            return "true".to_owned();
        }
        self.var_names
            .iter()
            .zip(self.terms.iter())
            .map(|(n, t)| {
                format!("{} = {}", n, crate::pretty::term_to_string_syms(symbols, t))
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// The outcome of a search.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// Solutions in the order the strategy discovered them.
    pub solutions: Vec<Solution>,
    /// Work counters.
    pub stats: SearchStats,
}

impl SolveResult {
    /// Convenience: solutions rendered via [`Solution::to_text`].
    pub fn solution_texts(&self, db: &ClauseDb) -> Vec<String> {
        self.solutions.iter().map(|s| s.to_text(db)).collect()
    }
}

// ---------------------------------------------------------------------
// Depth-first (trail-based backtracking — the Prolog baseline)
// ---------------------------------------------------------------------

struct DfsEngine<'a> {
    db: &'a ClauseDb,
    config: &'a SolveConfig,
    bindings: Bindings,
    trail: Trail,
    next_var: u32,
    stats: SearchStats,
    solutions: Vec<Solution>,
    var_names: Arc<Vec<String>>,
    n_query_vars: u32,
    cp_depth: usize,
}

impl<'a> DfsEngine<'a> {
    fn record_solution(&mut self, depth: u32) -> ControlFlow<()> {
        let terms = (0..self.n_query_vars)
            .map(|i| self.bindings.resolve(&Term::Var(VarId(i))))
            .collect();
        self.solutions.push(Solution {
            var_names: Arc::clone(&self.var_names),
            terms,
            depth,
        });
        self.stats.solutions += 1;
        if let Some(max) = self.config.max_solutions {
            if self.solutions.len() >= max {
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    }

    fn dfs(&mut self, goals: &GoalStack, depth: u32) -> ControlFlow<()> {
        let (goal, rest) = match goals.first() {
            None => return self.record_solution(depth),
            Some(g) => (g.clone(), goals.rest()),
        };
        if let Some(limit) = self.config.max_depth {
            if depth >= limit {
                self.stats.depth_cutoff = true;
                return ControlFlow::Continue(());
            }
        }
        if let Some(budget) = self.config.max_nodes {
            if self.stats.nodes_expanded >= budget {
                self.stats.truncated = true;
                return ControlFlow::Break(());
            }
        }
        self.stats.nodes_expanded += 1;
        self.cp_depth += 1;
        self.stats.max_frontier = self.stats.max_frontier.max(self.cp_depth);

        // `walk_cow` borrows from `goal` (owned above) when the walk goes
        // nowhere, so the store is only copied into when a dereference
        // actually moved — the hot already-resolved path clones nothing.
        let goal_term = self.bindings.walk_cow(&goal.term);
        let candidates: Vec<_> = self
            .db
            .candidates_for_resolved(&goal_term, &self.bindings)
            .into_owned();
        let mut any_child = false;
        for cid in candidates {
            self.stats.unify_attempts += 1;
            let clause = self.db.clause(cid);
            let base = self.next_var;
            let mark = self.trail.mark();
            self.bindings.ensure((base + clause.n_vars) as usize);
            let renamed_head = clause.head.offset_vars(base);
            if unify(
                &mut self.bindings,
                &mut self.trail,
                &goal_term,
                &renamed_head,
                false,
            ) {
                self.stats.unify_successes += 1;
                any_child = true;
                self.next_var = base + clause.n_vars;
                let mut child_goals = rest.clone();
                for (i, b) in clause.body.iter().enumerate().rev() {
                    child_goals = child_goals.push(Goal {
                        term: b.offset_vars(base),
                        caller: Caller::Clause(cid),
                        goal_idx: i as u16,
                    });
                }
                let flow = self.dfs(&child_goals, depth + 1);
                self.next_var = base;
                self.bindings.undo_to(&mut self.trail, mark);
                if flow.is_break() {
                    self.cp_depth -= 1;
                    return ControlFlow::Break(());
                }
            } else {
                self.bindings.undo_to(&mut self.trail, mark);
            }
        }
        if !any_child {
            self.stats.failures += 1;
        }
        self.cp_depth -= 1;
        ControlFlow::Continue(())
    }
}

/// Run Prolog-style depth-first SLD resolution.
pub fn dfs_all(db: &ClauseDb, query: &Query, config: &SolveConfig) -> SolveResult {
    let root = SearchNode::root(&query.goals);
    let mut engine = DfsEngine {
        db,
        config,
        bindings: Bindings::with_capacity(root.next_var as usize),
        trail: Trail::new(),
        next_var: root.next_var,
        stats: SearchStats::default(),
        solutions: Vec::new(),
        var_names: Arc::new(query.var_names.clone()),
        n_query_vars: query.var_names.len() as u32,
        cp_depth: 0,
    };
    let goals = root.goal_stack();
    let _ = engine.dfs(&goals, 0);
    SolveResult {
        solutions: engine.solutions,
        stats: engine.stats,
    }
}

// ---------------------------------------------------------------------
// Breadth-first (cloning frontier)
// ---------------------------------------------------------------------

/// Run breadth-first search over the OR-tree (FIFO frontier).
pub fn bfs_all(db: &ClauseDb, query: &Query, config: &SolveConfig) -> SolveResult {
    let var_names = Arc::new(query.var_names.clone());
    let n_query_vars = query.var_names.len() as u32;
    let mut stats = SearchStats::default();
    let mut solutions = Vec::new();
    let mut frontier: VecDeque<SearchNode> = VecDeque::new();
    frontier.push_back(SearchNode::root_with(&query.goals, config.state_repr));

    while let Some(node) = frontier.pop_front() {
        if node.is_solution() {
            let terms = (0..n_query_vars).map(|i| node.resolve_var(i)).collect();
            solutions.push(Solution {
                var_names: Arc::clone(&var_names),
                terms,
                depth: node.depth,
            });
            stats.solutions += 1;
            if let Some(max) = config.max_solutions {
                if solutions.len() >= max {
                    break;
                }
            }
            continue;
        }
        if let Some(limit) = config.max_depth {
            if node.depth >= limit {
                stats.depth_cutoff = true;
                continue;
            }
        }
        if let Some(budget) = config.max_nodes {
            if stats.nodes_expanded >= budget {
                stats.truncated = true;
                break;
            }
        }
        stats.nodes_expanded += 1;
        let mut est = ExpandStats::default();
        let children = expand(db, &node, &mut est);
        stats.unify_attempts += est.unify_attempts;
        stats.unify_successes += est.unify_successes;
        stats.bytes_copied += est.bytes_copied;
        if children.is_empty() {
            stats.failures += 1;
        }
        for c in children {
            frontier.push_back(c.node);
        }
        stats.max_frontier = stats.max_frontier.max(frontier.len());
    }
    SolveResult { solutions, stats }
}

// ---------------------------------------------------------------------
// Iterative deepening
// ---------------------------------------------------------------------

/// Iterative-deepening depth-first search: run [`dfs_all`] with depth
/// limits `start, start+step, …` until no chain is cut off (complete
/// enumeration) or, when `config.max_solutions` is set, enough solutions
/// appear. Stats are accumulated over every iteration, which is the honest
/// cost of the strategy.
pub fn iterative_deepening(
    db: &ClauseDb,
    query: &Query,
    config: &SolveConfig,
    start: u32,
    step: u32,
) -> SolveResult {
    assert!(step > 0, "iterative deepening needs a positive step");
    let mut total = SearchStats::default();
    let mut limit = start;
    loop {
        let iter_config = SolveConfig {
            max_depth: Some(limit),
            ..config.clone()
        };
        let result = dfs_all(db, query, &iter_config);
        total.merge(&result.stats);
        let enough = config
            .max_solutions
            .is_some_and(|m| result.solutions.len() >= m);
        if enough || !result.stats.depth_cutoff || result.stats.truncated {
            // Report the final iteration's solutions with cumulative work,
            // and only flag a cutoff if the *final* pass was cut off.
            total.solutions = result.stats.solutions;
            total.depth_cutoff = result.stats.depth_cutoff;
            return SolveResult {
                solutions: result.solutions,
                stats: total,
            };
        }
        limit += step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    const FAMILY: &str = "
        gf(X,Z) :- f(X,Y), f(Y,Z).
        gf(X,Z) :- f(X,Y), m(Y,Z).
        f(curt,elain). f(sam,larry). f(dan,pat). f(larry,den).
        f(pat,john). f(larry,doug).
        m(elain,john). m(marian,elain). m(peg,den). m(peg,doug).
        ?- gf(sam,G).
    ";

    #[test]
    fn dfs_finds_both_grandchildren_in_order() {
        let p = parse_program(FAMILY).unwrap();
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        let names: Vec<_> = r
            .solutions
            .iter()
            .map(|s| s.binding_text(&p.db, "G").unwrap())
            .collect();
        // Prolog order: den before doug (clause order of the f facts).
        assert_eq!(names, vec!["den", "doug"]);
        assert_eq!(r.stats.solutions, 2);
    }

    #[test]
    fn dfs_first_solution_stops_early() {
        let p = parse_program(FAMILY).unwrap();
        let all = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        let first = dfs_all(&p.db, &p.queries[0], &SolveConfig::first());
        assert_eq!(first.solutions.len(), 1);
        assert!(first.stats.nodes_expanded < all.stats.nodes_expanded);
    }

    #[test]
    fn bfs_finds_the_same_solution_set() {
        let p = parse_program(FAMILY).unwrap();
        let d = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        let b = bfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        let mut dn: Vec<_> = d
            .solutions
            .iter()
            .map(|s| s.binding_text(&p.db, "G").unwrap())
            .collect();
        let mut bn: Vec<_> = b
            .solutions
            .iter()
            .map(|s| s.binding_text(&p.db, "G").unwrap())
            .collect();
        dn.sort();
        bn.sort();
        assert_eq!(dn, bn);
    }

    #[test]
    fn solutions_record_depth() {
        let p = parse_program(FAMILY).unwrap();
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        // gf -> f(sam,Y) -> f(larry,G): three resolution arcs.
        assert!(r.solutions.iter().all(|s| s.depth == 3));
    }

    #[test]
    fn depth_limit_cuts_left_recursion() {
        // path/2 over a cyclic graph loops forever under plain DFS;
        // the depth limit keeps it finite and flags the cutoff.
        let p = parse_program(
            "
            edge(a,b). edge(b,a).
            path(X,Y) :- edge(X,Y).
            path(X,Z) :- edge(X,Y), path(Y,Z).
            ?- path(a,b).
        ",
        )
        .unwrap();
        let cfg = SolveConfig::all().with_max_depth(10);
        let r = dfs_all(&p.db, &p.queries[0], &cfg);
        assert!(r.stats.depth_cutoff);
        assert!(r.stats.solutions > 0);
    }

    #[test]
    fn node_budget_truncates() {
        let p = parse_program(
            "
            edge(a,b). edge(b,a).
            path(X,Y) :- edge(X,Y).
            path(X,Z) :- edge(X,Y), path(Y,Z).
            ?- path(a,b).
        ",
        )
        .unwrap();
        let cfg = SolveConfig {
            max_nodes: Some(50),
            ..SolveConfig::all()
        };
        let r = dfs_all(&p.db, &p.queries[0], &cfg);
        assert!(r.stats.truncated);
        assert!(r.stats.nodes_expanded <= 51);
    }

    #[test]
    fn bfs_finds_shallowest_solution_first() {
        let p = parse_program(
            "
            p(deep) :- q, q, q, r.
            p(shallow).
            q.
            r.
            ?- p(X).
        ",
        )
        .unwrap();
        let r = bfs_all(&p.db, &p.queries[0], &SolveConfig::first());
        assert_eq!(
            r.solutions[0].binding_text(&p.db, "X").unwrap(),
            "shallow"
        );
        // DFS would have committed to the first clause and found 'deep'.
        let d = dfs_all(&p.db, &p.queries[0], &SolveConfig::first());
        assert_eq!(d.solutions[0].binding_text(&p.db, "X").unwrap(), "deep");
    }

    #[test]
    fn iterative_deepening_is_complete_on_cyclic_graph() {
        let p = parse_program(
            "
            edge(a,b). edge(b,c). edge(c,a).
            path(X,Y) :- edge(X,Y).
            path(X,Z) :- edge(X,Y), path(Y,Z).
            ?- path(a,c).
        ",
        )
        .unwrap();
        let cfg = SolveConfig {
            max_solutions: Some(1),
            max_nodes: Some(100_000),
            ..SolveConfig::all()
        };
        let r = iterative_deepening(&p.db, &p.queries[0], &cfg, 1, 1);
        assert_eq!(r.solutions.len(), 1);
    }

    #[test]
    fn ground_query_yields_true() {
        let p = parse_program("f(a,b). ?- f(a,b).").unwrap();
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(r.solutions.len(), 1);
        assert_eq!(r.solutions[0].to_text(&p.db), "true");
    }

    #[test]
    fn failing_query_counts_failures() {
        let p = parse_program("f(a,b). ?- f(b,a).").unwrap();
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        assert!(r.solutions.is_empty());
        assert_eq!(r.stats.failures, 1);
    }

    #[test]
    fn conjunction_binds_across_goals() {
        let p = parse_program("f(a,b). g(b,c). ?- f(a,X), g(X,Y).").unwrap();
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(r.solutions.len(), 1);
        assert_eq!(r.solutions[0].to_text(&p.db), "X = b, Y = c");
    }

    #[test]
    fn stats_match_between_engines_on_finite_tree() {
        // On a finite tree with no pruning, DFS and BFS expand the same
        // number of nodes (the whole tree) when enumerating everything.
        let p = parse_program(FAMILY).unwrap();
        let d = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        let b = bfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(d.stats.nodes_expanded, b.stats.nodes_expanded);
        assert_eq!(d.stats.unify_attempts, b.stats.unify_attempts);
    }
}
