//! Persistent binding frames — structure-sharing search state.
//!
//! Section 6 of the paper names "copying when chains are sprouted" as the
//! dominant software cost of frontier search and proposes a multi-write
//! copying memory to make sprouting cheap in hardware. This module is the
//! software counterpart: instead of cloning the whole binding store per
//! child, each OR-tree node holds an `Arc` to its parent's [`BindingFrame`]
//! plus only the bindings *its own* unification step wrote. Sprouting a
//! child is O(delta); siblings and ancestors share every older frame.
//!
//! Lookups chase the parent chain leaf-to-root (bindings are write-once in
//! SLD resolution, so the first hit wins and shadowing cannot occur). The
//! chain length is bounded: when freezing a delta would push it past a
//! configurable threshold, the new frame is *flattened* — every inherited
//! binding is copied into one root frame — trading one O(state) copy for
//! O(threshold)-bounded walks on all descendants until the next flatten.
//!
//! [`DeltaBindings`] is the mutable builder used during a single
//! unification attempt; it implements
//! [`BindingWrite`] so
//! [`unify`](crate::unify::unify) runs over it unchanged, and
//! [`freeze`](DeltaBindings::freeze)s into an immutable shared frame on
//! success.

use std::sync::Arc;

use crate::bindings::{BindingLookup, BindingWrite, Trail};
use crate::term::{Term, VarId};

/// Default frame-chain length at which [`DeltaBindings::freeze`] flattens.
///
/// Chosen so a walk touches at most a cache-line-friendly handful of small
/// sorted arrays; the T7 `engine_state` sweep in `blog-bench` measures the
/// copying-cost curve around it.
pub const DEFAULT_FLATTEN_THRESHOLD: u32 = 16;

/// One immutable frame of a persistent binding chain.
///
/// A frame owns the bindings written by a single resolution step, sorted
/// by variable for binary search, plus an `Arc` to the frame of the parent
/// node (`None` for the root or a flattened frame).
#[derive(Debug)]
pub struct BindingFrame {
    /// The parent node's frame, shared with every sibling.
    parent: Option<Arc<BindingFrame>>,
    /// This step's writes, sorted by [`VarId`].
    writes: Box<[(VarId, Term)]>,
    /// Frames on the chain from here to the root, inclusive.
    chain_len: u32,
    /// Total bindings reachable through this frame (for flatten sizing
    /// and the bytes-copied accounting).
    total_bindings: u32,
}

impl BindingFrame {
    /// The empty root frame.
    pub fn root() -> Arc<BindingFrame> {
        Arc::new(BindingFrame {
            parent: None,
            writes: Box::from([]),
            chain_len: 1,
            total_bindings: 0,
        })
    }

    /// Number of frames on the chain from this frame to the root.
    pub fn chain_len(&self) -> u32 {
        self.chain_len
    }

    /// Total bindings reachable from this frame.
    pub fn total_bindings(&self) -> u32 {
        self.total_bindings
    }

    /// Whether this frame starts a chain (root or flattened).
    pub fn is_chain_start(&self) -> bool {
        self.parent.is_none()
    }

    /// Collect every reachable binding, leaf-to-root. Bindings are
    /// write-once so the union is disjoint.
    fn collect_all(&self, out: &mut Vec<(VarId, Term)>) {
        let mut frame = self;
        loop {
            out.extend(frame.writes.iter().cloned());
            match &frame.parent {
                Some(p) => frame = p,
                None => break,
            }
        }
    }
}

impl Drop for BindingFrame {
    /// Iterative unlink, like `GoalStack`'s: the derived drop would
    /// recurse once per frame, and a large `flatten_threshold` makes
    /// chains arbitrarily long. Walk the uniquely-owned prefix; the first
    /// shared ancestor just loses a refcount.
    fn drop(&mut self) {
        let mut cur = self.parent.take();
        while let Some(frame) = cur {
            match Arc::try_unwrap(frame) {
                Ok(mut f) => cur = f.parent.take(),
                Err(_) => break,
            }
        }
    }
}

impl BindingLookup for BindingFrame {
    fn lookup(&self, v: VarId) -> Option<&Term> {
        let mut frame = self;
        loop {
            if let Ok(i) = frame.writes.binary_search_by_key(&v, |(w, _)| *w) {
                return Some(&frame.writes[i].1);
            }
            match &frame.parent {
                Some(p) => frame = p,
                None => return None,
            }
        }
    }
}

/// What [`DeltaBindings::freeze`] did, for the bytes-copied accounting.
#[derive(Clone, Copy, Default, Debug)]
pub struct FreezeStats {
    /// Bindings written by this step (the delta).
    pub delta: u32,
    /// Inherited bindings copied because the freeze flattened (zero when
    /// the chain stayed within the threshold).
    pub flattened: u32,
}

/// Mutable binding overlay for one unification attempt on top of a parent
/// [`BindingFrame`].
///
/// Writes go to a small append-only vector (linear-scanned on lookup —
/// a head unification writes a handful of bindings at most); reads fall
/// through to the parent chain. On success, [`freeze`](Self::freeze)
/// produces the child's immutable frame; on failure the delta is simply
/// [`clear`](Self::clear)ed — nothing in the shared chain was touched, so
/// there is nothing to undo.
#[derive(Debug)]
pub struct DeltaBindings<'p> {
    parent: &'p Arc<BindingFrame>,
    writes: Vec<(VarId, Term)>,
}

impl<'p> DeltaBindings<'p> {
    /// An empty delta over `parent`.
    pub fn new(parent: &'p Arc<BindingFrame>) -> Self {
        DeltaBindings {
            parent,
            writes: Vec::new(),
        }
    }

    /// Number of bindings written so far.
    pub fn delta_len(&self) -> usize {
        self.writes.len()
    }

    /// Discard this attempt's writes, keeping the allocation for the next
    /// candidate.
    pub fn clear(&mut self) {
        self.writes.clear();
    }

    /// Freeze the delta into an immutable child frame, flattening when the
    /// chain would exceed `flatten_threshold` frames.
    ///
    /// The delta is drained (left empty and reusable); the returned
    /// [`FreezeStats`] says how many bindings were physically copied.
    pub fn freeze(&mut self, flatten_threshold: u32) -> (Arc<BindingFrame>, FreezeStats) {
        // Fact steps bind nothing: the child shares the parent frame
        // outright — no new frame, no chain growth, and no periodic
        // flatten re-copying inherited state for zero new information.
        if self.writes.is_empty() {
            return (Arc::clone(self.parent), FreezeStats::default());
        }
        let delta = self.writes.len() as u32;
        // A child of the root already has chain length 2, so thresholds
        // 0 and 1 mean "flatten every sprout".
        let child_chain = self.parent.chain_len + 1;
        if child_chain > flatten_threshold {
            // Flatten: one frame holding every reachable binding.
            let mut all: Vec<(VarId, Term)> =
                Vec::with_capacity(self.writes.len() + self.parent.total_bindings as usize);
            all.append(&mut self.writes);
            self.parent.collect_all(&mut all);
            let flattened = all.len() as u32 - delta;
            all.sort_unstable_by_key(|(v, _)| *v);
            debug_assert!(all.windows(2).all(|w| w[0].0 != w[1].0), "duplicate binding");
            let total = all.len() as u32;
            let frame = Arc::new(BindingFrame {
                parent: None,
                writes: all.into_boxed_slice(),
                chain_len: 1,
                total_bindings: total,
            });
            (frame, FreezeStats { delta, flattened })
        } else {
            self.writes.sort_unstable_by_key(|(v, _)| *v);
            // Drain rather than take: the Vec keeps its allocation for
            // the caller's next candidate attempt.
            let writes: Box<[(VarId, Term)]> = self.writes.drain(..).collect();
            let frame = Arc::new(BindingFrame {
                chain_len: child_chain,
                total_bindings: self.parent.total_bindings + delta,
                writes,
                parent: Some(Arc::clone(self.parent)),
            });
            (frame, FreezeStats { delta, flattened: 0 })
        }
    }
}

impl BindingLookup for DeltaBindings<'_> {
    fn lookup(&self, v: VarId) -> Option<&Term> {
        // Newest-first: within one attempt a variable is written once, but
        // scanning back-to-front is the natural trail order anyway.
        if let Some((_, t)) = self.writes.iter().rev().find(|(w, _)| *w == v) {
            return Some(t);
        }
        self.parent.lookup(v)
    }
}

impl BindingWrite for DeltaBindings<'_> {
    fn bind(&mut self, trail: &mut Trail, v: VarId, t: Term) {
        debug_assert!(
            self.lookup(v).is_none(),
            "variable {v:?} bound twice in a frame chain"
        );
        self.writes.push((v, t));
        trail.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Sym;

    fn atom(i: u32) -> Term {
        Term::Atom(Sym(i))
    }
    fn var(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// Freeze a single-binding delta onto `parent`.
    fn push1(parent: &Arc<BindingFrame>, v: u32, t: Term, thresh: u32) -> Arc<BindingFrame> {
        let mut d = DeltaBindings::new(parent);
        let mut tr = Trail::new();
        d.bind(&mut tr, VarId(v), t);
        d.freeze(thresh).0
    }

    #[test]
    fn lookup_chases_parent_chain() {
        let root = BindingFrame::root();
        let f1 = push1(&root, 0, atom(1), 16);
        let f2 = push1(&f1, 1, var(0), 16);
        assert_eq!(f2.lookup(VarId(0)), Some(&atom(1)));
        assert_eq!(f2.lookup(VarId(1)), Some(&var(0)));
        assert_eq!(f2.walk(&var(1)), &atom(1));
        assert_eq!(f2.lookup(VarId(7)), None);
        // The parent frame is unaffected by the child's writes.
        assert_eq!(f1.lookup(VarId(1)), None);
    }

    #[test]
    fn resolve_descends_into_structs() {
        let root = BindingFrame::root();
        let f1 = push1(&root, 0, atom(1), 16);
        let t = Term::app(Sym(9), vec![var(0), var(2)]);
        assert_eq!(f1.resolve(&t), Term::app(Sym(9), vec![atom(1), var(2)]));
    }

    #[test]
    fn siblings_share_the_parent_frame() {
        let root = BindingFrame::root();
        let parent = push1(&root, 0, atom(1), 16);
        let a = push1(&parent, 1, atom(2), 16);
        let b = push1(&parent, 1, atom(3), 16);
        // Each sibling sees its own binding for var 1...
        assert_eq!(a.lookup(VarId(1)), Some(&atom(2)));
        assert_eq!(b.lookup(VarId(1)), Some(&atom(3)));
        // ...over the *same* parent allocation (3 = parent + a + b).
        assert_eq!(Arc::strong_count(&parent), 3);
    }

    #[test]
    fn chain_len_grows_until_threshold_then_flattens() {
        let thresh = 4;
        let mut frame = BindingFrame::root();
        // chain_len: root=1, then 2, 3, 4 — all within threshold.
        for v in 0..3 {
            frame = push1(&frame, v, atom(v), thresh);
            assert_eq!(frame.chain_len(), v + 2);
            assert!(!frame.is_chain_start());
        }
        // The next freeze would make chain_len 5 > 4: it must flatten.
        let mut d = DeltaBindings::new(&frame);
        let mut tr = Trail::new();
        d.bind(&mut tr, VarId(3), atom(3));
        let (flat, stats) = d.freeze(thresh);
        assert_eq!(flat.chain_len(), 1);
        assert!(flat.is_chain_start());
        assert_eq!(stats.delta, 1);
        assert_eq!(stats.flattened, 3, "inherited bindings copied once");
        assert_eq!(flat.total_bindings(), 4);
        // Every binding survives the flatten.
        for v in 0..4 {
            assert_eq!(flat.lookup(VarId(v)), Some(&atom(v)), "var {v}");
        }
    }

    #[test]
    fn exactly_at_threshold_does_not_flatten() {
        let thresh = 4;
        let mut frame = BindingFrame::root();
        for v in 0..thresh - 1 {
            frame = push1(&frame, v, atom(v), thresh);
        }
        assert_eq!(frame.chain_len(), thresh, "boundary: chain_len == threshold");
        assert!(!frame.is_chain_start(), "no flatten at the boundary");
        let (_, last) = {
            let mut d = DeltaBindings::new(&frame);
            let mut tr = Trail::new();
            d.bind(&mut tr, VarId(9), atom(9));
            d.freeze(thresh)
        };
        assert_eq!(last.flattened, thresh - 1, "one past the boundary flattens");
    }

    #[test]
    fn empty_deltas_share_the_parent_frame_outright() {
        // Facts bind nothing: freezing an empty delta returns the parent
        // frame itself — no chain growth, no copies.
        let root = BindingFrame::root();
        let parent = push1(&root, 0, atom(1), 16);
        let mut frame = Arc::clone(&parent);
        for _ in 0..10 {
            let mut d = DeltaBindings::new(&frame);
            let (f, stats) = d.freeze(3);
            assert_eq!(stats.delta, 0);
            assert_eq!(stats.flattened, 0);
            frame = f;
        }
        assert!(Arc::ptr_eq(&frame, &parent), "fact chains share one frame");
        assert_eq!(frame.chain_len(), 2);
    }

    #[test]
    fn failed_attempt_clears_without_touching_parent() {
        let root = BindingFrame::root();
        let parent = push1(&root, 0, atom(1), 16);
        let mut d = DeltaBindings::new(&parent);
        let mut tr = Trail::new();
        d.bind(&mut tr, VarId(1), atom(2));
        assert_eq!(d.delta_len(), 1);
        assert_eq!(d.lookup(VarId(0)), Some(&atom(1)), "reads fall through");
        d.clear();
        assert_eq!(d.delta_len(), 0);
        assert_eq!(parent.lookup(VarId(1)), None);
    }

    #[test]
    fn unify_runs_over_delta_bindings() {
        use crate::unify::unify;
        let root = BindingFrame::root();
        let parent = push1(&root, 0, atom(5), 16);
        let mut d = DeltaBindings::new(&parent);
        let mut tr = Trail::new();
        // f(X, Y) = f(5-via-frame, 7): X already bound in the parent frame.
        let lhs = Term::app(Sym(1), vec![var(0), var(1)]);
        let rhs = Term::app(Sym(1), vec![atom(5), atom(7)]);
        assert!(unify(&mut d, &mut tr, &lhs, &rhs, false));
        assert_eq!(d.lookup(VarId(1)), Some(&atom(7)));
        // Mismatch against the inherited binding fails.
        let bad = Term::app(Sym(1), vec![atom(6), atom(7)]);
        d.clear();
        tr.clear();
        assert!(!unify(&mut d, &mut tr, &lhs, &bad, false));
    }
}
