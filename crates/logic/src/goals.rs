//! Persistent goal stacks — `Arc`-shared cons lists of pending goals.
//!
//! The second half of the paper's §6 sprouting cost: rebuilding the goal
//! `Vec` for every child copies the whole continuation. A [`GoalStack`] is
//! an immutable cons list, so [`expand_via`](crate::node::expand_via)
//! pushes a clause's renamed body goals in front of the *shared* tail —
//! every child of a node (and every node of a chain) aliases the same
//! continuation cells, and sprouting copies only the new body goals.
//!
//! The depth-first engine uses the same type for its backtracking goal
//! list (it was a private cons list before; now the representation is
//! shared by every engine in the workspace).

use std::sync::Arc;

use crate::node::Goal;

/// An immutable, `Arc`-shared stack of pending goals (leftmost goal on
/// top, Prolog selection order).
#[derive(Clone, Debug, Default)]
pub struct GoalStack(Option<Arc<GoalNode>>);

#[derive(Debug)]
struct GoalNode {
    goal: Goal,
    /// Goals in this stack, memoized so [`GoalStack::len`] is O(1).
    len: u32,
    rest: GoalStack,
}

impl Drop for GoalStack {
    /// Iterative unlink: the derived drop would recurse once per cons
    /// cell, and an unshared chain can be hundreds of thousands of goals
    /// long on recursive programs — deep enough to overflow the thread
    /// stack. Walk the uniquely-owned prefix instead; the first shared
    /// cell (another stack still aliases the tail) just loses a refcount.
    fn drop(&mut self) {
        let mut cur = self.0.take();
        while let Some(node) = cur {
            match Arc::try_unwrap(node) {
                Ok(mut n) => cur = n.rest.0.take(),
                Err(_) => break,
            }
        }
    }
}

impl GoalStack {
    /// The empty stack.
    pub fn nil() -> GoalStack {
        GoalStack(None)
    }

    /// Build a stack from a slice, first element on top.
    pub fn from_slice(goals: &[Goal]) -> GoalStack {
        let mut stack = GoalStack::nil();
        for g in goals.iter().rev() {
            stack = stack.push(g.clone());
        }
        stack
    }

    /// A new stack with `goal` on top; `self` is shared, not copied.
    pub fn push(&self, goal: Goal) -> GoalStack {
        GoalStack(Some(Arc::new(GoalNode {
            goal,
            len: self.len() as u32 + 1,
            rest: self.clone(),
        })))
    }

    /// The top (leftmost) goal.
    pub fn first(&self) -> Option<&Goal> {
        self.0.as_ref().map(|n| &n.goal)
    }

    /// The stack below the top goal (empty on an empty stack).
    pub fn rest(&self) -> GoalStack {
        match &self.0 {
            Some(n) => n.rest.clone(),
            None => GoalStack::nil(),
        }
    }

    /// Number of goals.
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |n| n.len as usize)
    }

    /// Whether no goals remain — a solution leaf.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Whether `self` and `other` share their top cons cell (used by tests
    /// to assert continuations are aliased, not copied).
    pub fn ptr_eq(&self, other: &GoalStack) -> bool {
        match (&self.0, &other.0) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Iterate top-to-bottom.
    pub fn iter(&self) -> GoalIter<'_> {
        GoalIter(&self.0)
    }

    /// Size of one cons cell, for the bytes-copied-per-sprout accounting
    /// (the cell struct itself is private).
    pub const fn cons_cell_bytes() -> usize {
        std::mem::size_of::<GoalNode>()
    }
}

/// Iterator over a [`GoalStack`], top (leftmost goal) first.
pub struct GoalIter<'a>(&'a Option<Arc<GoalNode>>);

impl<'a> Iterator for GoalIter<'a> {
    type Item = &'a Goal;

    fn next(&mut self) -> Option<&'a Goal> {
        let node = self.0.as_ref()?;
        self.0 = &node.rest.0;
        Some(&node.goal)
    }
}

impl<'a> IntoIterator for &'a GoalStack {
    type Item = &'a Goal;
    type IntoIter = GoalIter<'a>;

    fn into_iter(self) -> GoalIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Caller;
    use crate::symbol::Sym;
    use crate::term::Term;

    fn goal(i: u32) -> Goal {
        Goal {
            term: Term::Atom(Sym(i)),
            caller: Caller::Query,
            goal_idx: i as u16,
        }
    }

    #[test]
    fn from_slice_keeps_order() {
        let s = GoalStack::from_slice(&[goal(0), goal(1), goal(2)]);
        assert_eq!(s.len(), 3);
        let idxs: Vec<u16> = s.iter().map(|g| g.goal_idx).collect();
        assert_eq!(idxs, vec![0, 1, 2]);
        assert_eq!(s.first().unwrap().goal_idx, 0);
    }

    #[test]
    fn push_shares_the_tail() {
        let tail = GoalStack::from_slice(&[goal(5)]);
        let a = tail.push(goal(1));
        let b = tail.push(goal(2));
        assert!(a.rest().ptr_eq(&tail));
        assert!(b.rest().ptr_eq(&tail));
        assert_eq!(a.len(), 2);
        assert_eq!(tail.len(), 1, "pushing does not mutate the tail");
    }

    #[test]
    fn deep_unshared_stack_drops_without_overflow() {
        // 400k cells would blow the stack under a naive recursive drop.
        let mut s = GoalStack::nil();
        for i in 0..400_000 {
            s = s.push(goal(i % 100));
        }
        assert_eq!(s.len(), 400_000);
        drop(s);
    }

    #[test]
    fn shared_tail_survives_a_sibling_drop() {
        let tail = GoalStack::from_slice(&[goal(1), goal(2)]);
        let a = tail.push(goal(0));
        let b = tail.push(goal(9));
        drop(a);
        assert_eq!(b.len(), 3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.first().unwrap().goal_idx, 1);
    }

    #[test]
    fn empty_stack_is_a_solution() {
        let s = GoalStack::nil();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.first().is_none());
        assert!(s.rest().is_empty());
        assert!(s.ptr_eq(&GoalStack::default()));
    }
}
