//! Rendering terms back to Prolog-ish text.
//!
//! Every renderer comes in two addressing modes: by [`ClauseDb`] (the
//! historical entry points) and by bare [`SymbolTable`] (`*_syms`), for
//! callers that hold an epoch-pinned snapshot's symbol table rather than
//! a whole database.

use crate::bindings::Bindings;
use crate::store::ClauseDb;
use crate::symbol::SymbolTable;
use crate::term::Term;

/// Render `t` using the database's symbol table. Unbound variables print
/// as `_Gn`. List cells built on `'.'/2` print with bracket sugar.
pub fn term_to_string(db: &ClauseDb, t: &Term) -> String {
    term_to_string_syms(db.symbols(), t)
}

/// [`term_to_string`] addressed by symbol table.
pub fn term_to_string_syms(symbols: &SymbolTable, t: &Term) -> String {
    let mut s = String::new();
    write_term(symbols, t, &mut s);
    s
}

/// Render `t` after applying `bindings`.
pub fn resolved_to_string(db: &ClauseDb, bindings: &Bindings, t: &Term) -> String {
    term_to_string(db, &bindings.resolve(t))
}

fn write_term(symbols: &SymbolTable, t: &Term, out: &mut String) {
    match t {
        Term::Var(v) => {
            out.push_str("_G");
            out.push_str(&v.0.to_string());
        }
        Term::Int(n) => out.push_str(&n.to_string()),
        Term::Atom(s) => out.push_str(symbols.name(*s)),
        Term::Struct(f, args) => {
            let fname = symbols.name(*f);
            if fname == "." && args.len() == 2 {
                write_list(symbols, t, out);
                return;
            }
            out.push_str(fname);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_term(symbols, a, out);
            }
            out.push(')');
        }
    }
}

fn write_list(symbols: &SymbolTable, t: &Term, out: &mut String) {
    out.push('[');
    let mut cur = t;
    let mut first = true;
    loop {
        match cur {
            Term::Struct(f, args)
                if args.len() == 2 && symbols.name(*f) == "." =>
            {
                if !first {
                    out.push(',');
                }
                first = false;
                write_term(symbols, &args[0], out);
                cur = &args[1];
            }
            Term::Atom(s) if symbols.name(*s) == "[]" => break,
            other => {
                out.push('|');
                write_term(symbols, other, out);
                break;
            }
        }
    }
    out.push(']');
}

/// Render a stored clause back to parseable program text (`head.` for a
/// fact, `head :- g1, g2.` for a rule). Clause-local variables print as
/// `_Gn`, which re-reads as a variable — round-tripping through
/// [`parse_program`](crate::parse_program) preserves the clause's
/// variable structure. The MVCC oracle harness uses this to rebuild a
/// sequential database for any epoch from rendered clause texts.
pub fn clause_to_source(symbols: &SymbolTable, clause: &crate::clause::Clause) -> String {
    let mut s = term_to_string_syms(symbols, &clause.head);
    if !clause.body.is_empty() {
        s.push_str(" :- ");
        for (i, g) in clause.body.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&term_to_string_syms(symbols, g));
        }
    }
    s.push('.');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn atoms_vars_ints() {
        let p = parse_program("p(a, 3, X).").unwrap();
        let c = p.db.clause(crate::ClauseId(0));
        assert_eq!(term_to_string(&p.db, &c.head), "p(a,3,_G0)");
        assert_eq!(term_to_string_syms(p.db.symbols(), &c.head), "p(a,3,_G0)");
    }

    #[test]
    fn proper_list_sugar() {
        let p = parse_program("l([a,b,c]).").unwrap();
        let c = p.db.clause(crate::ClauseId(0));
        assert_eq!(term_to_string(&p.db, &c.head), "l([a,b,c])");
    }

    #[test]
    fn improper_list_tail() {
        let p = parse_program("l([a|T]).").unwrap();
        let c = p.db.clause(crate::ClauseId(0));
        assert_eq!(term_to_string(&p.db, &c.head), "l([a|_G0])");
    }

    #[test]
    fn empty_list() {
        let p = parse_program("l([]).").unwrap();
        let c = p.db.clause(crate::ClauseId(0));
        assert_eq!(term_to_string(&p.db, &c.head), "l([])");
    }

    #[test]
    fn clause_round_trips_through_source() {
        let p = parse_program("gf(X,Z) :- f(X,Y), f(Y,Z). f(a,b).").unwrap();
        let rule = clause_to_source(p.db.symbols(), p.db.clause(crate::ClauseId(0)));
        let fact = clause_to_source(p.db.symbols(), p.db.clause(crate::ClauseId(1)));
        assert_eq!(rule, "gf(_G0,_G1) :- f(_G0,_G2), f(_G2,_G1).");
        assert_eq!(fact, "f(a,b).");
        let reparsed = parse_program(&format!("{rule} {fact}")).unwrap();
        assert_eq!(reparsed.db.clause(crate::ClauseId(0)).n_vars, 3);
        assert_eq!(reparsed.db.len(), 2);
    }
}
