//! Rendering terms back to Prolog-ish text.

use crate::bindings::Bindings;
use crate::store::ClauseDb;
use crate::term::Term;

/// Render `t` using the database's symbol table. Unbound variables print
/// as `_Gn`. List cells built on `'.'/2` print with bracket sugar.
pub fn term_to_string(db: &ClauseDb, t: &Term) -> String {
    let mut s = String::new();
    write_term(db, t, &mut s);
    s
}

/// Render `t` after applying `bindings`.
pub fn resolved_to_string(db: &ClauseDb, bindings: &Bindings, t: &Term) -> String {
    term_to_string(db, &bindings.resolve(t))
}

fn write_term(db: &ClauseDb, t: &Term, out: &mut String) {
    match t {
        Term::Var(v) => {
            out.push_str("_G");
            out.push_str(&v.0.to_string());
        }
        Term::Int(n) => out.push_str(&n.to_string()),
        Term::Atom(s) => out.push_str(db.symbols().name(*s)),
        Term::Struct(f, args) => {
            let fname = db.symbols().name(*f);
            if fname == "." && args.len() == 2 {
                write_list(db, t, out);
                return;
            }
            out.push_str(fname);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_term(db, a, out);
            }
            out.push(')');
        }
    }
}

fn write_list(db: &ClauseDb, t: &Term, out: &mut String) {
    out.push('[');
    let mut cur = t;
    let mut first = true;
    loop {
        match cur {
            Term::Struct(f, args)
                if args.len() == 2 && db.symbols().name(*f) == "." =>
            {
                if !first {
                    out.push(',');
                }
                first = false;
                write_term(db, &args[0], out);
                cur = &args[1];
            }
            Term::Atom(s) if db.symbols().name(*s) == "[]" => break,
            other => {
                out.push('|');
                write_term(db, other, out);
                break;
            }
        }
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn atoms_vars_ints() {
        let p = parse_program("p(a, 3, X).").unwrap();
        let c = p.db.clause(crate::ClauseId(0));
        assert_eq!(term_to_string(&p.db, &c.head), "p(a,3,_G0)");
    }

    #[test]
    fn proper_list_sugar() {
        let p = parse_program("l([a,b,c]).").unwrap();
        let c = p.db.clause(crate::ClauseId(0));
        assert_eq!(term_to_string(&p.db, &c.head), "l([a,b,c])");
    }

    #[test]
    fn improper_list_tail() {
        let p = parse_program("l([a|T]).").unwrap();
        let c = p.db.clause(crate::ClauseId(0));
        assert_eq!(term_to_string(&p.db, &c.head), "l([a|_G0])");
    }

    #[test]
    fn empty_list() {
        let p = parse_program("l([]).").unwrap();
        let c = p.db.clause(crate::ClauseId(0));
        assert_eq!(term_to_string(&p.db, &c.head), "l([])");
    }
}
