//! OR-tree nodes and the single resolution-step primitive.
//!
//! The paper's figure 3 draws execution as an OR-tree: each node carries a
//! goal to search for, and each arc below it is one way of resolving that
//! goal against the database. [`SearchNode`] is one node of that tree
//! (goal list + bindings), [`expand`] produces its children, and
//! [`PointerKey`] names the arc that led to each child — the identity that
//! the B-LOG weight store keys on.
//!
//! AND-composition is linearized into the goal list exactly as the paper's
//! simplified model prescribes ("we consider AND-trees now only in a
//! sequential way, in very much the same way Prolog does").
//!
//! ## Search-state representation
//!
//! Sprouting a child historically *copied* the whole search state — clone
//! the binding store, rebuild the goal vector — which is exactly the §6
//! cost the paper's multi-write memory attacks. [`StateRepr`] picks the
//! representation per search:
//!
//! - [`StateRepr::Cloned`] — the baseline: flat [`Bindings`] clone and a
//!   rebuilt `Vec<Goal>` per child. O(state) per sprout.
//! - [`StateRepr::Shared`] — structure sharing: each child holds an `Arc`
//!   to its parent's [`BindingFrame`] plus only its own unification's
//!   writes, and goals are an `Arc` cons [`GoalStack`] whose continuation
//!   is aliased, not copied. O(delta) per sprout, with frame chains
//!   flattened past a configurable threshold so walks stay bounded.
//!
//! Both representations resolve goals through the same
//! [`unify`] and produce identical children (the
//! `state_repr` property suite in `tests/` holds them equal on arbitrary
//! programs); [`ExpandStats::bytes_copied`] meters the difference.

use std::sync::Arc;

use serde::Serialize;

use crate::bindings::{BindingLookup, Bindings, Trail};
use crate::clause::ClauseId;
use crate::frames::{BindingFrame, DeltaBindings, FreezeStats, DEFAULT_FLATTEN_THRESHOLD};
use crate::goals::GoalStack;
use crate::source::{ClauseSource, StoreError};
use crate::store::ClauseDb;
use crate::term::{Term, VarId};
use crate::unify::unify;

/// Where a goal came from: the query itself or the body of a clause.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Caller {
    /// A goal of the top-level query.
    Query,
    /// A body goal of the given clause.
    Clause(ClauseId),
}

/// A goal to be resolved, together with its provenance (which clause body,
/// and which position in it, the goal came from). Provenance is what lets
/// us name the figure-4 pointer being followed when the goal is resolved.
#[derive(Clone, Debug)]
pub struct Goal {
    /// The goal term (not yet dereferenced).
    pub term: Term,
    /// The clause whose body contributed this goal.
    pub caller: Caller,
    /// Position of this goal within the caller's body (or within the
    /// query's conjunction).
    pub goal_idx: u16,
}

/// Identity of one weighted pointer of figure 4: caller block, pointer
/// position within the block, and target block.
///
/// Weights attached to these keys are shared by *every occurrence* of the
/// arc in any search tree, which is requirement 1 of the paper's section 4
/// ("if an arc appears twice in a tree … they have the same probability.
/// This is required if these probabilities are to be stored in a database
/// that is common to all queries").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PointerKey {
    /// Block containing the pointer.
    pub caller: Caller,
    /// Goal position within the caller block.
    pub goal_idx: u16,
    /// Block the pointer targets.
    pub target: ClauseId,
}

/// How search state is represented and sprouted; see the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum StateRepr {
    /// Copy-per-child: clone the binding store and rebuild the goal list
    /// for every sprout (the pre-sharing baseline, kept for measurement
    /// and equivalence testing).
    Cloned,
    /// Structure sharing: persistent binding frames + cons-list goals.
    Shared {
        /// Frame-chain length past which
        /// [`freeze`](crate::frames::DeltaBindings::freeze) flattens.
        flatten_threshold: u32,
    },
}

impl StateRepr {
    /// The sharing representation with the default flatten threshold.
    pub fn shared() -> StateRepr {
        StateRepr::Shared {
            flatten_threshold: DEFAULT_FLATTEN_THRESHOLD,
        }
    }

    /// Short label for experiment tables (`"cloned"` / `"shared"`).
    pub fn label(&self) -> &'static str {
        match self {
            StateRepr::Cloned => "cloned",
            StateRepr::Shared { .. } => "shared",
        }
    }

}

impl Default for StateRepr {
    /// Sharing is the default: it is measured no slower sequentially and
    /// removes the dominant cross-thread copy traffic (§6).
    fn default() -> StateRepr {
        StateRepr::shared()
    }
}

/// The per-representation payload of a [`SearchNode`].
#[derive(Clone, Debug)]
pub enum NodeState {
    /// Baseline copy-per-child state.
    Cloned {
        /// Remaining goals, leftmost first (Prolog selection rule).
        goals: Vec<Goal>,
        /// Bindings accumulated along the chain from the root.
        bindings: Bindings,
    },
    /// Structure-shared state.
    Shared {
        /// Remaining goals; the continuation below the top is aliased
        /// with the parent and every sibling.
        goals: GoalStack,
        /// This node's binding frame (own writes + `Arc` to the parent's).
        frame: Arc<BindingFrame>,
        /// Chain length past which freezing flattens.
        flatten_threshold: u32,
    },
}

/// One node of the OR-tree: the remaining conjunction of goals plus the
/// bindings accumulated on the chain from the root, in either
/// representation.
#[derive(Clone, Debug)]
pub struct SearchNode {
    /// Goals + bindings in the representation chosen at the root.
    pub state: NodeState,
    /// Next fresh variable index for renaming clauses apart.
    pub next_var: u32,
    /// Number of arcs from the root (chain length).
    pub depth: u32,
}

impl SearchNode {
    /// The root node for a query conjunction, in the default
    /// (structure-sharing) representation.
    ///
    /// Query variables must be normalized to `0..n`; they stay at those
    /// indices for the whole search so solutions can be read back out.
    pub fn root(query_goals: &[Term]) -> SearchNode {
        SearchNode::root_with(query_goals, StateRepr::default())
    }

    /// [`root`](Self::root) with an explicit state representation.
    pub fn root_with(query_goals: &[Term], repr: StateRepr) -> SearchNode {
        let n_vars = query_goals
            .iter()
            .filter_map(Term::max_var)
            .map(|v| v.0 + 1)
            .max()
            .unwrap_or(0);
        let goals: Vec<Goal> = query_goals
            .iter()
            .enumerate()
            .map(|(i, t)| Goal {
                term: t.clone(),
                caller: Caller::Query,
                goal_idx: i as u16,
            })
            .collect();
        let state = match repr {
            StateRepr::Cloned => NodeState::Cloned {
                goals,
                bindings: Bindings::new(),
            },
            StateRepr::Shared { flatten_threshold } => NodeState::Shared {
                goals: GoalStack::from_slice(&goals),
                frame: BindingFrame::root(),
                flatten_threshold,
            },
        };
        SearchNode {
            state,
            next_var: n_vars,
            depth: 0,
        }
    }

    /// The representation this node (and every node sprouted from it)
    /// uses.
    pub fn repr(&self) -> StateRepr {
        match &self.state {
            NodeState::Cloned { .. } => StateRepr::Cloned,
            NodeState::Shared {
                flatten_threshold, ..
            } => StateRepr::Shared {
                flatten_threshold: *flatten_threshold,
            },
        }
    }

    /// Whether every goal has been resolved — a solution leaf.
    pub fn is_solution(&self) -> bool {
        match &self.state {
            NodeState::Cloned { goals, .. } => goals.is_empty(),
            NodeState::Shared { goals, .. } => goals.is_empty(),
        }
    }

    /// The goal the node is about to resolve (Prolog selection rule).
    pub fn first_goal(&self) -> Option<&Goal> {
        match &self.state {
            NodeState::Cloned { goals, .. } => goals.first(),
            NodeState::Shared { goals, .. } => goals.first(),
        }
    }

    /// The pending goals as a cons stack: aliased under `Shared`, copied
    /// once under `Cloned` (used by the depth-first engine, whose
    /// backtracking goal list is the same persistent type).
    pub fn goal_stack(&self) -> GoalStack {
        match &self.state {
            NodeState::Cloned { goals, .. } => GoalStack::from_slice(goals),
            NodeState::Shared { goals, .. } => goals.clone(),
        }
    }

    /// Number of pending goals.
    pub fn goal_count(&self) -> usize {
        match &self.state {
            NodeState::Cloned { goals, .. } => goals.len(),
            NodeState::Shared { goals, .. } => goals.len(),
        }
    }

    /// The node's binding environment, representation-blind.
    pub fn lookup(&self) -> &dyn BindingLookup {
        match &self.state {
            NodeState::Cloned { bindings, .. } => bindings,
            NodeState::Shared { frame, .. } => frame.as_ref(),
        }
    }

    /// Fully resolve `t` through the node's bindings (solution
    /// extraction resolves through the frame chain in `Shared`).
    pub fn resolve(&self, t: &Term) -> Term {
        self.lookup().resolve(t)
    }

    /// Resolve query variable `v` (for reading solutions back out).
    pub fn resolve_var(&self, v: u32) -> Term {
        self.resolve(&Term::Var(VarId(v)))
    }

    /// Dereference `t` without copying when the walk goes nowhere; see
    /// [`BindingLookup::walk_cow`].
    pub fn walk_cow<'a>(&self, t: &'a Term) -> std::borrow::Cow<'a, Term> {
        self.lookup().walk_cow(t)
    }
}

/// One child produced by [`expand`].
#[derive(Clone, Debug)]
pub struct Expansion {
    /// The figure-4 pointer followed to produce this child.
    pub arc: PointerKey,
    /// The child node.
    pub node: SearchNode,
}

/// Counters shared by all engines; see [`crate::solve::SearchStats`].
#[derive(Clone, Copy, Default, Debug)]
pub struct ExpandStats {
    /// Unification attempts (head matches tried).
    pub unify_attempts: u64,
    /// Successful unifications (children actually produced).
    pub unify_successes: u64,
    /// Bytes of search state physically copied to sprout children: cloned
    /// binding slots + rebuilt goal entries under [`StateRepr::Cloned`];
    /// frame deltas, flatten copies + new cons cells under
    /// [`StateRepr::Shared`]. This is the measured form of the §6
    /// "copying when chains are sprouted" cost.
    pub bytes_copied: u64,
}

/// Bytes physically copied to sprout one `Cloned` child.
#[inline]
fn cloned_sprout_bytes(binding_slots: usize, goal_entries: usize) -> u64 {
    (binding_slots * std::mem::size_of::<Option<Term>>()
        + goal_entries * std::mem::size_of::<Goal>()) as u64
}

/// Bytes physically copied to sprout one `Shared` child.
#[inline]
fn shared_sprout_bytes(fz: &FreezeStats, body_goals: usize) -> u64 {
    ((fz.delta + fz.flattened) as usize * std::mem::size_of::<(VarId, Term)>()
        + body_goals * GoalStack::cons_cell_bytes()) as u64
}

/// Resolve the first goal of `node` against every candidate clause,
/// returning the surviving children in clause (program) order.
///
/// This is the single resolution-step primitive every engine in the
/// workspace uses — depth-first, breadth-first, iterative deepening, the
/// B-LOG best-first engine and the parallel executors all call it, so
/// "nodes expanded" counts are directly comparable across strategies.
///
/// Returns an empty vector if the node is a solution (nothing to expand)
/// or if every candidate fails to unify (the node is a *failure* leaf).
pub fn expand(db: &ClauseDb, node: &SearchNode, stats: &mut ExpandStats) -> Vec<Expansion> {
    expand_via(db, node, stats)
}

/// [`expand`], generalized over any [`ClauseSource`].
///
/// Every clause touched during candidate matching is fetched through the
/// source, so a paged backend observes the search's true block-access
/// stream — one [`fetch_clause`](ClauseSource::fetch_clause) per
/// unification attempt.
///
/// Children inherit the node's [`StateRepr`]: under `Cloned` each child
/// copies the store; under `Shared` each child is an `Arc` onto the
/// parent's frame plus this step's delta, and the goal continuation is
/// aliased. One pre-sized [`Trail`] is reused across all candidate
/// attempts.
pub fn expand_via<S: ClauseSource + ?Sized>(
    source: &S,
    node: &SearchNode,
    stats: &mut ExpandStats,
) -> Vec<Expansion> {
    match try_expand_via(source, node, stats) {
        Ok(out) => out,
        Err(e) => panic!("expand_via on a faulting source: {e}"),
    }
}

/// [`expand_via`], with storage faults surfaced instead of panicking.
///
/// Engines on the serving path expand through this form so an injected
/// [`StoreError`] from a fault-planned backend propagates as a value the
/// retry/breaker machinery can classify. On `Err` the children sprouted
/// before the fault are discarded — the caller abandons the whole
/// expansion and either retries the request against a fresh snapshot or
/// fails it; partial expansions are never searched.
pub fn try_expand_via<S: ClauseSource + ?Sized>(
    source: &S,
    node: &SearchNode,
    stats: &mut ExpandStats,
) -> Result<Vec<Expansion>, StoreError> {
    let Some(goal) = node.first_goal() else {
        return Ok(Vec::new());
    };
    // Dereference the goal far enough to know its functor: the goal term
    // as stored may be a variable bound to a structure by an earlier step.
    // `walk_cow` borrows from the goal (not the store) when the walk goes
    // nowhere, so nothing is cloned on the common already-resolved path.
    let goal_term = node.walk_cow(&goal.term);
    let candidates = source.try_candidate_clauses(&goal_term, node.lookup())?;
    let mut out = Vec::with_capacity(candidates.len());
    let mut trail = Trail::with_capacity(8);
    let arc_for = |cid: ClauseId| PointerKey {
        caller: goal.caller,
        goal_idx: goal.goal_idx,
        target: cid,
    };

    match &node.state {
        NodeState::Cloned { goals, bindings } => {
            for &cid in candidates.iter() {
                stats.unify_attempts += 1;
                let clause = source.try_fetch_clause(cid)?;
                let base = node.next_var;
                let renamed_head = clause.head.offset_vars(base);

                // Child state: clone bindings, try the head match.
                let mut child_bindings = bindings.clone();
                child_bindings.ensure((base + clause.n_vars) as usize);
                trail.clear();
                if !unify(&mut child_bindings, &mut trail, &goal_term, &renamed_head, false) {
                    continue;
                }
                stats.unify_successes += 1;

                // New goal list: renamed body goals, then the rest of the
                // old list — rebuilt in full, the baseline cost.
                let mut child_goals = Vec::with_capacity(clause.body.len() + goals.len() - 1);
                for (i, b) in clause.body.iter().enumerate() {
                    child_goals.push(Goal {
                        term: b.offset_vars(base),
                        caller: Caller::Clause(cid),
                        goal_idx: i as u16,
                    });
                }
                child_goals.extend_from_slice(&goals[1..]);
                stats.bytes_copied +=
                    cloned_sprout_bytes(child_bindings.len(), child_goals.len());

                out.push(Expansion {
                    arc: arc_for(cid),
                    node: SearchNode {
                        state: NodeState::Cloned {
                            goals: child_goals,
                            bindings: child_bindings,
                        },
                        next_var: base + clause.n_vars,
                        depth: node.depth + 1,
                    },
                });
            }
        }
        NodeState::Shared {
            goals,
            frame,
            flatten_threshold,
        } => {
            // The continuation below the goal being resolved — shared by
            // every child without copying.
            let continuation = goals.rest();
            let mut delta = DeltaBindings::new(frame);
            for &cid in candidates.iter() {
                stats.unify_attempts += 1;
                let clause = source.try_fetch_clause(cid)?;
                let base = node.next_var;
                let renamed_head = clause.head.offset_vars(base);

                delta.clear();
                trail.clear();
                if !unify(&mut delta, &mut trail, &goal_term, &renamed_head, false) {
                    continue;
                }
                stats.unify_successes += 1;

                let (child_frame, fz) = delta.freeze(*flatten_threshold);
                let mut child_goals = continuation.clone();
                for (i, b) in clause.body.iter().enumerate().rev() {
                    child_goals = child_goals.push(Goal {
                        term: b.offset_vars(base),
                        caller: Caller::Clause(cid),
                        goal_idx: i as u16,
                    });
                }
                stats.bytes_copied += shared_sprout_bytes(&fz, clause.body.len());

                out.push(Expansion {
                    arc: arc_for(cid),
                    node: SearchNode {
                        state: NodeState::Shared {
                            goals: child_goals,
                            frame: child_frame,
                            flatten_threshold: *flatten_threshold,
                        },
                        next_var: base + clause.n_vars,
                        depth: node.depth + 1,
                    },
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::Clause;
    use crate::term::VarId;

    /// The paper's figure-1 program.
    pub(crate) fn family() -> (ClauseDb, Vec<Term>) {
        let mut db = ClauseDb::new();
        let f = db.intern("f");
        let m = db.intern("m");
        let gf = db.intern("gf");
        let v = |i| Term::Var(VarId(i));
        // gf(X,Z) :- f(X,Y), f(Y,Z).
        db.add_clause(Clause::new(
            Term::app(gf, vec![v(0), v(2)]),
            vec![Term::app(f, vec![v(0), v(1)]), Term::app(f, vec![v(1), v(2)])],
        ))
        .unwrap();
        // gf(X,Z) :- f(X,Y), m(Y,Z).
        db.add_clause(Clause::new(
            Term::app(gf, vec![v(0), v(2)]),
            vec![Term::app(f, vec![v(0), v(1)]), Term::app(m, vec![v(1), v(2)])],
        ))
        .unwrap();
        let names = [
            ("f", "curt", "elain"),
            ("f", "sam", "larry"),
            ("f", "dan", "pat"),
            ("f", "larry", "den"),
            ("f", "pat", "john"),
            ("f", "larry", "doug"),
            ("m", "elain", "john"),
            ("m", "marian", "elain"),
            ("m", "peg", "den"),
            ("m", "peg", "doug"),
        ];
        for (p, a, b) in names {
            let ps = db.intern(p);
            let aa = db.intern(a);
            let bb = db.intern(b);
            db.add_fact(Term::app(ps, vec![Term::Atom(aa), Term::Atom(bb)]))
                .unwrap();
        }
        db.build_pointers();
        let sam = db.sym("sam").unwrap();
        let query = vec![Term::app(gf, vec![Term::Atom(sam), Term::Var(VarId(0))])];
        (db, query)
    }

    /// Both representations, for representation-blind tests.
    fn both_reprs() -> [StateRepr; 2] {
        [StateRepr::Cloned, StateRepr::shared()]
    }

    #[test]
    fn root_counts_query_vars() {
        let (_, query) = family();
        for repr in both_reprs() {
            let root = SearchNode::root_with(&query, repr);
            assert_eq!(root.next_var, 1);
            assert_eq!(root.goal_count(), 1);
            assert_eq!(root.depth, 0);
            assert!(!root.is_solution());
            assert_eq!(root.repr(), repr);
        }
    }

    #[test]
    fn expanding_root_matches_both_rules() {
        let (db, query) = family();
        for repr in both_reprs() {
            let root = SearchNode::root_with(&query, repr);
            let mut st = ExpandStats::default();
            let kids = expand(&db, &root, &mut st);
            // gf(sam,G) matches exactly the two gf rules.
            assert_eq!(kids.len(), 2);
            assert_eq!(kids[0].arc.target, ClauseId(0));
            assert_eq!(kids[1].arc.target, ClauseId(1));
            assert_eq!(st.unify_attempts, 2);
            assert_eq!(st.unify_successes, 2);
            assert!(st.bytes_copied > 0, "sprouting is metered");
            // Each child now has the two body goals queued.
            assert_eq!(kids[0].node.goal_count(), 2);
            assert_eq!(kids[0].node.depth, 1);
        }
    }

    #[test]
    fn failing_candidates_are_filtered() {
        let (db, _) = family();
        // f(sam, X): only f(sam,larry) among six f-facts unifies.
        let f = db.sym("f").unwrap();
        let sam = db.sym("sam").unwrap();
        let q = vec![Term::app(f, vec![Term::Atom(sam), Term::Var(VarId(0))])];
        for repr in both_reprs() {
            let root = SearchNode::root_with(&q, repr);
            let mut st = ExpandStats::default();
            let kids = expand(&db, &root, &mut st);
            assert_eq!(kids.len(), 1);
            assert_eq!(st.unify_attempts, 6);
            assert_eq!(st.unify_successes, 1);
            assert!(kids[0].node.is_solution());
        }
    }

    #[test]
    fn arc_keys_record_provenance() {
        let (db, query) = family();
        let root = SearchNode::root(&query);
        let mut st = ExpandStats::default();
        let kids = expand(&db, &root, &mut st);
        assert_eq!(kids[0].arc.caller, Caller::Query);
        assert_eq!(kids[0].arc.goal_idx, 0);
        // Expand one level further: goal now comes from clause 0's body.
        let grandkids = expand(&db, &kids[0].node, &mut st);
        assert!(!grandkids.is_empty());
        assert_eq!(grandkids[0].arc.caller, Caller::Clause(ClauseId(0)));
        assert_eq!(grandkids[0].arc.goal_idx, 0);
    }

    #[test]
    fn expansion_renames_clause_vars_apart() {
        let (db, query) = family();
        for repr in both_reprs() {
            let root = SearchNode::root_with(&query, repr);
            let mut st = ExpandStats::default();
            let kids = expand(&db, &root, &mut st);
            // Clause 0 has 3 vars; child must have advanced next_var past
            // them.
            assert_eq!(kids[0].node.next_var, root.next_var + 3);
        }
    }

    #[test]
    fn solution_node_expands_to_nothing() {
        let (db, _) = family();
        let node = SearchNode::root(&[]);
        assert!(node.is_solution());
        let mut st = ExpandStats::default();
        assert!(expand(&db, &node, &mut st).is_empty());
        assert_eq!(st.unify_attempts, 0);
    }

    #[test]
    fn shared_children_alias_the_goal_continuation() {
        let (db, query) = family();
        let root = SearchNode::root_with(&query, StateRepr::shared());
        let mut st = ExpandStats::default();
        let kids = expand(&db, &root, &mut st);
        // Both rule children queue two body goals over the same (empty)
        // continuation; expanding further shares the remaining goal.
        let grandkids = expand(&db, &kids[0].node, &mut st);
        let (NodeState::Shared { goals: g1, .. }, NodeState::Shared { goals: g2, .. }) =
            (&grandkids[0].node.state, &kids[0].node.state)
        else {
            panic!("expected shared nodes");
        };
        assert!(
            g1.ptr_eq(&g2.rest()),
            "the f(Y,Z) continuation must be aliased, not copied"
        );
    }

    #[test]
    fn shared_sprouts_copy_fewer_bytes_than_cloned() {
        let (db, query) = family();
        let mut frontier_cloned = vec![SearchNode::root_with(&query, StateRepr::Cloned)];
        let mut frontier_shared = vec![SearchNode::root_with(&query, StateRepr::shared())];
        let mut st_cloned = ExpandStats::default();
        let mut st_shared = ExpandStats::default();
        while let Some(n) = frontier_cloned.pop() {
            frontier_cloned.extend(expand(&db, &n, &mut st_cloned).into_iter().map(|e| e.node));
        }
        while let Some(n) = frontier_shared.pop() {
            frontier_shared.extend(expand(&db, &n, &mut st_shared).into_iter().map(|e| e.node));
        }
        assert_eq!(st_cloned.unify_successes, st_shared.unify_successes);
        assert!(
            st_shared.bytes_copied < st_cloned.bytes_copied,
            "shared {} !< cloned {}",
            st_shared.bytes_copied,
            st_cloned.bytes_copied
        );
    }

    #[test]
    fn tiny_flatten_threshold_preserves_results() {
        // Force a flatten at every sprout: results must be unchanged.
        let (db, query) = family();
        let reprs = [
            StateRepr::Cloned,
            StateRepr::Shared {
                flatten_threshold: 0,
            },
            StateRepr::shared(),
        ];
        let mut leaves: Vec<Vec<String>> = Vec::new();
        for repr in reprs {
            let mut frontier = vec![SearchNode::root_with(&query, repr)];
            let mut st = ExpandStats::default();
            let mut solutions = Vec::new();
            while let Some(n) = frontier.pop() {
                if n.is_solution() {
                    solutions.push(format!("{:?}", n.resolve_var(0)));
                    continue;
                }
                frontier.extend(expand(&db, &n, &mut st).into_iter().map(|e| e.node));
            }
            solutions.sort();
            leaves.push(solutions);
        }
        assert_eq!(leaves[0], leaves[1]);
        assert_eq!(leaves[0], leaves[2]);
    }
}
