//! OR-tree nodes and the single resolution-step primitive.
//!
//! The paper's figure 3 draws execution as an OR-tree: each node carries a
//! goal to search for, and each arc below it is one way of resolving that
//! goal against the database. [`SearchNode`] is one node of that tree
//! (goal list + bindings), [`expand`] produces its children, and
//! [`PointerKey`] names the arc that led to each child — the identity that
//! the B-LOG weight store keys on.
//!
//! AND-composition is linearized into the goal list exactly as the paper's
//! simplified model prescribes ("we consider AND-trees now only in a
//! sequential way, in very much the same way Prolog does").

use crate::bindings::{Bindings, Trail};
use crate::clause::ClauseId;
use crate::source::ClauseSource;
use crate::store::ClauseDb;
use crate::term::Term;
use crate::unify::unify;

/// Where a goal came from: the query itself or the body of a clause.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Caller {
    /// A goal of the top-level query.
    Query,
    /// A body goal of the given clause.
    Clause(ClauseId),
}

/// A goal to be resolved, together with its provenance (which clause body,
/// and which position in it, the goal came from). Provenance is what lets
/// us name the figure-4 pointer being followed when the goal is resolved.
#[derive(Clone, Debug)]
pub struct Goal {
    /// The goal term (not yet dereferenced).
    pub term: Term,
    /// The clause whose body contributed this goal.
    pub caller: Caller,
    /// Position of this goal within the caller's body (or within the
    /// query's conjunction).
    pub goal_idx: u16,
}

/// Identity of one weighted pointer of figure 4: caller block, pointer
/// position within the block, and target block.
///
/// Weights attached to these keys are shared by *every occurrence* of the
/// arc in any search tree, which is requirement 1 of the paper's section 4
/// ("if an arc appears twice in a tree … they have the same probability.
/// This is required if these probabilities are to be stored in a database
/// that is common to all queries").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PointerKey {
    /// Block containing the pointer.
    pub caller: Caller,
    /// Goal position within the caller block.
    pub goal_idx: u16,
    /// Block the pointer targets.
    pub target: ClauseId,
}

/// One node of the OR-tree: the remaining conjunction of goals plus the
/// bindings accumulated on the chain from the root.
#[derive(Clone, Debug)]
pub struct SearchNode {
    /// Remaining goals, leftmost first (Prolog selection rule).
    pub goals: Vec<Goal>,
    /// Bindings accumulated along the chain from the root.
    pub bindings: Bindings,
    /// Next fresh variable index for renaming clauses apart.
    pub next_var: u32,
    /// Number of arcs from the root (chain length).
    pub depth: u32,
}

impl SearchNode {
    /// The root node for a query conjunction.
    ///
    /// Query variables must be normalized to `0..n`; they stay at those
    /// indices for the whole search so solutions can be read back out.
    pub fn root(query_goals: &[Term]) -> SearchNode {
        let n_vars = query_goals
            .iter()
            .filter_map(Term::max_var)
            .map(|v| v.0 + 1)
            .max()
            .unwrap_or(0);
        let goals = query_goals
            .iter()
            .enumerate()
            .map(|(i, t)| Goal {
                term: t.clone(),
                caller: Caller::Query,
                goal_idx: i as u16,
            })
            .collect();
        SearchNode {
            goals,
            bindings: Bindings::new(),
            next_var: n_vars,
            depth: 0,
        }
    }

    /// Whether every goal has been resolved — a solution leaf.
    pub fn is_solution(&self) -> bool {
        self.goals.is_empty()
    }
}

/// One child produced by [`expand`].
#[derive(Clone, Debug)]
pub struct Expansion {
    /// The figure-4 pointer followed to produce this child.
    pub arc: PointerKey,
    /// The child node.
    pub node: SearchNode,
}

/// Counters shared by all engines; see [`crate::solve::SearchStats`].
#[derive(Clone, Copy, Default, Debug)]
pub struct ExpandStats {
    /// Unification attempts (head matches tried).
    pub unify_attempts: u64,
    /// Successful unifications (children actually produced).
    pub unify_successes: u64,
}

/// Resolve the first goal of `node` against every candidate clause,
/// returning the surviving children in clause (program) order.
///
/// This is the single resolution-step primitive every engine in the
/// workspace uses — depth-first, breadth-first, iterative deepening, the
/// B-LOG best-first engine and the parallel executors all call it, so
/// "nodes expanded" counts are directly comparable across strategies.
///
/// Returns an empty vector if the node is a solution (nothing to expand)
/// or if every candidate fails to unify (the node is a *failure* leaf).
pub fn expand(db: &ClauseDb, node: &SearchNode, stats: &mut ExpandStats) -> Vec<Expansion> {
    expand_via(db, node, stats)
}

/// [`expand`], generalized over any [`ClauseSource`].
///
/// Every clause touched during candidate matching is fetched through the
/// source, so a paged backend observes the search's true block-access
/// stream — one [`fetch_clause`](ClauseSource::fetch_clause) per
/// unification attempt.
pub fn expand_via<S: ClauseSource + ?Sized>(
    source: &S,
    node: &SearchNode,
    stats: &mut ExpandStats,
) -> Vec<Expansion> {
    let Some(goal) = node.goals.first() else {
        return Vec::new();
    };
    // Dereference the goal far enough to know its functor: the goal term
    // as stored may be a variable bound to a structure by an earlier step.
    let goal_term = node.bindings.walk(&goal.term).clone();
    let candidates = source.candidate_clauses(&goal_term, &node.bindings);
    let mut out = Vec::with_capacity(candidates.len());
    for &cid in candidates.iter() {
        stats.unify_attempts += 1;
        let clause = source.fetch_clause(cid);
        let base = node.next_var;
        let renamed_head = clause.head.offset_vars(base);

        // Child state: clone bindings, try the head match.
        let mut bindings = node.bindings.clone();
        let mut trail = Trail::new();
        bindings.ensure((base + clause.n_vars) as usize);
        if !unify(&mut bindings, &mut trail, &goal_term, &renamed_head, false) {
            continue;
        }
        stats.unify_successes += 1;

        // New goal list: renamed body goals, then the rest of the old list.
        let mut goals = Vec::with_capacity(clause.body.len() + node.goals.len() - 1);
        for (i, b) in clause.body.iter().enumerate() {
            goals.push(Goal {
                term: b.offset_vars(base),
                caller: Caller::Clause(cid),
                goal_idx: i as u16,
            });
        }
        goals.extend_from_slice(&node.goals[1..]);

        out.push(Expansion {
            arc: PointerKey {
                caller: goal.caller,
                goal_idx: goal.goal_idx,
                target: cid,
            },
            node: SearchNode {
                goals,
                bindings,
                next_var: base + clause.n_vars,
                depth: node.depth + 1,
            },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::Clause;
    use crate::term::VarId;

    /// The paper's figure-1 program.
    pub(crate) fn family() -> (ClauseDb, Vec<Term>) {
        let mut db = ClauseDb::new();
        let f = db.intern("f");
        let m = db.intern("m");
        let gf = db.intern("gf");
        let v = |i| Term::Var(VarId(i));
        // gf(X,Z) :- f(X,Y), f(Y,Z).
        db.add_clause(Clause::new(
            Term::app(gf, vec![v(0), v(2)]),
            vec![Term::app(f, vec![v(0), v(1)]), Term::app(f, vec![v(1), v(2)])],
        ))
        .unwrap();
        // gf(X,Z) :- f(X,Y), m(Y,Z).
        db.add_clause(Clause::new(
            Term::app(gf, vec![v(0), v(2)]),
            vec![Term::app(f, vec![v(0), v(1)]), Term::app(m, vec![v(1), v(2)])],
        ))
        .unwrap();
        let names = [
            ("f", "curt", "elain"),
            ("f", "sam", "larry"),
            ("f", "dan", "pat"),
            ("f", "larry", "den"),
            ("f", "pat", "john"),
            ("f", "larry", "doug"),
            ("m", "elain", "john"),
            ("m", "marian", "elain"),
            ("m", "peg", "den"),
            ("m", "peg", "doug"),
        ];
        for (p, a, b) in names {
            let ps = db.intern(p);
            let aa = db.intern(a);
            let bb = db.intern(b);
            db.add_fact(Term::app(ps, vec![Term::Atom(aa), Term::Atom(bb)]))
                .unwrap();
        }
        db.build_pointers();
        let sam = db.sym("sam").unwrap();
        let query = vec![Term::app(gf, vec![Term::Atom(sam), Term::Var(VarId(0))])];
        (db, query)
    }

    #[test]
    fn root_counts_query_vars() {
        let (_, query) = family();
        let root = SearchNode::root(&query);
        assert_eq!(root.next_var, 1);
        assert_eq!(root.goals.len(), 1);
        assert_eq!(root.depth, 0);
        assert!(!root.is_solution());
    }

    #[test]
    fn expanding_root_matches_both_rules() {
        let (db, query) = family();
        let root = SearchNode::root(&query);
        let mut st = ExpandStats::default();
        let kids = expand(&db, &root, &mut st);
        // gf(sam,G) matches exactly the two gf rules.
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].arc.target, ClauseId(0));
        assert_eq!(kids[1].arc.target, ClauseId(1));
        assert_eq!(st.unify_attempts, 2);
        assert_eq!(st.unify_successes, 2);
        // Each child now has the two body goals queued.
        assert_eq!(kids[0].node.goals.len(), 2);
        assert_eq!(kids[0].node.depth, 1);
    }

    #[test]
    fn failing_candidates_are_filtered() {
        let (db, _) = family();
        // f(sam, X): only f(sam,larry) among six f-facts unifies.
        let f = db.sym("f").unwrap();
        let sam = db.sym("sam").unwrap();
        let q = vec![Term::app(f, vec![Term::Atom(sam), Term::Var(VarId(0))])];
        let root = SearchNode::root(&q);
        let mut st = ExpandStats::default();
        let kids = expand(&db, &root, &mut st);
        assert_eq!(kids.len(), 1);
        assert_eq!(st.unify_attempts, 6);
        assert_eq!(st.unify_successes, 1);
        assert!(kids[0].node.is_solution());
    }

    #[test]
    fn arc_keys_record_provenance() {
        let (db, query) = family();
        let root = SearchNode::root(&query);
        let mut st = ExpandStats::default();
        let kids = expand(&db, &root, &mut st);
        assert_eq!(kids[0].arc.caller, Caller::Query);
        assert_eq!(kids[0].arc.goal_idx, 0);
        // Expand one level further: goal now comes from clause 0's body.
        let grandkids = expand(&db, &kids[0].node, &mut st);
        assert!(!grandkids.is_empty());
        assert_eq!(grandkids[0].arc.caller, Caller::Clause(ClauseId(0)));
        assert_eq!(grandkids[0].arc.goal_idx, 0);
    }

    #[test]
    fn expansion_renames_clause_vars_apart() {
        let (db, query) = family();
        let root = SearchNode::root(&query);
        let mut st = ExpandStats::default();
        let kids = expand(&db, &root, &mut st);
        // Clause 0 has 3 vars; child must have advanced next_var past them.
        assert_eq!(kids[0].node.next_var, root.next_var + 3);
    }

    #[test]
    fn solution_node_expands_to_nothing() {
        let (db, _) = family();
        let node = SearchNode {
            goals: vec![],
            bindings: Bindings::new(),
            next_var: 0,
            depth: 3,
        };
        let mut st = ExpandStats::default();
        assert!(expand(&db, &node, &mut st).is_empty());
        assert_eq!(st.unify_attempts, 0);
    }
}
