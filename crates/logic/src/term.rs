//! First-order terms.
//!
//! Terms are immutable; compound arguments are shared through `Arc` so that
//! renaming-apart and solution extraction can reuse ground subterms without
//! copying. Variables are plain indices into a [`Bindings`](crate::Bindings)
//! store — clauses are stored with variables normalized to `0..n_vars` and
//! are *renamed apart* at resolution time by offsetting into fresh indices.

use std::sync::Arc;

use crate::symbol::Sym;

/// A logic variable, an index into the binding store of one derivation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// Index into a bindings vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A first-order term.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A logic variable.
    Var(VarId),
    /// A constant symbol (`sam`, `[]`, …).
    Atom(Sym),
    /// An integer constant.
    Int(i64),
    /// A compound term `f(t1, …, tn)` with `n >= 1`.
    Struct(Sym, Arc<[Term]>),
}

impl Term {
    /// Build a compound term.
    pub fn app(functor: Sym, args: Vec<Term>) -> Term {
        debug_assert!(!args.is_empty(), "compound terms need >= 1 argument");
        Term::Struct(functor, args.into())
    }

    /// The functor symbol and arity of this term, treating an atom as a
    /// 0-ary functor. Variables and integers have no functor.
    pub fn functor(&self) -> Option<(Sym, u32)> {
        match self {
            Term::Atom(s) => Some((*s, 0)),
            Term::Struct(s, args) => Some((*s, args.len() as u32)),
            Term::Var(_) | Term::Int(_) => None,
        }
    }

    /// Whether the term contains no variables at all.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Atom(_) | Term::Int(_) => true,
            Term::Struct(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Whether `v` occurs anywhere in the term (syntactically, without
    /// walking bindings — see [`unify`](crate::unify::unify) for the
    /// bound version).
    pub fn contains_var(&self, v: VarId) -> bool {
        match self {
            Term::Var(w) => *w == v,
            Term::Atom(_) | Term::Int(_) => false,
            Term::Struct(_, args) => args.iter().any(|a| a.contains_var(v)),
        }
    }

    /// The largest variable index occurring in the term, if any.
    pub fn max_var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Atom(_) | Term::Int(_) => None,
            Term::Struct(_, args) => args.iter().filter_map(Term::max_var).max(),
        }
    }

    /// Return a copy of the term with every variable index shifted up by
    /// `base`. Ground subtrees are shared, not copied.
    pub fn offset_vars(&self, base: u32) -> Term {
        if base == 0 {
            return self.clone();
        }
        match self {
            Term::Var(v) => Term::Var(VarId(v.0 + base)),
            Term::Atom(_) | Term::Int(_) => self.clone(),
            Term::Struct(f, args) => {
                if self.is_ground() {
                    // Ground: the Arc can be shared as-is.
                    self.clone()
                } else {
                    let new_args: Vec<Term> =
                        args.iter().map(|a| a.offset_vars(base)).collect();
                    Term::Struct(*f, new_args.into())
                }
            }
        }
    }

    /// Structural size of the term (number of symbol/variable occurrences).
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Atom(_) | Term::Int(_) => 1,
            Term::Struct(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
        }
    }

    /// Structural depth of the term (an atom has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Term::Var(_) | Term::Atom(_) | Term::Int(_) => 1,
            Term::Struct(_, args) => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Sym {
        Sym(i)
    }

    #[test]
    fn functor_of_each_shape() {
        assert_eq!(Term::Atom(s(3)).functor(), Some((s(3), 0)));
        let t = Term::app(s(1), vec![Term::Int(4), Term::Var(VarId(0))]);
        assert_eq!(t.functor(), Some((s(1), 2)));
        assert_eq!(Term::Var(VarId(0)).functor(), None);
        assert_eq!(Term::Int(9).functor(), None);
    }

    #[test]
    fn groundness() {
        let g = Term::app(s(0), vec![Term::Atom(s(1)), Term::Int(2)]);
        assert!(g.is_ground());
        let ng = Term::app(s(0), vec![Term::Atom(s(1)), Term::Var(VarId(7))]);
        assert!(!ng.is_ground());
    }

    #[test]
    fn offset_vars_shifts_only_vars() {
        let t = Term::app(s(0), vec![Term::Var(VarId(1)), Term::Atom(s(2))]);
        let u = t.offset_vars(10);
        assert_eq!(
            u,
            Term::app(s(0), vec![Term::Var(VarId(11)), Term::Atom(s(2))])
        );
    }

    #[test]
    fn offset_vars_shares_ground_subtrees() {
        let ground = Term::app(s(0), vec![Term::Atom(s(1))]);
        let t = Term::app(s(2), vec![ground.clone(), Term::Var(VarId(0))]);
        let u = t.offset_vars(5);
        match (&t, &u) {
            (Term::Struct(_, a0), Term::Struct(_, a1)) => {
                // The ground first argument must be the same allocation.
                match (&a0[0], &a1[0]) {
                    (Term::Struct(_, g0), Term::Struct(_, g1)) => {
                        assert!(Arc::ptr_eq(g0, g1));
                    }
                    _ => panic!("expected structs"),
                }
            }
            _ => panic!("expected structs"),
        }
    }

    #[test]
    fn offset_zero_is_identity() {
        let t = Term::app(s(0), vec![Term::Var(VarId(3))]);
        assert_eq!(t.offset_vars(0), t);
    }

    #[test]
    fn size_and_depth() {
        let t = Term::app(
            s(0),
            vec![Term::app(s(1), vec![Term::Int(1)]), Term::Atom(s(2))],
        );
        assert_eq!(t.size(), 4);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn max_var_finds_largest() {
        let t = Term::app(
            s(0),
            vec![Term::Var(VarId(3)), Term::app(s(1), vec![Term::Var(VarId(9))])],
        );
        assert_eq!(t.max_var(), Some(VarId(9)));
        assert_eq!(Term::Atom(s(0)).max_var(), None);
    }

    #[test]
    fn contains_var_walks_structure() {
        let t = Term::app(s(0), vec![Term::app(s(1), vec![Term::Var(VarId(2))])]);
        assert!(t.contains_var(VarId(2)));
        assert!(!t.contains_var(VarId(3)));
    }
}
