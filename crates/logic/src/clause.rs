//! Horn clauses.
//!
//! A clause is stored with its variables normalized to `0..n_vars` so that
//! renaming-apart at resolution time is a single offset (see
//! [`Term::offset_vars`]).

use crate::term::Term;

/// Index of a clause inside its [`ClauseDb`](crate::ClauseDb).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClauseId(pub u32);

impl ClauseId {
    /// Index into the database's clause vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A Horn clause `head :- body[0], …, body[k-1]` (a fact when the body is
/// empty), with variables normalized to the range `0..n_vars`.
#[derive(Clone, Debug)]
pub struct Clause {
    /// The clause head.
    pub head: Term,
    /// Body goals, in textual order (Prolog's left-to-right selection).
    pub body: Vec<Term>,
    /// Number of distinct variables; variable indices are `0..n_vars`.
    pub n_vars: u32,
}

impl Clause {
    /// Construct a clause, computing `n_vars` from the terms.
    ///
    /// The caller must already have normalized variables to a dense
    /// `0..n` range (the parser and the workload generators both do).
    pub fn new(head: Term, body: Vec<Term>) -> Clause {
        let max = std::iter::once(&head)
            .chain(body.iter())
            .filter_map(Term::max_var)
            .max();
        let n_vars = max.map(|v| v.0 + 1).unwrap_or(0);
        Clause { head, body, n_vars }
    }

    /// A fact (empty body).
    pub fn fact(head: Term) -> Clause {
        Clause::new(head, Vec::new())
    }

    /// Whether the clause is a fact.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Head functor and arity. All stored clauses have a functor head
    /// (enforced by [`ClauseDb::add_clause`](crate::ClauseDb::add_clause)).
    pub fn head_pred(&self) -> (crate::Sym, u32) {
        self.head
            .functor()
            .expect("clause heads are callable terms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Sym;
    use crate::term::VarId;

    #[test]
    fn n_vars_counts_head_and_body() {
        let head = Term::app(Sym(0), vec![Term::Var(VarId(0)), Term::Var(VarId(2))]);
        let body = vec![Term::app(Sym(1), vec![Term::Var(VarId(1))])];
        let c = Clause::new(head, body);
        assert_eq!(c.n_vars, 3);
    }

    #[test]
    fn ground_fact_has_no_vars() {
        let c = Clause::fact(Term::app(Sym(0), vec![Term::Atom(Sym(1))]));
        assert_eq!(c.n_vars, 0);
        assert!(c.is_fact());
    }

    #[test]
    fn head_pred_reports_functor_arity() {
        let c = Clause::fact(Term::app(Sym(7), vec![Term::Int(1), Term::Int(2)]));
        assert_eq!(c.head_pred(), (Sym(7), 2));
    }
}
