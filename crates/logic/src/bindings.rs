//! Variable bindings and the undo trail.
//!
//! A [`Bindings`] store maps variable indices to optional terms. The
//! depth-first engine binds through a [`Trail`] and undoes on backtracking
//! (the classic Prolog discipline). The frontier-based engines (breadth-
//! first, B-LOG best-first, and the parallel executors) historically
//! *cloned* the store per child node — the software analogue of the
//! "copying when chains are sprouted" cost the paper discusses in section
//! 6 — and can now instead thread a persistent
//! [`BindingFrame`](crate::frames::BindingFrame) chain through the same
//! unification code. The [`BindingLookup`] / [`BindingWrite`] traits are
//! the seam that lets [`unify`](crate::unify::unify) and clause indexing
//! run over either representation.

use std::borrow::Cow;

use crate::term::{Term, VarId};

/// Read access to a variable-binding environment.
///
/// Object-safe so clause indexing can dereference goals through `&dyn
/// BindingLookup` without knowing whether the search runs over a flat
/// [`Bindings`] store or a persistent frame chain.
pub trait BindingLookup {
    /// The raw binding of `v`, without dereferencing chains.
    fn lookup(&self, v: VarId) -> Option<&Term>;

    /// Dereference `t` through binding chains until an unbound variable or
    /// a non-variable term is reached. Does not descend into structures.
    fn walk<'a>(&'a self, mut t: &'a Term) -> &'a Term {
        while let Term::Var(v) = t {
            match self.lookup(*v) {
                Some(next) => t = next,
                None => break,
            }
        }
        t
    }

    /// [`walk`](Self::walk), but with the result's lifetime tied to the
    /// *input* term rather than the store: if the walk goes nowhere the
    /// input is returned borrowed (no clone, no borrow of `self` kept
    /// alive); only a walk that actually moved clones the (cheap,
    /// `Arc`-shared) destination term.
    ///
    /// This is the read path for [`expand_via`](crate::node::expand_via)
    /// and the depth-first engine, which must keep the dereferenced goal
    /// alive while mutating the store.
    fn walk_cow<'a>(&self, t: &'a Term) -> Cow<'a, Term> {
        let w = self.walk(t);
        if std::ptr::eq(w, t) {
            Cow::Borrowed(t)
        } else {
            Cow::Owned(w.clone())
        }
    }

    /// Fully apply the bindings to `t`, producing a term whose remaining
    /// variables are all unbound.
    fn resolve(&self, t: &Term) -> Term {
        let w = self.walk(t);
        match w {
            Term::Var(_) | Term::Atom(_) | Term::Int(_) => w.clone(),
            Term::Struct(f, args) => {
                if w.is_ground() {
                    return w.clone();
                }
                let new_args: Vec<Term> = args.iter().map(|a| self.resolve(a)).collect();
                Term::Struct(*f, new_args.into())
            }
        }
    }
}

/// Write access to a variable-binding environment, on top of
/// [`BindingLookup`]. Implemented by [`Bindings`] (flat slots) and
/// [`DeltaBindings`](crate::frames::DeltaBindings) (per-node frame delta),
/// so one [`unify`](crate::unify::unify) serves both representations.
pub trait BindingWrite: BindingLookup {
    /// Bind `v := t`, recording the write on `trail` for undo.
    fn bind(&mut self, trail: &mut Trail, v: VarId, t: Term);
}

/// A growable map from variable index to its binding.
#[derive(Clone, Default, Debug)]
pub struct Bindings {
    slots: Vec<Option<Term>>,
}

impl Bindings {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store pre-sized for `n` variables.
    pub fn with_capacity(n: usize) -> Self {
        Bindings {
            slots: Vec::with_capacity(n),
        }
    }

    /// Number of variable slots allocated.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slots exist yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Ensure slots exist for variables `0..n`.
    pub fn ensure(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, None);
        }
    }

    /// The raw binding of `v`, without dereferencing chains.
    #[inline]
    pub fn get(&self, v: VarId) -> Option<&Term> {
        self.slots.get(v.index()).and_then(|s| s.as_ref())
    }

    /// Bind `v := t`, recording the write on `trail` for undo.
    ///
    /// # Panics
    /// In debug builds, panics if `v` is already bound (rebinding without
    /// undoing is always a bug in SLD resolution).
    pub fn bind(&mut self, trail: &mut Trail, v: VarId, t: Term) {
        self.ensure(v.index() + 1);
        debug_assert!(
            self.slots[v.index()].is_none(),
            "variable {v:?} bound twice"
        );
        self.slots[v.index()] = Some(t);
        trail.push(v);
    }

    /// Dereference `t` through binding chains until an unbound variable or
    /// a non-variable term is reached. Does not descend into structures.
    pub fn walk<'a>(&'a self, t: &'a Term) -> &'a Term {
        BindingLookup::walk(self, t)
    }

    /// See [`BindingLookup::walk_cow`]: dereference without keeping a
    /// borrow of the store alive when the walk goes nowhere.
    pub fn walk_cow<'a>(&self, t: &'a Term) -> Cow<'a, Term> {
        BindingLookup::walk_cow(self, t)
    }

    /// Fully apply the bindings to `t`, producing a term whose remaining
    /// variables are all unbound.
    pub fn resolve(&self, t: &Term) -> Term {
        BindingLookup::resolve(self, t)
    }

    /// Undo every binding recorded at or after `mark`.
    pub fn undo_to(&mut self, trail: &mut Trail, mark: TrailMark) {
        while trail.entries.len() > mark.0 {
            let v = trail.entries.pop().expect("trail length checked");
            self.slots[v.index()] = None;
        }
    }
}

impl BindingLookup for Bindings {
    #[inline]
    fn lookup(&self, v: VarId) -> Option<&Term> {
        self.slots.get(v.index()).and_then(|s| s.as_ref())
    }
}

impl BindingWrite for Bindings {
    #[inline]
    fn bind(&mut self, trail: &mut Trail, v: VarId, t: Term) {
        Bindings::bind(self, trail, v, t);
    }
}

/// A record of variable writes, enabling O(1)-per-binding undo.
#[derive(Default, Debug)]
pub struct Trail {
    entries: Vec<VarId>,
}

/// A saved position in a [`Trail`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrailMark(usize);

impl Trail {
    /// An empty trail.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty trail pre-sized for `n` writes, so one allocation serves a
    /// whole expansion's worth of candidate attempts.
    pub fn with_capacity(n: usize) -> Self {
        Trail {
            entries: Vec::with_capacity(n),
        }
    }

    /// Forget every recorded write, keeping the allocation. Used between
    /// candidate attempts when the store itself is discarded rather than
    /// undone (the cloning and frame-delta expansion paths).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Record the current position, to pass to [`Bindings::undo_to`].
    pub fn mark(&self) -> TrailMark {
        TrailMark(self.entries.len())
    }

    /// Record one variable write.
    #[inline]
    pub fn push(&mut self, v: VarId) {
        self.entries.push(v);
    }

    /// Number of writes recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no writes are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Sym;

    fn atom(i: u32) -> Term {
        Term::Atom(Sym(i))
    }

    #[test]
    fn bind_and_walk_chain() {
        let mut b = Bindings::new();
        let mut tr = Trail::new();
        // v0 -> v1 -> atom
        b.bind(&mut tr, VarId(0), Term::Var(VarId(1)));
        b.bind(&mut tr, VarId(1), atom(7));
        let t = Term::Var(VarId(0));
        assert_eq!(b.walk(&t), &atom(7));
    }

    #[test]
    fn walk_stops_at_unbound() {
        let mut b = Bindings::new();
        let mut tr = Trail::new();
        b.bind(&mut tr, VarId(0), Term::Var(VarId(5)));
        let t = Term::Var(VarId(0));
        assert_eq!(b.walk(&t), &Term::Var(VarId(5)));
    }

    #[test]
    fn resolve_descends_into_structs() {
        let mut b = Bindings::new();
        let mut tr = Trail::new();
        b.bind(&mut tr, VarId(0), atom(1));
        let t = Term::app(Sym(9), vec![Term::Var(VarId(0)), Term::Var(VarId(2))]);
        let r = b.resolve(&t);
        assert_eq!(r, Term::app(Sym(9), vec![atom(1), Term::Var(VarId(2))]));
    }

    #[test]
    fn undo_restores_unbound_state() {
        let mut b = Bindings::new();
        let mut tr = Trail::new();
        b.bind(&mut tr, VarId(0), atom(1));
        let mark = tr.mark();
        b.bind(&mut tr, VarId(1), atom(2));
        b.bind(&mut tr, VarId(2), atom(3));
        b.undo_to(&mut tr, mark);
        assert!(b.get(VarId(1)).is_none());
        assert!(b.get(VarId(2)).is_none());
        assert_eq!(b.get(VarId(0)), Some(&atom(1)));
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn undo_to_start_empties_trail() {
        let mut b = Bindings::new();
        let mut tr = Trail::new();
        let mark = tr.mark();
        b.bind(&mut tr, VarId(0), atom(1));
        b.undo_to(&mut tr, mark);
        assert!(tr.is_empty());
        assert!(b.get(VarId(0)).is_none());
    }

    #[test]
    fn clone_is_independent() {
        let mut b = Bindings::new();
        let mut tr = Trail::new();
        b.bind(&mut tr, VarId(0), atom(1));
        let mut c = b.clone();
        let mut tr2 = Trail::new();
        c.bind(&mut tr2, VarId(1), atom(2));
        assert!(b.get(VarId(1)).is_none());
        assert_eq!(c.get(VarId(0)), Some(&atom(1)));
    }
}
