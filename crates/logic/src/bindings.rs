//! Variable bindings and the undo trail.
//!
//! A [`Bindings`] store maps variable indices to optional terms. The
//! depth-first engine binds through a [`Trail`] and undoes on backtracking
//! (the classic Prolog discipline); the frontier-based engines (breadth-
//! first and B-LOG best-first) instead clone the store per child node,
//! which is the software analogue of the "copying when chains are
//! sprouted" cost the paper discusses in section 6.

use crate::term::{Term, VarId};

/// A growable map from variable index to its binding.
#[derive(Clone, Default, Debug)]
pub struct Bindings {
    slots: Vec<Option<Term>>,
}

impl Bindings {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store pre-sized for `n` variables.
    pub fn with_capacity(n: usize) -> Self {
        Bindings {
            slots: Vec::with_capacity(n),
        }
    }

    /// Number of variable slots allocated.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slots exist yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Ensure slots exist for variables `0..n`.
    pub fn ensure(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, None);
        }
    }

    /// The raw binding of `v`, without dereferencing chains.
    #[inline]
    pub fn get(&self, v: VarId) -> Option<&Term> {
        self.slots.get(v.index()).and_then(|s| s.as_ref())
    }

    /// Bind `v := t`, recording the write on `trail` for undo.
    ///
    /// # Panics
    /// In debug builds, panics if `v` is already bound (rebinding without
    /// undoing is always a bug in SLD resolution).
    pub fn bind(&mut self, trail: &mut Trail, v: VarId, t: Term) {
        self.ensure(v.index() + 1);
        debug_assert!(
            self.slots[v.index()].is_none(),
            "variable {v:?} bound twice"
        );
        self.slots[v.index()] = Some(t);
        trail.push(v);
    }

    /// Dereference `t` through binding chains until an unbound variable or
    /// a non-variable term is reached. Does not descend into structures.
    pub fn walk<'a>(&'a self, mut t: &'a Term) -> &'a Term {
        while let Term::Var(v) = t {
            match self.get(*v) {
                Some(next) => t = next,
                None => break,
            }
        }
        t
    }

    /// Fully apply the bindings to `t`, producing a term whose remaining
    /// variables are all unbound.
    pub fn resolve(&self, t: &Term) -> Term {
        let w = self.walk(t);
        match w {
            Term::Var(_) | Term::Atom(_) | Term::Int(_) => w.clone(),
            Term::Struct(f, args) => {
                if w.is_ground() {
                    return w.clone();
                }
                let new_args: Vec<Term> = args.iter().map(|a| self.resolve(a)).collect();
                Term::Struct(*f, new_args.into())
            }
        }
    }

    /// Undo every binding recorded at or after `mark`.
    pub fn undo_to(&mut self, trail: &mut Trail, mark: TrailMark) {
        while trail.entries.len() > mark.0 {
            let v = trail.entries.pop().expect("trail length checked");
            self.slots[v.index()] = None;
        }
    }
}

/// A record of variable writes, enabling O(1)-per-binding undo.
#[derive(Default, Debug)]
pub struct Trail {
    entries: Vec<VarId>,
}

/// A saved position in a [`Trail`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrailMark(usize);

impl Trail {
    /// An empty trail.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the current position, to pass to [`Bindings::undo_to`].
    pub fn mark(&self) -> TrailMark {
        TrailMark(self.entries.len())
    }

    /// Record one variable write.
    #[inline]
    pub fn push(&mut self, v: VarId) {
        self.entries.push(v);
    }

    /// Number of writes recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no writes are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Sym;

    fn atom(i: u32) -> Term {
        Term::Atom(Sym(i))
    }

    #[test]
    fn bind_and_walk_chain() {
        let mut b = Bindings::new();
        let mut tr = Trail::new();
        // v0 -> v1 -> atom
        b.bind(&mut tr, VarId(0), Term::Var(VarId(1)));
        b.bind(&mut tr, VarId(1), atom(7));
        let t = Term::Var(VarId(0));
        assert_eq!(b.walk(&t), &atom(7));
    }

    #[test]
    fn walk_stops_at_unbound() {
        let mut b = Bindings::new();
        let mut tr = Trail::new();
        b.bind(&mut tr, VarId(0), Term::Var(VarId(5)));
        let t = Term::Var(VarId(0));
        assert_eq!(b.walk(&t), &Term::Var(VarId(5)));
    }

    #[test]
    fn resolve_descends_into_structs() {
        let mut b = Bindings::new();
        let mut tr = Trail::new();
        b.bind(&mut tr, VarId(0), atom(1));
        let t = Term::app(Sym(9), vec![Term::Var(VarId(0)), Term::Var(VarId(2))]);
        let r = b.resolve(&t);
        assert_eq!(r, Term::app(Sym(9), vec![atom(1), Term::Var(VarId(2))]));
    }

    #[test]
    fn undo_restores_unbound_state() {
        let mut b = Bindings::new();
        let mut tr = Trail::new();
        b.bind(&mut tr, VarId(0), atom(1));
        let mark = tr.mark();
        b.bind(&mut tr, VarId(1), atom(2));
        b.bind(&mut tr, VarId(2), atom(3));
        b.undo_to(&mut tr, mark);
        assert!(b.get(VarId(1)).is_none());
        assert!(b.get(VarId(2)).is_none());
        assert_eq!(b.get(VarId(0)), Some(&atom(1)));
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn undo_to_start_empties_trail() {
        let mut b = Bindings::new();
        let mut tr = Trail::new();
        let mark = tr.mark();
        b.bind(&mut tr, VarId(0), atom(1));
        b.undo_to(&mut tr, mark);
        assert!(tr.is_empty());
        assert!(b.get(VarId(0)).is_none());
    }

    #[test]
    fn clone_is_independent() {
        let mut b = Bindings::new();
        let mut tr = Trail::new();
        b.bind(&mut tr, VarId(0), atom(1));
        let mut c = b.clone();
        let mut tr2 = Trail::new();
        c.bind(&mut tr2, VarId(1), atom(2));
        assert!(b.get(VarId(1)).is_none());
        assert_eq!(c.get(VarId(0)), Some(&atom(1)));
    }
}
