//! The clause-resolution abstraction every engine searches through.
//!
//! The paper's machine does not hold the whole program in processor
//! memory: clauses live on Semantic Paging Disks and are faulted in as the
//! search touches them (§6). [`ClauseSource`] is the software seam for
//! that: [`expand_via`](crate::node::expand_via) resolves goals through
//! this trait, so the same engine runs against the in-memory
//! [`ClauseDb`] or against a paged backend (see
//! `blog-spd`'s `PagedClauseStore`) that counts cache hits, misses, and
//! evictions as the search streams over it.
//!
//! Implementations must be *semantically transparent*: the clauses and
//! candidate lists returned must be identical to the backing database's,
//! whatever bookkeeping happens underneath. The property tests in
//! `blog-spd` assert exactly that.

use std::borrow::Cow;

use crate::bindings::BindingLookup;
use crate::clause::{Clause, ClauseId};
use crate::store::ClauseDb;
use crate::term::Term;

/// Backend-agnostic access counters a [`ClauseSource`] may expose.
///
/// Cache-backed sources (the paged clause store, with any of its
/// replacement policies) report their clause-fetch behavior here so
/// experiment harnesses can read hit rates through the trait without
/// knowing the backend type. Plain in-memory sources report nothing.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SourceStats {
    /// Clause fetches routed through the source.
    pub accesses: u64,
    /// Fetches served without touching the backing store.
    pub hits: u64,
    /// Fetches that had to fault data in.
    pub misses: u64,
    /// Cached units evicted to make room.
    pub evictions: u64,
}

impl SourceStats {
    /// Hit rate in `[0, 1]` (zero when nothing was accessed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.hits as f64 / self.accesses as f64
    }
}

/// A source of clauses and figure-4 candidate lists.
///
/// Methods take `&self`: backends that track access statistics (page
/// caches, tracers) use interior mutability, which keeps every search
/// engine oblivious to the bookkeeping. The `Sync` bound makes that
/// contract honest — a source must be shareable across threads, because
/// the OR-parallel engine's workers and the query server's pools all
/// resolve through **one** store at once (interior mutability therefore
/// means a lock or atomics, never a `Cell`).
pub trait ClauseSource: Sync {
    /// Fetch a clause block. For paged backends this is *the* accounted
    /// access: one call is one block touch.
    fn fetch_clause(&self, id: ClauseId) -> &Clause;

    /// Candidate resolvers for a goal under the backend's index mode,
    /// dereferencing through `bindings` — any binding representation, so
    /// the same backend serves cloned-store and frame-chain searches (see
    /// [`ClauseDb::candidates_for_resolved`]).
    fn candidate_clauses<'a>(
        &'a self,
        goal: &Term,
        bindings: &dyn BindingLookup,
    ) -> Cow<'a, [ClauseId]>;

    /// Number of clause blocks in the source.
    fn clause_count(&self) -> usize;

    /// Short description of the backend serving fetches, for experiment
    /// tables — e.g. `"clause-db"` or `"paged/2q"`.
    fn backend_name(&self) -> String {
        "clause-db".to_string()
    }

    /// Access counters, for backends that meter fetches (`None` for
    /// plain in-memory sources).
    fn source_stats(&self) -> Option<SourceStats> {
        None
    }
}

impl ClauseSource for ClauseDb {
    #[inline]
    fn fetch_clause(&self, id: ClauseId) -> &Clause {
        self.clause(id)
    }

    #[inline]
    fn candidate_clauses<'a>(
        &'a self,
        goal: &Term,
        bindings: &dyn BindingLookup,
    ) -> Cow<'a, [ClauseId]> {
        self.candidates_for_resolved(goal, bindings)
    }

    #[inline]
    fn clause_count(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::Bindings;
    use crate::parser::parse_program;

    #[test]
    fn clause_db_is_a_transparent_source() {
        let p = parse_program("p(a). p(b). q(X) :- p(X).").unwrap();
        let db = &p.db;
        assert_eq!(db.clause_count(), db.len());
        for i in 0..db.len() {
            let id = ClauseId(i as u32);
            assert_eq!(db.fetch_clause(id).head, db.clause(id).head);
        }
        let q_goal = p.db.clause(ClauseId(2)).body[0].clone();
        let b = Bindings::new();
        assert_eq!(
            db.candidate_clauses(&q_goal, &b).as_ref(),
            db.candidates_for_resolved(&q_goal, &b).as_ref()
        );
    }

    #[test]
    fn in_memory_source_reports_no_stats() {
        let p = parse_program("p(a).").unwrap();
        assert_eq!(p.db.backend_name(), "clause-db");
        assert_eq!(p.db.source_stats(), None);
    }

    #[test]
    fn source_stats_hit_rate() {
        let s = SourceStats {
            accesses: 8,
            hits: 6,
            misses: 2,
            evictions: 1,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(SourceStats::default().hit_rate(), 0.0);
    }
}
