//! The clause-resolution abstraction every engine searches through.
//!
//! The paper's machine does not hold the whole program in processor
//! memory: clauses live on Semantic Paging Disks and are faulted in as the
//! search touches them (§6). [`ClauseSource`] is the software seam for
//! that: [`expand_via`](crate::node::expand_via) resolves goals through
//! this trait, so the same engine runs against the in-memory
//! [`ClauseDb`] or against a paged backend (see
//! `blog-spd`'s `PagedClauseStore`) that counts cache hits, misses, and
//! evictions as the search streams over it.
//!
//! Implementations must be *semantically transparent*: the clauses and
//! candidate lists returned must be identical to the backing database's,
//! whatever bookkeeping happens underneath. The property tests in
//! `blog-spd` assert exactly that.

use std::borrow::Cow;

use crate::bindings::Bindings;
use crate::clause::{Clause, ClauseId};
use crate::store::ClauseDb;
use crate::term::Term;

/// A source of clauses and figure-4 candidate lists.
///
/// Methods take `&self`: backends that track access statistics (page
/// caches, tracers) use interior mutability, which keeps every search
/// engine oblivious to the bookkeeping.
pub trait ClauseSource {
    /// Fetch a clause block. For paged backends this is *the* accounted
    /// access: one call is one block touch.
    fn fetch_clause(&self, id: ClauseId) -> &Clause;

    /// Candidate resolvers for a goal under the backend's index mode,
    /// dereferencing through `bindings` (see
    /// [`ClauseDb::candidates_for_resolved`]).
    fn candidate_clauses<'a>(&'a self, goal: &Term, bindings: &Bindings) -> Cow<'a, [ClauseId]>;

    /// Number of clause blocks in the source.
    fn clause_count(&self) -> usize;
}

impl ClauseSource for ClauseDb {
    #[inline]
    fn fetch_clause(&self, id: ClauseId) -> &Clause {
        self.clause(id)
    }

    #[inline]
    fn candidate_clauses<'a>(&'a self, goal: &Term, bindings: &Bindings) -> Cow<'a, [ClauseId]> {
        self.candidates_for_resolved(goal, bindings)
    }

    #[inline]
    fn clause_count(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn clause_db_is_a_transparent_source() {
        let p = parse_program("p(a). p(b). q(X) :- p(X).").unwrap();
        let db = &p.db;
        assert_eq!(db.clause_count(), db.len());
        for i in 0..db.len() {
            let id = ClauseId(i as u32);
            assert_eq!(db.fetch_clause(id).head, db.clause(id).head);
        }
        let q_goal = p.db.clause(ClauseId(2)).body[0].clone();
        let b = Bindings::new();
        assert_eq!(
            db.candidate_clauses(&q_goal, &b).as_ref(),
            db.candidates_for_resolved(&q_goal, &b).as_ref()
        );
    }
}
