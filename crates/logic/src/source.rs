//! The clause-resolution abstraction every engine searches through.
//!
//! The paper's machine does not hold the whole program in processor
//! memory: clauses live on Semantic Paging Disks and are faulted in as the
//! search touches them (§6). [`ClauseSource`] is the software seam for
//! that: [`expand_via`](crate::node::expand_via) resolves goals through
//! this trait, so the same engine runs against the in-memory
//! [`ClauseDb`] or against a paged backend (see
//! `blog-spd`'s `PagedClauseStore`) that counts cache hits, misses, and
//! evictions as the search streams over it.
//!
//! Implementations must be *semantically transparent*: the clauses and
//! candidate lists returned must be identical to the backing database's,
//! whatever bookkeeping happens underneath. The property tests in
//! `blog-spd` assert exactly that.

use std::borrow::Cow;
use std::fmt;

use crate::bindings::BindingLookup;
use crate::clause::{Clause, ClauseId};
use crate::store::ClauseDb;
use crate::term::Term;

/// How a storage fault should be treated by whoever observes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreErrorKind {
    /// The access failed this time but may succeed if reissued — a
    /// dropped page read, a timed-out seek. Retryable.
    Transient,
    /// The underlying medium is damaged at this address: every retry
    /// will fail the same way. Not retryable.
    Permanent,
}

/// A typed storage failure surfaced by a fallible [`ClauseSource`].
///
/// Fault-free backends never construct one; the paged/MVCC backends in
/// `blog-spd` return them when a configured fault plan fires, and the
/// serving layer decides between retrying ([`StoreErrorKind::Transient`])
/// and failing the request ([`StoreErrorKind::Permanent`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreError {
    /// Retryability class of the failure.
    pub kind: StoreErrorKind,
    /// Human-readable site description (e.g. `"transient read fault at
    /// track 12"`), for logs and `Outcome::Failed` payloads.
    pub detail: String,
}

impl StoreError {
    /// A retryable fault at the described site.
    pub fn transient(detail: impl Into<String>) -> Self {
        StoreError {
            kind: StoreErrorKind::Transient,
            detail: detail.into(),
        }
    }

    /// A non-retryable fault at the described site.
    pub fn permanent(detail: impl Into<String>) -> Self {
        StoreError {
            kind: StoreErrorKind::Permanent,
            detail: detail.into(),
        }
    }

    /// Whether a retry of the failed access could succeed.
    pub fn is_transient(&self) -> bool {
        self.kind == StoreErrorKind::Transient
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            StoreErrorKind::Transient => write!(f, "transient store fault: {}", self.detail),
            StoreErrorKind::Permanent => write!(f, "permanent store fault: {}", self.detail),
        }
    }
}

impl std::error::Error for StoreError {}

/// Backend-agnostic access counters a [`ClauseSource`] may expose.
///
/// Cache-backed sources (the paged clause store, with any of its
/// replacement policies) report their clause-fetch behavior here so
/// experiment harnesses can read hit rates through the trait without
/// knowing the backend type. Plain in-memory sources report nothing.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SourceStats {
    /// Clause fetches routed through the source.
    pub accesses: u64,
    /// Fetches served without touching the backing store.
    pub hits: u64,
    /// Fetches that had to fault data in.
    pub misses: u64,
    /// Cached units evicted to make room.
    pub evictions: u64,
}

impl SourceStats {
    /// Hit rate in `[0, 1]` (zero when nothing was accessed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.hits as f64 / self.accesses as f64
    }
}

/// A source of clauses and figure-4 candidate lists.
///
/// Methods take `&self`: backends that track access statistics (page
/// caches, tracers) use interior mutability, which keeps every search
/// engine oblivious to the bookkeeping. The `Sync` bound makes that
/// contract honest — a source must be shareable across threads, because
/// the OR-parallel engine's workers and the query server's pools all
/// resolve through **one** store at once (interior mutability therefore
/// means a lock or atomics, never a `Cell`).
pub trait ClauseSource: Sync {
    /// Fetch a clause block. For paged backends this is *the* accounted
    /// access: one call is one block touch.
    ///
    /// Infallible convenience form: backends with a configured fault
    /// plan panic here on an injected fault, so fault-aware callers
    /// (the serving layer) go through
    /// [`try_fetch_clause`](ClauseSource::try_fetch_clause) instead.
    fn fetch_clause(&self, id: ClauseId) -> &Clause {
        match self.try_fetch_clause(id) {
            Ok(c) => c,
            Err(e) => panic!("fetch_clause on a faulting source: {e}"),
        }
    }

    /// Fallible clause fetch. Fault-free backends (everything except a
    /// store with an active fault plan) always return `Ok`.
    fn try_fetch_clause(&self, id: ClauseId) -> Result<&Clause, StoreError>;

    /// Candidate resolvers for a goal under the backend's index mode,
    /// dereferencing through `bindings` — any binding representation, so
    /// the same backend serves cloned-store and frame-chain searches (see
    /// [`ClauseDb::candidates_for_resolved`]).
    ///
    /// Infallible convenience form of
    /// [`try_candidate_clauses`](ClauseSource::try_candidate_clauses);
    /// panics on an injected fault like
    /// [`fetch_clause`](ClauseSource::fetch_clause).
    fn candidate_clauses<'a>(
        &'a self,
        goal: &Term,
        bindings: &dyn BindingLookup,
    ) -> Cow<'a, [ClauseId]> {
        match self.try_candidate_clauses(goal, bindings) {
            Ok(c) => c,
            Err(e) => panic!("candidate_clauses on a faulting source: {e}"),
        }
    }

    /// Fallible candidate lookup. Fault-free backends always return
    /// `Ok`; backends whose index consults storage may surface a
    /// [`StoreError`] under an active fault plan.
    fn try_candidate_clauses<'a>(
        &'a self,
        goal: &Term,
        bindings: &dyn BindingLookup,
    ) -> Result<Cow<'a, [ClauseId]>, StoreError>;

    /// Number of clause blocks in the source.
    fn clause_count(&self) -> usize;

    /// Short description of the backend serving fetches, for experiment
    /// tables — e.g. `"clause-db"` or `"paged/2q"`.
    fn backend_name(&self) -> String {
        "clause-db".to_string()
    }

    /// Access counters, for backends that meter fetches (`None` for
    /// plain in-memory sources).
    fn source_stats(&self) -> Option<SourceStats> {
        None
    }
}

impl ClauseSource for ClauseDb {
    #[inline]
    fn fetch_clause(&self, id: ClauseId) -> &Clause {
        self.clause(id)
    }

    #[inline]
    fn try_fetch_clause(&self, id: ClauseId) -> Result<&Clause, StoreError> {
        Ok(self.clause(id))
    }

    #[inline]
    fn candidate_clauses<'a>(
        &'a self,
        goal: &Term,
        bindings: &dyn BindingLookup,
    ) -> Cow<'a, [ClauseId]> {
        self.candidates_for_resolved(goal, bindings)
    }

    #[inline]
    fn try_candidate_clauses<'a>(
        &'a self,
        goal: &Term,
        bindings: &dyn BindingLookup,
    ) -> Result<Cow<'a, [ClauseId]>, StoreError> {
        Ok(self.candidates_for_resolved(goal, bindings))
    }

    #[inline]
    fn clause_count(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::Bindings;
    use crate::parser::parse_program;

    #[test]
    fn clause_db_is_a_transparent_source() {
        let p = parse_program("p(a). p(b). q(X) :- p(X).").unwrap();
        let db = &p.db;
        assert_eq!(db.clause_count(), db.len());
        for i in 0..db.len() {
            let id = ClauseId(i as u32);
            assert_eq!(db.fetch_clause(id).head, db.clause(id).head);
        }
        let q_goal = p.db.clause(ClauseId(2)).body[0].clone();
        let b = Bindings::new();
        assert_eq!(
            db.candidate_clauses(&q_goal, &b).as_ref(),
            db.candidates_for_resolved(&q_goal, &b).as_ref()
        );
    }

    #[test]
    fn in_memory_source_reports_no_stats() {
        let p = parse_program("p(a).").unwrap();
        assert_eq!(p.db.backend_name(), "clause-db");
        assert_eq!(p.db.source_stats(), None);
    }

    #[test]
    fn fallible_surface_is_ok_on_fault_free_sources() {
        let p = parse_program("p(a). p(b). q(X) :- p(X).").unwrap();
        let db = &p.db;
        let b = Bindings::new();
        let q_goal = p.db.clause(ClauseId(2)).body[0].clone();
        assert_eq!(
            db.try_fetch_clause(ClauseId(0)).unwrap().head,
            db.clause(ClauseId(0)).head
        );
        assert_eq!(
            db.try_candidate_clauses(&q_goal, &b).unwrap().as_ref(),
            db.candidates_for_resolved(&q_goal, &b).as_ref()
        );
    }

    #[test]
    fn store_error_classification_and_display() {
        let t = StoreError::transient("read fault at track 3");
        let p = StoreError::permanent("track 7 damaged");
        assert!(t.is_transient());
        assert!(!p.is_transient());
        assert_eq!(t.to_string(), "transient store fault: read fault at track 3");
        assert_eq!(p.to_string(), "permanent store fault: track 7 damaged");
        assert_eq!(t.kind, StoreErrorKind::Transient);
        assert_eq!(p.kind, StoreErrorKind::Permanent);
    }

    #[test]
    fn source_stats_hit_rate() {
        let s = SourceStats {
            accesses: 8,
            hits: 6,
            misses: 2,
            evictions: 1,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(SourceStats::default().hit_rate(), 0.0);
    }
}
