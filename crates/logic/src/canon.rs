//! Canonical query rendering — the answer-cache key derivation.
//!
//! Two query texts that differ only in variable spelling (`gf(sam, G)` /
//! `gf(sam, Who)`) denote the same question and must hit the same cache
//! entry; two queries that differ in structure anywhere must not. The
//! canonical form renders the goal conjunction with every variable
//! replaced by its **first-occurrence index** (`_0`, `_1`, …), atoms and
//! functors by their interned names, and no whitespace — a total,
//! injective-on-meaning encoding that is stable across epochs (the
//! symbol table is append-only, so a name never changes spelling).
//!
//! The full canonical string is used as the key (not a hash of it), so
//! key collisions are impossible rather than improbable.

use std::collections::HashMap;

use crate::parser::Query;
use crate::symbol::SymbolTable;
use crate::term::{Term, VarId};

/// Render `query` in canonical form: goals joined by `;`, variables
/// numbered by first occurrence across the whole conjunction.
///
/// Canonicalization is alpha-invariant — `gf(X, Y)` and `gf(A, B)`
/// canonicalize identically, while `gf(X, X)` (a repeated variable) does
/// not, because the second occurrence renders as `_0` rather than `_1`.
/// Atom and functor names cannot collide with the `_n` variable form or
/// with integer literals: the parser rejects atoms starting with `_`, an
/// uppercase letter, or a digit.
pub fn canonical_query(symbols: &SymbolTable, query: &Query) -> String {
    let mut out = String::new();
    let mut remap: HashMap<VarId, usize> = HashMap::new();
    for (i, goal) in query.goals.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        write_canon(symbols, goal, &mut remap, &mut out);
    }
    out
}

fn write_canon(
    symbols: &SymbolTable,
    t: &Term,
    remap: &mut HashMap<VarId, usize>,
    out: &mut String,
) {
    match t {
        Term::Var(v) => {
            let next = remap.len();
            let n = *remap.entry(*v).or_insert(next);
            out.push('_');
            out.push_str(&n.to_string());
        }
        Term::Int(n) => out.push_str(&n.to_string()),
        Term::Atom(s) => out.push_str(symbols.name(*s)),
        Term::Struct(f, args) => {
            out.push_str(symbols.name(*f));
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canon(symbols, a, remap, out);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query_shared};

    fn canon(src: &str, query: &str) -> String {
        let p = parse_program(src).unwrap();
        let q = parse_query_shared(&p.db, query).unwrap();
        canonical_query(p.db.symbols(), &q)
    }

    const DB: &str = "gf(a,b). f(a,b). pair(a,b).";

    #[test]
    fn alpha_equivalent_queries_share_a_key() {
        assert_eq!(canon(DB, "gf(a, G)"), canon(DB, "gf(a,  Who)"));
        assert_eq!(canon(DB, "gf(X, Y)"), canon(DB, "gf(A, B)"));
        assert_eq!(canon(DB, "gf(a, G)"), "gf(a,_0)");
    }

    #[test]
    fn repeated_variables_are_distinguished_from_fresh_ones() {
        assert_ne!(canon(DB, "pair(X, X)"), canon(DB, "pair(X, Y)"));
        assert_eq!(canon(DB, "pair(X, X)"), "pair(_0,_0)");
        assert_eq!(canon(DB, "pair(X, Y)"), "pair(_0,_1)");
    }

    #[test]
    fn structure_differences_keep_keys_apart() {
        assert_ne!(canon(DB, "gf(a, G)"), canon(DB, "f(a, G)"));
        assert_ne!(canon(DB, "gf(a, G)"), canon(DB, "gf(b, G)"));
        assert_ne!(canon(DB, "gf(a, G)"), canon(DB, "gf(G, a)"));
    }

    #[test]
    fn conjunctions_number_variables_across_goals() {
        // The shared variable Y must render identically in both goals.
        let c = canon(DB, "f(X, Y), gf(Y, Z)");
        assert_eq!(c, "f(_0,_1);gf(_1,_2)");
    }

    #[test]
    fn canonical_form_is_whitespace_insensitive() {
        assert_eq!(canon(DB, "f( a , G )"), canon(DB, "f(a,G)"));
    }
}
