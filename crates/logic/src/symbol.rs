//! Interned symbols.
//!
//! Every functor and constant name in a program is interned once into a
//! [`SymbolTable`]; the rest of the system only ever compares the 32-bit
//! [`Sym`] handles. The table is owned by the clause database and is
//! read-only during search, so a database wrapped in `Arc` can be shared
//! freely across worker threads.

use std::collections::HashMap;
use std::fmt;

/// A handle to an interned string.
///
/// `Sym` values are only meaningful relative to the [`SymbolTable`] that
/// produced them; two tables intern independently.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Sym(pub u32);

impl Sym {
    /// Index into the owning table's storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only string interner.
#[derive(Default, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    lookup: HashMap<String, Sym>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning the existing handle if already present.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.lookup.get(name) {
            return sym;
        }
        let sym = Sym(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.lookup.insert(name.to_owned(), sym);
        sym
    }

    /// Look up a handle without interning. Returns `None` if `name` was
    /// never interned.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.lookup.get(name).copied()
    }

    /// The string for `sym`.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this table.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct symbols interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymbolTable")
            .field("len", &self.names.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("foo");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_distinct_syms() {
        let mut t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("bar");
        assert_ne!(a, b);
        assert_eq!(t.name(a), "foo");
        assert_eq!(t.name(b), "bar");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.get("x").is_none());
        let s = t.intern("x");
        assert_eq!(t.get("x"), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_and_len() {
        let mut t = SymbolTable::new();
        assert!(t.is_empty());
        t.intern("a");
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }
}
