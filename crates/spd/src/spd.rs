//! The SPD array simulator: caches, marking, pointer-following, paging.

use std::collections::HashMap;

use serde::Serialize;

use crate::block::{Block, BlockId};
use crate::timing::{BlockAddr, CostModel, Geometry};

/// How multiple search processors cooperate (§6).
///
/// - `Simd`: "all SPs work on the same track on their surface (a
///   cylinder) … the associative search operation and the pointer
///   transfer can be performed simultaneously in all SPs": one cylinder
///   load caches every SP's track at once, and pointers between SPs of
///   the cached cylinder resolve immediately via global block numbers.
/// - `Mimd`: SPs work independently; a pointer into another SP's track is
///   deferred like any cross-cylinder pointer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum SpMode {
    /// Lock-step cylinder-at-a-time operation.
    Simd,
    /// Independent per-SP operation.
    Mimd,
}

/// Operation counters and the tick clock.
#[derive(Clone, Copy, Default, Debug, Serialize)]
pub struct SpdStats {
    /// Head seeks performed.
    pub seeks: u64,
    /// Track loads into SP caches (SIMD cylinder loads count one per SP).
    pub track_loads: u64,
    /// Associative mark passes.
    pub mark_ops: u64,
    /// Pointers examined during follow operations.
    pub pointer_follows: u64,
    /// Pointers *not* followed because their stored weight exceeded the
    /// request threshold (the §5 weight filter).
    pub weight_skips: u64,
    /// Pointers that left the cached locus and were deferred.
    pub deferred_pointers: u64,
    /// Blocks transferred out to a processor.
    pub blocks_output: u64,
    /// Words transferred out.
    pub words_output: u64,
    /// Pointer-weight updates written.
    pub weight_updates: u64,
    /// Words inserted into blocks.
    pub words_inserted: u64,
    /// Words deleted from blocks.
    pub words_deleted: u64,
    /// Blocks moved by in-cylinder garbage collection.
    pub gc_moves: u64,
    /// Total simulated time.
    pub ticks: u64,
}

/// Insert failed: the block's track has no room left.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrackFull {
    /// The full track's cylinder.
    pub cylinder: u32,
    /// The full track's SP.
    pub sp: u32,
    /// Words currently used on the track.
    pub used: u64,
    /// The configured capacity.
    pub capacity: u64,
}

impl std::fmt::Display for TrackFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "track (cyl {}, sp {}) full: {} of {} words",
            self.cylinder, self.sp, self.used, self.capacity
        )
    }
}

impl std::error::Error for TrackFull {}

/// Outcome of [`SpdArray::garbage_collect_cylinder`].
#[derive(Clone, Copy, Default, Debug, Serialize)]
pub struct GcReport {
    /// Blocks relocated to another track of the cylinder.
    pub moved_blocks: u64,
    /// Words transferred while relocating.
    pub moved_words: u64,
}

/// A semantic-page request: the subgraph within `distance` pointer hops
/// of `roots`, following pointers named `name` (or all), skipping
/// pointers whose stored weight exceeds `weight_max`.
#[derive(Clone, Debug)]
pub struct PageRequest {
    /// Starting blocks.
    pub roots: Vec<BlockId>,
    /// Hamming distance (pointer hops) to page in.
    pub distance: u32,
    /// Follow only pointers with this name, if set.
    pub name: Option<u32>,
    /// Skip pointers heavier than this, if set.
    pub weight_max: Option<u32>,
}

/// The result of a semantic-page request.
#[derive(Clone, Debug)]
pub struct PageResult {
    /// Blocks paged in (the semantic page), in visit order.
    pub blocks: Vec<BlockId>,
    /// Ticks this request cost.
    pub ticks: u64,
}

#[derive(Clone, Copy, Debug)]
struct SpState {
    head_cylinder: u32,
    cached_cylinder: Option<u32>,
}

/// The full SPD array: blocks placed across (cylinder, SP, slot), per-SP
/// track caches, mark bits, and the tick clock.
#[derive(Debug)]
pub struct SpdArray {
    geometry: Geometry,
    cost: CostModel,
    mode: SpMode,
    blocks: Vec<Block>,
    addrs: Vec<BlockAddr>,
    sps: Vec<SpState>,
    marks: Vec<bool>,
    /// Per-track word capacity for inserts (`None` = unlimited).
    track_capacity_words: Option<u64>,
    clock: u64,
    stats: SpdStats,
}

impl SpdArray {
    /// An empty array.
    pub fn new(geometry: Geometry, cost: CostModel, mode: SpMode) -> SpdArray {
        SpdArray {
            geometry,
            cost,
            mode,
            blocks: Vec::new(),
            addrs: Vec::new(),
            sps: vec![
                SpState {
                    head_cylinder: 0,
                    cached_cylinder: None,
                };
                geometry.n_sps as usize
            ],
            marks: Vec::new(),
            track_capacity_words: None,
            clock: 0,
            stats: SpdStats::default(),
        }
    }

    /// Set the per-track word capacity used by
    /// [`insert_words`](Self::insert_words) (`None` = unlimited).
    pub fn set_track_capacity_words(&mut self, cap: Option<u64>) {
        self.track_capacity_words = cap;
    }

    /// Words currently stored on one track.
    pub fn track_usage(&self, cylinder: u32, sp: u32) -> u64 {
        self.addrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.cylinder == cylinder && a.sp == sp)
            .map(|(i, _)| self.blocks[i].size_words() as u64)
            .sum()
    }

    /// Place the next block (round-robin across slots, SPs, cylinders).
    ///
    /// # Panics
    /// Panics if the geometry's capacity is exceeded.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let i = self.blocks.len() as u32;
        assert!(
            i < self.geometry.capacity(),
            "SPD capacity {} exceeded",
            self.geometry.capacity()
        );
        let addr = self.geometry.addr_of_index(i);
        self.blocks.push(block);
        self.addrs.push(addr);
        self.marks.push(false);
        BlockId(i)
    }

    /// Replace a block's contents wholesale. This models *offline*
    /// database (re)construction and charges no simulated time; online
    /// updates go through [`update_pointer_weight`](Self::update_pointer_weight).
    pub fn replace_block(&mut self, id: BlockId, block: Block) {
        self.blocks[id.index()] = block;
    }

    /// Append a pointer to a block during offline construction (no
    /// simulated cost). Returns the pointer's index within the block.
    pub fn add_pointer(&mut self, id: BlockId, name: u32, target: BlockId, weight: u32) -> usize {
        self.blocks[id.index()].push_pointer(name, target, weight)
    }

    /// The block store (read-only).
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Where a block lives.
    pub fn addr(&self, id: BlockId) -> BlockAddr {
        self.addrs[id.index()]
    }

    /// Number of blocks stored.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The operating mode.
    pub fn mode(&self) -> SpMode {
        self.mode
    }

    /// Current simulated time.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Counters so far.
    pub fn stats(&self) -> SpdStats {
        self.stats
    }

    /// Reset counters and clock (placement and cache state persist).
    pub fn reset_stats(&mut self) {
        self.stats = SpdStats::default();
        self.clock = 0;
    }

    fn charge(&mut self, ticks: u64) {
        self.clock += ticks;
        self.stats.ticks += ticks;
    }

    /// Whether `id`'s track is in its SP's cache.
    pub fn is_cached(&self, id: BlockId) -> bool {
        let addr = self.addrs[id.index()];
        self.sps[addr.sp as usize].cached_cylinder == Some(addr.cylinder)
    }

    /// Whether a pointer from `from` to `to` resolves inside the current
    /// cache without deferral, per the operating mode.
    fn locally_visible(&self, from: BlockId, to: BlockId) -> bool {
        if !self.is_cached(to) {
            return false;
        }
        match self.mode {
            SpMode::Simd => true,
            // MIMD SPs cannot talk to each other mid-operation.
            SpMode::Mimd => self.addrs[from.index()].sp == self.addrs[to.index()].sp,
        }
    }

    fn evict_marks(&mut self, sp: u32, cylinder: u32) {
        for (i, addr) in self.addrs.iter().enumerate() {
            if addr.sp == sp && addr.cylinder == cylinder {
                self.marks[i] = false;
            }
        }
    }

    /// SIMD: move every head to `cylinder` and cache the whole cylinder.
    /// The SPs work in parallel, so the charged time is the *maximum*
    /// seek plus one rotation.
    pub fn load_cylinder(&mut self, cylinder: u32) {
        assert!(cylinder < self.geometry.n_cylinders, "no such cylinder");
        let mut max_seek = 0u64;
        for sp in 0..self.geometry.n_sps {
            let st = self.sps[sp as usize];
            if st.cached_cylinder == Some(cylinder) {
                continue;
            }
            let dist = st.head_cylinder.abs_diff(cylinder) as u64;
            max_seek = max_seek.max(self.cost.seek_settle + dist * self.cost.seek_per_cylinder);
            if let Some(old) = st.cached_cylinder {
                self.evict_marks(sp, old);
            }
            self.sps[sp as usize].head_cylinder = cylinder;
            self.sps[sp as usize].cached_cylinder = Some(cylinder);
            self.stats.track_loads += 1;
            self.stats.seeks += u64::from(dist > 0);
        }
        if max_seek > 0 {
            self.charge(max_seek + self.cost.track_load);
        }
    }

    /// MIMD: one SP seeks to `cylinder` and caches its track there.
    pub fn load_track(&mut self, sp: u32, cylinder: u32) {
        assert!(sp < self.geometry.n_sps, "no such SP");
        assert!(cylinder < self.geometry.n_cylinders, "no such cylinder");
        let st = self.sps[sp as usize];
        if st.cached_cylinder == Some(cylinder) {
            return;
        }
        let dist = st.head_cylinder.abs_diff(cylinder) as u64;
        if let Some(old) = st.cached_cylinder {
            self.evict_marks(sp, old);
        }
        self.sps[sp as usize].head_cylinder = cylinder;
        self.sps[sp as usize].cached_cylinder = Some(cylinder);
        self.stats.track_loads += 1;
        self.stats.seeks += u64::from(dist > 0);
        self.charge(
            self.cost.seek_settle + dist * self.cost.seek_per_cylinder + self.cost.track_load,
        );
    }

    /// Operation (1): associatively mark cached blocks by id. Uncached
    /// ids are ignored. Returns how many were marked.
    pub fn mark(&mut self, ids: &[BlockId]) -> usize {
        let mut marked = 0;
        for &id in ids {
            if self.is_cached(id) && !self.marks[id.index()] {
                self.marks[id.index()] = true;
                marked += 1;
            }
        }
        self.stats.mark_ops += ids.len() as u64;
        self.charge(self.cost.associative_op * ids.len() as u64);
        marked
    }

    /// Whether a block is currently marked.
    pub fn is_marked(&self, id: BlockId) -> bool {
        self.marks[id.index()]
    }

    /// Clear every mark bit (cache contents persist).
    pub fn clear_marks(&mut self) {
        for m in &mut self.marks {
            *m = false;
        }
    }

    /// Operation (3): update the stored weight of one pointer of a cached
    /// block.
    ///
    /// # Panics
    /// Panics if the block's track is not cached or the pointer index is
    /// out of range.
    pub fn update_pointer_weight(&mut self, id: BlockId, ptr_index: usize, weight: u32) {
        assert!(self.is_cached(id), "update requires the block in cache");
        self.blocks[id.index()].pointers[ptr_index].weight = weight;
        self.stats.weight_updates += 1;
        self.charge(self.cost.word_update);
    }

    /// Operation (3): insert `n` payload words into a cached block.
    ///
    /// Fails with [`TrackFull`] if the track's capacity would be
    /// exceeded — the caller then runs
    /// [`garbage_collect_cylinder`](Self::garbage_collect_cylinder).
    ///
    /// # Panics
    /// Panics if the block's track is not cached.
    pub fn insert_words(&mut self, id: BlockId, n: u32) -> Result<(), TrackFull> {
        assert!(self.is_cached(id), "insert requires the block in cache");
        let addr = self.addrs[id.index()];
        if let Some(cap) = self.track_capacity_words {
            let used = self.track_usage(addr.cylinder, addr.sp);
            if used + n as u64 > cap {
                return Err(TrackFull {
                    cylinder: addr.cylinder,
                    sp: addr.sp,
                    used,
                    capacity: cap,
                });
            }
        }
        self.blocks[id.index()].payload_words += n;
        self.stats.words_inserted += n as u64;
        self.charge(self.cost.word_update * n as u64);
        Ok(())
    }

    /// Operation (3): delete up to `n` payload words from a cached block.
    ///
    /// # Panics
    /// Panics if the block's track is not cached.
    pub fn delete_words(&mut self, id: BlockId, n: u32) {
        assert!(self.is_cached(id), "delete requires the block in cache");
        let b = &mut self.blocks[id.index()];
        let removed = n.min(b.payload_words);
        b.payload_words -= removed;
        self.stats.words_deleted += removed as u64;
        self.charge(self.cost.word_update * removed as u64);
    }

    /// "Garbage collection between tracks in a cylinder can be done in
    /// the SPs without interacting with external processors" (§6):
    /// rebalance the cylinder's blocks across its SP tracks so no track
    /// overflows unnecessarily. SIMD mode only (the SPs coordinate over
    /// their shared cylinder), and the cylinder must be cached.
    ///
    /// Block identities are stable — pointers hold [`BlockId`]s, and the
    /// paper's block numbers are likewise recomputed as caches load.
    pub fn garbage_collect_cylinder(&mut self, cylinder: u32) -> GcReport {
        assert_eq!(self.mode, SpMode::Simd, "in-SP GC needs SIMD coordination");
        for sp in 0..self.geometry.n_sps {
            assert_eq!(
                self.sps[sp as usize].cached_cylinder,
                Some(cylinder),
                "GC requires the whole cylinder cached"
            );
        }
        // Collect the cylinder's blocks, largest first.
        let mut members: Vec<(BlockId, u64)> = self
            .addrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.cylinder == cylinder)
            .map(|(i, _)| (BlockId(i as u32), self.blocks[i].size_words() as u64))
            .collect();
        members.sort_by_key(|&(id, words)| (std::cmp::Reverse(words), id));
        // Greedy rebalance: each block to the currently lightest track.
        let mut loads = vec![0u64; self.geometry.n_sps as usize];
        let mut slots = vec![0u32; self.geometry.n_sps as usize];
        let mut report = GcReport::default();
        for (id, words) in members {
            let sp = (0..self.geometry.n_sps)
                .min_by_key(|&s| (loads[s as usize], s))
                .expect("at least one SP");
            let old = self.addrs[id.index()];
            let new = crate::timing::BlockAddr {
                cylinder,
                sp,
                slot: slots[sp as usize],
            };
            slots[sp as usize] += 1;
            loads[sp as usize] += words;
            if old.sp != new.sp {
                report.moved_blocks += 1;
                report.moved_words += words;
            }
            self.addrs[id.index()] = new;
        }
        self.stats.gc_moves += report.moved_blocks;
        // Moves stream through the SP caches: one write per moved word.
        self.charge(self.cost.word_update * report.moved_words);
        report
    }

    /// Operation (3): output all marked cached blocks to the processor,
    /// charging transfer time. Marks stay set.
    pub fn output_marked(&mut self) -> Vec<BlockId> {
        let ids: Vec<BlockId> = (0..self.blocks.len() as u32)
            .map(BlockId)
            .filter(|&b| self.marks[b.index()] && self.is_cached(b))
            .collect();
        let mut words = 0u64;
        for &b in &ids {
            words += self.blocks[b.index()].size_words() as u64;
        }
        self.stats.blocks_output += ids.len() as u64;
        self.stats.words_output += words;
        self.charge(self.cost.word_transfer * words);
        ids
    }

    /// The full semantic-page operation: repeatedly loading loci
    /// (cylinders in SIMD mode, single tracks in MIMD mode), marking,
    /// and following pointers, until the subgraph within the requested
    /// Hamming distance is assembled.
    pub fn semantic_page(&mut self, req: &PageRequest) -> PageResult {
        let start_ticks = self.clock;
        // remaining-distance budget per block, both for the work queue and
        // for the visited set (a block may be revisited with a larger
        // budget and then expand further).
        let mut visited: HashMap<BlockId, u32> = HashMap::new();
        let mut order: Vec<BlockId> = Vec::new();
        let mut pending: HashMap<BlockId, u32> = HashMap::new();
        for &r in &req.roots {
            let e = pending.entry(r).or_insert(req.distance);
            *e = (*e).max(req.distance);
        }

        while !pending.is_empty() {
            // Pick the locus with the most pending blocks.
            let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
            for (&b, _) in pending.iter() {
                let a = self.addrs[b.index()];
                let locus = match self.mode {
                    SpMode::Simd => (a.cylinder, 0),
                    SpMode::Mimd => (a.cylinder, a.sp),
                };
                *counts.entry(locus).or_default() += 1;
            }
            let (&(cyl, sp), _) = counts
                .iter()
                .max_by_key(|(locus, n)| (**n, std::cmp::Reverse(locus.0), locus.1))
                .expect("pending non-empty");
            match self.mode {
                SpMode::Simd => self.load_cylinder(cyl),
                SpMode::Mimd => self.load_track(sp, cyl),
            }

            // Move the locally-resident pending blocks into a work queue.
            let local: Vec<(BlockId, u32)> = pending
                .iter()
                .filter(|(b, _)| self.is_cached(**b) && match self.mode {
                    SpMode::Simd => self.addrs[b.index()].cylinder == cyl,
                    SpMode::Mimd => {
                        let a = self.addrs[b.index()];
                        a.cylinder == cyl && a.sp == sp
                    }
                })
                .map(|(&b, &d)| (b, d))
                .collect();
            for (b, _) in &local {
                pending.remove(b);
            }
            let ids: Vec<BlockId> = local.iter().map(|(b, _)| *b).collect();
            self.mark(&ids);

            // Saturate within the cache.
            let mut queue = local;
            while let Some((b, rem)) = queue.pop() {
                match visited.get(&b) {
                    Some(&seen) if seen >= rem => continue,
                    Some(_) => {
                        visited.insert(b, rem);
                    }
                    None => {
                        visited.insert(b, rem);
                        order.push(b);
                    }
                }
                if rem == 0 {
                    continue;
                }
                let ptrs: Vec<crate::block::NamedPointer> = self.blocks[b.index()]
                    .pointers_named(req.name)
                    .copied()
                    .collect();
                for p in ptrs {
                    self.stats.pointer_follows += 1;
                    self.charge(self.cost.pointer_follow);
                    if req.weight_max.is_some_and(|wm| p.weight > wm) {
                        self.stats.weight_skips += 1;
                        continue;
                    }
                    let nrem = rem - 1;
                    if self.locally_visible(b, p.target) {
                        self.mark(&[p.target]);
                        queue.push((p.target, nrem));
                    } else {
                        // Defer: "pointer transfer is handled by saving the
                        // pointer until the other cylinder is loaded".
                        self.stats.deferred_pointers += 1;
                        let already = visited.get(&p.target).copied().unwrap_or(0);
                        if visited.contains_key(&p.target) && already >= nrem {
                            continue;
                        }
                        let e = pending.entry(p.target).or_insert(nrem);
                        *e = (*e).max(nrem);
                    }
                }
            }
        }

        // Ship the page to the requesting processor.
        let mut words = 0u64;
        for b in &order {
            words += self.blocks[b.index()].size_words() as u64;
        }
        self.stats.blocks_output += order.len() as u64;
        self.stats.words_output += words;
        self.charge(self.cost.word_transfer * words);

        PageResult {
            blocks: order,
            ticks: self.clock - start_ticks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny array: 2 SPs, 4 cylinders, 2 blocks per track.
    fn tiny(mode: SpMode) -> SpdArray {
        SpdArray::new(
            Geometry {
                n_sps: 2,
                n_cylinders: 4,
                blocks_per_track: 2,
            },
            CostModel::default(),
            mode,
        )
    }

    /// Build a linear chain b0 → b1 → … → b(n-1) with pointer weights w.
    fn chain(spd: &mut SpdArray, n: u32, weight: u32) -> Vec<BlockId> {
        let ids: Vec<BlockId> = (0..n).map(|_| spd.add_block(Block::new(4))).collect();
        for i in 0..(n - 1) as usize {
            let target = ids[i + 1];
            let src = ids[i];
            let mut b = spd.block(src).clone();
            b.push_pointer(0, target, weight);
            spd.blocks[src.index()] = b;
        }
        ids
    }

    #[test]
    fn placement_round_robin() {
        let mut spd = tiny(SpMode::Simd);
        let ids: Vec<BlockId> = (0..6).map(|_| spd.add_block(Block::new(1))).collect();
        // 2 blocks/track, 2 SPs → cylinder 0 holds ids 0..4.
        assert_eq!(spd.addr(ids[0]).cylinder, 0);
        assert_eq!(spd.addr(ids[0]).sp, 0);
        assert_eq!(spd.addr(ids[2]).sp, 1);
        assert_eq!(spd.addr(ids[4]).cylinder, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn overfull_placement_panics() {
        let mut spd = tiny(SpMode::Simd);
        for _ in 0..17 {
            spd.add_block(Block::new(1));
        }
    }

    #[test]
    fn simd_cylinder_load_caches_all_sps() {
        let mut spd = tiny(SpMode::Simd);
        let ids: Vec<BlockId> = (0..4).map(|_| spd.add_block(Block::new(1))).collect();
        assert!(!spd.is_cached(ids[0]));
        spd.load_cylinder(0);
        for &b in &ids {
            assert!(spd.is_cached(b));
        }
        // Both SP tracks loaded but time charged once (parallel).
        assert_eq!(spd.stats().track_loads, 2);
    }

    #[test]
    fn mimd_track_load_caches_one_sp() {
        let mut spd = tiny(SpMode::Mimd);
        let ids: Vec<BlockId> = (0..4).map(|_| spd.add_block(Block::new(1))).collect();
        spd.load_track(0, 0);
        assert!(spd.is_cached(ids[0])); // sp 0
        assert!(!spd.is_cached(ids[2])); // sp 1
    }

    #[test]
    fn seek_cost_scales_with_distance() {
        let mut spd = tiny(SpMode::Mimd);
        for _ in 0..16 {
            spd.add_block(Block::new(1));
        }
        spd.load_track(0, 0);
        let t0 = spd.clock();
        spd.load_track(0, 3);
        let far = spd.clock() - t0;
        let t1 = spd.clock();
        spd.load_track(0, 2);
        let near = spd.clock() - t1;
        assert!(far > near, "3-cylinder seek must cost more than 1");
    }

    #[test]
    fn reloading_cached_cylinder_is_free() {
        let mut spd = tiny(SpMode::Simd);
        spd.add_block(Block::new(1));
        spd.load_cylinder(0);
        let t = spd.clock();
        spd.load_cylinder(0);
        assert_eq!(spd.clock(), t);
    }

    #[test]
    fn mark_only_touches_cached_blocks() {
        let mut spd = tiny(SpMode::Simd);
        let ids: Vec<BlockId> = (0..6).map(|_| spd.add_block(Block::new(1))).collect();
        spd.load_cylinder(0);
        let n = spd.mark(&[ids[0], ids[4]]); // ids[4] is cylinder 1: uncached
        assert_eq!(n, 1);
        assert!(spd.is_marked(ids[0]));
        assert!(!spd.is_marked(ids[4]));
    }

    #[test]
    fn eviction_clears_marks() {
        let mut spd = tiny(SpMode::Simd);
        let ids: Vec<BlockId> = (0..6).map(|_| spd.add_block(Block::new(1))).collect();
        spd.load_cylinder(0);
        spd.mark(&[ids[0]]);
        spd.load_cylinder(1);
        assert!(!spd.is_marked(ids[0]));
    }

    #[test]
    fn semantic_page_covers_distance() {
        let mut spd = tiny(SpMode::Simd);
        let ids = chain(&mut spd, 6, 0);
        let r = spd.semantic_page(&PageRequest {
            roots: vec![ids[0]],
            distance: 3,
            name: None,
            weight_max: None,
        });
        // b0..b3 inclusive (3 hops).
        assert_eq!(r.blocks.len(), 4);
        assert!(r.blocks.contains(&ids[3]));
        assert!(!r.blocks.contains(&ids[4]));
    }

    #[test]
    fn semantic_page_crosses_cylinders() {
        let mut spd = tiny(SpMode::Simd);
        // 6 blocks: chain crosses from cylinder 0 (ids 0..4) to 1.
        let ids = chain(&mut spd, 6, 0);
        let r = spd.semantic_page(&PageRequest {
            roots: vec![ids[0]],
            distance: 5,
            name: None,
            weight_max: None,
        });
        assert_eq!(r.blocks.len(), 6);
        assert!(spd.stats().deferred_pointers > 0);
        assert!(spd.stats().track_loads >= 3);
    }

    #[test]
    fn weight_filter_prunes_heavy_pointers() {
        let mut spd = tiny(SpMode::Simd);
        let ids = chain(&mut spd, 4, 100);
        let r = spd.semantic_page(&PageRequest {
            roots: vec![ids[0]],
            distance: 3,
            name: None,
            weight_max: Some(50),
        });
        assert_eq!(r.blocks.len(), 1, "all pointers too heavy to follow");
        assert_eq!(spd.stats().weight_skips, 1);
    }

    #[test]
    fn name_filter_restricts_follows() {
        let mut spd = tiny(SpMode::Simd);
        let a = spd.add_block(Block::new(1));
        let b = spd.add_block(Block::new(1));
        let c = spd.add_block(Block::new(1));
        let mut blk = spd.block(a).clone();
        blk.push_pointer(7, b, 0);
        blk.push_pointer(9, c, 0);
        spd.blocks[a.index()] = blk;
        let r = spd.semantic_page(&PageRequest {
            roots: vec![a],
            distance: 1,
            name: Some(7),
            weight_max: None,
        });
        assert!(r.blocks.contains(&b));
        assert!(!r.blocks.contains(&c));
    }

    #[test]
    fn mimd_defers_cross_sp_pointers_simd_does_not() {
        // Block 0 (sp 0) points to block 2 (sp 1), same cylinder.
        let build = |mode| {
            let mut spd = tiny(mode);
            let a = spd.add_block(Block::new(1)); // cyl 0 sp 0
            let _b = spd.add_block(Block::new(1)); // cyl 0 sp 0
            let c = spd.add_block(Block::new(1)); // cyl 0 sp 1
            let mut blk = spd.block(a).clone();
            blk.push_pointer(0, c, 0);
            spd.blocks[a.index()] = blk;
            let r = spd.semantic_page(&PageRequest {
                roots: vec![a],
                distance: 1,
                name: None,
                weight_max: None,
            });
            (r.blocks.len(), spd.stats().deferred_pointers, spd.stats().track_loads)
        };
        let (simd_blocks, simd_deferred, simd_loads) = build(SpMode::Simd);
        let (mimd_blocks, mimd_deferred, mimd_loads) = build(SpMode::Mimd);
        assert_eq!(simd_blocks, 2);
        assert_eq!(mimd_blocks, 2);
        assert_eq!(simd_deferred, 0, "SIMD resolves cross-SP in-cylinder");
        assert!(mimd_deferred > 0, "MIMD must defer cross-SP pointers");
        assert!(mimd_loads > 1, "MIMD needs a second track load");
        assert_eq!(simd_loads, 2, "one cylinder load = both SP tracks");
    }

    #[test]
    fn update_pointer_weight_persists() {
        let mut spd = tiny(SpMode::Simd);
        let ids = chain(&mut spd, 2, 5);
        spd.load_cylinder(0);
        spd.update_pointer_weight(ids[0], 0, 42);
        assert_eq!(spd.block(ids[0]).pointers[0].weight, 42);
        assert_eq!(spd.stats().weight_updates, 1);
    }

    #[test]
    fn output_marked_charges_transfer() {
        let mut spd = tiny(SpMode::Simd);
        let a = spd.add_block(Block::new(8));
        spd.load_cylinder(0);
        spd.mark(&[a]);
        let t = spd.clock();
        let out = spd.output_marked();
        assert_eq!(out, vec![a]);
        assert!(spd.clock() > t);
        assert_eq!(spd.stats().words_output, 8);
    }

    #[test]
    fn insert_and_delete_words_adjust_payload() {
        let mut spd = tiny(SpMode::Simd);
        let a = spd.add_block(Block::new(4));
        spd.load_cylinder(0);
        spd.insert_words(a, 6).unwrap();
        assert_eq!(spd.block(a).payload_words, 10);
        spd.delete_words(a, 3);
        assert_eq!(spd.block(a).payload_words, 7);
        // Deleting more than present saturates.
        spd.delete_words(a, 100);
        assert_eq!(spd.block(a).payload_words, 0);
        let s = spd.stats();
        assert_eq!(s.words_inserted, 6);
        assert_eq!(s.words_deleted, 3 + 7);
    }

    #[test]
    fn insert_respects_track_capacity() {
        let mut spd = tiny(SpMode::Simd);
        let a = spd.add_block(Block::new(10));
        let b = spd.add_block(Block::new(10)); // same track (sp 0, cyl 0)
        spd.set_track_capacity_words(Some(25));
        spd.load_cylinder(0);
        assert!(spd.insert_words(a, 5).is_ok()); // 25/25
        let err = spd.insert_words(b, 1).unwrap_err();
        assert_eq!(err.used, 25);
        assert_eq!(err.capacity, 25);
    }

    #[test]
    fn gc_rebalances_and_unblocks_inserts() {
        let mut spd = tiny(SpMode::Simd);
        // Both blocks land on sp 0's track; sp 1 is empty.
        let a = spd.add_block(Block::new(12));
        let b = spd.add_block(Block::new(12));
        spd.set_track_capacity_words(Some(26));
        spd.load_cylinder(0);
        assert!(spd.insert_words(a, 4).is_err(), "track 0 is 24/26 full");
        let report = spd.garbage_collect_cylinder(0);
        assert_eq!(report.moved_blocks, 1);
        // Now each track holds one block: the insert fits.
        assert!(spd.insert_words(a, 4).is_ok());
        assert_ne!(spd.addr(a).sp, spd.addr(b).sp);
    }

    #[test]
    fn gc_preserves_block_identity_and_pointers() {
        let mut spd = tiny(SpMode::Simd);
        let ids = chain(&mut spd, 4, 0);
        spd.load_cylinder(0);
        spd.garbage_collect_cylinder(0);
        // Pointers still resolve: a semantic page still walks the chain
        // members that live on cylinder 0 (ids 0..4).
        let r = spd.semantic_page(&PageRequest {
            roots: vec![ids[0]],
            distance: 3,
            name: None,
            weight_max: None,
        });
        assert_eq!(r.blocks.len(), 4);
    }

    #[test]
    #[should_panic(expected = "SIMD")]
    fn gc_requires_simd_mode() {
        let mut spd = tiny(SpMode::Mimd);
        spd.add_block(Block::new(1));
        spd.load_track(0, 0);
        spd.garbage_collect_cylinder(0);
    }

    #[test]
    fn page_ticks_reported_per_request() {
        let mut spd = tiny(SpMode::Simd);
        let ids = chain(&mut spd, 4, 0);
        let r1 = spd.semantic_page(&PageRequest {
            roots: vec![ids[0]],
            distance: 1,
            name: None,
            weight_max: None,
        });
        let r2 = spd.semantic_page(&PageRequest {
            roots: vec![ids[0]],
            distance: 1,
            name: None,
            weight_max: None,
        });
        assert!(r1.ticks > 0);
        // Second identical request hits the cache: strictly cheaper.
        assert!(r2.ticks < r1.ticks, "{} !< {}", r2.ticks, r1.ticks);
    }
}
