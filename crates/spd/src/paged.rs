//! A paged clause-store backend: `ClauseDb` behind a policy-driven track
//! cache.
//!
//! The [`Pager`](crate::pager::Pager) replays *recorded* traces against the
//! simulated disk; this module closes the loop. [`PagedClauseStore`] lays a
//! [`ClauseDb`] out across SPD tracks (same placement rule as
//! [`SpdArray`](crate::spd::SpdArray): one block per clause, round-robin
//! over slots, SPs, and cylinders) and implements [`ClauseSource`], so
//! the best-first engine in
//! `blog-core` — or any engine built on
//! [`expand_via`](blog_logic::expand_via) — resolves candidates *through*
//! the cache. Every unification attempt touches the candidate clause's
//! track: a resident track is a **hit**; a miss charges the cost model for
//! the seek and track load and may **evict** a resident track, chosen by
//! the configured [`ReplacementPolicy`](crate::policy::ReplacementPolicy) (LRU by default; see
//! [`PolicyKind`] for the scan-resistant 2Q and the CLOCK approximation).
//!
//! Clause data itself always lives in the backing [`ClauseDb`] (the
//! "disk"), so paging is semantically transparent: searches return exactly
//! the solutions the in-memory database yields, while the store reports
//! the hit/miss/eviction behavior of the access pattern the search
//! actually generated. The integration tests in `tests/paged_store.rs`
//! assert both halves of that claim.

use std::borrow::Cow;

use blog_logic::{
    BindingLookup, Clause, ClauseDb, ClauseId, ClauseSource, SourceStats, StoreError, Term,
};
use serde::Serialize;

use crate::bitidx::{BitmapClauseIndex, IndexCounters, IndexPolicy, IndexedCandidates};
use crate::cache::TrackCache;
use crate::fault::FaultPlan;
use crate::policy::{PolicyKind, PolicyStats};
use crate::timing::{BlockAddr, CostModel, Geometry};

/// Identity of one track: the unit of caching (and of disk transfer).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize)]
pub struct TrackId {
    /// Search processor (surface) index.
    pub sp: u32,
    /// Cylinder index.
    pub cylinder: u32,
}

/// Configuration for a [`PagedClauseStore`].
#[derive(Clone, Debug, Serialize)]
pub struct PagedStoreConfig {
    /// Disk layout; `blocks_per_track` is the page size in clauses.
    pub geometry: Geometry,
    /// Tick costs charged on track faults.
    pub cost: CostModel,
    /// Cache capacity in resident tracks.
    pub capacity_tracks: usize,
    /// Replacement algorithm deciding which track a fault evicts.
    pub policy: PolicyKind,
    /// Candidate-selection policy (first-argument bitmap index by
    /// default; `None` is the scan-everything baseline).
    pub index: IndexPolicy,
    /// Deterministic fault-injection schedule (`None` — the default —
    /// is a fault-free store; see [`FaultPlan`]).
    pub fault: Option<FaultPlan>,
}

impl Default for PagedStoreConfig {
    fn default() -> Self {
        PagedStoreConfig {
            geometry: Geometry::default(),
            cost: CostModel::default(),
            capacity_tracks: 8,
            policy: PolicyKind::Lru,
            index: IndexPolicy::default(),
            fault: None,
        }
    }
}

impl PagedStoreConfig {
    /// This configuration with a different replacement policy.
    pub fn with_policy(self, policy: PolicyKind) -> Self {
        PagedStoreConfig { policy, ..self }
    }

    /// This configuration with a different candidate-selection policy.
    pub fn with_index(self, index: IndexPolicy) -> Self {
        PagedStoreConfig { index, ..self }
    }

    /// This configuration with a fault-injection schedule.
    pub fn with_fault(self, fault: Option<FaultPlan>) -> Self {
        PagedStoreConfig { fault, ..self }
    }
}

/// Counters for one store's lifetime (or since the last reset).
#[derive(Clone, Copy, Default, Debug, Serialize)]
pub struct PagedStoreStats {
    /// Clause fetches routed through the cache.
    pub accesses: u64,
    /// Fetches whose track was resident.
    pub hits: u64,
    /// Fetches that faulted a track in.
    pub misses: u64,
    /// Tracks evicted to make room.
    pub evictions: u64,
    /// Simulated ticks spent on faults (seeks plus track loads).
    pub fault_ticks: u64,
    /// Times the cache mutex was taken (every touch, stat read, or
    /// reset is one acquisition).
    pub lock_acquisitions: u64,
    /// Acquisitions that found the mutex held by another thread and had
    /// to block. With a single accessor this is structurally zero; under
    /// a serving fleet the `contended / acquisitions` ratio attributes
    /// slowdowns to store contention rather than scheduling.
    pub lock_contended: u64,
    /// `candidate_clauses` calls resolved through the first-argument
    /// bitmap index (zero under [`IndexPolicy::None`] and for goals
    /// whose first argument was unbound).
    pub index_hits: u64,
    /// Candidates the index removed versus the full predicate range —
    /// unification attempts (and their clause touches) that never
    /// happened.
    pub index_prunes: u64,
    /// Candidates actually handed to engines, under either policy.
    pub candidates_scanned: u64,
    /// Injected transient read faults (the touch failed but a retry may
    /// succeed). Zero without a [`FaultPlan`].
    pub transient_faults: u64,
    /// Injected permanent track faults, including every touch of an
    /// already-damaged track. Zero without a [`FaultPlan`].
    pub permanent_faults: u64,
    /// Touches an injected latency spike slowed down (the touch itself
    /// succeeded).
    pub latency_spikes: u64,
    /// Extra ticks those spikes charged — also included in
    /// [`fault_ticks`](Self::fault_ticks), so stall accounting needs no
    /// special case.
    pub latency_spike_ticks: u64,
}

impl PagedStoreStats {
    /// Hit rate in `[0, 1]` (zero when nothing was accessed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.hits as f64 / self.accesses as f64
    }

    /// Every counter (plus the derived hit rate) as one JSON object.
    pub fn to_json(&self) -> blog_obs::Json {
        use blog_obs::Json;
        Json::Obj(vec![
            ("accesses".into(), Json::int(self.accesses)),
            ("hits".into(), Json::int(self.hits)),
            ("misses".into(), Json::int(self.misses)),
            ("evictions".into(), Json::int(self.evictions)),
            ("fault_ticks".into(), Json::int(self.fault_ticks)),
            ("lock_acquisitions".into(), Json::int(self.lock_acquisitions)),
            ("lock_contended".into(), Json::int(self.lock_contended)),
            ("index_hits".into(), Json::int(self.index_hits)),
            ("index_prunes".into(), Json::int(self.index_prunes)),
            ("candidates_scanned".into(), Json::int(self.candidates_scanned)),
            ("transient_faults".into(), Json::int(self.transient_faults)),
            ("permanent_faults".into(), Json::int(self.permanent_faults)),
            ("latency_spikes".into(), Json::int(self.latency_spikes)),
            ("latency_spike_ticks".into(), Json::int(self.latency_spike_ticks)),
            ("hit_rate".into(), Json::Num(self.hit_rate())),
        ])
    }
}

impl blog_obs::RecordInto for PagedStoreStats {
    fn record_into(&self, registry: &blog_obs::Registry) {
        registry.counter("store.accesses").add(self.accesses);
        registry.counter("store.hits").add(self.hits);
        registry.counter("store.misses").add(self.misses);
        registry.counter("store.evictions").add(self.evictions);
        registry.counter("store.fault_ticks").add(self.fault_ticks);
        registry
            .counter("store.lock_acquisitions")
            .add(self.lock_acquisitions);
        registry.counter("store.lock_contended").add(self.lock_contended);
        registry.counter("store.index_hits").add(self.index_hits);
        registry.counter("store.index_prunes").add(self.index_prunes);
        registry
            .counter("store.candidates_scanned")
            .add(self.candidates_scanned);
        registry
            .counter("store.transient_faults")
            .add(self.transient_faults);
        registry
            .counter("store.permanent_faults")
            .add(self.permanent_faults);
        registry.counter("store.latency_spikes").add(self.latency_spikes);
        registry
            .counter("store.latency_spike_ticks")
            .add(self.latency_spike_ticks);
        registry.gauge("store.hit_rate").set(self.hit_rate());
    }
}

/// Per-pool slice of the store's touch counters, so a multi-pool server
/// over **one** shared cache can still attribute hits and faults to the
/// worker pool (and therefore to the session mix) that generated them.
#[derive(Clone, Copy, Default, Debug, Serialize)]
pub struct PoolTouchStats {
    /// Clause fetches this pool routed through the cache.
    pub accesses: u64,
    /// Fetches of this pool whose track was resident.
    pub hits: u64,
    /// Fetches of this pool that faulted a track in.
    pub misses: u64,
    /// Simulated fault ticks charged to this pool's fetches.
    pub fault_ticks: u64,
}

impl PoolTouchStats {
    /// Hit rate in `[0, 1]` (zero when nothing was accessed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.hits as f64 / self.accesses as f64
    }
}

/// Outcome of one accounted clause touch.
#[derive(Clone, Copy, Debug)]
pub struct TouchOutcome {
    /// Whether the clause's track was resident.
    pub hit: bool,
    /// Ticks charged for the fault (zero on a hit) — seek plus track
    /// load. A latency-simulating caller (the serving layer's
    /// [`PoolView`]) can convert these into a real stall.
    pub fault_ticks: u64,
    /// The slice of [`fault_ticks`](Self::fault_ticks) an injected
    /// latency spike contributed (zero without a [`FaultPlan`]), so
    /// tracing callers can
    /// tell a cold-cache miss from an injected slowdown.
    pub spike_ticks: u64,
}

/// A [`ClauseDb`] served through a policy-driven track cache with SPD
/// cost accounting. See the module docs for the model. The cache
/// machinery itself lives in [`TrackCache`],
/// shared with the MVCC backend.
#[derive(Debug)]
pub struct PagedClauseStore<'a> {
    db: &'a ClauseDb,
    geometry: Geometry,
    policy_kind: PolicyKind,
    cache: TrackCache,
    /// First-argument bitmap index, built once over the (static) backing
    /// database when the config asks for it.
    bitidx: Option<BitmapClauseIndex>,
    /// Candidate-selection meters (atomics — selection never locks).
    index_counters: IndexCounters,
}

impl<'a> PagedClauseStore<'a> {
    /// Wrap `db` in a paged view.
    ///
    /// # Panics
    /// Panics if the geometry cannot hold one block per clause, or if the
    /// track capacity is zero.
    pub fn new(db: &'a ClauseDb, config: PagedStoreConfig) -> PagedClauseStore<'a> {
        assert!(
            config.geometry.capacity() as usize >= db.len(),
            "SPD geometry too small: capacity {} < {} clauses",
            config.geometry.capacity(),
            db.len()
        );
        PagedClauseStore {
            db,
            geometry: config.geometry,
            policy_kind: config.policy,
            cache: TrackCache::new(
                config.policy,
                config.capacity_tracks,
                config.geometry.n_sps,
                config.cost,
            )
            .with_faults(config.fault),
            bitidx: match config.index {
                IndexPolicy::None => None,
                IndexPolicy::FirstArg => Some(BitmapClauseIndex::from_db(db)),
            },
            index_counters: IndexCounters::default(),
        }
    }

    /// Which replacement algorithm this store runs.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy_kind
    }

    /// Which candidate-selection policy this store runs.
    pub fn index_policy(&self) -> IndexPolicy {
        if self.bitidx.is_some() {
            IndexPolicy::FirstArg
        } else {
            IndexPolicy::None
        }
    }

    /// Resolve a goal's candidates: through the bitmap index when the
    /// policy is `FirstArg` and the goal's first argument is bound,
    /// otherwise the full predicate range. Selection costs no page
    /// touch either way — candidate lists ride in the caller's block —
    /// but only the metered [`fetch_clause`](ClauseSource::fetch_clause)
    /// calls that *follow* differ, which is the entire point.
    fn candidates<'s>(
        &'s self,
        goal: &Term,
        bindings: &dyn BindingLookup,
    ) -> Cow<'s, [ClauseId]> {
        if let Some(idx) = &self.bitidx {
            if let IndexedCandidates::Narrowed(ids) = idx.lookup(goal, bindings) {
                let full = self.db.candidates_for(goal).len();
                self.index_counters.record_indexed(full, ids.len());
                return Cow::Owned(ids);
            }
        }
        let full = self.db.candidates_for_resolved(goal, bindings);
        self.index_counters.record_scan(full.len());
        full
    }

    /// The policy's own counters (a second view over the same accesses
    /// [`stats`](Self::stats) meters, minus the cost-model fields).
    pub fn policy_stats(&self) -> PolicyStats {
        self.cache.policy_stats()
    }

    /// The backing database.
    pub fn db(&self) -> &'a ClauseDb {
        self.db
    }

    /// Where clause `cid` lives — the same round-robin placement
    /// [`SpdArray::add_block`](crate::spd::SpdArray::add_block) uses
    /// (both call [`Geometry::addr_of_index`]), so a store and a
    /// simulator built over the same database agree block by block.
    pub fn addr_of(&self, cid: ClauseId) -> BlockAddr {
        self.geometry.addr_of_index(cid.0)
    }

    /// The track (cache page) holding clause `cid`.
    pub fn track_of(&self, cid: ClauseId) -> TrackId {
        let addr = self.addr_of(cid);
        TrackId {
            sp: addr.sp,
            cylinder: addr.cylinder,
        }
    }

    /// Touch one clause through the cache; returns whether it hit.
    ///
    /// This is the accounting primitive behind
    /// [`fetch_clause`](ClauseSource::fetch_clause); trace replays can
    /// call it directly.
    pub fn touch_clause(&self, cid: ClauseId) -> bool {
        self.touch_clause_for_pool(cid, None).hit
    }

    /// [`touch_clause`](Self::touch_clause), attributing the access to
    /// worker pool `pool` (see [`PoolTouchStats`]). One lock acquisition
    /// covers the global and per-pool accounting; the pool counter table
    /// grows on first use of each pool id.
    pub fn touch_clause_for_pool(&self, cid: ClauseId, pool: Option<usize>) -> TouchOutcome {
        self.cache.touch(self.track_of(cid), pool)
    }

    /// [`touch_clause_for_pool`](Self::touch_clause_for_pool), with
    /// injected faults surfaced as values instead of panics. Never
    /// `Err` without a configured [`FaultPlan`].
    pub fn try_touch_clause_for_pool(
        &self,
        cid: ClauseId,
        pool: Option<usize>,
    ) -> Result<TouchOutcome, StoreError> {
        self.cache.try_touch(self.track_of(cid), pool)
    }

    /// A [`ClauseSource`] view of this store that attributes every touch
    /// to worker pool `pool` and (optionally) *stalls* the calling thread
    /// on faults — the concurrent read path a multi-pool query server
    /// executes through.
    pub fn pool_view(&self, pool: usize) -> PoolView<'_, 'a> {
        PoolView {
            store: self,
            pool,
            stall_ns_per_tick: 0,
            trace: None,
        }
    }

    /// This pool's touch counters (zeros for a pool never seen).
    pub fn pool_stats(&self, pool: usize) -> PoolTouchStats {
        self.cache.pool_stats(pool)
    }

    /// Lock-traffic meters: `(acquisitions, contended acquisitions)`.
    ///
    /// Also folded into [`stats`](Self::stats); this accessor reads them
    /// without taking the cache mutex at all, so it never perturbs the
    /// contention it reports.
    pub fn lock_stats(&self) -> (u64, u64) {
        self.cache.lock_stats()
    }

    /// Replay a clause-access trace; returns the cumulative stats.
    pub fn replay(&self, trace: &[ClauseId]) -> PagedStoreStats {
        for &cid in trace {
            self.touch_clause(cid);
        }
        self.stats()
    }

    /// Counters so far (lock-traffic and candidate-selection meters
    /// included).
    pub fn stats(&self) -> PagedStoreStats {
        let mut s = self.cache.stats();
        let (hits, prunes, scanned) = self.index_counters.snapshot();
        s.index_hits = hits;
        s.index_prunes = prunes;
        s.candidates_scanned = scanned;
        s
    }

    /// Reset counters — the store's and the policy's, which stay two
    /// views over the same accesses, plus the per-pool, lock-traffic and
    /// candidate-selection meters; resident tracks and head positions
    /// persist (use [`clear`](Self::clear) to also drop the cache).
    pub fn reset_stats(&self) {
        self.cache.reset_stats();
        self.index_counters.reset();
    }

    /// Drop every resident track, park the heads, and reset counters.
    pub fn clear(&self) {
        self.cache.clear();
        self.index_counters.reset();
    }

    /// Number of resident tracks.
    pub fn resident_tracks(&self) -> usize {
        self.cache.resident_tracks()
    }

    /// Whether clause `cid`'s track is resident (no recency effect).
    pub fn is_resident(&self, cid: ClauseId) -> bool {
        self.cache.contains(&self.track_of(cid))
    }
}

/// A pool-tagged [`ClauseSource`] view over a shared
/// [`PagedClauseStore`].
///
/// Many pools hold views over **one** store: all share the same resident
/// tracks (a track faulted in by one pool hits for every pool — the §5
/// warm-cache effect a serving layer schedules for) while touches are
/// attributed per pool. With [`stall_ns_per_tick`](Self::with_stall) set,
/// a fault also *sleeps* the calling thread for the fault's simulated
/// ticks — the SPD's disk latency made real, so a multi-pool server
/// overlaps one pool's I/O stall with another pool's computation exactly
/// as the paper's processors hide track-load latency. The sleep happens
/// **after** the cache mutex is released; residency bookkeeping is never
/// held across a stall.
#[derive(Clone, Debug)]
pub struct PoolView<'s, 'db> {
    store: &'s PagedClauseStore<'db>,
    pool: usize,
    stall_ns_per_tick: u64,
    /// Span context of the request this view serves (`None` — the
    /// default — is untraced). With it set, injected faults and latency
    /// spikes surface as trace events.
    trace: Option<blog_obs::SpanCtx>,
}

impl<'s, 'db> PoolView<'s, 'db> {
    /// This view with faults stalling the caller `ns_per_tick`
    /// nanoseconds per simulated tick (0 = no stall, accounting only).
    pub fn with_stall(mut self, ns_per_tick: u64) -> Self {
        self.stall_ns_per_tick = ns_per_tick;
        self
    }

    /// This view with store events (injected faults, latency spikes)
    /// reported onto `trace`'s span tree. `None` (the default) keeps
    /// every fetch untraced.
    pub fn with_trace(mut self, trace: Option<blog_obs::SpanCtx>) -> Self {
        self.trace = trace;
        self
    }

    /// The pool id this view attributes touches to.
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// The shared store behind this view.
    pub fn store(&self) -> &'s PagedClauseStore<'db> {
        self.store
    }

    /// This pool's touch counters so far.
    pub fn stats(&self) -> PoolTouchStats {
        self.store.pool_stats(self.pool)
    }
}

impl ClauseSource for PoolView<'_, '_> {
    fn try_fetch_clause(&self, id: ClauseId) -> Result<&Clause, StoreError> {
        let outcome = self
            .store
            .try_touch_clause_for_pool(id, Some(self.pool))
            .inspect_err(|e| {
                if let Some(t) = &self.trace {
                    t.event("store_fault", format!("clause {}: {e}", id.0));
                }
            })?;
        if let Some(t) = &self.trace {
            if outcome.spike_ticks > 0 {
                t.event(
                    "latency_spike",
                    format!("clause {}: +{} ticks", id.0, outcome.spike_ticks),
                );
            }
        }
        if self.stall_ns_per_tick > 0 && outcome.fault_ticks > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(
                outcome.fault_ticks * self.stall_ns_per_tick,
            ));
        }
        Ok(self.store.db.clause(id))
    }

    fn try_candidate_clauses<'a>(
        &'a self,
        goal: &Term,
        bindings: &dyn BindingLookup,
    ) -> Result<Cow<'a, [ClauseId]>, StoreError> {
        // As for the store itself: candidate lists ride in the caller's
        // block, already paid for when the caller was fetched — so
        // selection itself cannot fault.
        Ok(self.store.candidates(goal, bindings))
    }

    fn clause_count(&self) -> usize {
        self.store.db.len()
    }

    fn backend_name(&self) -> String {
        format!("paged/{}/pool{}", self.store.policy_kind.name(), self.pool)
    }

    fn source_stats(&self) -> Option<SourceStats> {
        let s = self.stats();
        Some(SourceStats {
            accesses: s.accesses,
            hits: s.hits,
            misses: s.misses,
            // Evictions are a store-wide event; they cannot be attributed
            // to the pool whose fault happened to trigger them.
            evictions: 0,
        })
    }
}

impl ClauseSource for PagedClauseStore<'_> {
    fn try_fetch_clause(&self, id: ClauseId) -> Result<&Clause, StoreError> {
        self.try_touch_clause_for_pool(id, None)?;
        Ok(self.db.clause(id))
    }

    fn try_candidate_clauses<'a>(
        &'a self,
        goal: &Term,
        bindings: &dyn BindingLookup,
    ) -> Result<Cow<'a, [ClauseId]>, StoreError> {
        // Candidate lists are the figure-4 pointers stored *in the
        // caller's block*, which the search touched when it fetched the
        // caller; reading them costs no extra fault.
        Ok(self.candidates(goal, bindings))
    }

    fn clause_count(&self) -> usize {
        self.db.len()
    }

    fn backend_name(&self) -> String {
        format!("paged/{}", self.policy_kind.name())
    }

    fn source_stats(&self) -> Option<SourceStats> {
        let s = self.stats();
        Some(SourceStats {
            accesses: s.accesses,
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blog_logic::parse_program;

    const FAMILY: &str = "
        gf(X,Z) :- f(X,Y), f(Y,Z).
        gf(X,Z) :- f(X,Y), m(Y,Z).
        f(curt,elain). f(sam,larry). f(dan,pat). f(larry,den).
        f(pat,john). f(larry,doug).
        m(elain,john). m(marian,elain). m(peg,den). m(peg,doug).
        ?- gf(sam,G).
    ";

    fn small_config(capacity_tracks: usize) -> PagedStoreConfig {
        // Index pinned off: these tests are about paging, and the
        // baseline keeps their counters policy-independent.
        PagedStoreConfig {
            geometry: Geometry {
                n_sps: 2,
                n_cylinders: 8,
                blocks_per_track: 2,
            },
            cost: CostModel::default(),
            capacity_tracks,
            policy: PolicyKind::Lru,
            index: IndexPolicy::None,
            fault: None,
        }
    }

    #[test]
    fn placement_matches_spd_array() {
        let p = parse_program(FAMILY).unwrap();
        let cfg = small_config(4);
        let store = PagedClauseStore::new(&p.db, cfg.clone());
        let weights =
            blog_core::weight::WeightStore::new(blog_core::weight::WeightParams::default());
        let (spd, layout) = crate::bridge::build_spd_from_db(
            &p.db,
            &weights,
            cfg.geometry,
            cfg.cost,
            crate::spd::SpMode::Simd,
        );
        for i in 0..p.db.len() {
            let cid = ClauseId(i as u32);
            assert_eq!(store.addr_of(cid), spd.addr(layout.block_of(cid)));
        }
    }

    #[test]
    fn same_track_hits_other_track_faults() {
        let p = parse_program(FAMILY).unwrap();
        let store = PagedClauseStore::new(&p.db, small_config(4));
        // Clauses 0 and 1 share track (sp 0, cyl 0) with blocks_per_track=2.
        assert!(!store.touch_clause(ClauseId(0)));
        assert!(store.touch_clause(ClauseId(1)));
        assert!(!store.touch_clause(ClauseId(2)));
        let s = store.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.evictions, 0);
        assert!(s.fault_ticks >= 2 * CostModel::default().track_load);
    }

    #[test]
    fn capacity_bounds_residency_and_counts_evictions() {
        let p = parse_program(FAMILY).unwrap();
        let store = PagedClauseStore::new(&p.db, small_config(1));
        for i in 0..p.db.len() {
            store.touch_clause(ClauseId(i as u32));
        }
        assert_eq!(store.resident_tracks(), 1);
        let s = store.stats();
        assert!(s.evictions > 0, "single-track cache must evict: {s:?}");
    }

    #[test]
    fn fetch_returns_backing_clause() {
        let p = parse_program(FAMILY).unwrap();
        let store = PagedClauseStore::new(&p.db, small_config(2));
        for i in 0..p.db.len() {
            let cid = ClauseId(i as u32);
            assert_eq!(store.fetch_clause(cid).head, p.db.clause(cid).head);
        }
        assert_eq!(store.stats().accesses, p.db.len() as u64);
    }

    #[test]
    fn clear_and_reset_behave() {
        let p = parse_program(FAMILY).unwrap();
        let store = PagedClauseStore::new(&p.db, small_config(2));
        store.touch_clause(ClauseId(0));
        store.reset_stats();
        assert_eq!(store.stats().accesses, 0);
        assert_eq!(store.policy_stats().touches, 0, "policy counters reset too");
        assert!(store.is_resident(ClauseId(0)), "reset keeps residency");
        store.clear();
        assert!(!store.is_resident(ClauseId(0)));
        assert_eq!(store.resident_tracks(), 0);
    }

    #[test]
    fn every_policy_bounds_residency_and_meters_accesses() {
        let p = parse_program(FAMILY).unwrap();
        for policy in PolicyKind::ALL {
            let store = PagedClauseStore::new(&p.db, small_config(2).with_policy(policy));
            assert_eq!(store.policy_kind(), policy);
            for _ in 0..3 {
                for i in 0..p.db.len() {
                    store.touch_clause(ClauseId(i as u32));
                }
            }
            assert!(store.resident_tracks() <= 2, "{policy}");
            let s = store.stats();
            assert_eq!(s.accesses, 3 * p.db.len() as u64, "{policy}");
            assert_eq!(s.hits + s.misses, s.accesses, "{policy}");
            // The policy's own counters and the store's must agree.
            let ps = store.policy_stats();
            assert_eq!(ps.touches, s.accesses, "{policy}");
            assert_eq!(ps.hits, s.hits, "{policy}");
            assert_eq!(ps.evictions, s.evictions, "{policy}");
        }
    }

    #[test]
    fn source_stats_surface_matches_store_stats() {
        let p = parse_program(FAMILY).unwrap();
        let store = PagedClauseStore::new(&p.db, small_config(2).with_policy(PolicyKind::TwoQ));
        assert_eq!(ClauseSource::backend_name(&store), "paged/2q");
        for i in 0..p.db.len() {
            store.fetch_clause(ClauseId(i as u32));
        }
        let s = store.stats();
        let src = store.source_stats().expect("paged store meters fetches");
        assert_eq!(src.accesses, s.accesses);
        assert_eq!(src.hits, s.hits);
        assert_eq!(src.misses, s.misses);
        assert_eq!(src.evictions, s.evictions);
        assert_eq!(src.hit_rate(), s.hit_rate());
    }

    #[test]
    fn pool_views_split_the_shared_counters() {
        let p = parse_program(FAMILY).unwrap();
        let store = PagedClauseStore::new(&p.db, small_config(4));
        let v0 = store.pool_view(0);
        let v1 = store.pool_view(1);
        // Pool 0 faults the track in; pool 1 then hits the SAME cache.
        v0.fetch_clause(ClauseId(0));
        v1.fetch_clause(ClauseId(0));
        v1.fetch_clause(ClauseId(1));
        let s0 = v0.stats();
        let s1 = v1.stats();
        assert_eq!((s0.accesses, s0.hits, s0.misses), (1, 0, 1));
        assert_eq!((s1.accesses, s1.hits, s1.misses), (2, 2, 0), "warm via pool 0");
        let total = store.stats();
        assert_eq!(total.accesses, 3);
        assert_eq!(total.hits, s0.hits + s1.hits);
        assert_eq!(total.misses, s0.misses + s1.misses);
        assert_eq!(total.fault_ticks, s0.fault_ticks + s1.fault_ticks);
        assert_eq!(ClauseSource::backend_name(&v1), "paged/lru/pool1");
        let src = v1.source_stats().unwrap();
        assert_eq!((src.accesses, src.hits), (2, 2));
    }

    #[test]
    fn untouched_pool_reports_zeros() {
        let p = parse_program(FAMILY).unwrap();
        let store = PagedClauseStore::new(&p.db, small_config(4));
        let s = store.pool_stats(7);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn lock_meter_counts_acquisitions_and_resets() {
        let p = parse_program(FAMILY).unwrap();
        let store = PagedClauseStore::new(&p.db, small_config(4));
        store.touch_clause(ClauseId(0));
        store.touch_clause(ClauseId(1));
        let s = store.stats();
        // Two touches plus the stats() read itself.
        assert_eq!(s.lock_acquisitions, 3);
        assert_eq!(s.lock_contended, 0, "single thread never contends");
        let (acq, cont) = store.lock_stats();
        assert_eq!((acq, cont), (3, 0), "lock_stats reads without locking");
        store.reset_stats();
        let s = store.stats();
        assert_eq!(s.lock_acquisitions, 1, "just the stats() read");
        assert_eq!(store.pool_stats(0).accesses, 0, "pool meters reset too");
    }

    #[test]
    fn shared_store_is_concurrency_safe_and_exact() {
        // N threads hammer one store through per-pool views; the global
        // counters must balance exactly and residency stay bounded.
        let p = parse_program(FAMILY).unwrap();
        let store = PagedClauseStore::new(&p.db, small_config(2));
        let n_threads = 4;
        let rounds = 50;
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let store = &store;
                let db = &p.db;
                scope.spawn(move || {
                    let view = store.pool_view(t);
                    for r in 0..rounds {
                        for i in 0..db.len() {
                            // Offset start per thread/round to vary interleaving.
                            let cid = ClauseId(((i + t + r) % db.len()) as u32);
                            view.fetch_clause(cid);
                        }
                    }
                });
            }
        });
        let expected = (n_threads * rounds * p.db.len()) as u64;
        let s = store.stats();
        assert_eq!(s.accesses, expected);
        assert_eq!(s.hits + s.misses, s.accesses);
        assert!(store.resident_tracks() <= 2);
        let per_pool: u64 = (0..n_threads).map(|t| store.pool_stats(t).accesses).sum();
        assert_eq!(per_pool, expected, "every access attributed to a pool");
        assert!(s.lock_acquisitions >= expected);
    }

    #[test]
    fn stalling_view_sleeps_on_faults_only() {
        let p = parse_program(FAMILY).unwrap();
        let store = PagedClauseStore::new(&p.db, small_config(4));
        // ~1µs per tick; a default-cost fault is >= track_load ticks.
        let view = store.pool_view(0).with_stall(1_000);
        let t0 = std::time::Instant::now();
        view.fetch_clause(ClauseId(0));
        let fault_elapsed = t0.elapsed();
        let ticks = view.stats().fault_ticks;
        assert!(ticks > 0);
        assert!(
            fault_elapsed >= std::time::Duration::from_nanos(ticks * 1_000),
            "fault must stall: {fault_elapsed:?} for {ticks} ticks"
        );
        // Hits never stall (can't assert an upper bound on a loaded box,
        // but the accounting must show zero new fault ticks).
        view.fetch_clause(ClauseId(0));
        assert_eq!(view.stats().fault_ticks, ticks);
    }

    #[test]
    fn indexed_store_narrows_and_meters_candidates() {
        let p = parse_program(FAMILY).unwrap();
        let baseline = PagedClauseStore::new(&p.db, small_config(4));
        let indexed =
            PagedClauseStore::new(&p.db, small_config(4).with_index(IndexPolicy::FirstArg));
        assert_eq!(baseline.index_policy(), IndexPolicy::None);
        assert_eq!(indexed.index_policy(), IndexPolicy::FirstArg);

        let mut db = p.db.clone();
        let query = blog_logic::parse_query(&mut db, "f(sam,Q)").unwrap();
        let goal = &query.goals[0];
        let bindings = blog_logic::Bindings::new();

        let full = baseline.candidate_clauses(goal, &bindings).into_owned();
        let narrowed = indexed.candidate_clauses(goal, &bindings).into_owned();
        assert_eq!(full.len(), 6, "f/2 has six clauses");
        assert_eq!(narrowed, vec![ClauseId(3)], "only f(sam,larry) can match");

        let bs = baseline.stats();
        assert_eq!((bs.index_hits, bs.index_prunes), (0, 0));
        assert_eq!(bs.candidates_scanned, 6);
        let is = indexed.stats();
        assert_eq!((is.index_hits, is.index_prunes, is.candidates_scanned), (1, 5, 1));
        // Selection itself never touches a page.
        assert_eq!(is.accesses, 0);

        indexed.reset_stats();
        let is = indexed.stats();
        assert_eq!((is.index_hits, is.index_prunes, is.candidates_scanned), (0, 0, 0));
    }

    #[test]
    fn indexed_store_falls_back_when_first_arg_unbound() {
        let p = parse_program(FAMILY).unwrap();
        let indexed =
            PagedClauseStore::new(&p.db, small_config(4).with_index(IndexPolicy::FirstArg));
        let mut db = p.db.clone();
        let query = blog_logic::parse_query(&mut db, "f(X,Y)").unwrap();
        let got = indexed
            .candidate_clauses(&query.goals[0], &blog_logic::Bindings::new())
            .into_owned();
        assert_eq!(got.len(), 6, "unbound first arg sees every f/2 clause");
        let s = indexed.stats();
        assert_eq!(s.index_hits, 0, "fallback is not an index hit");
        assert_eq!(s.candidates_scanned, 6);
    }

    #[test]
    fn fault_plan_surfaces_typed_errors_and_meters_them() {
        use crate::fault::{FaultPlan, FaultSite};
        let p = parse_program(FAMILY).unwrap();
        let cfg = small_config(4).with_fault(Some(FaultPlan::transient(17, 1.0)));
        let store = PagedClauseStore::new(&p.db, cfg);
        let err = store.try_fetch_clause(ClauseId(0)).unwrap_err();
        assert!(err.is_transient());
        let s = store.stats();
        assert_eq!(s.transient_faults, 1);
        // A faulted touch is not an access: the policy never saw it.
        assert_eq!(s.accesses, 0);
        assert!(!store.is_resident(ClauseId(0)));

        // Permanent damage sticks across retries.
        let cfg = small_config(4).with_fault(Some(
            FaultPlan::new(3).with_site(FaultSite::permanent_track(1.0).between(0, 1)),
        ));
        let store = PagedClauseStore::new(&p.db, cfg);
        assert!(!store.try_fetch_clause(ClauseId(0)).unwrap_err().is_transient());
        assert!(!store.try_fetch_clause(ClauseId(0)).unwrap_err().is_transient());
        assert_eq!(store.stats().permanent_faults, 2);
    }

    #[test]
    fn latency_spike_charges_ticks_but_succeeds() {
        use crate::fault::{FaultPlan, FaultSite};
        let p = parse_program(FAMILY).unwrap();
        let cfg = small_config(4)
            .with_fault(Some(FaultPlan::new(1).with_site(FaultSite::latency_spike(1.0, 500))));
        let store = PagedClauseStore::new(&p.db, cfg);
        let out = store.try_touch_clause_for_pool(ClauseId(0), Some(0)).unwrap();
        assert!(out.fault_ticks >= 500, "spike ticks flow into the outcome");
        let s = store.stats();
        assert_eq!(s.latency_spikes, 1);
        assert_eq!(s.latency_spike_ticks, 500);
        assert_eq!(s.accesses, 1, "a spiked touch still counts as an access");
        assert_eq!(s.transient_faults + s.permanent_faults, 0);
        // Pool attribution includes the spike, and global fault_ticks
        // still balances against the per-pool sum.
        assert_eq!(store.pool_stats(0).fault_ticks, s.fault_ticks);
    }

    #[test]
    fn fault_free_config_never_errors_through_the_fallible_surface() {
        let p = parse_program(FAMILY).unwrap();
        let store = PagedClauseStore::new(&p.db, small_config(2));
        for i in 0..p.db.len() {
            assert!(store.try_fetch_clause(ClauseId(i as u32)).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_geometry_rejected() {
        let p = parse_program(FAMILY).unwrap();
        let _ = PagedClauseStore::new(
            &p.db,
            PagedStoreConfig {
                geometry: Geometry {
                    n_sps: 1,
                    n_cylinders: 1,
                    blocks_per_track: 2,
                },
                ..PagedStoreConfig::default()
            },
        );
    }
}
