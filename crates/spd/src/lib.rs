//! # blog-spd — the Semantic Paging Disk (SPD) simulator
//!
//! Section 6 of the B-LOG paper stores the clause/fact graph on "semantic
//! paging disks": moving-head disks whose per-track search processors
//! (SPs) can, against a track cached in RAM,
//!
//! 1. *search the data in a block associatively and mark the blocks*,
//! 2. *follow all pointers, or only pointers with specified names, from
//!    marked blocks to other blocks and mark them* — applied `N` times
//!    this pages in the subgraph within Hamming distance `N`, and
//! 3. *output, replace, insert and delete words in a marked block*.
//!
//! That hardware never existed, so this crate simulates it at the level
//! the paper argues about: operation counts and a tick-based cost model
//! (seeks, track loads into cache, associative operations, pointer
//! follows, word transfers). Multiple SPs run in **MIMD** mode (each on
//! its own track, cross-track pointers deferred) or **SIMD** mode (all
//! SPs on one cylinder, global block numbers resolved between SPs
//! immediately, as described in the paper).
//!
//! The [`bridge`] module lays a [`ClauseDb`](blog_logic::ClauseDb) out as
//! SPD blocks — one block per Horn clause, one *named weighted pointer*
//! per figure-4 candidate arc — and [`pager`] replays clause-access
//! traces against the disk, measuring hit rates and I/O time as the
//! semantic page distance and the weight-filter threshold vary (the
//! paper's "we can decide whether we wish to retrieve another block by
//! examining these weights, before we access the block").
//!
//! Beyond the trace-replay simulator, [`paged`] turns the layout into a
//! *live storage backend*: [`PagedClauseStore`] implements
//! [`ClauseSource`](blog_logic::ClauseSource) over a track cache whose
//! replacement algorithm is a [`policy`] seam — exact [`lru`],
//! scan-resistant 2Q, CLOCK, or FIFO, selected by [`PolicyKind`] — so
//! the `blog-core` best-first engine resolves clauses through the cache
//! and the paging statistics reflect the search's real access stream
//! rather than a canned trace.

pub mod bitidx;
pub mod bitmap;
pub mod block;
pub mod bridge;
pub mod cache;
pub mod fault;
pub mod lru;
pub mod mvcc;
pub mod paged;
pub mod pager;
pub mod policy;
pub mod spd;
pub mod timing;

pub use bitidx::{BitmapClauseIndex, IndexCounters, IndexPolicy, IndexedCandidates};
pub use bitmap::{intersect_union, ClauseBitmap};
pub use block::{Block, BlockId, NamedPointer};
pub use bridge::{build_spd_from_db, DbLayout};
pub use cache::TrackCache;
pub use fault::{FaultKind, FaultPlan, FaultScope, FaultSite};
pub use lru::{LruSet, Touch};
pub use mvcc::{CommitMode, MvccClauseStore, MvccError, MvccStats, Snapshot, WriteTxn};
pub use paged::{
    PagedClauseStore, PagedStoreConfig, PagedStoreStats, PoolTouchStats, PoolView, TouchOutcome,
    TrackId,
};
pub use pager::{Pager, PagerStats};
pub use policy::{Clock, Fifo, Lru, PolicyKind, PolicyStats, ReplacementPolicy, TwoQ};
pub use spd::{GcReport, PageRequest, PageResult, SpMode, SpdArray, SpdStats, TrackFull};
pub use timing::{CostModel, Geometry};
