//! The policy-driven track cache shared by both clause-store backends.
//!
//! [`PagedClauseStore`](crate::paged::PagedClauseStore) (read-only, PR 2)
//! and [`MvccClauseStore`](crate::mvcc::MvccClauseStore) (snapshot-
//! isolated writes) meter exactly the same thing: which *tracks* are
//! resident, what a fault costs under the SPD cost model, and how much
//! lock traffic the metering itself generates. [`TrackCache`] is that
//! shared substance, extracted from `paged.rs` — one mutex around a
//! replacement policy, per-SP head positions, global and per-pool touch
//! counters, and lock meters kept *outside* the mutex so a contended
//! acquisition can be counted before the thread blocks on it.
//!
//! Residency is tracked per [`TrackId`] only; the cache knows nothing
//! about clause data or page versions. That is what keeps MVCC cheap:
//! installing a new page version changes which *bytes* a fetch returns,
//! not which track it touches, so the replacement policy and every
//! golden trace fixture see the identical access stream either way.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};

use blog_logic::StoreError;

use crate::fault::{FaultPlan, FaultState};
use crate::paged::{PagedStoreStats, PoolTouchStats, TouchOutcome, TrackId};
use crate::policy::{PolicyKind, PolicyStats, ReplacementPolicy};
use crate::timing::CostModel;

/// Mutable cache state, behind one mutex so stores can expose `&self`
/// [`ClauseSource`](blog_logic::ClauseSource) methods across threads.
#[derive(Debug)]
struct CacheCore {
    policy: Box<dyn ReplacementPolicy<TrackId>>,
    /// Per-SP head position, for seek cost.
    heads: Vec<u32>,
    stats: PagedStoreStats,
    /// Per-pool touch counters, grown on first use of each pool id.
    pools: Vec<PoolTouchStats>,
}

/// A policy-driven track cache with SPD cost accounting (see the module
/// docs). One of these sits inside every paged clause-store backend.
#[derive(Debug)]
pub struct TrackCache {
    cost: CostModel,
    inner: Mutex<CacheCore>,
    /// Lock-traffic meters, outside the mutex so a *contended* attempt
    /// can be counted before the thread blocks on it.
    lock_acquisitions: AtomicU64,
    lock_contended: AtomicU64,
    /// Fault-injection state, outside the mutex so decisions (including
    /// injected panics) happen before it is taken and can never poison
    /// the cache core. `None` = fault-free (the default).
    faults: Option<FaultState>,
}

impl TrackCache {
    /// An empty cache: `capacity_tracks` resident tracks under `policy`,
    /// `n_sps` independent heads parked at cylinder 0.
    pub fn new(policy: PolicyKind, capacity_tracks: usize, n_sps: u32, cost: CostModel) -> Self {
        TrackCache {
            cost,
            inner: Mutex::new(CacheCore {
                policy: policy.build(capacity_tracks),
                heads: vec![0; n_sps as usize],
                stats: PagedStoreStats::default(),
                pools: Vec::new(),
            }),
            lock_acquisitions: AtomicU64::new(0),
            lock_contended: AtomicU64::new(0),
            faults: None,
        }
    }

    /// This cache with fault injection under `plan` (`None` = fault-free).
    pub fn with_faults(mut self, plan: Option<FaultPlan>) -> Self {
        self.faults = plan.map(FaultState::new);
        self
    }

    /// Whether a fault plan is configured.
    pub fn has_fault_plan(&self) -> bool {
        self.faults.is_some()
    }

    /// Take the cache mutex, metering acquisitions and contention.
    ///
    /// Recovers from poisoning: every critical section below keeps its
    /// counters and policy state self-consistent at each statement (no
    /// invariant spans a panic point), and injected [`FaultKind::Panic`]
    /// (crate::fault::FaultKind::Panic) fires before the mutex is taken
    /// — so a poisoned flag only means some *other* panic unwound a
    /// holder, and continuing with the data is sound.
    fn lock(&self) -> MutexGuard<'_, CacheCore> {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.lock_contended.fetch_add(1, Ordering::Relaxed);
                self.inner
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
            }
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
        }
    }

    /// Touch `track`, attributing the access to worker pool `pool` when
    /// given. One lock acquisition covers the residency decision, the
    /// fault cost (seek if the SP's head moves, plus the track load) and
    /// both counter sets; the pool counter table grows on first use of
    /// each pool id.
    ///
    /// Infallible form for fault-free caches; panics if a configured
    /// [`FaultPlan`] injects an error (fault-aware callers go through
    /// [`try_touch`](Self::try_touch)).
    pub fn touch(&self, track: TrackId, pool: Option<usize>) -> TouchOutcome {
        match self.try_touch(track, pool) {
            Ok(outcome) => outcome,
            Err(e) => panic!("touch on a faulting cache: {e}"),
        }
    }

    /// [`touch`](Self::touch), with injected faults surfaced as values.
    ///
    /// With no fault plan this never returns `Err`. With one, the plan
    /// decides *before* the cache mutex is taken: an injected error
    /// consumes a touch-sequence number but leaves the replacement
    /// policy, head positions and hit/miss counters untouched (faults
    /// are metered separately), so the cache's golden traces are
    /// unchanged by the attempt. An injected latency spike lets the
    /// touch proceed and adds its extra ticks to the outcome's
    /// `fault_ticks` (stall-slept like any miss by latency-simulating
    /// callers) and to the spike meters.
    pub fn try_touch(
        &self,
        track: TrackId,
        pool: Option<usize>,
    ) -> Result<TouchOutcome, StoreError> {
        let spike = match &self.faults {
            Some(f) => f.decide(track, pool)?,
            None => 0,
        };
        let mut state = self.lock();
        state.stats.accesses += 1;
        let mut outcome = match state.policy.access(track) {
            crate::lru::Touch::Hit => {
                state.stats.hits += 1;
                TouchOutcome {
                    hit: true,
                    fault_ticks: 0,
                    spike_ticks: 0,
                }
            }
            crate::lru::Touch::Miss { evicted } => {
                state.stats.misses += 1;
                state.stats.evictions += u64::from(evicted.is_some());
                // Seek the SP's head to the faulting cylinder, then load
                // the track. Evictions are free: clause data is never
                // mutated in place (the MVCC write path installs fresh
                // page versions instead), so every cached track is clean.
                let mut ticks = 0;
                let head = state.heads[track.sp as usize];
                if head != track.cylinder {
                    let distance = head.abs_diff(track.cylinder) as u64;
                    ticks += self.cost.seek_settle + distance * self.cost.seek_per_cylinder;
                    state.heads[track.sp as usize] = track.cylinder;
                }
                ticks += self.cost.track_load;
                state.stats.fault_ticks += ticks;
                TouchOutcome {
                    hit: false,
                    fault_ticks: ticks,
                    spike_ticks: 0,
                }
            }
        };
        if spike > 0 {
            // Spike ticks ride in `fault_ticks` (globally, per pool and
            // in the outcome, so stall sleeps include them) and are
            // additionally broken out in the spike meters.
            outcome.fault_ticks += spike;
            outcome.spike_ticks = spike;
            state.stats.fault_ticks += spike;
            state.stats.latency_spikes += 1;
            state.stats.latency_spike_ticks += spike;
        }
        if let Some(p) = pool {
            if state.pools.len() <= p {
                state.pools.resize(p + 1, PoolTouchStats::default());
            }
            let slot = &mut state.pools[p];
            slot.accesses += 1;
            slot.hits += u64::from(outcome.hit);
            slot.misses += u64::from(!outcome.hit);
            slot.fault_ticks += outcome.fault_ticks;
        }
        Ok(outcome)
    }

    /// The cost model faults are charged under.
    pub fn cost(&self) -> CostModel {
        self.cost
    }

    /// The policy's own counters (a second view over the same accesses
    /// [`stats`](Self::stats) meters, minus the cost-model fields).
    pub fn policy_stats(&self) -> PolicyStats {
        self.lock().policy.stats()
    }

    /// This pool's touch counters (zeros for a pool never seen).
    pub fn pool_stats(&self, pool: usize) -> PoolTouchStats {
        let state = self.lock();
        state.pools.get(pool).copied().unwrap_or_default()
    }

    /// Lock-traffic meters: `(acquisitions, contended acquisitions)`,
    /// read without taking the cache mutex at all, so the read never
    /// perturbs the contention it reports.
    pub fn lock_stats(&self) -> (u64, u64) {
        (
            self.lock_acquisitions.load(Ordering::Relaxed),
            self.lock_contended.load(Ordering::Relaxed),
        )
    }

    /// Counters so far (lock-traffic and fault meters folded in; the
    /// fold's own lock acquisition is included, matching the historical
    /// behavior).
    pub fn stats(&self) -> PagedStoreStats {
        let mut stats = self.lock().stats;
        (stats.lock_acquisitions, stats.lock_contended) = self.lock_stats();
        if let Some(f) = &self.faults {
            stats.transient_faults = f.transient_faults.load(Ordering::Relaxed);
            stats.permanent_faults = f.permanent_faults.load(Ordering::Relaxed);
        }
        stats
    }

    /// Reset counters — the cache's and the policy's, which stay two
    /// views over the same accesses, plus the per-pool, lock-traffic and
    /// fault meters; resident tracks and head positions persist (use
    /// [`clear`](Self::clear) to also drop the cache). The fault plan's
    /// *schedule position* and damaged-track set persist too: resetting
    /// statistics does not repair the medium.
    pub fn reset_stats(&self) {
        let mut state = self.lock();
        state.stats = PagedStoreStats::default();
        state.pools.clear();
        *state.policy.stats_mut() = PolicyStats::default();
        self.lock_acquisitions.store(0, Ordering::Relaxed);
        self.lock_contended.store(0, Ordering::Relaxed);
        if let Some(f) = &self.faults {
            f.transient_faults.store(0, Ordering::Relaxed);
            f.permanent_faults.store(0, Ordering::Relaxed);
        }
    }

    /// Drop every resident track, park the heads, and reset counters
    /// (fault schedule position and damage persist, as for
    /// [`reset_stats`](Self::reset_stats)).
    pub fn clear(&self) {
        let mut state = self.lock();
        state.policy.clear();
        state.heads.fill(0);
        state.stats = PagedStoreStats::default();
        state.pools.clear();
        self.lock_acquisitions.store(0, Ordering::Relaxed);
        self.lock_contended.store(0, Ordering::Relaxed);
        if let Some(f) = &self.faults {
            f.transient_faults.store(0, Ordering::Relaxed);
            f.permanent_faults.store(0, Ordering::Relaxed);
        }
    }

    /// Number of resident tracks.
    pub fn resident_tracks(&self) -> usize {
        self.lock().policy.len()
    }

    /// Whether `track` is resident (no recency effect).
    pub fn contains(&self, track: &TrackId) -> bool {
        self.lock().policy.contains(track)
    }
}
