//! A fixed-capacity LRU residency set with O(1) touch and eviction.
//!
//! This is the page-replacement policy behind
//! [`PagedClauseStore`](crate::paged::PagedClauseStore): it tracks *which*
//! pages are resident, not their contents (block data always lives in the
//! backing [`ClauseDb`](blog_logic::ClauseDb) — the "disk"). Entries are
//! kept in recency order by an intrusive doubly-linked list over a slot
//! vector, so `touch` is a hash lookup plus pointer swaps.
//!
//! LRU is a stack algorithm: for any fixed access trace, the hit set at
//! capacity `k` is a subset of the hit set at capacity `k+1`. The paging
//! tests rely on that monotonicity.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Slot<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// Outcome of one [`LruSet::touch`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Touch<K> {
    /// The key was resident; it is now most-recently used.
    Hit,
    /// The key was brought in; if the set was full, the least-recently
    /// used key was evicted to make room.
    Miss {
        /// The key evicted to make room, if the set was at capacity.
        evicted: Option<K>,
    },
}

impl<K> Touch<K> {
    /// Whether the touch was a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, Touch::Hit)
    }
}

/// Fixed-capacity LRU set over copyable keys.
#[derive(Clone, Debug)]
pub struct LruSet<K: Eq + Hash + Copy> {
    capacity: usize,
    map: HashMap<K, usize>,
    slots: Vec<Slot<K>>,
    /// Most-recently used slot.
    head: usize,
    /// Least-recently used slot.
    tail: usize,
    free: Vec<usize>,
}

impl<K: Eq + Hash + Copy> LruSet<K> {
    /// An empty set holding at most `capacity` keys.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruSet capacity must be nonzero");
        LruSet {
            capacity,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no keys are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `key` is resident (does not affect recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Touch `key`: a resident key becomes most-recently used; an absent
    /// key is inserted, evicting the least-recently used key when full.
    pub fn touch(&mut self, key: K) -> Touch<K> {
        if self.promote(&key) {
            return Touch::Hit;
        }
        let evicted = if self.map.len() == self.capacity {
            self.pop_lru()
        } else {
            None
        };
        self.insert_mru(key);
        Touch::Miss { evicted }
    }

    /// Move a resident `key` to most-recently used; `false` if absent.
    ///
    /// This is the hit half of [`touch`](Self::touch), split out so
    /// replacement policies (see [`crate::policy`]) can drive the list
    /// step by step instead of through `touch`'s all-in-one transition.
    pub fn promote(&mut self, key: &K) -> bool {
        match self.map.get(key) {
            Some(&slot) => {
                self.unlink(slot);
                self.push_front(slot);
                true
            }
            None => false,
        }
    }

    /// Insert an absent `key` at the most-recently-used position without
    /// evicting anything.
    ///
    /// # Panics
    /// Panics if `key` is already resident or the set is at capacity —
    /// callers split insertion from eviction (via
    /// [`pop_lru`](Self::pop_lru)) and must make room first.
    pub fn insert_mru(&mut self, key: K) {
        assert!(!self.map.contains_key(&key), "insert_mru: key resident");
        assert!(self.map.len() < self.capacity, "insert_mru: set full");
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Slot {
                    key,
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                self.slots.push(Slot {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    /// Remove and return the least-recently-used key, if any.
    pub fn pop_lru(&mut self) -> Option<K> {
        if self.tail == NIL {
            return None;
        }
        let lru = self.tail;
        let victim = self.slots[lru].key;
        self.unlink(lru);
        self.map.remove(&victim);
        self.free.push(lru);
        Some(victim)
    }

    /// Drop every resident key.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Resident keys from most- to least-recently used.
    pub fn iter_mru(&self) -> impl Iterator<Item = &K> {
        let mut cursor = self.head;
        std::iter::from_fn(move || {
            if cursor == NIL {
                return None;
            }
            let slot = &self.slots[cursor];
            cursor = slot.next;
            Some(&slot.key)
        })
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_hits_and_misses() {
        let mut lru = LruSet::new(2);
        assert_eq!(lru.touch(1), Touch::Miss { evicted: None });
        assert_eq!(lru.touch(2), Touch::Miss { evicted: None });
        assert_eq!(lru.touch(1), Touch::Hit);
        // 2 is now LRU; inserting 3 evicts it.
        assert_eq!(lru.touch(3), Touch::Miss { evicted: Some(2) });
        assert!(lru.contains(&1));
        assert!(!lru.contains(&2));
        assert!(lru.contains(&3));
    }

    #[test]
    fn recency_order_is_maintained() {
        let mut lru = LruSet::new(3);
        for k in [10, 20, 30] {
            lru.touch(k);
        }
        lru.touch(10); // order now 10, 30, 20
        let order: Vec<i32> = lru.iter_mru().copied().collect();
        assert_eq!(order, vec![10, 30, 20]);
        assert_eq!(lru.touch(40), Touch::Miss { evicted: Some(20) });
    }

    #[test]
    fn capacity_one_thrashes() {
        let mut lru = LruSet::new(1);
        assert_eq!(lru.touch('a'), Touch::Miss { evicted: None });
        assert_eq!(lru.touch('a'), Touch::Hit);
        assert_eq!(lru.touch('b'), Touch::Miss { evicted: Some('a') });
        assert_eq!(lru.touch('a'), Touch::Miss { evicted: Some('b') });
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut lru = LruSet::new(2);
        lru.touch(1);
        lru.touch(2);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.touch(1), Touch::Miss { evicted: None });
    }

    #[test]
    fn lru_is_a_stack_algorithm() {
        // For a fixed trace, every hit at capacity k is a hit at k+1.
        let trace: Vec<u32> = [1, 2, 3, 1, 4, 2, 5, 1, 2, 3, 4, 5, 1, 1, 2, 6, 3]
            .into_iter()
            .cycle()
            .take(200)
            .collect();
        let hits_at = |cap: usize| -> Vec<bool> {
            let mut lru = LruSet::new(cap);
            trace.iter().map(|&k| lru.touch(k).is_hit()).collect()
        };
        for cap in 1..8 {
            let small = hits_at(cap);
            let large = hits_at(cap + 1);
            for (i, (s, l)) in small.iter().zip(&large).enumerate() {
                assert!(!s || *l, "access {i}: hit at cap {cap} but miss at {}", cap + 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = LruSet::<u32>::new(0);
    }

    #[test]
    fn split_primitives_compose_to_touch() {
        // promote / pop_lru / insert_mru must reproduce touch's behavior
        // when sequenced the way the Lru policy sequences them.
        let mut whole = LruSet::new(2);
        let mut split = LruSet::new(2);
        for k in [1u32, 2, 1, 3, 2, 3, 1] {
            let expected = whole.touch(k);
            let got = if split.promote(&k) {
                Touch::Hit
            } else {
                let evicted = if split.len() == split.capacity() {
                    split.pop_lru()
                } else {
                    None
                };
                split.insert_mru(k);
                Touch::Miss { evicted }
            };
            assert_eq!(expected, got, "diverged at key {k}");
        }
        let a: Vec<u32> = whole.iter_mru().copied().collect();
        let b: Vec<u32> = split.iter_mru().copied().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn pop_lru_empties_in_reverse_recency() {
        let mut lru = LruSet::new(3);
        for k in [1, 2, 3] {
            lru.touch(k);
        }
        lru.promote(&1); // order: 1, 3, 2
        assert_eq!(lru.pop_lru(), Some(2));
        assert_eq!(lru.pop_lru(), Some(3));
        assert_eq!(lru.pop_lru(), Some(1));
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    #[should_panic(expected = "set full")]
    fn insert_mru_rejects_overflow() {
        let mut lru = LruSet::new(1);
        lru.insert_mru(1);
        lru.insert_mru(2);
    }
}
