//! Compressed hierarchical clause-id bitmaps with popcount rank
//! navigation — the set representation behind the first-argument clause
//! index ([`bitidx`](crate::bitidx)).
//!
//! A [`ClauseBitmap`] stores a set of clause ids in two levels, in the
//! style of hierarchical sparse arrays (dense tree + rank-indexed
//! levels):
//!
//! - **Leaf words**: only the *nonzero* 64-bit words of the flat bitmap
//!   are stored, densely packed in ascending chunk order.
//! - **Summary level**: one bit per leaf chunk (so one summary word
//!   covers 64 × 64 = 4096 ids) saying whether that chunk has a stored
//!   leaf word, plus a cumulative-popcount `ranks` array. Locating a
//!   chunk's leaf word is `ranks[s] + popcount(summary[s] & below(bit))`
//!   — rank navigation, no search.
//!
//! Membership, insertion, and removal are `O(1)` popcount arithmetic
//! plus (for structural changes) a dense `Vec` shift — acceptable
//! because mutation happens only on store build and per-commit
//! copy-on-write rebuilds, never on the query path.
//!
//! The query path's primitive is [`intersect_union`]: a **lazy**
//! iterator over `a ∩ (b ∪ c)` that ANDs summary words first and leaf
//! words second, yielding set bits in ascending order without
//! materializing any intermediate bitmap. Ascending clause-id order *is*
//! program order (ids are allocated densely in insertion order), which
//! is the candidate-order contract every engine relies on.

use blog_logic::ClauseId;

/// Ids per leaf word (one summary word therefore spans 64 × 64 ids).
const WORD_BITS: usize = 64;

/// A compressed set of clause ids. See the module docs for the layout.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct ClauseBitmap {
    /// Bit `c % 64` of `summary[c / 64]` is set iff leaf chunk `c` has a
    /// stored (nonzero) word. Trailing zero summary words are allowed
    /// (an insert far out grows the level; removals do not shrink it).
    summary: Vec<u64>,
    /// `ranks[s]` = number of stored leaf words before summary word `s`
    /// (cumulative popcount of `summary[..s]`).
    ranks: Vec<u32>,
    /// The nonzero leaf words, dense, in ascending chunk order.
    leaves: Vec<u64>,
    /// Cached set-bit count.
    len: u32,
}

impl ClauseBitmap {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from ascending (or arbitrary) ids.
    pub fn from_ids<I: IntoIterator<Item = ClauseId>>(ids: I) -> Self {
        let mut bm = Self::new();
        for id in ids {
            bm.insert(id);
        }
        bm
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The dense index of chunk `chunk`'s leaf word, if stored.
    fn leaf_index(&self, chunk: usize) -> Option<usize> {
        let (s, bit) = (chunk / WORD_BITS, chunk % WORD_BITS);
        let word = *self.summary.get(s)?;
        if word & (1u64 << bit) == 0 {
            return None;
        }
        let below = word & ((1u64 << bit) - 1);
        Some(self.ranks[s] as usize + below.count_ones() as usize)
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: ClauseId) -> bool {
        let i = id.0 as usize;
        match self.leaf_index(i / WORD_BITS) {
            Some(li) => self.leaves[li] & (1u64 << (i % WORD_BITS)) != 0,
            None => false,
        }
    }

    /// Insert `id`; returns whether it was newly inserted.
    pub fn insert(&mut self, id: ClauseId) -> bool {
        let i = id.0 as usize;
        let chunk = i / WORD_BITS;
        let mask = 1u64 << (i % WORD_BITS);
        if let Some(li) = self.leaf_index(chunk) {
            if self.leaves[li] & mask != 0 {
                return false;
            }
            self.leaves[li] |= mask;
            self.len += 1;
            return true;
        }
        // New chunk: grow the summary level if needed, splice the leaf
        // word in at its rank, and bump every later rank.
        let (s, bit) = (chunk / WORD_BITS, chunk % WORD_BITS);
        if s >= self.summary.len() {
            self.summary.resize(s + 1, 0);
            // Ranks of empty trailing words equal the total leaf count.
            self.ranks.resize(s + 1, self.leaves.len() as u32);
        }
        let below = self.summary[s] & ((1u64 << bit) - 1);
        let li = self.ranks[s] as usize + below.count_ones() as usize;
        self.leaves.insert(li, mask);
        self.summary[s] |= 1u64 << bit;
        for r in &mut self.ranks[s + 1..] {
            *r += 1;
        }
        self.len += 1;
        true
    }

    /// Remove `id`; returns whether it was present.
    pub fn remove(&mut self, id: ClauseId) -> bool {
        let i = id.0 as usize;
        let chunk = i / WORD_BITS;
        let mask = 1u64 << (i % WORD_BITS);
        let Some(li) = self.leaf_index(chunk) else {
            return false;
        };
        if self.leaves[li] & mask == 0 {
            return false;
        }
        self.leaves[li] &= !mask;
        self.len -= 1;
        if self.leaves[li] == 0 {
            // Chunk emptied: unsplice the leaf and fix the ranks.
            let (s, bit) = (chunk / WORD_BITS, chunk % WORD_BITS);
            self.leaves.remove(li);
            self.summary[s] &= !(1u64 << bit);
            for r in &mut self.ranks[s + 1..] {
                *r -= 1;
            }
        }
        true
    }

    /// The leaf word of chunk `chunk` (zero when not stored).
    fn word(&self, chunk: usize) -> u64 {
        self.leaf_index(chunk).map_or(0, |li| self.leaves[li])
    }

    /// Summary word `s` (zero past the end).
    fn summary_word(&self, s: usize) -> u64 {
        self.summary.get(s).copied().unwrap_or(0)
    }

    /// Iterate the set ids in ascending order.
    pub fn iter(&self) -> BitmapIter<'_> {
        BitmapIter {
            bm: self,
            s: 0,
            summary_rest: self.summary_word(0),
            next_leaf: 0,
            chunk: 0,
            word_rest: 0,
        }
    }
}

/// Ascending iterator over one bitmap (walks the dense leaf array once;
/// rank navigation is implicit in the walk order).
#[derive(Debug)]
pub struct BitmapIter<'a> {
    bm: &'a ClauseBitmap,
    /// Current summary word index.
    s: usize,
    /// Unconsumed bits of the current summary word.
    summary_rest: u64,
    /// Dense index of the next leaf word to consume.
    next_leaf: usize,
    /// Chunk of the word currently being drained.
    chunk: usize,
    /// Unconsumed bits of that word.
    word_rest: u64,
}

impl Iterator for BitmapIter<'_> {
    type Item = ClauseId;

    fn next(&mut self) -> Option<ClauseId> {
        loop {
            if self.word_rest != 0 {
                let bit = self.word_rest.trailing_zeros() as usize;
                self.word_rest &= self.word_rest - 1;
                return Some(ClauseId((self.chunk * WORD_BITS + bit) as u32));
            }
            while self.summary_rest == 0 {
                self.s += 1;
                if self.s >= self.bm.summary.len() {
                    return None;
                }
                self.summary_rest = self.bm.summary[self.s];
            }
            let bit = self.summary_rest.trailing_zeros() as usize;
            self.summary_rest &= self.summary_rest - 1;
            self.chunk = self.s * WORD_BITS + bit;
            self.word_rest = self.bm.leaves[self.next_leaf];
            self.next_leaf += 1;
        }
    }
}

/// Lazy `a ∩ (b ∪ c)` over three bitmaps (`c` optional), ascending.
///
/// Summary words are ANDed first, so whole 4096-id spans absent from
/// either side are skipped without touching a leaf; surviving chunks AND
/// (OR) leaf words and yield set bits. Nothing is materialized — not the
/// union, not the intersection — which is what makes candidate selection
/// free of per-goal allocation until the caller collects the result.
pub fn intersect_union<'a>(
    a: &'a ClauseBitmap,
    b: &'a ClauseBitmap,
    c: Option<&'a ClauseBitmap>,
) -> IntersectUnion<'a> {
    let n = a.summary.len().min(match c {
        Some(c) => b.summary.len().max(c.summary.len()),
        None => b.summary.len(),
    });
    IntersectUnion {
        a,
        b,
        c,
        n_summary: n,
        s: 0,
        summary_rest: 0,
        chunk: 0,
        word_rest: 0,
        primed: false,
    }
}

/// Iterator state for [`intersect_union`].
#[derive(Debug)]
pub struct IntersectUnion<'a> {
    a: &'a ClauseBitmap,
    b: &'a ClauseBitmap,
    c: Option<&'a ClauseBitmap>,
    /// Summary words worth visiting (min of the operands' coverage).
    n_summary: usize,
    s: usize,
    /// Unconsumed bits of the current ANDed summary word.
    summary_rest: u64,
    chunk: usize,
    word_rest: u64,
    primed: bool,
}

impl IntersectUnion<'_> {
    fn summary_at(&self, s: usize) -> u64 {
        let rhs = match self.c {
            Some(c) => self.b.summary_word(s) | c.summary_word(s),
            None => self.b.summary_word(s),
        };
        self.a.summary_word(s) & rhs
    }
}

impl Iterator for IntersectUnion<'_> {
    type Item = ClauseId;

    fn next(&mut self) -> Option<ClauseId> {
        loop {
            if self.word_rest != 0 {
                let bit = self.word_rest.trailing_zeros() as usize;
                self.word_rest &= self.word_rest - 1;
                return Some(ClauseId((self.chunk * WORD_BITS + bit) as u32));
            }
            while self.summary_rest == 0 {
                if self.primed {
                    self.s += 1;
                }
                self.primed = true;
                if self.s >= self.n_summary {
                    return None;
                }
                self.summary_rest = self.summary_at(self.s);
            }
            let bit = self.summary_rest.trailing_zeros() as usize;
            self.summary_rest &= self.summary_rest - 1;
            self.chunk = self.s * WORD_BITS + bit;
            let rhs = match self.c {
                Some(c) => self.b.word(self.chunk) | c.word(self.chunk),
                None => self.b.word(self.chunk),
            };
            self.word_rest = self.a.word(self.chunk) & rhs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn ids(v: &[u32]) -> Vec<ClauseId> {
        v.iter().map(|&i| ClauseId(i)).collect()
    }

    fn collect(bm: &ClauseBitmap) -> Vec<u32> {
        bm.iter().map(|c| c.0).collect()
    }

    #[test]
    fn empty_bitmap_has_nothing() {
        let bm = ClauseBitmap::new();
        assert!(bm.is_empty());
        assert_eq!(bm.len(), 0);
        assert!(!bm.contains(ClauseId(0)));
        assert!(!bm.contains(ClauseId(100_000)));
        assert_eq!(collect(&bm), Vec::<u32>::new());
    }

    #[test]
    fn single_bit_trees() {
        // A lone bit at each structurally interesting position: word 0,
        // the last bit of a word, the first bit past a word edge, past a
        // summary-word edge, and far out (forcing empty summary words in
        // between — "empty levels").
        for pos in [0u32, 1, 63, 64, 65, 4095, 4096, 4097, 200_000] {
            let mut bm = ClauseBitmap::new();
            assert!(bm.insert(ClauseId(pos)));
            assert!(!bm.insert(ClauseId(pos)), "double insert at {pos}");
            assert_eq!(bm.len(), 1, "at {pos}");
            assert!(bm.contains(ClauseId(pos)));
            assert!(!bm.contains(ClauseId(pos ^ 1)), "at {pos}");
            assert_eq!(collect(&bm), vec![pos]);
            assert!(bm.remove(ClauseId(pos)));
            assert!(!bm.remove(ClauseId(pos)), "double remove at {pos}");
            assert!(bm.is_empty());
            assert_eq!(collect(&bm), Vec::<u32>::new());
        }
    }

    #[test]
    fn word_edge_63_64_65_navigation() {
        // 63 and 64 land in different leaf words of the same summary
        // word; ranks must route each to its own word.
        let mut bm = ClauseBitmap::from_ids(ids(&[63, 64, 65]));
        assert_eq!(bm.len(), 3);
        assert!(bm.contains(ClauseId(63)));
        assert!(bm.contains(ClauseId(64)));
        assert!(bm.contains(ClauseId(65)));
        assert!(!bm.contains(ClauseId(62)));
        assert!(!bm.contains(ClauseId(66)));
        assert_eq!(collect(&bm), vec![63, 64, 65]);
        // Remove the whole second word; 63 must survive untouched.
        assert!(bm.remove(ClauseId(64)));
        assert!(bm.remove(ClauseId(65)));
        assert_eq!(collect(&bm), vec![63]);
    }

    #[test]
    fn summary_edge_4095_4096_4097() {
        // 4095 is the last id of summary word 0; 4096 opens summary
        // word 1. Rank arithmetic must not leak between summary words.
        let bm = ClauseBitmap::from_ids(ids(&[4095, 4096, 4097]));
        assert_eq!(collect(&bm), vec![4095, 4096, 4097]);
        assert!(!bm.contains(ClauseId(4094)));
        assert!(!bm.contains(ClauseId(4098)));
    }

    #[test]
    fn out_of_order_inserts_iterate_ascending() {
        let bm = ClauseBitmap::from_ids(ids(&[500, 3, 64, 4097, 0, 63]));
        assert_eq!(collect(&bm), vec![0, 3, 63, 64, 500, 4097]);
    }

    #[test]
    fn empty_middle_summary_words_are_skipped() {
        // Ids only in summary words 0 and 3: words 1 and 2 stay zero and
        // both iteration and membership must skip them.
        let bm = ClauseBitmap::from_ids(ids(&[10, 3 * 4096 + 7]));
        assert_eq!(collect(&bm), vec![10, 3 * 4096 + 7]);
        assert!(!bm.contains(ClauseId(4096 + 10)));
        assert!(!bm.contains(ClauseId(2 * 4096 + 10)));
    }

    #[test]
    fn intersect_union_matches_btreeset_model() {
        let a_ids = [0u32, 1, 63, 64, 65, 127, 128, 4095, 4096, 9000];
        let b_ids = [1u32, 64, 127, 4096, 8999];
        let c_ids = [0u32, 65, 9000, 20_000];
        let a = ClauseBitmap::from_ids(ids(&a_ids));
        let b = ClauseBitmap::from_ids(ids(&b_ids));
        let c = ClauseBitmap::from_ids(ids(&c_ids));

        let sa: BTreeSet<u32> = a_ids.into_iter().collect();
        let sb: BTreeSet<u32> = b_ids.into_iter().collect();
        let sc: BTreeSet<u32> = c_ids.into_iter().collect();

        // Two-way: a ∩ b.
        let want2: Vec<u32> = sa.intersection(&sb).copied().collect();
        let got2: Vec<u32> = intersect_union(&a, &b, None).map(|x| x.0).collect();
        assert_eq!(got2, want2);

        // Three-way: a ∩ (b ∪ c).
        let bc: BTreeSet<u32> = sb.union(&sc).copied().collect();
        let want3: Vec<u32> = sa.intersection(&bc).copied().collect();
        let got3: Vec<u32> = intersect_union(&a, &b, Some(&c)).map(|x| x.0).collect();
        assert_eq!(got3, want3);
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let a = ClauseBitmap::from_ids(ids(&[1, 2, 3, 4096]));
        let empty = ClauseBitmap::new();
        assert_eq!(intersect_union(&a, &empty, None).count(), 0);
        assert_eq!(intersect_union(&empty, &a, None).count(), 0);
        // Empty union side with a populated c still works.
        let got: Vec<u32> = intersect_union(&a, &empty, Some(&a)).map(|x| x.0).collect();
        assert_eq!(got, vec![1, 2, 3, 4096]);
    }

    #[test]
    fn summary_bit_without_leaf_overlap_yields_nothing() {
        // 0 and 63 share a leaf chunk but not a bit: the summary AND
        // passes, the leaf AND must still reject.
        let a = ClauseBitmap::from_ids(ids(&[0]));
        let b = ClauseBitmap::from_ids(ids(&[63]));
        assert_eq!(intersect_union(&a, &b, None).count(), 0);
    }

    #[test]
    fn removal_keeps_ranks_consistent() {
        // Build three chunks, drop the middle one, and verify navigation
        // into the third still lands on the right word.
        let mut bm = ClauseBitmap::from_ids(ids(&[5, 70, 135]));
        assert!(bm.remove(ClauseId(70)));
        assert_eq!(collect(&bm), vec![5, 135]);
        assert!(bm.contains(ClauseId(135)));
        assert!(!bm.contains(ClauseId(70)));
        assert!(bm.insert(ClauseId(70)));
        assert_eq!(collect(&bm), vec![5, 70, 135]);
    }
}
