//! SPD blocks: variable-length records with named, weighted pointers.
//!
//! "The blocks of the linked list are stored in variable length records …
//! The contents of a block contain some data (possibly ASCII characters)
//! and named and weighted pointers (name, pointer to another block,
//! weight)" (§6, figure 6).

use serde::Serialize;

/// Identity of a block across the whole SPD array.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into the array's block vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A (name, pointer, weight) triple stored inside a block.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub struct NamedPointer {
    /// Pointer name (for B-LOG databases: the body-goal index).
    pub name: u32,
    /// Target block.
    pub target: BlockId,
    /// The weight stored *with the pointer* — readable without fetching
    /// the target block, which is the point of the layout (§5).
    pub weight: u32,
}

/// A variable-length record.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Payload size in words (data content; affects transfer cost only).
    pub payload_words: u32,
    /// The named weighted pointers.
    pub pointers: Vec<NamedPointer>,
}

impl Block {
    /// A block with payload only.
    pub fn new(payload_words: u32) -> Block {
        Block {
            payload_words,
            pointers: Vec::new(),
        }
    }

    /// Add a pointer; returns its index within the block.
    pub fn push_pointer(&mut self, name: u32, target: BlockId, weight: u32) -> usize {
        self.pointers.push(NamedPointer {
            name,
            target,
            weight,
        });
        self.pointers.len() - 1
    }

    /// Total size in words: payload plus 3 words per pointer triple.
    pub fn size_words(&self) -> u32 {
        self.payload_words + 3 * self.pointers.len() as u32
    }

    /// Pointers with the given name (or all, if `name` is `None`).
    pub fn pointers_named(&self, name: Option<u32>) -> impl Iterator<Item = &NamedPointer> {
        self.pointers
            .iter()
            .filter(move |p| name.is_none_or(|n| p.name == n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_counts_pointer_triples() {
        let mut b = Block::new(10);
        b.push_pointer(0, BlockId(1), 5);
        b.push_pointer(1, BlockId(2), 7);
        assert_eq!(b.size_words(), 10 + 6);
    }

    #[test]
    fn pointers_named_filters() {
        let mut b = Block::new(0);
        b.push_pointer(0, BlockId(1), 0);
        b.push_pointer(1, BlockId(2), 0);
        b.push_pointer(1, BlockId(3), 0);
        assert_eq!(b.pointers_named(Some(1)).count(), 2);
        assert_eq!(b.pointers_named(None).count(), 3);
    }

    #[test]
    fn push_pointer_returns_index() {
        let mut b = Block::new(0);
        assert_eq!(b.push_pointer(0, BlockId(1), 0), 0);
        assert_eq!(b.push_pointer(0, BlockId(2), 0), 1);
    }
}
