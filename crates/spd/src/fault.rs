//! Deterministic storage fault injection for the paged backends.
//!
//! The paper's knowledge base lives on a physical disk surface, and real
//! surfaces fail: reads drop, tracks go bad, seeks stall. A [`FaultPlan`]
//! makes those failures an *input* to the system — a seeded schedule of
//! per-site fault rates evaluated on every track touch — so the serving
//! layer's retry/breaker machinery can be exercised and measured
//! reproducibly (the T13 chaos experiment) instead of waiting for real
//! hardware to misbehave.
//!
//! Determinism contract: a fault decision is a pure function of the plan
//! (seed + sites) and the *touch sequence number*, a single atomic
//! counter the cache advances on every touch regardless of outcome. Two
//! runs that issue the same touch sequence see the same faults; a retry
//! consumes a fresh sequence number, which is exactly what makes
//! transient faults survivable.
//!
//! Fault taxonomy (see [`FaultKind`]):
//!
//! - **Transient read** — this touch fails, the next may succeed.
//!   Surfaces as [`StoreError::transient`]; the serving layer retries.
//! - **Permanent track** — the touched track is *damaged*: recorded in a
//!   damage set, every later touch of that track fails permanently.
//!   Surfaces as [`StoreError::permanent`]; retrying is useless and the
//!   serving layer fails the request instead.
//! - **Latency spike** — the touch succeeds but is charged extra fault
//!   ticks (a long seek, a marginal head settle), which flow into the
//!   same stall-sleep plumbing as ordinary cache-miss ticks.
//! - **Panic** — the touch panics, modeling a crashed worker. The
//!   decision fires *before* the cache mutex is taken, so an injected
//!   panic can never poison the shared cache state it never touched.
//!
//! Faulted touches leave the replacement policy, head positions and
//! hit/miss counters untouched — the golden trace fixtures see the
//! identical access stream whether or not a plan is configured — and are
//! metered separately in
//! [`PagedStoreStats`](crate::paged::PagedStoreStats).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use blog_logic::StoreError;
use serde::Serialize;

use crate::paged::TrackId;

/// What an injected fault does to the touch it fires on.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum FaultKind {
    /// The read fails this time; a retry draws a fresh decision.
    TransientRead,
    /// The touched track is damaged for the rest of the run: this touch
    /// and every later touch of the same track fail permanently.
    PermanentTrack,
    /// The touch succeeds but is charged `extra_ticks` additional fault
    /// ticks (stall-slept like any miss by latency-simulating views).
    LatencySpike {
        /// Extra simulated ticks charged to the touch.
        extra_ticks: u64,
    },
    /// The touch panics, modeling a worker crash mid-request. Fires
    /// before any lock is taken, so shared state is never poisoned.
    Panic,
}

/// Which touches a fault site applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum FaultScope {
    /// Every touch, whoever issues it.
    Any,
    /// Only touches attributed to this worker pool — models one pool's
    /// path to the disk going sick (drives the circuit breaker).
    Pool(usize),
    /// Only touches of tracks on this search processor (surface).
    Sp(u32),
}

impl FaultScope {
    fn matches(&self, track: TrackId, pool: Option<usize>) -> bool {
        match *self {
            FaultScope::Any => true,
            FaultScope::Pool(p) => pool == Some(p),
            FaultScope::Sp(sp) => track.sp == sp,
        }
    }
}

/// One fault source: a kind, a scope, a firing rate, and an activity
/// window in touch sequence numbers.
#[derive(Clone, Debug, Serialize)]
pub struct FaultSite {
    /// What happens when the site fires.
    pub kind: FaultKind,
    /// Which touches the site considers.
    pub scope: FaultScope,
    /// Probability in `[0, 1]` that the site fires on a considered
    /// touch (`1.0` fires on every one — a hard outage window).
    pub rate: f64,
    /// First touch sequence number the site is active at.
    pub from_access: u64,
    /// First touch sequence number the site is *no longer* active at
    /// (`u64::MAX` = active forever).
    pub until_access: u64,
}

impl FaultSite {
    fn new(kind: FaultKind, rate: f64) -> Self {
        FaultSite {
            kind,
            scope: FaultScope::Any,
            rate,
            from_access: 0,
            until_access: u64::MAX,
        }
    }

    /// A transient read fault firing at `rate`.
    pub fn transient_read(rate: f64) -> Self {
        FaultSite::new(FaultKind::TransientRead, rate)
    }

    /// A permanent track fault firing at `rate`.
    pub fn permanent_track(rate: f64) -> Self {
        FaultSite::new(FaultKind::PermanentTrack, rate)
    }

    /// A latency spike of `extra_ticks` firing at `rate`.
    pub fn latency_spike(rate: f64, extra_ticks: u64) -> Self {
        FaultSite::new(FaultKind::LatencySpike { extra_ticks }, rate)
    }

    /// An injected panic firing at `rate`.
    pub fn panic(rate: f64) -> Self {
        FaultSite::new(FaultKind::Panic, rate)
    }

    /// Restrict this site to touches attributed to worker pool `p`.
    pub fn for_pool(mut self, p: usize) -> Self {
        self.scope = FaultScope::Pool(p);
        self
    }

    /// Restrict this site to tracks on search processor `sp`.
    pub fn for_sp(mut self, sp: u32) -> Self {
        self.scope = FaultScope::Sp(sp);
        self
    }

    /// Restrict this site to the touch-sequence window `[from, until)`.
    pub fn between(mut self, from: u64, until: u64) -> Self {
        self.from_access = from;
        self.until_access = until;
        self
    }
}

/// A deterministic fault schedule: a seed plus any number of sites.
///
/// Configured under
/// [`PagedStoreConfig::fault`](crate::paged::PagedStoreConfig) (and
/// overridable per server via `ServeConfig`); evaluated by the shared
/// [`TrackCache`](crate::cache::TrackCache) on every touch.
#[derive(Clone, Debug, Default, Serialize)]
pub struct FaultPlan {
    /// Seed mixed into every decision; two plans differing only in seed
    /// fault *different* touches at the *same* rates.
    pub seed: u64,
    /// Fault sources, evaluated in order; the first that fires wins.
    pub sites: Vec<FaultSite>,
}

impl FaultPlan {
    /// An empty plan (no sites — injects nothing) with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: Vec::new(),
        }
    }

    /// This plan with `site` appended.
    pub fn with_site(mut self, site: FaultSite) -> Self {
        self.sites.push(site);
        self
    }

    /// Convenience: a plan with a single always-on transient-read site.
    pub fn transient(seed: u64, rate: f64) -> Self {
        FaultPlan::new(seed).with_site(FaultSite::transient_read(rate))
    }
}

/// `splitmix64` — the same finalizer the serving layer routes with.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` determined by `(seed, site, seq)`.
fn draw(seed: u64, site: usize, seq: u64) -> f64 {
    let h = splitmix(seed ^ splitmix(site as u64 ^ splitmix(seq)));
    // 53 mantissa bits, exactly representable.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Runtime fault state owned by a [`TrackCache`](crate::cache::TrackCache):
/// the immutable plan plus the touch-sequence counter, the damage set,
/// and fault meters (all outside the cache mutex — decisions happen
/// before it is taken).
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Touch sequence counter; advanced on *every* touch, faulted or
    /// not, so the schedule is positional and retries draw fresh.
    seq: AtomicU64,
    /// Tracks a [`FaultKind::PermanentTrack`] site has damaged.
    damaged: Mutex<BTreeSet<TrackId>>,
    pub(crate) transient_faults: AtomicU64,
    pub(crate) permanent_faults: AtomicU64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            seq: AtomicU64::new(0),
            damaged: Mutex::new(BTreeSet::new()),
            transient_faults: AtomicU64::new(0),
            permanent_faults: AtomicU64::new(0),
        }
    }

    /// Tracks damaged so far (diagnostics / tests).
    #[cfg(test)]
    pub(crate) fn damaged_tracks(&self) -> usize {
        self.damaged_lock().len()
    }

    fn damaged_lock(&self) -> std::sync::MutexGuard<'_, BTreeSet<TrackId>> {
        // The set is only inserted into / probed; a panic between those
        // operations cannot leave it inconsistent, so poison is benign.
        self.damaged
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Decide the fate of one touch of `track` by `pool`.
    ///
    /// Returns the extra latency-spike ticks to charge (usually 0) or
    /// the injected [`StoreError`]; panics for [`FaultKind::Panic`].
    /// Called *before* the cache mutex is taken.
    pub(crate) fn decide(&self, track: TrackId, pool: Option<usize>) -> Result<u64, StoreError> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if self.damaged_lock().contains(&track) {
            self.permanent_faults.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::permanent(format!(
                "track sp{}/cyl{} damaged",
                track.sp, track.cylinder
            )));
        }
        let mut spike = 0u64;
        for (i, site) in self.plan.sites.iter().enumerate() {
            if seq < site.from_access || seq >= site.until_access {
                continue;
            }
            if !site.scope.matches(track, pool) {
                continue;
            }
            if draw(self.plan.seed, i, seq) >= site.rate {
                continue;
            }
            match site.kind {
                FaultKind::TransientRead => {
                    self.transient_faults.fetch_add(1, Ordering::Relaxed);
                    return Err(StoreError::transient(format!(
                        "injected read fault at sp{}/cyl{} (touch {seq})",
                        track.sp, track.cylinder
                    )));
                }
                FaultKind::PermanentTrack => {
                    self.damaged_lock().insert(track);
                    self.permanent_faults.fetch_add(1, Ordering::Relaxed);
                    return Err(StoreError::permanent(format!(
                        "track sp{}/cyl{} damaged (touch {seq})",
                        track.sp, track.cylinder
                    )));
                }
                FaultKind::LatencySpike { extra_ticks } => {
                    // Spikes stack if several sites fire; the touch
                    // still proceeds, so keep evaluating later sites.
                    spike += extra_ticks;
                }
                FaultKind::Panic => {
                    panic!(
                        "injected storage panic at sp{}/cyl{} (touch {seq})",
                        track.sp, track.cylinder
                    );
                }
            }
        }
        Ok(spike)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TrackId = TrackId { sp: 0, cylinder: 0 };

    #[test]
    fn empty_plan_injects_nothing() {
        let st = FaultState::new(FaultPlan::new(7));
        for _ in 0..1000 {
            assert_eq!(st.decide(T, None), Ok(0));
        }
        assert_eq!(st.transient_faults.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn decisions_are_deterministic_in_sequence() {
        let plan = FaultPlan::transient(42, 0.3);
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan);
        for _ in 0..500 {
            assert_eq!(a.decide(T, Some(1)), b.decide(T, Some(1)));
        }
        assert!(a.transient_faults.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn rate_is_respected_roughly() {
        let st = FaultState::new(FaultPlan::transient(9, 0.25));
        let n = 10_000;
        let mut faults = 0;
        for _ in 0..n {
            faults += u32::from(st.decide(T, None).is_err());
        }
        let rate = faults as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn rate_one_fires_always_and_rate_zero_never() {
        let hot = FaultState::new(FaultPlan::transient(1, 1.0));
        let cold = FaultState::new(FaultPlan::transient(1, 0.0));
        for _ in 0..100 {
            assert!(hot.decide(T, None).is_err());
            assert_eq!(cold.decide(T, None), Ok(0));
        }
    }

    #[test]
    fn window_bounds_the_site() {
        let plan =
            FaultPlan::new(3).with_site(FaultSite::transient_read(1.0).between(10, 20));
        let st = FaultState::new(plan);
        for seq in 0..30u64 {
            let r = st.decide(T, None);
            if (10..20).contains(&seq) {
                assert!(r.is_err(), "touch {seq} inside the window");
            } else {
                assert_eq!(r, Ok(0), "touch {seq} outside the window");
            }
        }
    }

    #[test]
    fn pool_scope_spares_other_pools() {
        let plan = FaultPlan::new(5).with_site(FaultSite::transient_read(1.0).for_pool(2));
        let st = FaultState::new(plan);
        assert_eq!(st.decide(T, Some(0)), Ok(0));
        assert_eq!(st.decide(T, None), Ok(0));
        assert!(st.decide(T, Some(2)).is_err());
    }

    #[test]
    fn sp_scope_targets_a_surface() {
        let plan = FaultPlan::new(5).with_site(FaultSite::permanent_track(1.0).for_sp(1));
        let st = FaultState::new(plan);
        assert_eq!(st.decide(TrackId { sp: 0, cylinder: 3 }, None), Ok(0));
        assert!(st.decide(TrackId { sp: 1, cylinder: 3 }, None).is_err());
    }

    #[test]
    fn permanent_damage_sticks_to_the_track() {
        let plan =
            FaultPlan::new(11).with_site(FaultSite::permanent_track(1.0).between(0, 1));
        let st = FaultState::new(plan);
        let bad = TrackId { sp: 0, cylinder: 4 };
        let good = TrackId { sp: 0, cylinder: 5 };
        let first = st.decide(bad, None);
        assert!(matches!(&first, Err(e) if !e.is_transient()));
        // The firing window is over, but the damage persists...
        let later = st.decide(bad, None);
        assert!(matches!(&later, Err(e) if !e.is_transient()));
        // ...and is confined to the damaged track.
        assert_eq!(st.decide(good, None), Ok(0));
        assert_eq!(st.damaged_tracks(), 1);
    }

    #[test]
    fn latency_spikes_stack_and_do_not_fail() {
        let plan = FaultPlan::new(2)
            .with_site(FaultSite::latency_spike(1.0, 100))
            .with_site(FaultSite::latency_spike(1.0, 50));
        let st = FaultState::new(plan);
        assert_eq!(st.decide(T, None), Ok(150));
    }

    #[test]
    #[should_panic(expected = "injected storage panic")]
    fn panic_kind_panics() {
        let st = FaultState::new(FaultPlan::new(1).with_site(FaultSite::panic(1.0)));
        let _ = st.decide(T, None);
    }

    #[test]
    fn transient_errors_classify_as_retryable() {
        let st = FaultState::new(FaultPlan::transient(1, 1.0));
        let e = st.decide(T, None).unwrap_err();
        assert!(e.is_transient());
    }
}
