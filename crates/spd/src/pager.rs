//! Replaying clause-access traces against the SPD.
//!
//! "Rather than organizing data in fixed size pages, data is semantically
//! organized in terms of a graph, and a page is a subgraph defined by the
//! state of the process at run time" (§6). The [`Pager`] keeps the
//! processor's local memory — the set of resident blocks — and, on a miss,
//! asks the SPD for the semantic page around the missed clause. The page
//! *distance* controls how much of the neighborhood is prefetched; the
//! *weight filter* skips neighborhoods the current weights make
//! unpromising.

use std::collections::HashSet;

use blog_logic::ClauseId;
use serde::Serialize;

use crate::block::BlockId;
use crate::bridge::DbLayout;
use crate::policy::{PolicyKind, ReplacementPolicy};
use crate::spd::{PageRequest, SpdArray};

/// Paging statistics for one replayed trace.
#[derive(Clone, Copy, Default, Debug, Serialize)]
pub struct PagerStats {
    /// Clause accesses replayed.
    pub accesses: u64,
    /// Accesses served from local memory.
    pub hits: u64,
    /// Accesses that required a semantic page.
    pub faults: u64,
    /// Blocks brought in by paging.
    pub blocks_paged: u64,
    /// SPD ticks spent on faults.
    pub fault_ticks: u64,
    /// Residency-state acquisitions (one per touch), mirroring the
    /// paged clause store's lock meter so sweep tables can report both
    /// backends through one schema.
    pub lock_acquisitions: u64,
    /// Contended acquisitions. The replay pager is `&mut self` —
    /// exclusive by construction — so this is structurally zero; a
    /// nonzero value can only come from the shared, mutex-guarded
    /// [`PagedClauseStore`](crate::paged::PagedClauseStore) path.
    pub lock_contended: u64,
}

impl PagerStats {
    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.hits as f64 / self.accesses as f64
    }
}

/// Local-memory manager over an SPD-resident clause database.
///
/// Local memory is either *unbounded* (the default: every paged-in block
/// stays resident) or governed by a [`ReplacementPolicy`] installed with
/// [`bound`](Self::bound) — FIFO to reproduce the pager's historical
/// behavior, or any [`PolicyKind`] the paged clause store supports.
pub struct Pager<'a> {
    spd: &'a mut SpdArray,
    layout: &'a DbLayout,
    /// Residency when unbounded (`policy.is_none()`).
    resident: HashSet<BlockId>,
    /// Semantic page distance requested on a miss.
    pub distance: u32,
    /// Optional weight ceiling for prefetch pointer-following.
    pub weight_max: Option<u32>,
    /// Replacement policy bounding local memory (`None` = unbounded).
    policy: Option<Box<dyn ReplacementPolicy<BlockId>>>,
    stats: PagerStats,
}

impl<'a> Pager<'a> {
    /// A pager with unbounded local memory.
    pub fn new(spd: &'a mut SpdArray, layout: &'a DbLayout, distance: u32) -> Pager<'a> {
        Pager {
            spd,
            layout,
            resident: HashSet::new(),
            distance,
            weight_max: None,
            policy: None,
            stats: PagerStats::default(),
        }
    }

    /// Bound local memory to `capacity` blocks evicted by `policy`.
    /// Blocks already resident — whether unbounded or under a previous
    /// bound — carry over (in arbitrary admission order) up to the new
    /// capacity; the rest are dropped.
    pub fn bound(&mut self, policy: PolicyKind, capacity: usize) {
        let carried: Vec<BlockId> = match &self.policy {
            Some(old) => old.resident_keys(),
            None => self.resident.iter().copied().collect(),
        };
        let mut p = policy.build(capacity);
        for b in carried.into_iter().take(capacity) {
            p.admit(b);
        }
        self.resident.clear();
        self.policy = Some(p);
    }

    /// Statistics so far.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Blocks currently resident.
    pub fn resident_len(&self) -> usize {
        match &self.policy {
            Some(p) => p.len(),
            None => self.resident.len(),
        }
    }

    /// Whether a clause is resident.
    pub fn is_resident(&self, cid: ClauseId) -> bool {
        let block = self.layout.block_of(cid);
        match &self.policy {
            Some(p) => p.contains(&block),
            None => self.resident.contains(&block),
        }
    }

    /// Admit a paged-in block, evicting under the policy if bounded.
    fn admit(&mut self, block: BlockId) {
        match &mut self.policy {
            Some(p) => {
                if !p.contains(&block) {
                    p.evict_candidate();
                    p.admit(block);
                }
            }
            None => {
                self.resident.insert(block);
            }
        }
    }

    /// Touch one clause: count a hit, or fault its semantic page in.
    pub fn touch(&mut self, cid: ClauseId) -> bool {
        self.stats.accesses += 1;
        self.stats.lock_acquisitions += 1;
        let block = self.layout.block_of(cid);
        let hit = match &mut self.policy {
            Some(p) => p.touch(block),
            None => self.resident.contains(&block),
        };
        if hit {
            self.stats.hits += 1;
            return true;
        }
        self.stats.faults += 1;
        let page = self.spd.semantic_page(&PageRequest {
            roots: vec![block],
            distance: self.distance,
            name: None,
            weight_max: self.weight_max,
        });
        self.stats.fault_ticks += page.ticks;
        self.stats.blocks_paged += page.blocks.len() as u64;
        // The demanded block is admitted first: policies that route
        // admissions on the preceding touch-miss (2Q's ghost promotion)
        // must see it before any prefetched neighbor.
        self.admit(block);
        for b in page.blocks {
            if b != block {
                self.admit(b);
            }
        }
        false
    }

    /// Replay a whole clause-access trace; returns the stats.
    pub fn replay(&mut self, trace: &[ClauseId]) -> PagerStats {
        for &cid in trace {
            self.touch(cid);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::build_spd_from_db;
    use crate::spd::SpMode;
    use crate::timing::{CostModel, Geometry};
    use blog_core::weight::{WeightParams, WeightStore};
    use blog_logic::parse_program;

    const FAMILY: &str = "
        gf(X,Z) :- f(X,Y), f(Y,Z).
        gf(X,Z) :- f(X,Y), m(Y,Z).
        f(curt,elain). f(sam,larry). f(dan,pat). f(larry,den).
        f(pat,john). f(larry,doug).
        m(elain,john). m(marian,elain). m(peg,den). m(peg,doug).
    ";

    fn setup() -> (SpdArray, DbLayout) {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        build_spd_from_db(
            &p.db,
            &weights,
            Geometry {
                n_sps: 2,
                n_cylinders: 8,
                blocks_per_track: 2,
            },
            CostModel::default(),
            SpMode::Simd,
        )
    }

    #[test]
    fn first_touch_faults_second_hits() {
        let (mut spd, layout) = setup();
        let mut pager = Pager::new(&mut spd, &layout, 0);
        assert!(!pager.touch(ClauseId(3)));
        assert!(pager.touch(ClauseId(3)));
        let s = pager.stats();
        assert_eq!(s.faults, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn larger_distance_prefetches_neighbors() {
        let (mut spd, layout) = setup();
        // Touch rule 0 with distance 1: its 6 f-fact candidates ride in,
        // so touching any f-fact afterwards hits.
        let mut pager = Pager::new(&mut spd, &layout, 1);
        pager.touch(ClauseId(0));
        assert!(pager.is_resident(ClauseId(3)), "f(sam,larry) prefetched");
        assert!(pager.touch(ClauseId(3)));
        assert_eq!(pager.stats().faults, 1);
    }

    #[test]
    fn distance_zero_pages_single_blocks() {
        let (mut spd, layout) = setup();
        let mut pager = Pager::new(&mut spd, &layout, 0);
        pager.touch(ClauseId(0));
        assert_eq!(pager.resident_len(), 1);
    }

    #[test]
    fn capacity_evicts_fifo() {
        let (mut spd, layout) = setup();
        let mut pager = Pager::new(&mut spd, &layout, 0);
        pager.bound(PolicyKind::Fifo, 2);
        pager.touch(ClauseId(0));
        pager.touch(ClauseId(1));
        pager.touch(ClauseId(2)); // evicts clause 0's block
        assert!(!pager.is_resident(ClauseId(0)));
        assert!(!pager.touch(ClauseId(0)), "evicted block must re-fault");
    }

    #[test]
    fn bounded_lru_keeps_the_rereferenced_block() {
        let (mut spd, layout) = setup();
        let mut pager = Pager::new(&mut spd, &layout, 0);
        pager.bound(PolicyKind::Lru, 2);
        pager.touch(ClauseId(0));
        pager.touch(ClauseId(1));
        pager.touch(ClauseId(0)); // refresh 0: LRU victim is now 1
        pager.touch(ClauseId(2));
        assert!(pager.is_resident(ClauseId(0)), "re-referenced block kept");
        assert!(!pager.is_resident(ClauseId(1)), "stale block evicted");
        assert_eq!(pager.resident_len(), 2);
    }

    #[test]
    fn bound_carries_existing_residents_over() {
        let (mut spd, layout) = setup();
        let mut pager = Pager::new(&mut spd, &layout, 0);
        pager.touch(ClauseId(0));
        pager.touch(ClauseId(2));
        pager.bound(PolicyKind::Lru, 2);
        assert_eq!(pager.resident_len(), 2);
        assert!(pager.touch(ClauseId(0)), "carried-over block still hits");
        // Re-bounding under a different policy also carries residency.
        pager.bound(PolicyKind::Fifo, 4);
        assert_eq!(pager.resident_len(), 2);
        assert!(pager.touch(ClauseId(2)), "re-bound kept the resident block");
    }

    #[test]
    fn bounded_prefetch_respects_capacity() {
        let (mut spd, layout) = setup();
        // Distance 1 from rule 0 pages in 7 blocks; a 3-block bound must
        // hold residency at 3 whatever the policy.
        for policy in PolicyKind::ALL {
            let mut pager = Pager::new(&mut spd, &layout, 1);
            pager.bound(policy, 3);
            pager.touch(ClauseId(0));
            // A 7-block page through a 3-block bound: residency stays
            // bounded (which blocks survive is the policy's business).
            assert_eq!(pager.resident_len(), 3, "{policy}");
        }
    }

    #[test]
    fn replay_accumulates() {
        let (mut spd, layout) = setup();
        let mut pager = Pager::new(&mut spd, &layout, 1);
        let trace = vec![
            ClauseId(0),
            ClauseId(3),
            ClauseId(5),
            ClauseId(0),
            ClauseId(3),
        ];
        let s = pager.replay(&trace);
        assert_eq!(s.accesses, 5);
        assert!(s.hit_rate() > 0.5, "hit rate {}", s.hit_rate());
    }

    #[test]
    fn weight_filter_limits_prefetch() {
        let (mut spd, layout) = setup();
        // Unknown weights are N+1 = 4352; a ceiling below that stops all
        // prefetching through pointers.
        let mut filtered = Pager::new(&mut spd, &layout, 1);
        filtered.weight_max = Some(100);
        filtered.touch(ClauseId(0));
        assert_eq!(filtered.resident_len(), 1, "no neighbor prefetched");
    }
}
