//! Disk geometry and the tick-based cost model.

use serde::Serialize;

/// Physical layout of the SPD array.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Geometry {
    /// Number of search processors (one surface each).
    pub n_sps: u32,
    /// Cylinders per surface.
    pub n_cylinders: u32,
    /// Block slots per track (placement granularity; capacity check).
    pub blocks_per_track: u32,
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry {
            n_sps: 4,
            n_cylinders: 64,
            blocks_per_track: 32,
        }
    }
}

impl Geometry {
    /// Total block capacity of the array.
    pub fn capacity(&self) -> u32 {
        self.n_sps * self.n_cylinders * self.blocks_per_track
    }

    /// Round-robin placement of the `i`-th block (over slots, then SPs,
    /// then cylinders) — the single source of truth shared by
    /// `SpdArray::add_block` and the paged clause store.
    pub fn addr_of_index(&self, i: u32) -> BlockAddr {
        let per_cyl = self.n_sps * self.blocks_per_track;
        BlockAddr {
            cylinder: i / per_cyl,
            sp: (i % per_cyl) / self.blocks_per_track,
            slot: i % self.blocks_per_track,
        }
    }
}

/// Where a block lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub struct BlockAddr {
    /// Cylinder index.
    pub cylinder: u32,
    /// Search processor (surface) index.
    pub sp: u32,
    /// Slot within the track.
    pub slot: u32,
}

/// Tick costs of the SPD's primitive actions. The absolute values are
/// arbitrary; their *ratios* encode the 1985 reality the paper leans on —
/// disk mechanics (seek, rotation) are many orders of magnitude slower
/// than cache logic.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CostModel {
    /// Per-cylinder head movement.
    pub seek_per_cylinder: u64,
    /// Fixed seek settle time.
    pub seek_settle: u64,
    /// One full rotation: loading a track into its SP cache.
    pub track_load: u64,
    /// One associative search pass over a cached track.
    pub associative_op: u64,
    /// Following one pointer within cache.
    pub pointer_follow: u64,
    /// Transferring one word out of the SPD to a processor.
    pub word_transfer: u64,
    /// Updating one word in a marked cached block (write-through).
    pub word_update: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seek_per_cylinder: 100,
            seek_settle: 500,
            track_load: 1_000,
            associative_op: 10,
            pointer_follow: 1,
            word_transfer: 2,
            word_update: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_product() {
        let g = Geometry {
            n_sps: 2,
            n_cylinders: 3,
            blocks_per_track: 4,
        };
        assert_eq!(g.capacity(), 24);
    }

    #[test]
    fn default_costs_order_disk_above_cache() {
        let c = CostModel::default();
        assert!(c.track_load > c.associative_op);
        assert!(c.seek_settle > c.associative_op);
        assert!(c.associative_op >= c.pointer_follow);
    }
}
