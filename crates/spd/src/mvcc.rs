//! Snapshot-isolated writes for the paged clause store (MVCC).
//!
//! [`PagedClauseStore`](crate::paged::PagedClauseStore) is read-only: the
//! clause database is built once, before any search starts. This module
//! adds the write path the paper's multiprogramming story needs —
//! clauses asserted and retracted *while* queries run — in the style of
//! RustDB's `SharedPagedStorage`:
//!
//! - **Copy-on-write pages.** Clause data lives in per-track
//!   `PageData` pages behind `Arc`s. A [`WriteTxn`] clones each page it
//!   dirties; untouched pages are shared structurally with every older
//!   version of the database.
//! - **Epoch counter.** Committing stamps the next epoch `E+1`, moves
//!   each dirtied page's old version into a per-track *stash* tagged
//!   `superseded_at = E+1`, and installs the new versions — all under
//!   one brief lock, **after** the simulated write I/O has been paid, so
//!   in-flight readers are never blocked on a committing writer (the
//!   [`CommitMode::StopTheWorld`] baseline exists precisely to measure
//!   what that non-blocking install buys).
//! - **Reader epochs.** [`begin_read`](MvccClauseStore::begin_read) pins
//!   the committed epoch and registers the reader; every page the
//!   snapshot touches resolves through the stash to the version that was
//!   current at the pinned epoch. Dropping the snapshot deregisters it
//!   and retires stash entries no remaining reader can see:
//!
//!   > a stashed version with `superseded_at = S` is visible only to
//!   > readers pinned at epochs `< S`, so it is retired as soon as the
//!   > minimum active reader epoch reaches `S` (with no readers at all,
//!   > the stash drains completely).
//!
//! The track cache ([`TrackCache`]) is shared with the read-only store
//! and is deliberately *version-blind*: an access touches the same
//! [`TrackId`] whichever page version it resolves to, so replacement
//! behavior and the golden trace fixtures are unchanged by writes until
//! a write actually moves a clause. The correctness contract — **a query
//! admitted at epoch E returns exactly the sequential solution set of
//! the epoch-E snapshot** — is enforced by `tests/mvcc_props.rs` and the
//! serving churn suite.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};

use blog_logic::{
    parse_clauses_interning, BindingLookup, Clause, ClauseDb, ClauseId, ClauseSource, ParseError,
    SourceStats, StoreError, Sym, SymbolTable, Term,
};
use serde::Serialize;

use crate::bitidx::{BitmapClauseIndex, IndexCounters, IndexPolicy, IndexedCandidates};
use crate::cache::TrackCache;
use crate::paged::{PagedStoreConfig, PagedStoreStats, PoolTouchStats, TrackId};
use crate::policy::PolicyStats;
use crate::timing::Geometry;

/// Predicate `(functor, arity)` → defining clauses, in program order —
/// the same shape as `ClauseDb`'s index, rebuilt per epoch.
type PredIndex = HashMap<(Sym, u32), Vec<ClauseId>>;

/// How a committing writer treats in-flight readers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum CommitMode {
    /// Snapshot isolation: the writer pays its simulated write I/O
    /// outside every lock, then installs new page versions under one
    /// brief mutex. Readers are never blocked.
    Mvcc,
    /// The baseline MVCC is measured against: the writer takes a global
    /// reader/writer gate for the whole commit (I/O included), so every
    /// clause fetch admitted meanwhile waits for the commit to finish.
    StopTheWorld,
}

impl CommitMode {
    /// Short name for reports (`mvcc` / `stw`).
    pub fn name(&self) -> &'static str {
        match self {
            CommitMode::Mvcc => "mvcc",
            CommitMode::StopTheWorld => "stw",
        }
    }
}

/// One track's worth of clauses: the MVCC page. Slot `i` holds the
/// clause whose [`BlockAddr`](crate::timing::BlockAddr) maps there;
/// `None` is an empty or retracted slot.
#[derive(Clone, Debug)]
struct PageData {
    clauses: Vec<Option<Clause>>,
}

/// An old page version, kept while some reader epoch can still see it.
#[derive(Debug)]
struct StashedPage {
    /// The epoch whose commit replaced this version: visible to readers
    /// pinned at epochs `< superseded_at`.
    superseded_at: u64,
    data: Arc<PageData>,
}

/// One track's current page plus its stash of superseded versions
/// (ascending by `superseded_at`).
#[derive(Debug)]
struct PageSlot {
    current: Arc<PageData>,
    /// Epoch at which `current` was installed.
    current_since: u64,
    stash: Vec<StashedPage>,
}

/// Everything a commit swaps and a `begin_read` pins, under one mutex.
#[derive(Debug)]
struct VersionState {
    /// One slot per track, indexed by `cylinder * n_sps + sp`.
    pages: Vec<PageSlot>,
    index: Arc<PredIndex>,
    /// First-argument bitmap index for this epoch, rebuilt copy-on-write
    /// per commit and swapped exactly like `index` (always maintained so
    /// a policy flip never needs a rebuild; consulted only under
    /// [`IndexPolicy::FirstArg`]).
    bitidx: Arc<BitmapClauseIndex>,
    symbols: Arc<SymbolTable>,
    /// Clause count: ids `0..len` have been allocated (some retracted).
    len: usize,
    /// The committed epoch; epoch 0 is the seed database.
    committed: u64,
    /// Active readers per pinned epoch.
    readers: BTreeMap<u64, usize>,
    /// Cumulative stash entries retired (diagnostics).
    pages_retired: u64,
}

impl VersionState {
    /// Drop every stash entry no active reader can see (see module docs
    /// for the retirement rule).
    fn retire(&mut self) {
        let min_reader = self.readers.keys().next().copied();
        for slot in &mut self.pages {
            let before = slot.stash.len();
            match min_reader {
                // A stashed version superseded at S is dead once the
                // oldest reader is pinned at an epoch >= S.
                Some(min) => slot.stash.retain(|s| s.superseded_at > min),
                None => slot.stash.clear(),
            }
            self.pages_retired += (before - slot.stash.len()) as u64;
        }
    }
}

/// MVCC diagnostics, for tests and reports.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MvccStats {
    /// The committed epoch (0 = seed database, nothing committed yet).
    pub committed_epoch: u64,
    /// Transactions committed (epoch bumps).
    pub commits: u64,
    /// Snapshots currently holding an epoch pin.
    pub active_readers: usize,
    /// Old page versions currently stashed across all tracks.
    pub stashed_pages: usize,
    /// Stash entries retired over the store's lifetime.
    pub pages_retired: u64,
}

/// Errors from the write path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MvccError {
    /// The geometry has no free block for another clause.
    CapacityExhausted {
        /// Total block capacity of the store's geometry.
        capacity: usize,
    },
    /// Retract target was never allocated.
    NoSuchClause(ClauseId),
    /// Retract target was already retracted in an earlier epoch (or this
    /// transaction).
    AlreadyRetracted(ClauseId),
    /// Asserted clause had a variable or integer head/goal.
    Uncallable(String),
    /// Update text failed to parse.
    Parse(ParseError),
}

impl std::fmt::Display for MvccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MvccError::CapacityExhausted { capacity } => {
                write!(f, "store full: geometry holds at most {capacity} clauses")
            }
            MvccError::NoSuchClause(cid) => write!(f, "no clause with id {}", cid.0),
            MvccError::AlreadyRetracted(cid) => {
                write!(f, "clause {} is already retracted", cid.0)
            }
            MvccError::Uncallable(what) => write!(f, "uncallable term in clause: {what}"),
            MvccError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MvccError {}

impl From<ParseError> for MvccError {
    fn from(e: ParseError) -> Self {
        MvccError::Parse(e)
    }
}

/// A clause database with snapshot-isolated writes, served through the
/// same policy-driven track cache as [`PagedClauseStore`](crate::paged::PagedClauseStore). See the
/// module docs for the protocol.
///
/// Unlike the read-only store, this one **owns** its clauses (they are
/// copied out of the seed `ClauseDb` at construction), so it has no
/// lifetime parameter and can outlive the database it was built from.
#[derive(Debug)]
pub struct MvccClauseStore {
    geometry: Geometry,
    policy_kind: crate::policy::PolicyKind,
    commit_mode: CommitMode,
    index_policy: IndexPolicy,
    /// Candidate-selection meters (atomics — selection never locks).
    index_counters: IndexCounters,
    cache: TrackCache,
    versions: Mutex<VersionState>,
    /// Serializes writers (one transaction at a time).
    writer: Mutex<()>,
    /// The stop-the-world gate: committing writers in
    /// [`CommitMode::StopTheWorld`] hold it exclusively; readers in that
    /// mode take it shared around every fetch. Unused under MVCC.
    stw_gate: RwLock<()>,
    /// Nanoseconds slept per simulated tick of commit write I/O
    /// (0 = account only).
    write_stall_ns_per_tick: AtomicU64,
    commits: AtomicU64,
}

impl MvccClauseStore {
    /// Build epoch 0 from `db`: clauses are laid out with the same
    /// round-robin placement as [`PagedClauseStore`](crate::paged::PagedClauseStore) (both call
    /// [`Geometry::addr_of_index`]), so the access stream — and
    /// therefore every cache counter — is identical until a write
    /// actually changes a page.
    ///
    /// # Panics
    /// Panics if the geometry cannot hold one block per clause. Size the
    /// geometry with headroom: asserts allocate fresh blocks and fail
    /// with [`MvccError::CapacityExhausted`] once the geometry is full.
    pub fn new(db: &ClauseDb, config: PagedStoreConfig, mode: CommitMode) -> MvccClauseStore {
        assert!(
            config.geometry.capacity() as usize >= db.len(),
            "SPD geometry too small: capacity {} < {} clauses",
            config.geometry.capacity(),
            db.len()
        );
        let g = config.geometry;
        let n_tracks = (g.n_sps * g.n_cylinders) as usize;
        let mut pages = vec![
            PageData {
                clauses: vec![None; g.blocks_per_track as usize],
            };
            n_tracks
        ];
        let mut index: PredIndex = HashMap::new();
        let mut bitidx = BitmapClauseIndex::default();
        for (i, clause) in db.clauses().iter().enumerate() {
            let addr = g.addr_of_index(i as u32);
            let ti = (addr.cylinder * g.n_sps + addr.sp) as usize;
            pages[ti].clauses[addr.slot as usize] = Some(clause.clone());
            index.entry(clause.head_pred()).or_default().push(ClauseId(i as u32));
            bitidx.insert_clause(ClauseId(i as u32), clause);
        }
        MvccClauseStore {
            geometry: g,
            policy_kind: config.policy,
            commit_mode: mode,
            index_policy: config.index,
            index_counters: IndexCounters::default(),
            cache: TrackCache::new(config.policy, config.capacity_tracks, g.n_sps, config.cost)
                .with_faults(config.fault),
            versions: Mutex::new(VersionState {
                pages: pages
                    .into_iter()
                    .map(|p| PageSlot {
                        current: Arc::new(p),
                        current_since: 0,
                        stash: Vec::new(),
                    })
                    .collect(),
                index: Arc::new(index),
                bitidx: Arc::new(bitidx),
                symbols: Arc::new(db.symbols().clone()),
                len: db.len(),
                committed: 0,
                readers: BTreeMap::new(),
                pages_retired: 0,
            }),
            writer: Mutex::new(()),
            stw_gate: RwLock::new(()),
            write_stall_ns_per_tick: AtomicU64::new(0),
            commits: AtomicU64::new(0),
        }
    }

    fn versions(&self) -> MutexGuard<'_, VersionState> {
        self.versions.lock().unwrap()
    }

    /// Dense index of the track holding block address components.
    fn track_index(&self, track: TrackId) -> usize {
        (track.cylinder * self.geometry.n_sps + track.sp) as usize
    }

    /// The track (cache page) holding clause `cid`.
    pub fn track_of(&self, cid: ClauseId) -> TrackId {
        let addr = self.geometry.addr_of_index(cid.0);
        TrackId {
            sp: addr.sp,
            cylinder: addr.cylinder,
        }
    }

    /// This store's commit mode.
    pub fn commit_mode(&self) -> CommitMode {
        self.commit_mode
    }

    /// Which replacement algorithm the track cache runs.
    pub fn policy_kind(&self) -> crate::policy::PolicyKind {
        self.policy_kind
    }

    /// Which candidate-selection policy snapshots resolve through.
    pub fn index_policy(&self) -> IndexPolicy {
        self.index_policy
    }

    /// The disk geometry (fixed at construction; asserts consume its
    /// remaining block capacity).
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Sleep this many nanoseconds per simulated tick of commit write
    /// I/O (one `track_load` per dirtied page). Under [`CommitMode::Mvcc`]
    /// the sleep happens outside every lock; under
    /// [`CommitMode::StopTheWorld`] it happens while holding the global
    /// gate — that difference is the whole experiment.
    pub fn set_write_stall(&self, ns_per_tick: u64) {
        self.write_stall_ns_per_tick.store(ns_per_tick, Ordering::Relaxed);
    }

    /// Pin the committed epoch and return a read snapshot. The snapshot
    /// keeps every page version it may need alive until dropped.
    pub fn begin_read(&self) -> Snapshot<'_> {
        let n_tracks = (self.geometry.n_sps * self.geometry.n_cylinders) as usize;
        let mut v = self.versions();
        let epoch = v.committed;
        *v.readers.entry(epoch).or_insert(0) += 1;
        Snapshot {
            store: self,
            epoch,
            len: v.len,
            symbols: Arc::clone(&v.symbols),
            index: Arc::clone(&v.index),
            bitidx: Arc::clone(&v.bitidx),
            resolved: (0..n_tracks).map(|_| OnceLock::new()).collect(),
            pool: None,
            stall_ns_per_tick: 0,
            deps: None,
            trace: None,
        }
    }

    /// Start a write transaction. Writers are serialized: this blocks
    /// while another transaction is open. Readers are unaffected.
    pub fn begin_write(&self) -> WriteTxn<'_> {
        let guard = self.writer.lock().unwrap();
        // No commit can interleave past this point (we hold the writer
        // mutex), so the state read here stays the transaction's base.
        let v = self.versions();
        WriteTxn {
            store: self,
            base_epoch: v.committed,
            len: v.len,
            dirty: HashMap::new(),
            index: (*v.index).clone(),
            bitidx: (*v.bitidx).clone(),
            symbols: (*v.symbols).clone(),
            touched: BTreeSet::new(),
            trace: None,
            _writer: guard,
        }
    }

    /// The page version visible at `epoch` for track `ti`.
    fn page_at(&self, ti: usize, epoch: u64) -> Arc<PageData> {
        let v = self.versions();
        let slot = &v.pages[ti];
        if slot.current_since <= epoch {
            return Arc::clone(&slot.current);
        }
        // The stash is ascending by superseded_at; the version current at
        // `epoch` is the first one replaced *after* it.
        slot.stash
            .iter()
            .find(|s| s.superseded_at > epoch)
            .map(|s| Arc::clone(&s.data))
            .expect("page version for a pinned reader epoch was retired early")
    }

    /// Deregister a reader pinned at `epoch` and retire what it alone
    /// kept alive.
    fn end_read(&self, epoch: u64) {
        let mut v = self.versions();
        match v.readers.get_mut(&epoch) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                v.readers.remove(&epoch);
            }
            None => unreachable!("end_read without begin_read at epoch {epoch}"),
        }
        v.retire();
    }

    /// The committed epoch (0 until the first commit).
    pub fn committed_epoch(&self) -> u64 {
        self.versions().committed
    }

    /// MVCC diagnostics (see [`MvccStats`]).
    pub fn mvcc_stats(&self) -> MvccStats {
        let v = self.versions();
        MvccStats {
            committed_epoch: v.committed,
            commits: self.commits.load(Ordering::Relaxed),
            active_readers: v.readers.values().sum(),
            stashed_pages: v.pages.iter().map(|p| p.stash.len()).sum(),
            pages_retired: v.pages_retired,
        }
    }

    /// Snapshots currently holding an epoch pin.
    pub fn reader_count(&self) -> usize {
        self.versions().readers.values().sum()
    }

    /// Old page versions currently stashed across all tracks.
    pub fn stash_depth(&self) -> usize {
        self.versions().pages.iter().map(|p| p.stash.len()).sum()
    }

    /// Clause count at the committed epoch (allocated ids, including
    /// retracted ones — ids are never reused).
    pub fn committed_len(&self) -> usize {
        self.versions().len
    }

    /// Track-cache counters (lock-traffic and candidate-selection meters
    /// included) — the same surface as
    /// [`PagedClauseStore::stats`](crate::paged::PagedClauseStore::stats).
    pub fn stats(&self) -> PagedStoreStats {
        let mut s = self.cache.stats();
        let (hits, prunes, scanned) = self.index_counters.snapshot();
        s.index_hits = hits;
        s.index_prunes = prunes;
        s.candidates_scanned = scanned;
        s
    }

    /// The replacement policy's own counters.
    pub fn policy_stats(&self) -> PolicyStats {
        self.cache.policy_stats()
    }

    /// One pool's touch counters (zeros for a pool never seen).
    pub fn pool_stats(&self, pool: usize) -> PoolTouchStats {
        self.cache.pool_stats(pool)
    }

    /// Lock-traffic meters of the track cache:
    /// `(acquisitions, contended)`.
    pub fn lock_stats(&self) -> (u64, u64) {
        self.cache.lock_stats()
    }

    /// Reset cache and candidate-selection counters (residency persists;
    /// versions unaffected).
    pub fn reset_stats(&self) {
        self.cache.reset_stats();
        self.index_counters.reset();
    }

    /// Number of resident tracks in the cache.
    pub fn resident_tracks(&self) -> usize {
        self.cache.resident_tracks()
    }
}

// ---------------------------------------------------------------------------
// Snapshot — the epoch-pinned read view
// ---------------------------------------------------------------------------

/// An epoch-pinned, immutable view of the store — the [`ClauseSource`]
/// queries execute against.
///
/// Every page is resolved lazily on first touch through the version
/// stash (see `MvccClauseStore::page_at`) and cached in the snapshot,
/// so a clause fetched twice resolves once and commits that land *after*
/// `begin_read` are never observed. Dropping the snapshot releases its
/// epoch pin and retires stash entries nobody else needs.
#[derive(Debug)]
pub struct Snapshot<'s> {
    store: &'s MvccClauseStore,
    epoch: u64,
    len: usize,
    symbols: Arc<SymbolTable>,
    index: Arc<PredIndex>,
    /// The pinned epoch's first-argument bitmap index: a commit landing
    /// after `begin_read` swaps the store's `Arc` but cannot change what
    /// this snapshot resolves candidates through.
    bitidx: Arc<BitmapClauseIndex>,
    /// Per-track page resolution cache (`OnceLock` so `fetch_clause` can
    /// stay `&self` and the returned `&Clause` borrows from the
    /// snapshot).
    resolved: Vec<OnceLock<Arc<PageData>>>,
    pool: Option<usize>,
    stall_ns_per_tick: u64,
    /// When enabled (see [`recording_deps`](Self::recording_deps)), every
    /// predicate whose candidate set a query resolves through this
    /// snapshot is collected here — the query's **dependency footprint**,
    /// which an answer cache compares against committing transactions'
    /// touched predicates. Behind a mutex because the OR-parallel engine
    /// shares one snapshot across worker threads.
    deps: Option<Mutex<BTreeSet<(Sym, u32)>>>,
    /// Span context of the request this snapshot serves (`None` — the
    /// default — is untraced). With it set, injected store faults and
    /// latency spikes surface as trace events on the request's span
    /// tree, so a slow request's flight record shows *which* fetches
    /// stalled it.
    trace: Option<blog_obs::SpanCtx>,
}

impl<'s> Snapshot<'s> {
    /// This snapshot with touches attributed to worker pool `pool`.
    pub fn for_pool(mut self, pool: usize) -> Self {
        self.pool = Some(pool);
        self
    }

    /// This snapshot with faults stalling the caller `ns_per_tick`
    /// nanoseconds per simulated tick (0 = no stall, accounting only).
    /// The sleep happens after the cache mutex is released, exactly like
    /// [`PoolView::with_stall`](crate::paged::PoolView::with_stall).
    pub fn with_stall(mut self, ns_per_tick: u64) -> Self {
        self.stall_ns_per_tick = ns_per_tick;
        self
    }

    /// This snapshot with dependency recording on: every
    /// `candidate_clauses` resolution notes the goal's `(functor, arity)`
    /// pair. A commit can only change the candidate sets of the
    /// predicates it asserts or retracts, so the first divergence between
    /// this epoch's search tree and a later epoch's must occur at a goal
    /// whose predicate the commit touched — if no recorded predicate was
    /// touched, a *complete* (untruncated, uncancelled) result is
    /// verbatim valid at the later epoch. That footprint-disjointness
    /// rule is the answer cache's invalidation contract.
    pub fn recording_deps(mut self) -> Self {
        self.deps = Some(Mutex::new(BTreeSet::new()));
        self
    }

    /// This snapshot with store events (injected faults, latency
    /// spikes) reported onto `trace`'s span tree. `None` (the default)
    /// keeps every fetch untraced.
    pub fn with_trace(mut self, trace: Option<blog_obs::SpanCtx>) -> Self {
        self.trace = trace;
        self
    }

    /// The predicates recorded so far (sorted; empty when recording was
    /// never enabled).
    pub fn recorded_deps(&self) -> Vec<(Sym, u32)> {
        match &self.deps {
            Some(deps) => deps.lock().unwrap().iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// The epoch this snapshot is pinned at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The symbol table as of the pinned epoch (append-only across
    /// epochs, so handles valid at older epochs stay valid here).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The store this snapshot reads.
    pub fn store(&self) -> &'s MvccClauseStore {
        self.store
    }

    /// This pool's touch counters so far (the shared-cache totals if the
    /// snapshot is not pool-tagged).
    pub fn touch_stats(&self) -> PoolTouchStats {
        match self.pool {
            Some(p) => self.store.pool_stats(p),
            None => {
                let s = self.store.stats();
                PoolTouchStats {
                    accesses: s.accesses,
                    hits: s.hits,
                    misses: s.misses,
                    fault_ticks: s.fault_ticks,
                }
            }
        }
    }

    /// The page holding `cid` as visible at this snapshot's epoch.
    fn page_for(&self, cid: ClauseId) -> &PageData {
        let ti = self.store.track_index(self.store.track_of(cid));
        self.resolved[ti].get_or_init(|| self.store.page_at(ti, self.epoch))
    }
}

impl Drop for Snapshot<'_> {
    fn drop(&mut self) {
        self.store.end_read(self.epoch);
    }
}

impl ClauseSource for Snapshot<'_> {
    fn try_fetch_clause(&self, id: ClauseId) -> Result<&Clause, StoreError> {
        // Under the stop-the-world baseline a committing writer blocks
        // every fetch for its whole commit; under MVCC the gate is never
        // write-locked, so readers sail through. A poisoned gate means a
        // committing writer panicked mid-STW swap — readers cannot
        // verify the swap completed, so fail the fetch rather than risk
        // a torn read (MVCC snapshots are immune by construction).
        let _gate = match self.store.commit_mode {
            CommitMode::StopTheWorld => Some(self.store.stw_gate.read().map_err(|_| {
                StoreError::permanent("stop-the-world writer panicked mid-commit")
            })?),
            CommitMode::Mvcc => None,
        };
        let outcome = self
            .store
            .cache
            .try_touch(self.store.track_of(id), self.pool)
            .inspect_err(|e| {
                if let Some(t) = &self.trace {
                    t.event("store_fault", format!("clause {}: {e}", id.0));
                }
            })?;
        if let Some(t) = &self.trace {
            if outcome.spike_ticks > 0 {
                t.event(
                    "latency_spike",
                    format!("clause {}: +{} ticks", id.0, outcome.spike_ticks),
                );
            }
        }
        if self.stall_ns_per_tick > 0 && outcome.fault_ticks > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(
                outcome.fault_ticks * self.stall_ns_per_tick,
            ));
        }
        let addr = self.store.geometry.addr_of_index(id.0);
        Ok(self.page_for(id).clauses[addr.slot as usize]
            .as_ref()
            .expect("fetched a clause not visible at this snapshot's epoch"))
    }

    fn try_candidate_clauses<'a>(
        &'a self,
        goal: &Term,
        bindings: &dyn BindingLookup,
    ) -> Result<Cow<'a, [ClauseId]>, StoreError> {
        // Candidate lists ride in the caller's block (figure 4), already
        // paid for when the caller was fetched — same accounting as the
        // read-only store. Both indexes are pinned with the snapshot, so
        // a concurrent commit cannot leak clauses from another epoch in.
        let full = match goal.functor() {
            Some(pred) => {
                if let Some(deps) = &self.deps {
                    deps.lock().unwrap().insert(pred);
                }
                self.index.get(&pred).map(Vec::as_slice).unwrap_or(&[])
            }
            None => &[][..],
        };
        if self.store.index_policy == IndexPolicy::FirstArg {
            if let IndexedCandidates::Narrowed(ids) = self.bitidx.lookup(goal, bindings) {
                self.store.index_counters.record_indexed(full.len(), ids.len());
                return Ok(Cow::Owned(ids));
            }
        }
        self.store.index_counters.record_scan(full.len());
        Ok(Cow::Borrowed(full))
    }

    fn clause_count(&self) -> usize {
        self.len
    }

    fn backend_name(&self) -> String {
        match self.pool {
            Some(p) => format!("mvcc/{}/pool{}", self.store.policy_kind.name(), p),
            None => format!("mvcc/{}", self.store.policy_kind.name()),
        }
    }

    fn source_stats(&self) -> Option<SourceStats> {
        let s = self.touch_stats();
        Some(SourceStats {
            accesses: s.accesses,
            hits: s.hits,
            misses: s.misses,
            // Evictions are a store-wide event; they cannot be attributed
            // to the snapshot whose fault happened to trigger them.
            evictions: 0,
        })
    }
}

// ---------------------------------------------------------------------------
// WriteTxn — the copy-on-write transaction
// ---------------------------------------------------------------------------

/// A write transaction: assert/retract clauses, then [`commit`](Self::commit).
///
/// The transaction copy-on-writes each page it dirties and interns new
/// vocabulary into a private clone of the symbol table; nothing is
/// visible to readers until commit installs the new versions atomically
/// under the next epoch. Dropping without committing aborts with no
/// trace. Writers are serialized by the store (one open transaction at a
/// time); readers never wait for a transaction, open or committing
/// (except under [`CommitMode::StopTheWorld`]).
#[derive(Debug)]
pub struct WriteTxn<'s> {
    store: &'s MvccClauseStore,
    base_epoch: u64,
    /// Next clause id; ids are allocated densely and never reused.
    len: usize,
    /// Copy-on-write pages, by track index.
    dirty: HashMap<usize, PageData>,
    index: PredIndex,
    /// Copy-on-write first-argument bitmap index, patched incrementally
    /// by asserts and retracts and installed whole at commit.
    bitidx: BitmapClauseIndex,
    symbols: SymbolTable,
    /// Head predicates of every assert and retract in this transaction —
    /// the commit's *touched set*, which an answer cache intersects with
    /// cached queries' dependency footprints to invalidate precisely.
    touched: BTreeSet<(Sym, u32)>,
    /// Span context of the request this commit belongs to (`None` — the
    /// default — is untraced). With it set, [`commit`](Self::commit)
    /// records its write-I/O wait and install phases as spans and stash
    /// retirement as an event.
    trace: Option<blog_obs::SpanCtx>,
    _writer: MutexGuard<'s, ()>,
}

impl WriteTxn<'_> {
    /// The committed epoch this transaction branched from.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// Clause ids allocated so far (committed base plus this
    /// transaction's asserts).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store (plus this transaction) holds no clauses.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The transaction's symbol table (base table plus any vocabulary
    /// interned by [`assert_text`](Self::assert_text) so far).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// This transaction with its commit phases (write-I/O wait, version
    /// install, stash retirement) reported onto `trace`'s span tree.
    /// `None` (the default) keeps the commit untraced.
    pub fn with_trace(mut self, trace: Option<blog_obs::SpanCtx>) -> Self {
        self.trace = trace;
        self
    }

    /// Head predicates of every assert and retract so far (sorted).
    /// A commit can only change the candidate sets of these predicates,
    /// so a cached result whose dependency footprint (see
    /// [`Snapshot::recording_deps`]) is disjoint from this set is still
    /// valid at the committed epoch.
    pub fn touched_preds(&self) -> Vec<(Sym, u32)> {
        self.touched.iter().copied().collect()
    }

    /// The copy-on-write page for `ti`, cloning the committed version on
    /// first touch.
    fn dirty_page(&mut self, ti: usize) -> &mut PageData {
        self.dirty.entry(ti).or_insert_with(|| {
            let v = self.store.versions();
            // Writers are serialized and the committed state cannot move
            // under an open transaction, so `current` IS the base page.
            (*v.pages[ti].current).clone()
        })
    }

    /// Assert `clause`, allocating the next clause id. The head and all
    /// body goals must be callable terms (same rule as
    /// [`ClauseDb::add_clause`]).
    pub fn assert_clause(&mut self, clause: Clause) -> Result<ClauseId, MvccError> {
        if clause.head.functor().is_none() {
            return Err(MvccError::Uncallable("clause head".into()));
        }
        if let Some(i) = clause.body.iter().position(|g| g.functor().is_none()) {
            return Err(MvccError::Uncallable(format!("body goal {i}")));
        }
        if self.len >= self.store.geometry.capacity() as usize {
            return Err(MvccError::CapacityExhausted {
                capacity: self.store.geometry.capacity() as usize,
            });
        }
        let cid = ClauseId(self.len as u32);
        let addr = self.store.geometry.addr_of_index(cid.0);
        let ti = (addr.cylinder * self.store.geometry.n_sps + addr.sp) as usize;
        let pred = clause.head_pred();
        self.bitidx.insert_clause(cid, &clause);
        self.dirty_page(ti).clauses[addr.slot as usize] = Some(clause);
        self.index.entry(pred).or_default().push(cid);
        self.touched.insert(pred);
        self.len += 1;
        Ok(cid)
    }

    /// Parse `src` as clause text (facts and rules) and assert each
    /// clause, interning any new constants or functors into the
    /// transaction's symbol table — this is how the update lane
    /// introduces vocabulary the read-only parse path keeps rejecting.
    pub fn assert_text(&mut self, src: &str) -> Result<Vec<ClauseId>, MvccError> {
        let clauses = parse_clauses_interning(&mut self.symbols, src)?;
        clauses.into_iter().map(|c| self.assert_clause(c)).collect()
    }

    /// Retract clause `cid`: its block becomes an empty slot and it
    /// leaves the candidate index at the commit epoch. Ids are never
    /// reused. Retracting in-transaction asserts is allowed.
    pub fn retract(&mut self, cid: ClauseId) -> Result<(), MvccError> {
        if cid.index() >= self.len {
            return Err(MvccError::NoSuchClause(cid));
        }
        let addr = self.store.geometry.addr_of_index(cid.0);
        let ti = (addr.cylinder * self.store.geometry.n_sps + addr.sp) as usize;
        let page = self.dirty_page(ti);
        let Some(clause) = page.clauses[addr.slot as usize].take() else {
            return Err(MvccError::AlreadyRetracted(cid));
        };
        let pred = clause.head_pred();
        if let Some(ids) = self.index.get_mut(&pred) {
            ids.retain(|&id| id != cid);
        }
        self.bitidx.remove_clause(cid, &clause);
        self.touched.insert(pred);
        Ok(())
    }

    /// Commit: pay the simulated write I/O (one `track_load` per dirty
    /// page), then install the new page versions, index, and symbol
    /// table under the next epoch. Returns the new committed epoch (or
    /// the unchanged one for an empty transaction).
    ///
    /// Under [`CommitMode::Mvcc`] the I/O sleep happens before any lock
    /// is taken, and the install itself is a brief mutex hold — readers
    /// keep resolving pages (old epochs through the stash) the whole
    /// time. Under [`CommitMode::StopTheWorld`] the store-wide gate is
    /// held across I/O *and* install.
    pub fn commit(self) -> u64 {
        let store = self.store;
        if self.dirty.is_empty() {
            // Nothing to install; symbol-only or empty transactions do
            // not bump the epoch (no page version changed).
            return self.base_epoch;
        }
        let io_ticks = self.dirty.len() as u64 * store.cache.cost().track_load;
        let stall_ns = store.write_stall_ns_per_tick.load(Ordering::Relaxed);
        let io = std::time::Duration::from_nanos(io_ticks * stall_ns);
        let trace = self.trace;

        let io_span = trace.as_ref().map(|t| t.span("commit_io"));
        let _gate = match store.commit_mode {
            CommitMode::StopTheWorld => {
                let gate = store.stw_gate.write().unwrap();
                // The whole world waits out the write I/O.
                if !io.is_zero() {
                    std::thread::sleep(io);
                }
                Some(gate)
            }
            CommitMode::Mvcc => {
                // Pay the I/O before touching any shared state.
                if !io.is_zero() {
                    std::thread::sleep(io);
                }
                None
            }
        };

        drop(io_span);

        let install_span = trace.as_ref().map(|t| t.span("commit_install"));
        let mut v = store.versions();
        let new_epoch = v.committed + 1;
        let retired_before = v.pages_retired;
        for (ti, page) in self.dirty {
            let slot = &mut v.pages[ti];
            let old = std::mem::replace(&mut slot.current, Arc::new(page));
            slot.stash.push(StashedPage {
                superseded_at: new_epoch,
                data: old,
            });
            slot.current_since = new_epoch;
        }
        v.index = Arc::new(self.index);
        v.bitidx = Arc::new(self.bitidx);
        v.symbols = Arc::new(self.symbols);
        v.len = self.len;
        v.committed = new_epoch;
        v.retire();
        if let Some(t) = &trace {
            t.event(
                "retire",
                format!("epoch {new_epoch}: {} pages retired", v.pages_retired - retired_before),
            );
        }
        drop(v);
        drop(install_span);
        store.commits.fetch_add(1, Ordering::Relaxed);
        new_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blog_logic::{parse_program, parse_query_symbols};

    const FAMILY: &str = "
        gf(X,Z) :- f(X,Y), f(Y,Z).
        gf(X,Z) :- f(X,Y), m(Y,Z).
        f(curt,elain). f(sam,larry). f(dan,pat). f(larry,den).
        f(pat,john). f(larry,doug).
        m(elain,john). m(marian,elain). m(peg,den). m(peg,doug).
        ?- gf(sam,G).
    ";

    fn store_config(capacity_tracks: usize) -> PagedStoreConfig {
        PagedStoreConfig {
            geometry: Geometry {
                n_sps: 2,
                n_cylinders: 8,
                blocks_per_track: 2,
            },
            capacity_tracks,
            ..PagedStoreConfig::default()
        }
    }

    fn solutions(snap: &Snapshot<'_>, query: &str) -> Vec<String> {
        let q = parse_query_symbols(snap.symbols(), query).unwrap();
        let weights = blog_core::weight::WeightStore::new(
            blog_core::weight::WeightParams::default(),
        );
        let mut local = std::collections::HashMap::new();
        let mut view = blog_core::weight::WeightView::new(&mut local, &weights);
        let r = blog_core::engine::best_first_with(
            snap,
            &q,
            &mut view,
            &blog_core::engine::BestFirstConfig::default(),
        );
        let mut texts: Vec<String> = r
            .solutions
            .iter()
            .map(|s| s.solution.to_text_syms(snap.symbols()))
            .collect();
        texts.sort();
        texts
    }

    #[test]
    fn epoch_zero_matches_the_seed_database() {
        let p = parse_program(FAMILY).unwrap();
        let store = MvccClauseStore::new(&p.db, store_config(4), CommitMode::Mvcc);
        assert_eq!(store.committed_epoch(), 0);
        let snap = store.begin_read();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.clause_count(), p.db.len());
        assert_eq!(solutions(&snap, "gf(sam,G)"), vec!["G = den", "G = doug"]);
    }

    #[test]
    fn assert_is_invisible_until_commit_and_to_older_snapshots() {
        let p = parse_program(FAMILY).unwrap();
        let store = MvccClauseStore::new(&p.db, store_config(8), CommitMode::Mvcc);
        let old = store.begin_read();

        let mut txn = store.begin_write();
        txn.assert_text("f(larry,zoe).").unwrap();
        // Open transaction: nothing visible anywhere.
        let mid = store.begin_read();
        assert_eq!(mid.epoch(), 0);
        assert_eq!(solutions(&mid, "gf(sam,G)"), vec!["G = den", "G = doug"]);
        let epoch = txn.commit();
        assert_eq!(epoch, 1);

        // The old snapshot still sees epoch 0 (and can't even parse the
        // new constant — its symbol table predates it).
        assert_eq!(solutions(&old, "gf(sam,G)"), vec!["G = den", "G = doug"]);
        assert!(parse_query_symbols(old.symbols(), "f(larry,zoe)").is_err());

        // A fresh snapshot sees the new fact.
        let new = store.begin_read();
        assert_eq!(new.epoch(), 1);
        assert_eq!(
            solutions(&new, "gf(sam,G)"),
            vec!["G = den", "G = doug", "G = zoe"]
        );
    }

    #[test]
    fn retract_removes_solutions_at_the_new_epoch_only() {
        let p = parse_program(FAMILY).unwrap();
        let store = MvccClauseStore::new(&p.db, store_config(8), CommitMode::Mvcc);
        let old = store.begin_read();

        // f(larry,den) is clause 5 in figure 1's program text.
        let mut txn = store.begin_write();
        txn.retract(ClauseId(5)).unwrap();
        txn.commit();

        assert_eq!(solutions(&old, "gf(sam,G)"), vec!["G = den", "G = doug"]);
        let new = store.begin_read();
        assert_eq!(solutions(&new, "gf(sam,G)"), vec!["G = doug"]);

        // Double retract is an error.
        let mut txn = store.begin_write();
        assert_eq!(
            txn.retract(ClauseId(5)),
            Err(MvccError::AlreadyRetracted(ClauseId(5)))
        );
        assert_eq!(
            txn.retract(ClauseId(999)),
            Err(MvccError::NoSuchClause(ClauseId(999)))
        );
    }

    #[test]
    fn snapshot_resolves_pages_superseded_after_begin_read() {
        // The stash's reason to exist: pin a snapshot, overwrite a page
        // it has NOT touched yet, then touch it — the fetch must resolve
        // through the stash to the pinned version.
        let p = parse_program(FAMILY).unwrap();
        let store = MvccClauseStore::new(&p.db, store_config(8), CommitMode::Mvcc);
        let snap = store.begin_read();

        let mut txn = store.begin_write();
        txn.retract(ClauseId(3)).unwrap(); // f(sam,larry)
        txn.commit();
        assert!(store.stash_depth() > 0, "old version must be stashed");

        // First touch of clause 3's page happens *after* the commit.
        let c = snap.fetch_clause(ClauseId(3));
        assert_eq!(c.head, p.db.clause(ClauseId(3)).head);
        assert_eq!(solutions(&snap, "gf(sam,G)"), vec!["G = den", "G = doug"]);
    }

    #[test]
    fn pinned_snapshot_resolves_candidates_through_its_epochs_bitmap_index() {
        // The bitmap index must be epoch-consistent, not just the pages:
        // a reader pinned at epoch 0 keeps narrowing through epoch 0's
        // index after later commits retract and assert clauses for the
        // very same functor.
        let p = parse_program(FAMILY).unwrap();
        let store = MvccClauseStore::new(&p.db, store_config(8), CommitMode::Mvcc);
        assert_eq!(store.index_policy(), crate::bitidx::IndexPolicy::FirstArg);
        let old = store.begin_read();

        let mut txn = store.begin_write();
        txn.retract(ClauseId(3)).unwrap(); // f(sam,larry)
        let new_ids = txn.assert_text("f(sam,zoe).").unwrap();
        txn.commit();

        let q = parse_query_symbols(old.symbols(), "f(sam,Q)").unwrap();
        let bindings = blog_logic::Bindings::new();
        let old_ids = old.candidate_clauses(&q.goals[0], &bindings).into_owned();
        assert_eq!(old_ids, vec![ClauseId(3)], "epoch-0 index still lists it");

        let new = store.begin_read();
        let q2 = parse_query_symbols(new.symbols(), "f(sam,Q)").unwrap();
        let got = new.candidate_clauses(&q2.goals[0], &bindings).into_owned();
        assert_eq!(got, new_ids, "epoch-1 index lists only the replacement");

        // And the meters saw two indexed resolutions.
        let s = store.stats();
        assert_eq!(s.index_hits, 2);
    }

    #[test]
    fn write_txn_reports_its_touched_predicates() {
        let p = parse_program(FAMILY).unwrap();
        let store = MvccClauseStore::new(&p.db, store_config(8), CommitMode::Mvcc);
        let mut txn = store.begin_write();
        assert!(txn.touched_preds().is_empty());
        txn.assert_text("f(larry,zoe).").unwrap();
        txn.retract(ClauseId(8)).unwrap(); // m(elain,john)
        let touched = txn.touched_preds();
        let mut names: Vec<(String, u32)> = touched
            .iter()
            .map(|&(s, a)| (txn.symbols().name(s).to_string(), a))
            .collect();
        names.sort();
        assert_eq!(names, vec![("f".to_string(), 2), ("m".to_string(), 2)]);
        // Asserting the same predicate again does not duplicate it.
        txn.assert_text("f(zoe,ann).").unwrap();
        assert_eq!(txn.touched_preds().len(), 2);
    }

    #[test]
    fn snapshot_records_dependency_footprints_when_asked() {
        let p = parse_program(FAMILY).unwrap();
        let store = MvccClauseStore::new(&p.db, store_config(8), CommitMode::Mvcc);

        // Off by default: nothing recorded.
        let plain = store.begin_read();
        solutions(&plain, "gf(sam,G)");
        assert!(plain.recorded_deps().is_empty());

        // Recording: the gf query resolves gf/2, f/2, and m/2 goals.
        let snap = store.begin_read().recording_deps();
        solutions(&snap, "gf(sam,G)");
        let mut names: Vec<(String, u32)> = snap
            .recorded_deps()
            .iter()
            .map(|&(s, a)| (snap.symbols().name(s).to_string(), a))
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                ("f".to_string(), 2),
                ("gf".to_string(), 2),
                ("m".to_string(), 2)
            ]
        );
    }

    #[test]
    fn stash_drains_when_readers_drop() {
        let p = parse_program(FAMILY).unwrap();
        let store = MvccClauseStore::new(&p.db, store_config(8), CommitMode::Mvcc);
        let s0 = store.begin_read();
        let s0b = store.begin_read();

        let mut txn = store.begin_write();
        txn.assert_text("f(den,kim).").unwrap();
        txn.commit();
        let depth_while_pinned = store.stash_depth();
        assert!(depth_while_pinned > 0);
        assert_eq!(store.reader_count(), 2);

        drop(s0);
        assert_eq!(
            store.stash_depth(),
            depth_while_pinned,
            "second epoch-0 reader still pins the stash"
        );
        drop(s0b);
        assert_eq!(store.stash_depth(), 0, "no reader => stash drains");
        let m = store.mvcc_stats();
        assert_eq!(m.active_readers, 0);
        assert!(m.pages_retired >= depth_while_pinned as u64);
        assert_eq!(m.commits, 1);
    }

    #[test]
    fn capacity_exhaustion_is_an_error_not_a_panic() {
        let p = parse_program("f(a,b).").unwrap();
        let cfg = PagedStoreConfig {
            geometry: Geometry {
                n_sps: 1,
                n_cylinders: 1,
                blocks_per_track: 2,
            },
            ..PagedStoreConfig::default()
        };
        let store = MvccClauseStore::new(&p.db, cfg, CommitMode::Mvcc);
        let mut txn = store.begin_write();
        txn.assert_text("f(b,c).").unwrap();
        assert_eq!(
            txn.assert_text("f(c,d)."),
            Err(MvccError::CapacityExhausted { capacity: 2 })
        );
        // The transaction is still usable and commits what fit.
        assert_eq!(txn.commit(), 1);
        let snap = store.begin_read();
        assert_eq!(snap.clause_count(), 2);
    }

    #[test]
    fn empty_transaction_does_not_bump_the_epoch() {
        let p = parse_program(FAMILY).unwrap();
        let store = MvccClauseStore::new(&p.db, store_config(4), CommitMode::Mvcc);
        let txn = store.begin_write();
        assert_eq!(txn.commit(), 0);
        assert_eq!(store.committed_epoch(), 0);
        assert_eq!(store.mvcc_stats().commits, 0);
    }

    #[test]
    fn abort_by_drop_leaves_no_trace() {
        let p = parse_program(FAMILY).unwrap();
        let store = MvccClauseStore::new(&p.db, store_config(8), CommitMode::Mvcc);
        {
            let mut txn = store.begin_write();
            txn.assert_text("f(larry,ghost).").unwrap();
            txn.retract(ClauseId(0)).unwrap();
            // dropped uncommitted
        }
        assert_eq!(store.committed_epoch(), 0);
        let snap = store.begin_read();
        assert_eq!(snap.clause_count(), p.db.len());
        assert!(parse_query_symbols(snap.symbols(), "f(larry,ghost)").is_err());
        assert_eq!(solutions(&snap, "gf(sam,G)"), vec!["G = den", "G = doug"]);
    }

    #[test]
    fn stop_the_world_mode_reaches_the_same_states() {
        let p = parse_program(FAMILY).unwrap();
        for mode in [CommitMode::Mvcc, CommitMode::StopTheWorld] {
            let store = MvccClauseStore::new(&p.db, store_config(8), mode);
            let old = store.begin_read();
            let mut txn = store.begin_write();
            txn.assert_text("f(larry,zoe).").unwrap();
            txn.retract(ClauseId(5)).unwrap();
            assert_eq!(txn.commit(), 1);
            assert_eq!(
                solutions(&old, "gf(sam,G)"),
                vec!["G = den", "G = doug"],
                "{mode:?}"
            );
            let new = store.begin_read();
            assert_eq!(
                solutions(&new, "gf(sam,G)"),
                vec!["G = doug", "G = zoe"],
                "{mode:?}"
            );
        }
    }

    #[test]
    fn cache_counters_match_the_readonly_store_at_epoch_zero() {
        // The MVCC store must be access-stream identical to the
        // read-only store until a write happens: same placement, same
        // candidate order, same hit/miss counters for the same run.
        let p = parse_program(FAMILY).unwrap();
        let cfg = store_config(2);
        let mvcc = MvccClauseStore::new(&p.db, cfg.clone(), CommitMode::Mvcc);
        let paged = crate::paged::PagedClauseStore::new(&p.db, cfg);
        let snap = mvcc.begin_read();
        for i in 0..p.db.len() {
            snap.fetch_clause(ClauseId(i as u32));
            paged.fetch_clause(ClauseId(i as u32));
        }
        let (a, b) = (mvcc.stats(), paged.stats());
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.misses, b.misses);
        assert_eq!(a.evictions, b.evictions);
        assert_eq!(a.fault_ticks, b.fault_ticks);
    }

    #[test]
    fn concurrent_readers_and_writer_never_tear() {
        // Writers churn one predicate while reader threads repeatedly
        // snapshot and verify they observe a consistent epoch: either
        // both effects of a commit (assert+retract pair) or neither.
        let p = parse_program("flag(off). other(x). ?- flag(S).").unwrap();
        let cfg = PagedStoreConfig {
            geometry: Geometry {
                n_sps: 2,
                n_cylinders: 16,
                blocks_per_track: 2,
            },
            ..PagedStoreConfig::default()
        };
        let store = MvccClauseStore::new(&p.db, cfg, CommitMode::Mvcc);
        let rounds = 30;
        std::thread::scope(|scope| {
            let store = &store;
            scope.spawn(move || {
                // Each commit retracts the current flag fact and asserts
                // the next one — exactly one flag/1 fact per epoch.
                let mut live = ClauseId(0);
                for i in 0..rounds {
                    let mut txn = store.begin_write();
                    txn.retract(live).unwrap();
                    let ids = txn
                        .assert_text(&format!("flag(state{i})."))
                        .unwrap();
                    live = ids[0];
                    txn.commit();
                }
            });
            for _ in 0..3 {
                scope.spawn(move || {
                    for _ in 0..200 {
                        let snap = store.begin_read();
                        let sols = solutions(&snap, "flag(S)");
                        assert_eq!(
                            sols.len(),
                            1,
                            "every epoch has exactly one flag fact: {sols:?}"
                        );
                    }
                });
            }
        });
        assert_eq!(store.committed_epoch(), rounds);
        assert_eq!(store.stash_depth(), 0, "all readers gone => stash drained");
    }
}
