//! First-argument bitmap clause index — `(pred, arity,
//! leading-functor-of-arg1)` → compressed clause-id bitmaps.
//!
//! This is the classic first-argument-indexing lever of Prolog engines,
//! rebuilt on the compressed bitmaps of [`bitmap`](crate::bitmap) so it
//! can live as a **per-epoch immutable structure** in the MVCC store:
//! one [`BitmapClauseIndex`] is built when a store is opened, a write
//! transaction clones and patches it copy-on-write, and commit installs
//! the new `Arc` exactly like the predicate index swap.
//!
//! The index keeps three bitmap families:
//!
//! - `pred[(f, n)]` — every clause defining predicate `f/n`;
//! - `first_arg[k]` — every clause (any predicate) whose head's first
//!   argument has [`ArgKey`] `k`;
//! - `var_headed` — every clause whose head has no first-argument key
//!   (variable first argument, or an atom head with no arguments at
//!   all), i.e. clauses no bound key can rule out.
//!
//! A goal `p(t, ...)` whose first argument dereferences (through the
//! live [`BindingLookup`]) to key `k` resolves to the **lazy**
//! intersection `pred[(p, n)] ∩ (first_arg[k] ∪ var_headed)` — ascending
//! clause-id order, which is program order, so the result is exactly the
//! subsequence of the full predicate range that first-argument filtering
//! keeps. The database's own [`arg_key`] discriminator is reused so both
//! index implementations agree on what "the leading functor" means; the
//! differential oracle tests in `tests/index_props.rs` hold them to it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use blog_logic::{arg_key, ArgKey, BindingLookup, Clause, ClauseDb, ClauseId, Sym, Term};
use serde::Serialize;

use crate::bitmap::{intersect_union, ClauseBitmap};

/// Candidate-selection policy for the paged and MVCC stores.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug, Serialize)]
pub enum IndexPolicy {
    /// Predicate range only — the pre-index baseline.
    None,
    /// Narrow by the goal's bound first argument through the bitmap
    /// index; fall back to the predicate range when unbound.
    #[default]
    FirstArg,
}

impl IndexPolicy {
    /// Stable lowercase name (for CLI flags and report rows).
    pub fn name(self) -> &'static str {
        match self {
            IndexPolicy::None => "none",
            IndexPolicy::FirstArg => "first_arg",
        }
    }
}

impl std::fmt::Display for IndexPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of an indexed candidate lookup.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IndexedCandidates {
    /// The goal cannot be narrowed (non-compound, or first argument
    /// unbound): the caller must use its full predicate range.
    Fallback,
    /// The narrowed candidate list in program order — possibly empty
    /// (unknown functor), in which case no page is ever touched.
    Narrowed(Vec<ClauseId>),
}

/// Immutable-per-epoch bitmap index over a clause snapshot.
#[derive(Clone, Default, Debug)]
pub struct BitmapClauseIndex {
    /// Predicate `(functor, arity)` → defining clauses.
    pred: HashMap<(Sym, u32), ClauseBitmap>,
    /// Head-first-argument key → clauses with that key, cross-predicate
    /// (the `pred` intersection does the per-predicate narrowing).
    first_arg: HashMap<ArgKey, ClauseBitmap>,
    /// Clauses with no head-first-argument key: match any bound key.
    var_headed: ClauseBitmap,
}

/// The head's first-argument key, `None` when the head cannot
/// discriminate (variable first argument or argument-less atom head).
fn head_first_key(clause: &Clause) -> Option<ArgKey> {
    match &clause.head {
        Term::Struct(_, args) => arg_key(&args[0]),
        _ => None,
    }
}

impl BitmapClauseIndex {
    /// Build the index over every clause currently in `db`.
    pub fn from_db(db: &ClauseDb) -> Self {
        let mut idx = Self::default();
        for (i, clause) in db.clauses().iter().enumerate() {
            idx.insert_clause(ClauseId(i as u32), clause);
        }
        idx
    }

    /// Add one clause (store build, or an assert inside a `WriteTxn`'s
    /// copy-on-write rebuild).
    pub fn insert_clause(&mut self, id: ClauseId, clause: &Clause) {
        self.pred.entry(clause.head_pred()).or_default().insert(id);
        match head_first_key(clause) {
            Some(key) => {
                self.first_arg.entry(key).or_default().insert(id);
            }
            None => {
                self.var_headed.insert(id);
            }
        }
    }

    /// Remove one clause (a retract inside a `WriteTxn`). Empty bitmap
    /// entries are dropped so unknown predicates/functors stay
    /// recognizably absent.
    pub fn remove_clause(&mut self, id: ClauseId, clause: &Clause) {
        let pred = clause.head_pred();
        if let Some(bm) = self.pred.get_mut(&pred) {
            bm.remove(id);
            if bm.is_empty() {
                self.pred.remove(&pred);
            }
        }
        match head_first_key(clause) {
            Some(key) => {
                if let Some(bm) = self.first_arg.get_mut(&key) {
                    bm.remove(id);
                    if bm.is_empty() {
                        self.first_arg.remove(&key);
                    }
                }
            }
            None => {
                self.var_headed.remove(id);
            }
        }
    }

    /// Resolve a goal's candidate clauses through the index,
    /// dereferencing its first argument through `bindings`.
    pub fn lookup(&self, goal: &Term, bindings: &dyn BindingLookup) -> IndexedCandidates {
        // Only compound goals have a first argument to index on;
        // arity-0 goals keep their full (trivial) range.
        let Term::Struct(f, args) = goal else {
            return IndexedCandidates::Fallback;
        };
        let Some(key) = arg_key(bindings.walk(&args[0])) else {
            return IndexedCandidates::Fallback;
        };
        let Some(pred_bm) = self.pred.get(&(*f, args.len() as u32)) else {
            // Unknown predicate: nothing to resolve against.
            return IndexedCandidates::Narrowed(Vec::new());
        };
        let var = (!self.var_headed.is_empty()).then_some(&self.var_headed);
        let ids = match (self.first_arg.get(&key), var) {
            // Unknown functor and no var-headed clauses: provably empty
            // before any page is touched.
            (None, None) => Vec::new(),
            (Some(by_key), var) => intersect_union(pred_bm, by_key, var).collect(),
            (None, Some(var)) => intersect_union(pred_bm, var, None).collect(),
        };
        IndexedCandidates::Narrowed(ids)
    }

    /// Number of predicate bitmaps (diagnostics).
    pub fn pred_count(&self) -> usize {
        self.pred.len()
    }

    /// Number of distinct first-argument keys (diagnostics).
    pub fn key_count(&self) -> usize {
        self.first_arg.len()
    }
}

/// Lock-free candidate-selection meters, shared by the paged and MVCC
/// stores. Candidate selection never takes the cache mutex (candidate
/// lists ride in the caller's block), so these live **outside**
/// [`TrackCache`](crate::cache::TrackCache) as plain atomics — the
/// lock-traffic meters stay an honest census of page touches.
#[derive(Default, Debug)]
pub struct IndexCounters {
    /// `candidate_clauses` calls resolved through the bitmap index.
    hits: AtomicU64,
    /// Candidates the index removed versus the full predicate range
    /// (unification attempts — and page touches — that never happened).
    prunes: AtomicU64,
    /// Candidates actually handed to engines, under either policy.
    scanned: AtomicU64,
}

impl IndexCounters {
    /// Record one indexed resolution that narrowed `full` candidates
    /// down to `kept`.
    pub fn record_indexed(&self, full: usize, kept: usize) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.prunes
            .fetch_add(full.saturating_sub(kept) as u64, Ordering::Relaxed);
        self.scanned.fetch_add(kept as u64, Ordering::Relaxed);
    }

    /// Record one unindexed (baseline or fallback) resolution returning
    /// `kept` candidates.
    pub fn record_scan(&self, kept: usize) {
        self.scanned.fetch_add(kept as u64, Ordering::Relaxed);
    }

    /// `(index_hits, index_prunes, candidates_scanned)` so far.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.prunes.load(Ordering::Relaxed),
            self.scanned.load(Ordering::Relaxed),
        )
    }

    /// Zero all three meters.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.prunes.store(0, Ordering::Relaxed);
        self.scanned.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blog_logic::{parse_program, Bindings};

    fn family_db() -> blog_logic::Program {
        parse_program(
            "
            gf(X,Z) :- f(X,Y), f(Y,Z).
            gf(X,Z) :- f(X,Y), m(Y,Z).
            f(curt,elain).  f(sam,larry).
            f(dan,pat).     f(larry,den).
            f(pat,john).    f(larry,doug).
            m(elain,john).  m(marian,elain).
            m(peg,den).     m(peg,doug).
            ?- gf(sam,G).
            ",
        )
        .unwrap()
    }

    fn lookup_ids(idx: &BitmapClauseIndex, db: &ClauseDb, goal: &str) -> IndexedCandidates {
        // Parse against a scratch copy so unseen constants (e.g. `zed`)
        // intern without mutating the caller's database.
        let mut scratch = db.clone();
        let query = blog_logic::parse_query(&mut scratch, goal).unwrap();
        idx.lookup(&query.goals[0], &Bindings::default())
    }

    #[test]
    fn bound_first_arg_narrows_to_matching_bucket() {
        let program = family_db();
        let idx = BitmapClauseIndex::from_db(&program.db);
        // f(sam, _) has exactly one matching clause: f(sam,larry), id 3.
        match lookup_ids(&idx, &program.db, "f(sam,Q)") {
            IndexedCandidates::Narrowed(ids) => assert_eq!(ids, vec![ClauseId(3)]),
            other => panic!("expected narrowed candidates, got {other:?}"),
        }
    }

    #[test]
    fn var_headed_rules_survive_any_key() {
        let program = family_db();
        let idx = BitmapClauseIndex::from_db(&program.db);
        // Both gf/2 rules have variable first arguments: any bound key
        // must keep both, in program order.
        match lookup_ids(&idx, &program.db, "gf(sam,Q)") {
            IndexedCandidates::Narrowed(ids) => {
                assert_eq!(ids, vec![ClauseId(0), ClauseId(1)]);
            }
            other => panic!("expected narrowed candidates, got {other:?}"),
        }
    }

    #[test]
    fn unbound_first_arg_falls_back() {
        let program = family_db();
        let idx = BitmapClauseIndex::from_db(&program.db);
        assert_eq!(
            lookup_ids(&idx, &program.db, "f(X,Y)"),
            IndexedCandidates::Fallback
        );
    }

    #[test]
    fn unknown_functor_short_circuits_to_empty() {
        let program = family_db();
        let idx = BitmapClauseIndex::from_db(&program.db);
        // `zed` appears nowhere as an f/2 first argument and f/2 has no
        // var-headed clauses: provably empty without touching a page.
        match lookup_ids(&idx, &program.db, "f(zed,Q)") {
            IndexedCandidates::Narrowed(ids) => assert!(ids.is_empty()),
            other => panic!("expected empty narrowed set, got {other:?}"),
        }
    }

    #[test]
    fn retract_and_assert_are_tracked() {
        let program = family_db();
        let db = &program.db;
        let mut idx = BitmapClauseIndex::from_db(db);
        // Retract f(sam,larry): the sam bucket goes empty.
        idx.remove_clause(ClauseId(3), db.clause(ClauseId(3)));
        match lookup_ids(&idx, db, "f(sam,Q)") {
            IndexedCandidates::Narrowed(ids) => assert!(ids.is_empty()),
            other => panic!("expected empty narrowed set, got {other:?}"),
        }
        // Re-assert it under a fresh id: the bucket comes back.
        idx.insert_clause(ClauseId(12), db.clause(ClauseId(3)));
        match lookup_ids(&idx, db, "f(sam,Q)") {
            IndexedCandidates::Narrowed(ids) => assert_eq!(ids, vec![ClauseId(12)]),
            other => panic!("expected narrowed candidates, got {other:?}"),
        }
    }
}
