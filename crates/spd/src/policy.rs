//! Pluggable page-replacement policies for the SPD caches.
//!
//! PR 1's T6b capacity sweep showed why replacement must be a seam, not a
//! hard-coded list: best-first expansion streams over most of the clause
//! database between revisits of any one track, and against that scan
//! pattern pure LRU gets *no* benefit from extra capacity until the whole
//! database fits (hit-rate cliff at the working-set boundary).
//! [`ReplacementPolicy`] abstracts the residency decision so
//! [`PagedClauseStore`](crate::paged::PagedClauseStore) and
//! [`Pager`](crate::pager::Pager) can swap algorithms per workload:
//!
//! | Policy | Structure | Strength |
//! |---|---|---|
//! | [`Lru`] | recency list | general-purpose; exact stack algorithm |
//! | [`TwoQ`] | A1in FIFO + A1out ghosts + Am LRU | scan-resistant: one-touch pages die in A1in, re-referenced pages earn Am |
//! | [`Clock`] | ring of reference bits | LRU approximation at O(1) space overhead per frame |
//! | [`Fifo`] | queue | cheapest possible; the pager's historical prefetch behavior |
//!
//! The trait splits the cache transition into `touch` (hit bookkeeping),
//! `evict_candidate` (victim selection) and `admit` (insertion), with a
//! provided [`access`](ReplacementPolicy::access) that sequences them and
//! keeps the [`PolicyStats`] counters. The property suite in
//! `tests/policy_props.rs` checks every implementation against a
//! brute-force reference model on arbitrary traces.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

use serde::Serialize;

use crate::lru::{LruSet, Touch};

/// Access counters every policy maintains through
/// [`ReplacementPolicy::access`].
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq, Serialize)]
pub struct PolicyStats {
    /// Accesses routed through the policy.
    pub touches: u64,
    /// Accesses that found the key resident.
    pub hits: u64,
    /// Accesses that admitted the key.
    pub misses: u64,
    /// Keys evicted to make room.
    pub evictions: u64,
}

impl PolicyStats {
    /// Hit rate in `[0, 1]` (zero when nothing was touched).
    pub fn hit_rate(&self) -> f64 {
        if self.touches == 0 {
            return 0.0;
        }
        self.hits as f64 / self.touches as f64
    }
}

/// A fixed-capacity residency set with a replacement algorithm.
///
/// The contract, checked by `tests/policy_props.rs`:
///
/// - at most [`capacity`](Self::capacity) keys are resident at any time;
/// - [`touch`](Self::touch) updates recency state for a *resident* key and
///   reports whether it was resident — it never admits. On a miss it may
///   record admission-routing state *keyed to that key* (2Q's ghost
///   promotion), consumed by a later `admit` of the same key; admitting
///   other keys in between is safe;
/// - [`evict_candidate`](Self::evict_candidate) removes and returns a
///   victim **only** when the set is full (so that one `admit` fits), and
///   the victim was resident immediately before the call;
/// - [`admit`](Self::admit) inserts an absent key; callers make room
///   first. [`access`](Self::access) is the canonical sequencing.
pub trait ReplacementPolicy<K: Eq + Hash + Copy>: fmt::Debug + Send {
    /// Short machine-readable algorithm name (`"lru"`, `"2q"`, ...).
    fn name(&self) -> &'static str;

    /// Maximum number of resident keys.
    fn capacity(&self) -> usize;

    /// Number of resident keys.
    fn len(&self) -> usize;

    /// Whether no keys are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `key` is resident (must not affect recency state).
    fn contains(&self, key: &K) -> bool;

    /// Record an access to `key`; returns `true` (a hit) iff it was
    /// resident, updating whatever recency state the algorithm keeps.
    fn touch(&mut self, key: K) -> bool;

    /// If the set is full, remove and return the key the algorithm
    /// sacrifices to make room for one admission; `None` while below
    /// capacity.
    fn evict_candidate(&mut self) -> Option<K>;

    /// Insert the absent `key` as resident.
    ///
    /// # Panics
    /// Implementations may panic if `key` is already resident or the set
    /// is full (both are caller bugs — see [`access`](Self::access)).
    fn admit(&mut self, key: K);

    /// Drop all resident keys, ghost state, and counters.
    fn clear(&mut self);

    /// The resident keys, in unspecified order (diagnostic/testing aid).
    fn resident_keys(&self) -> Vec<K>;

    /// Counters so far.
    fn stats(&self) -> PolicyStats;

    /// Mutable counters — exists so [`access`](Self::access) can be a
    /// provided method; callers should treat stats as read-only.
    fn stats_mut(&mut self) -> &mut PolicyStats;

    /// One full cache transition: touch, then on a miss evict-if-full and
    /// admit. Keeps the [`PolicyStats`] counters; the paged stores call
    /// this and nothing else.
    fn access(&mut self, key: K) -> Touch<K> {
        self.stats_mut().touches += 1;
        if self.touch(key) {
            self.stats_mut().hits += 1;
            return Touch::Hit;
        }
        let evicted = self.evict_candidate();
        self.admit(key);
        let stats = self.stats_mut();
        stats.misses += 1;
        stats.evictions += u64::from(evicted.is_some());
        Touch::Miss { evicted }
    }
}

/// Which replacement algorithm a paged store should run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize)]
pub enum PolicyKind {
    /// Exact least-recently-used ([`Lru`]).
    Lru,
    /// Scan-resistant 2Q ([`TwoQ`]).
    TwoQ,
    /// CLOCK / second-chance ([`Clock`]).
    Clock,
    /// First-in-first-out ([`Fifo`]).
    Fifo,
}

impl PolicyKind {
    /// Every selectable policy, in display order.
    pub const ALL: [PolicyKind; 4] =
        [PolicyKind::Lru, PolicyKind::TwoQ, PolicyKind::Clock, PolicyKind::Fifo];

    /// The cache policies the T6c experiment sweeps (FIFO is kept for the
    /// pager's prefetch queue, not as a clause-cache contender).
    pub const CACHE_SWEEP: [PolicyKind; 3] =
        [PolicyKind::Lru, PolicyKind::TwoQ, PolicyKind::Clock];

    /// Short name, matching [`parse`](Self::parse).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::TwoQ => "2q",
            PolicyKind::Clock => "clock",
            PolicyKind::Fifo => "fifo",
        }
    }

    /// Parse a CLI spelling (`lru`, `2q`/`twoq`, `clock`, `fifo`),
    /// case-insensitively.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Some(PolicyKind::Lru),
            "2q" | "twoq" => Some(PolicyKind::TwoQ),
            "clock" => Some(PolicyKind::Clock),
            "fifo" => Some(PolicyKind::Fifo),
            _ => None,
        }
    }

    /// Construct a fresh policy instance of this kind.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn build<K: Eq + Hash + Copy + fmt::Debug + Send + 'static>(
        self,
        capacity: usize,
    ) -> Box<dyn ReplacementPolicy<K>> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(capacity)),
            PolicyKind::TwoQ => Box::new(TwoQ::new(capacity)),
            PolicyKind::Clock => Box::new(Clock::new(capacity)),
            PolicyKind::Fifo => Box::new(Fifo::new(capacity)),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// LRU and FIFO (one list, two hit behaviors)
// ---------------------------------------------------------------------------

/// Shared implementation of the two list-ordered policies over one
/// [`LruSet`]: the only behavioral difference between exact LRU and FIFO
/// is whether a hit promotes the key to the front of the list.
/// `PROMOTE_ON_HIT` selects that at compile time so the eviction,
/// admission, and bookkeeping plumbing exists exactly once.
#[derive(Clone, Debug)]
pub struct ListPolicy<K: Eq + Hash + Copy, const PROMOTE_ON_HIT: bool> {
    set: LruSet<K>,
    stats: PolicyStats,
}

/// Exact least-recently-used replacement: the seed behavior of
/// [`PagedClauseStore`](crate::paged::PagedClauseStore), now trait-backed
/// over the same [`LruSet`].
pub type Lru<K> = ListPolicy<K, true>;

/// First-in-first-out replacement: hits never refresh position, the
/// oldest admission is always the victim. This is exactly what the
/// [`Pager`](crate::pager::Pager) did before the policy seam existed, so
/// it stays the pager's default.
pub type Fifo<K> = ListPolicy<K, false>;

impl<K: Eq + Hash + Copy, const PROMOTE_ON_HIT: bool> ListPolicy<K, PROMOTE_ON_HIT> {
    /// An empty cache of `capacity` keys.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        ListPolicy {
            set: LruSet::new(capacity),
            stats: PolicyStats::default(),
        }
    }
}

impl<K: Eq + Hash + Copy + fmt::Debug + Send, const PROMOTE_ON_HIT: bool> ReplacementPolicy<K>
    for ListPolicy<K, PROMOTE_ON_HIT>
{
    fn name(&self) -> &'static str {
        if PROMOTE_ON_HIT {
            "lru"
        } else {
            "fifo"
        }
    }

    fn capacity(&self) -> usize {
        self.set.capacity()
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.set.contains(key)
    }

    fn touch(&mut self, key: K) -> bool {
        if PROMOTE_ON_HIT {
            self.set.promote(&key)
        } else {
            self.set.contains(&key)
        }
    }

    fn evict_candidate(&mut self) -> Option<K> {
        if self.set.len() == self.set.capacity() {
            self.set.pop_lru()
        } else {
            None
        }
    }

    fn admit(&mut self, key: K) {
        self.set.insert_mru(key);
    }

    fn clear(&mut self) {
        self.set.clear();
        self.stats = PolicyStats::default();
    }

    fn resident_keys(&self) -> Vec<K> {
        self.set.iter_mru().copied().collect()
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut PolicyStats {
        &mut self.stats
    }
}

// 2Q
// ---------------------------------------------------------------------------

/// Scan-resistant 2Q replacement (Johnson & Shasha, VLDB '94, "full
/// version").
///
/// Resident keys live in one of two queues whose combined size is bounded
/// by the capacity:
///
/// - **A1in** — a FIFO holding first-touch admissions. A scan's
///   once-only pages enter here, march through, and fall off without ever
///   disturbing the hot set.
/// - **Am** — an LRU holding keys that proved their reuse: a key enters
///   Am only when it misses *while its ghost is still remembered in
///   A1out*.
///
/// **A1out** is a bounded FIFO of evicted-from-A1in *keys only* (ghosts —
/// they hold no data and do not count against capacity). It is the
/// algorithm's memory of "recently seen exactly once": a re-reference
/// within the ghost window is evidence of a reuse distance short enough
/// to protect, which a plain LRU cannot distinguish from scan traffic.
///
/// Tuning: `Kin` (A1in's nominal share) is the paper's 25% of capacity;
/// `Kout` (ghost window) is a **full capacity** of ghosts rather than the
/// paper's 50%. Ghosts store a key and nothing else, so the cost is
/// negligible, and the longer memory is what lets the window span the
/// database-wide scans best-first generates between hot-track revisits
/// (ARC makes the same trade with its ghost lists).
#[derive(Clone, Debug)]
pub struct TwoQ<K: Eq + Hash + Copy> {
    capacity: usize,
    /// Nominal A1in share; eviction drains A1in while it exceeds this.
    kin: usize,
    /// Ghost window length.
    kout: usize,
    /// First-touch FIFO (never promoted on hit).
    a1in: LruSet<K>,
    /// Proven-reuse LRU.
    am: LruSet<K>,
    /// Ghost FIFO: front = oldest. Membership mirrored in `ghost_set`.
    a1out: VecDeque<K>,
    ghost_set: HashSet<K>,
    /// Set by a [`touch`](ReplacementPolicy::touch) miss that found its
    /// key ghosted: a following `admit` of *that key* goes to Am.
    /// Resolved at miss time because the eviction making room may slide
    /// the ghost window past the key being admitted; keyed so an
    /// interleaved miss or prefetch admission of a different key can
    /// never consume another key's promotion.
    pending_am: Option<K>,
    stats: PolicyStats,
}

impl<K: Eq + Hash + Copy> TwoQ<K> {
    /// An empty 2Q cache of `capacity` resident keys.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TwoQ capacity must be nonzero");
        TwoQ {
            capacity,
            kin: (capacity / 4).max(1),
            kout: capacity,
            // Each queue is sized to the whole capacity: the *combined*
            // occupancy is what the policy bounds, and either queue may
            // transiently own every frame (e.g. a pure scan fills A1in).
            a1in: LruSet::new(capacity),
            am: LruSet::new(capacity),
            a1out: VecDeque::new(),
            ghost_set: HashSet::new(),
            pending_am: None,
            stats: PolicyStats::default(),
        }
    }

    /// Number of ghost keys currently remembered (testing aid).
    pub fn ghost_len(&self) -> usize {
        self.a1out.len()
    }

    fn remember_ghost(&mut self, key: K) {
        self.a1out.push_back(key);
        self.ghost_set.insert(key);
        while self.a1out.len() > self.kout {
            let old = self.a1out.pop_front().expect("nonempty ghost queue");
            self.ghost_set.remove(&old);
        }
    }

    fn forget_ghost(&mut self, key: &K) {
        if self.ghost_set.remove(key) {
            self.a1out.retain(|k| k != key);
        }
    }
}

impl<K: Eq + Hash + Copy + fmt::Debug + Send> ReplacementPolicy<K> for TwoQ<K> {
    fn name(&self) -> &'static str {
        "2q"
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.a1in.len() + self.am.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.a1in.contains(key) || self.am.contains(key)
    }

    fn touch(&mut self, key: K) -> bool {
        // Am hit: promote. A1in hit: leave in place — promotion out of
        // A1in happens only via the ghost path, which is what makes a
        // single scan unable to fabricate "hotness".
        if self.am.promote(&key) || self.a1in.contains(&key) {
            return true;
        }
        // Miss: resolve the admission route *now*, while the ghost
        // window still reflects the state at miss time.
        if self.ghost_set.contains(&key) {
            self.forget_ghost(&key);
            self.pending_am = Some(key);
        } else {
            self.pending_am = None;
        }
        false
    }

    fn evict_candidate(&mut self) -> Option<K> {
        if self.len() < self.capacity {
            return None;
        }
        // Drain A1in while it holds more than its nominal share (or Am
        // has nothing to give); evicted first-touch keys leave a ghost.
        if !self.a1in.is_empty() && (self.a1in.len() > self.kin || self.am.is_empty()) {
            let victim = self.a1in.pop_lru().expect("nonempty A1in");
            self.remember_ghost(victim);
            Some(victim)
        } else {
            // Am victims leave no ghost: their reuse was already proven
            // once; if they come back they re-qualify through A1in.
            self.am.pop_lru()
        }
    }

    fn admit(&mut self, key: K) {
        assert!(self.len() < self.capacity, "TwoQ::admit: set full");
        // Route decided by the preceding `touch` miss of this same key
        // (the `access` sequencing); admissions that skipped `touch` —
        // e.g. the pager prefetching a semantic page's neighbors — count
        // as first touches and land in A1in. Either way the key's ghost
        // (already consumed on the touch path, possibly stale on the
        // prefetch path) must go: resident and ghost sets stay disjoint.
        if self.pending_am == Some(key) {
            self.pending_am = None;
            self.am.insert_mru(key);
        } else {
            // A pending promotion for a *different* key survives: a
            // prefetch admission in between must not eat it.
            self.forget_ghost(&key);
            self.a1in.insert_mru(key);
        }
    }

    fn clear(&mut self) {
        self.a1in.clear();
        self.am.clear();
        self.a1out.clear();
        self.ghost_set.clear();
        self.pending_am = None;
        self.stats = PolicyStats::default();
    }

    fn resident_keys(&self) -> Vec<K> {
        self.a1in
            .iter_mru()
            .chain(self.am.iter_mru())
            .copied()
            .collect()
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut PolicyStats {
        &mut self.stats
    }
}

// ---------------------------------------------------------------------------
// CLOCK
// ---------------------------------------------------------------------------

/// CLOCK (second-chance) replacement: resident keys sit in a ring of
/// frames with one reference bit each. A hit sets the bit; the eviction
/// hand sweeps the ring, clearing set bits and evicting the first frame
/// found clear. Approximates LRU with O(1) state per frame and no list
/// maintenance on hits — the cheap choice for high-capacity configs where
/// the cache mostly hits.
#[derive(Clone, Debug)]
pub struct Clock<K: Eq + Hash + Copy> {
    capacity: usize,
    /// Ring frames; `None` is a free frame.
    frames: Vec<Option<(K, bool)>>,
    /// Key -> frame index.
    map: HashMap<K, usize>,
    /// Next frame the eviction hand examines.
    hand: usize,
    /// Free frame indices available for admission.
    free: Vec<usize>,
    stats: PolicyStats,
}

impl<K: Eq + Hash + Copy> Clock<K> {
    /// An empty CLOCK cache of `capacity` frames.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Clock capacity must be nonzero");
        Clock {
            capacity,
            frames: vec![None; capacity],
            map: HashMap::with_capacity(capacity),
            hand: 0,
            free: (0..capacity).rev().collect(),
            stats: PolicyStats::default(),
        }
    }
}

impl<K: Eq + Hash + Copy + fmt::Debug + Send> ReplacementPolicy<K> for Clock<K> {
    fn name(&self) -> &'static str {
        "clock"
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn touch(&mut self, key: K) -> bool {
        match self.map.get(&key) {
            Some(&frame) => {
                self.frames[frame]
                    .as_mut()
                    .expect("mapped frame occupied")
                    .1 = true;
                true
            }
            None => false,
        }
    }

    fn evict_candidate(&mut self) -> Option<K> {
        if self.map.len() < self.capacity {
            return None;
        }
        // Full ring: every frame is occupied, so the sweep terminates
        // within two revolutions (the first clears all set bits).
        loop {
            let frame = self.hand;
            self.hand = (self.hand + 1) % self.capacity;
            let (key, referenced) = self.frames[frame].expect("full ring has no free frames");
            if referenced {
                self.frames[frame] = Some((key, false));
            } else {
                self.frames[frame] = None;
                self.map.remove(&key);
                self.free.push(frame);
                return Some(key);
            }
        }
    }

    fn admit(&mut self, key: K) {
        assert!(!self.map.contains_key(&key), "Clock::admit: key resident");
        let frame = self.free.pop().expect("Clock::admit: set full");
        // Loading a page references it: the fresh frame starts with its
        // bit set, giving every admission one full sweep of grace.
        self.frames[frame] = Some((key, true));
        self.map.insert(key, frame);
    }

    fn clear(&mut self) {
        self.frames.fill(None);
        self.map.clear();
        self.hand = 0;
        self.free = (0..self.capacity).rev().collect();
        self.stats = PolicyStats::default();
    }

    fn resident_keys(&self) -> Vec<K> {
        self.frames.iter().flatten().map(|&(k, _)| k).collect()
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn stats_mut(&mut self) -> &mut PolicyStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replay `trace` through a fresh policy of `kind`; returns hit flags.
    fn hits(kind: PolicyKind, capacity: usize, trace: &[u32]) -> Vec<bool> {
        let mut p = kind.build::<u32>(capacity);
        trace.iter().map(|&k| p.access(k).is_hit()).collect()
    }

    #[test]
    fn lru_policy_matches_lru_set() {
        let trace: Vec<u32> = [1, 2, 3, 1, 4, 2, 5, 1, 2, 3, 4, 5, 1, 1, 2, 6, 3]
            .into_iter()
            .cycle()
            .take(120)
            .collect();
        for cap in 1..6 {
            let mut set = LruSet::new(cap);
            let mut policy = Lru::new(cap);
            for &k in &trace {
                assert_eq!(set.touch(k), policy.access(k), "cap {cap} key {k}");
            }
        }
    }

    #[test]
    fn all_policies_obey_capacity_and_counters() {
        let trace: Vec<u32> = (0..200u32).map(|i| (i * 7 + i / 3) % 23).collect();
        for kind in PolicyKind::ALL {
            for cap in [1, 2, 5, 23] {
                let mut p = kind.build::<u32>(cap);
                for &k in &trace {
                    p.access(k);
                    assert!(p.len() <= cap, "{kind} exceeded capacity {cap}");
                    assert!(p.contains(&k), "{kind}: just-accessed key absent");
                }
                let s = p.stats();
                assert_eq!(s.touches, trace.len() as u64, "{kind}");
                assert_eq!(s.hits + s.misses, s.touches, "{kind}");
                assert_eq!(p.resident_keys().len(), p.len(), "{kind}");
            }
        }
    }

    #[test]
    fn everything_hits_when_capacity_covers_the_keyspace() {
        // With capacity >= distinct keys, no policy may ever evict, so
        // every policy produces the identical (compulsory-miss-only)
        // behavior.
        let trace: Vec<u32> = (0..90u32).map(|i| i % 9).collect();
        for kind in PolicyKind::ALL {
            let h = hits(kind, 9, &trace);
            let miss_count = h.iter().filter(|&&b| !b).count();
            assert_eq!(miss_count, 9, "{kind}: only compulsory misses");
            let mut p = kind.build::<u32>(9);
            for &k in &trace {
                p.access(k);
            }
            assert_eq!(p.stats().evictions, 0, "{kind}");
        }
    }

    #[test]
    fn two_q_survives_a_scan_lru_does_not() {
        // Hot set {0,1} re-referenced around one-touch scan traffic.
        // LRU at capacity 4 loses the hot pair to the scan; 2Q parks the
        // scan in A1in and promotes the proven-hot keys to Am.
        let mut trace = Vec::new();
        let mut cold = 100u32;
        for _ in 0..40 {
            trace.push(0);
            trace.push(1);
            for _ in 0..6 {
                trace.push(cold);
                cold += 1;
            }
        }
        let count_hits =
            |kind: PolicyKind| hits(kind, 4, &trace).iter().filter(|&&b| b).count();
        let lru = count_hits(PolicyKind::Lru);
        let twoq = count_hits(PolicyKind::TwoQ);
        assert!(
            twoq > lru,
            "2Q should beat LRU on scan+hot mix: 2q={twoq} lru={lru}"
        );
    }

    #[test]
    fn two_q_prefetch_admit_drops_stale_ghost() {
        // The bounded pager admits prefetched blocks without a preceding
        // touch. Re-admitting a key whose ghost is still remembered must
        // drop that ghost, or the ghost queue and its membership set
        // drift apart on the key's next eviction.
        let mut p = TwoQ::new(4); // kin = 1
        for k in [1u32, 2, 3, 4, 5] {
            p.access(k); // 1 evicted to the ghosts; A1in: [5, 4, 3, 2]
        }
        assert!(!p.contains(&1));
        assert_eq!(p.ghost_len(), 1);
        // Prefetch-style re-admission of the ghosted key.
        assert_eq!(p.evict_candidate(), Some(2)); // ghost: [1, 2]
        p.admit(1);
        assert!(p.contains(&1));
        assert_eq!(p.ghost_len(), 1, "stale ghost of 1 must be dropped");
    }

    #[test]
    fn two_q_ghost_window_is_bounded() {
        let mut p = TwoQ::new(4); // kout = 4
        for k in 0..50u32 {
            p.access(k);
        }
        assert!(p.ghost_len() <= 4, "ghosts {} > kout", p.ghost_len());
    }

    #[test]
    fn two_q_promotes_through_the_ghost_path() {
        let mut p = TwoQ::new(4); // kin = 1, kout = 4
        for k in [1u32, 2, 3, 4] {
            p.access(k); // A1in: [4, 3, 2, 1]
        }
        p.access(5); // evicts 1 to the ghosts, A1in: [5, 4, 3, 2]
        assert!(!p.contains(&1));
        // 1 misses while ghosted: admitted straight into Am.
        assert!(!p.access(1).is_hit());
        assert!(p.contains(&1));
        // Scan traffic now churns A1in but cannot dislodge 1 from Am:
        // eviction drains A1in first while it exceeds its kin share.
        for k in 10..20u32 {
            p.access(k);
        }
        assert!(p.access(1).is_hit(), "Am key lost to scan traffic");
    }

    #[test]
    fn clock_second_chance_spares_referenced_frames() {
        let mut p = Clock::new(3);
        for k in [1u32, 2, 3] {
            p.access(k);
        }
        // Reference 1 and 2 so only 3's bit is stale after the sweep
        // clears the first pass.
        p.access(1);
        p.access(2);
        // Admitting 4 sweeps: clears 1, 2, 3 (all bits set on load /
        // re-reference)... the sweep order decides; what must hold is
        // that the victim had a clear bit when chosen and 4 is resident.
        let evicted = match p.access(4) {
            Touch::Miss { evicted } => evicted.expect("full clock evicts"),
            Touch::Hit => panic!("4 cannot hit"),
        };
        assert!(p.contains(&4));
        assert!(!p.contains(&evicted));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn clock_degenerates_to_fifo_without_rereference() {
        // With no re-references, second chance decays every bit exactly
        // once and the eviction order is admission order.
        let mut clock = Clock::new(3);
        let mut fifo = Fifo::new(3);
        for k in 0..30u32 {
            assert_eq!(clock.access(k), fifo.access(k), "key {k}");
        }
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("TwoQ"), Some(PolicyKind::TwoQ));
        assert_eq!(PolicyKind::parse("LRU"), Some(PolicyKind::Lru));
        assert_eq!(PolicyKind::parse("arc"), None);
    }

    #[test]
    fn clear_resets_residency_and_stats() {
        for kind in PolicyKind::ALL {
            let mut p = kind.build::<u32>(3);
            for k in 0..10u32 {
                p.access(k);
            }
            p.clear();
            assert_eq!(p.len(), 0, "{kind}");
            assert_eq!(p.stats(), PolicyStats::default(), "{kind}");
            assert!(!p.access(0).is_hit(), "{kind}: cleared cache must miss");
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn two_q_zero_capacity_rejected() {
        let _ = TwoQ::<u32>::new(0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn clock_zero_capacity_rejected() {
        let _ = Clock::<u32>::new(0);
    }
}
