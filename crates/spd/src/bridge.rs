//! Laying a clause database out on the SPD array.
//!
//! One block per Horn clause ("blocks representing each Horn clause"),
//! one named weighted pointer per figure-4 candidate arc: pointer name =
//! body-goal index, pointer target = resolving clause's block, pointer
//! weight = the B-LOG weight of that arc. "These blocks are much like
//! inverted files kept for each rule" (§5).

use blog_core::weight::{WeightStore, WeightView};
use blog_logic::{Caller, ClauseDb, ClauseId, PointerKey};

use crate::block::{Block, BlockId};
use crate::spd::{SpMode, SpdArray};
use crate::timing::{CostModel, Geometry};

/// The mapping between clause ids and block ids (the identity map by
/// construction, kept explicit so callers never rely on that accident).
#[derive(Clone, Debug)]
pub struct DbLayout {
    blocks: Vec<BlockId>,
}

impl DbLayout {
    /// Block storing clause `cid`.
    pub fn block_of(&self, cid: ClauseId) -> BlockId {
        self.blocks[cid.index()]
    }

    /// Number of clause blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Estimate a clause's payload in words: one word per symbol/variable
/// occurrence in head and body (the "data (possibly ASCII characters)").
fn clause_payload_words(db: &ClauseDb, cid: ClauseId) -> u32 {
    let c = db.clause(cid);
    let mut words = c.head.size();
    for g in &c.body {
        words += g.size();
    }
    words as u32
}

/// Build an SPD array holding `db`, with pointer weights drawn from
/// `weights` (pointers never touched by a search carry the unknown
/// weight, exactly like the in-memory store).
///
/// The geometry must have capacity for one block per clause.
pub fn build_spd_from_db(
    db: &ClauseDb,
    weights: &WeightStore,
    geometry: Geometry,
    cost: CostModel,
    mode: SpMode,
) -> (SpdArray, DbLayout) {
    assert!(
        db.pointers_built(),
        "ClauseDb::build_pointers must run before SPD layout"
    );
    assert!(
        geometry.capacity() as usize >= db.len(),
        "SPD geometry too small: capacity {} < {} clauses",
        geometry.capacity(),
        db.len()
    );
    let mut spd = SpdArray::new(geometry, cost, mode);
    let mut blocks = Vec::with_capacity(db.len());
    // First pass: create the blocks so ids exist for pointers.
    for i in 0..db.len() {
        let cid = ClauseId(i as u32);
        let id = spd.add_block(Block::new(clause_payload_words(db, cid)));
        blocks.push(id);
    }
    // Second pass: fill in the weighted pointers.
    let mut dummy_local = std::collections::HashMap::new();
    let view = WeightView::new(&mut dummy_local, weights);
    for i in 0..db.len() {
        let cid = ClauseId(i as u32);
        let clause = db.clause(cid);
        let mut block = spd.block(blocks[i]).clone();
        for goal_idx in 0..clause.body.len() {
            for &target in db.pointer_list(cid, goal_idx) {
                let key = PointerKey {
                    caller: Caller::Clause(cid),
                    goal_idx: goal_idx as u16,
                    target,
                };
                let w = view.effective_weight(key);
                block.push_pointer(goal_idx as u32, blocks[target.index()], w.0);
            }
        }
        spd.replace_block(blocks[i], block);
    }
    (spd, DbLayout { blocks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blog_core::weight::WeightParams;
    use blog_logic::parse_program;

    const FAMILY: &str = "
        gf(X,Z) :- f(X,Y), f(Y,Z).
        gf(X,Z) :- f(X,Y), m(Y,Z).
        f(curt,elain). f(sam,larry). f(dan,pat). f(larry,den).
        f(pat,john). f(larry,doug).
        m(elain,john). m(marian,elain). m(peg,den). m(peg,doug).
        ?- gf(sam,G).
    ";

    fn build() -> (SpdArray, DbLayout, blog_logic::Program) {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let (spd, layout) = build_spd_from_db(
            &p.db,
            &weights,
            Geometry {
                n_sps: 2,
                n_cylinders: 8,
                blocks_per_track: 2,
            },
            CostModel::default(),
            SpMode::Simd,
        );
        (spd, layout, p)
    }

    #[test]
    fn one_block_per_clause() {
        let (spd, layout, p) = build();
        assert_eq!(spd.len(), p.db.len());
        assert_eq!(layout.len(), p.db.len());
    }

    #[test]
    fn rule_blocks_carry_candidate_pointers() {
        let (spd, layout, p) = build();
        // Rule 0 (gf via f,f): goal 0 has 6 f-candidates, goal 1 too.
        let b = spd.block(layout.block_of(blog_logic::ClauseId(0)));
        assert_eq!(b.pointers_named(Some(0)).count(), 6);
        assert_eq!(b.pointers_named(Some(1)).count(), 6);
        // Facts have no pointers.
        let fact = spd.block(layout.block_of(blog_logic::ClauseId(4)));
        assert!(fact.pointers.is_empty());
        let _ = p;
    }

    #[test]
    fn fresh_weights_are_the_unknown_coding() {
        let (spd, layout, _) = build();
        let params = WeightParams::default();
        let b = spd.block(layout.block_of(blog_logic::ClauseId(0)));
        for ptr in &b.pointers {
            assert_eq!(ptr.weight, params.unknown_weight().0);
        }
    }

    #[test]
    fn paging_a_rule_pulls_its_candidates() {
        let (mut spd, layout, _) = build();
        let rule0 = layout.block_of(blog_logic::ClauseId(0));
        let page = spd.semantic_page(&crate::spd::PageRequest {
            roots: vec![rule0],
            distance: 1,
            name: None,
            weight_max: None,
        });
        // Rule 0 itself plus its 6 distinct f-fact targets.
        assert_eq!(page.blocks.len(), 7);
    }
}
