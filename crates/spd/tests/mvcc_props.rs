//! Property tests for the MVCC write path: arbitrary assert/retract/
//! snapshot schedules checked against a brute-force versioned-map model.
//!
//! The model is the obvious one — a growing `Vec` of epochs, each epoch
//! a dense `id -> Option<clause text>` map — rebuilt into a plain
//! in-memory `ClauseDb` whenever a snapshot's solution set needs
//! checking. The real store must agree with it *at every epoch a
//! snapshot holds open*, under every replacement policy and cache
//! capacity: the track cache is version-blind, so paging decisions may
//! change hit counts but never answers.
//!
//! Three families of invariants ride along on every schedule:
//!
//! - **Snapshot isolation** — a snapshot pinned at epoch E keeps
//!   returning exactly the epoch-E solution set (and clause count) no
//!   matter how many commits land after it.
//! - **Reader-epoch retirement** — the stash holds superseded page
//!   versions only while a pinned reader can still see them; once the
//!   last snapshot drops, the stash must be empty (no leak).
//! - **Version-state consistency** — `mvcc_stats()` agrees with the
//!   driver's own bookkeeping: committed epoch, active readers, stash
//!   depth, and monotone retirement counters.
//! - **Epoch-pinned indexing** — the store runs `IndexPolicy::FirstArg`,
//!   so a reader pinned at epoch E must resolve bound-first-argument
//!   candidates through E's bitmap index even after later commits churn
//!   the same functor: the candidate ids for `f(a0,Q)` are recomputed
//!   from E's clause texts at every step.
//!
//! Case counts honor the `PROPTEST_CASES` environment variable (the CI
//! profile sets a reduced count; see `.github/workflows/ci.yml`).

use std::collections::HashMap;

use blog_core::engine::{best_first_with, BestFirstConfig};
use blog_core::weight::{WeightParams, WeightStore, WeightView};
use blog_logic::{
    clause_to_source, parse_program, parse_query_symbols, Bindings, ClauseId, ClauseSource,
    Program,
};
use blog_spd::{
    CommitMode, CostModel, Geometry, IndexPolicy, MvccClauseStore, PagedStoreConfig, PolicyKind,
    Snapshot,
};
use proptest::prelude::*;

/// Seed program: two rules (never retracted) over a handful of facts.
const SEED: &str = "
    gf(X,Z) :- f(X,Y), f(Y,Z).
    gf(X,Z) :- f(X,Y), m(Y,Z).
    f(a0,b0). f(a0,b1). f(b0,c0). f(b1,c1). f(a1,b2). f(b2,c2).
    m(b2,c3).
";

/// Parents new facts attach under (all present in the seed vocabulary).
const PARENTS: [&str; 5] = ["a0", "a1", "b0", "b1", "b2"];

/// The queries every open snapshot is re-checked against.
const QUERIES: [&str; 2] = ["f(X,Y)", "gf(X,Z)"];

fn seed_program() -> Program {
    parse_program(SEED).unwrap()
}

/// Geometry with room for the seed plus every assert a schedule can make.
fn store_config(policy: PolicyKind, capacity_tracks: usize) -> PagedStoreConfig {
    PagedStoreConfig {
        geometry: Geometry {
            n_sps: 2,
            n_cylinders: 16,
            blocks_per_track: 4,
        },
        cost: CostModel::default(),
        capacity_tracks,
        policy,
        // The indexed path: schedules churn f/2 with bound first
        // arguments, so every epoch's bitmap index is exercised and the
        // solution-set assertions prove it never changes an answer.
        index: IndexPolicy::FirstArg,
        fault: None,
    }
}

// ---------------------------------------------------------------------------
// Schedule grammar
// ---------------------------------------------------------------------------

/// One mutation inside a transaction.
#[derive(Clone, Debug)]
enum TxnOp {
    /// Assert `f(<parent>, z<fresh>).` — a brand-new constant each time,
    /// so the write path's symbol interning is always exercised.
    Assert { parent: u8 },
    /// Retract the `pick % live`-th live fact (seed facts and committed
    /// asserts alike; rules are never retracted).
    Retract { pick: u8 },
}

/// One step of a schedule.
#[derive(Clone, Debug)]
enum Step {
    /// Apply these ops as one transaction and commit.
    Txn(Vec<TxnOp>),
    /// Open a snapshot at the current committed epoch.
    Open,
    /// Drop the `pick % open`-th open snapshot.
    Close { pick: u8 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // Transactions listed twice: schedules should mutate more often than
    // they pin (the vendored proptest's `prop_oneof` is unweighted).
    let op = || {
        prop_oneof![
            (0u8..5).prop_map(|parent| TxnOp::Assert { parent }),
            any::<u8>().prop_map(|pick| TxnOp::Retract { pick }),
        ]
    };
    prop_oneof![
        proptest::collection::vec(op(), 1..4).prop_map(Step::Txn),
        proptest::collection::vec(op(), 1..4).prop_map(Step::Txn),
        Just(Step::Open),
        any::<u8>().prop_map(|pick| Step::Close { pick }),
    ]
}

fn schedule_strategy() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(step_strategy(), 1..24)
}

// ---------------------------------------------------------------------------
// Brute-force versioned-map model
// ---------------------------------------------------------------------------

/// Clause texts by id at one epoch (`None` = retracted / never present).
type EpochMap = Vec<Option<String>>;

/// Sequential solutions of `query` against the clause texts of one epoch.
fn model_solutions(epoch_map: &EpochMap, query: &str) -> Vec<String> {
    let src: String = epoch_map.iter().flatten().fold(String::new(), |mut s, t| {
        s.push_str(t);
        s.push('\n');
        s
    });
    let p = parse_program(&src).expect("model program parses");
    let q = parse_query_symbols(p.db.symbols(), query).expect("model query parses");
    let weights = WeightStore::new(WeightParams::default());
    let mut local = HashMap::new();
    let mut view = WeightView::new(&mut local, &weights);
    let cfg = BestFirstConfig {
        learn: false,
        ..BestFirstConfig::default()
    };
    let r = best_first_with(&p.db, &q, &mut view, &cfg);
    let mut texts: Vec<String> = r
        .solutions
        .iter()
        .map(|s| s.solution.to_text(&p.db))
        .collect();
    texts.sort();
    texts
}

/// Solutions of `query` against a pinned snapshot.
fn snapshot_solutions(snap: &Snapshot<'_>, query: &str) -> Vec<String> {
    let q = parse_query_symbols(snap.symbols(), query).expect("snapshot query parses");
    let weights = WeightStore::new(WeightParams::default());
    let mut local = HashMap::new();
    let mut view = WeightView::new(&mut local, &weights);
    let cfg = BestFirstConfig {
        learn: false,
        ..BestFirstConfig::default()
    };
    let r = best_first_with(snap, &q, &mut view, &cfg);
    let mut texts: Vec<String> = r
        .solutions
        .iter()
        .map(|s| s.solution.to_text_syms(snap.symbols()))
        .collect();
    texts.sort();
    texts
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

/// Replay `schedule` against a real store under `(policy, capacity)` and
/// the model side by side, checking every invariant after every step.
fn check_schedule(
    policy: PolicyKind,
    capacity_tracks: usize,
    schedule: &[Step],
) -> Result<(), TestCaseError> {
    let p = seed_program();
    let store = MvccClauseStore::new(&p.db, store_config(policy, capacity_tracks), CommitMode::Mvcc);

    // The versioned map: one EpochMap per committed epoch.
    let seed_map: EpochMap = p
        .db
        .clauses()
        .iter()
        .map(|c| Some(clause_to_source(p.db.symbols(), c)))
        .collect();
    let n_rules = p
        .db
        .clauses()
        .iter()
        .filter(|c| !c.body.is_empty())
        .count();
    let mut epochs: Vec<EpochMap> = vec![seed_map];
    // Memoized model answers, keyed by (epoch, query index).
    let mut truth: HashMap<(u64, usize), Vec<String>> = HashMap::new();
    // Live *fact* ids at the committed epoch, in id order (the retract
    // pool: rules are excluded so the model programs always parse).
    let mut live_facts: Vec<u32> = (n_rules as u32..p.db.len() as u32).collect();

    let mut open: Vec<Snapshot<'_>> = Vec::new();
    let mut fresh = 0usize;
    let mut retired_before = 0u64;

    for step in schedule {
        match step {
            Step::Txn(ops) => {
                let mut txn = store.begin_write();
                prop_assert_eq!(txn.base_epoch(), (epochs.len() - 1) as u64);
                let mut next = epochs.last().unwrap().clone();
                // Retract pool for this transaction: committed live facts
                // not yet retracted in it (in-txn asserts stay off-limits
                // so the model never has to track half-committed state).
                let mut pool = live_facts.clone();
                for op in ops {
                    match op {
                        TxnOp::Assert { parent } => {
                            let text =
                                format!("f({},z{fresh}).", PARENTS[*parent as usize % PARENTS.len()]);
                            fresh += 1;
                            let ids = txn.assert_text(&text).expect("assert in bounds");
                            prop_assert_eq!(ids.len(), 1);
                            let id = ids[0].0 as usize;
                            prop_assert_eq!(id, next.len(), "ids allocate densely");
                            next.push(Some(text));
                        }
                        TxnOp::Retract { pick } => {
                            if pool.is_empty() {
                                continue;
                            }
                            let id = pool.remove(*pick as usize % pool.len());
                            txn.retract(ClauseId(id)).expect("retract of a live fact");
                            next[id as usize] = None;
                        }
                    }
                }
                if next == *epochs.last().unwrap() {
                    // Every op degenerated to a no-op (empty retract
                    // pool): the commit must not bump the epoch.
                    prop_assert_eq!(txn.commit(), (epochs.len() - 1) as u64);
                } else {
                    let committed = txn.commit();
                    prop_assert_eq!(committed, epochs.len() as u64);
                    live_facts = (n_rules..next.len())
                        .filter(|&i| next[i].is_some())
                        .map(|i| i as u32)
                        .collect();
                    epochs.push(next);
                }
            }
            Step::Open => {
                let snap = store.begin_read();
                prop_assert_eq!(snap.epoch(), (epochs.len() - 1) as u64);
                open.push(snap);
            }
            Step::Close { pick } => {
                if !open.is_empty() {
                    let i = *pick as usize % open.len();
                    drop(open.remove(i));
                }
            }
        }

        // --- Version-state consistency ---
        let stats = store.mvcc_stats();
        prop_assert_eq!(stats.committed_epoch, (epochs.len() - 1) as u64);
        prop_assert_eq!(stats.active_readers, open.len());
        prop_assert_eq!(stats.stashed_pages, store.stash_depth());
        prop_assert!(
            stats.pages_retired >= retired_before,
            "retirement counter went backwards"
        );
        retired_before = stats.pages_retired;
        prop_assert_eq!(store.committed_len(), epochs.last().unwrap().len());

        // --- Reader-epoch retirement: no readers, no stash ---
        if open.is_empty() {
            prop_assert_eq!(
                store.stash_depth(),
                0,
                "stash leaked with no pinned readers"
            );
        }

        // --- Snapshot isolation: every open snapshot still answers as
        // its epoch's sequential database ---
        for snap in &open {
            let e = snap.epoch();
            let map = &epochs[e as usize];
            prop_assert_eq!(snap.clause_count(), map.len());

            // The epoch's bitmap index, not the committed one: the
            // candidate ids for a bound first argument are exactly the
            // live `f(a0,_)` facts *of this snapshot's epoch*, in id
            // order, no matter how many commits churned `f/2` since.
            let cq = parse_query_symbols(snap.symbols(), "f(a0,Q)")
                .expect("candidate probe parses");
            let got: Vec<u32> = snap
                .candidate_clauses(&cq.goals[0], &Bindings::new())
                .iter()
                .map(|c| c.0)
                .collect();
            let want: Vec<u32> = map
                .iter()
                .enumerate()
                .filter(|(_, t)| t.as_deref().is_some_and(|t| t.starts_with("f(a0,")))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(
                got,
                want,
                "{}@{}: epoch {} candidate set diverged",
                policy,
                capacity_tracks,
                e
            );
            for (qi, query) in QUERIES.iter().enumerate() {
                let expect = truth
                    .entry((e, qi))
                    .or_insert_with(|| model_solutions(map, query));
                let got = snapshot_solutions(snap, query);
                prop_assert_eq!(
                    &got,
                    expect,
                    "{}@{}: epoch {} diverged on {}",
                    policy,
                    capacity_tracks,
                    e,
                    query
                );
            }
        }
    }

    drop(open);
    prop_assert_eq!(store.reader_count(), 0);
    prop_assert_eq!(store.stash_depth(), 0, "stash leaked after final drop");
    Ok(())
}

proptest! {
    // 256 schedules locally (the ISSUE's >= 200 seeded interleavings);
    // `PROPTEST_CASES` still caps this downward for the CI profile.
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The full invariant battery on arbitrary schedules, across every
    /// replacement policy at an arbitrary (small) cache capacity. The
    /// cache is version-blind: answers must be identical under all four.
    #[test]
    fn schedules_match_the_versioned_map_model(
        capacity in 1usize..=6,
        schedule in schedule_strategy(),
    ) {
        for kind in PolicyKind::ALL {
            check_schedule(kind, capacity, &schedule)?;
        }
    }

    /// Interleaved pins: a snapshot opened before a run of commits keeps
    /// the seed answers while a snapshot opened after sees the final
    /// ones — at every policy, with the cache thrashing at capacity 1.
    #[test]
    fn oldest_pin_survives_any_commit_run(
        n_commits in 1usize..=12,
    ) {
        let p = seed_program();
        for kind in PolicyKind::ALL {
            let store = MvccClauseStore::new(&p.db, store_config(kind, 1), CommitMode::Mvcc);
            let old = store.begin_read();
            let before = snapshot_solutions(&old, "f(X,Y)");
            for i in 0..n_commits {
                let mut txn = store.begin_write();
                txn.assert_text(&format!("f(a0,w{i}).")).unwrap();
                txn.commit();
            }
            prop_assert_eq!(
                snapshot_solutions(&old, "f(X,Y)"),
                before,
                "{}: pinned snapshot drifted",
                kind
            );
            let new = store.begin_read();
            prop_assert_eq!(new.epoch(), n_commits as u64);
            prop_assert_eq!(
                snapshot_solutions(&new, "f(X,Y)").len(),
                before.len() + n_commits
            );
        }
    }
}
