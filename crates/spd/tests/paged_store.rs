//! Integration tests for the paged clause-store backend: the best-first
//! engine must see *exactly* the in-memory database's semantics through
//! the cache, while the cache reports the search's real paging behavior.

use std::collections::HashMap;

use blog_core::engine::{best_first, best_first_with, BestFirstConfig};
use blog_core::weight::{WeightParams, WeightStore, WeightView};
use blog_logic::{parse_program, ClauseId, Program};
use blog_spd::{CostModel, Geometry, PagedClauseStore, PagedStoreConfig};
use blog_workloads::{family_program, FamilyParams, PAPER_FIGURE_1};

fn paged_config(capacity_tracks: usize, blocks_per_track: u32, n_clauses: usize) -> PagedStoreConfig {
    let tracks_needed = (n_clauses as u32).div_ceil(blocks_per_track);
    PagedStoreConfig {
        geometry: Geometry {
            n_sps: 2,
            n_cylinders: tracks_needed.div_ceil(2).max(1),
            blocks_per_track,
        },
        cost: CostModel::default(),
        capacity_tracks,
    }
}

/// Solutions of a fresh (untrained) best-first run over the plain db.
fn reference_solutions(program: &Program) -> Vec<String> {
    let store = WeightStore::new(WeightParams::default());
    let mut local = HashMap::new();
    let mut view = WeightView::new(&mut local, &store);
    let r = best_first(
        &program.db,
        &program.queries[0],
        &mut view,
        &BestFirstConfig::default(),
    );
    let mut texts = r.solution_texts(&program.db);
    texts.sort();
    texts
}

/// Solutions of the same run routed through a paged store, plus its stats.
fn paged_solutions(
    program: &Program,
    cfg: PagedStoreConfig,
) -> (Vec<String>, blog_spd::PagedStoreStats) {
    let paged = PagedClauseStore::new(&program.db, cfg);
    let store = WeightStore::new(WeightParams::default());
    let mut local = HashMap::new();
    let mut view = WeightView::new(&mut local, &store);
    let r = best_first_with(
        &paged,
        &program.queries[0],
        &mut view,
        &BestFirstConfig::default(),
    );
    let mut texts = r.solution_texts(&program.db);
    texts.sort();
    (texts, paged.stats())
}

#[test]
fn figure_1_solutions_identical_with_live_cache_stats() {
    // The ISSUE's acceptance criterion: identical solutions to the
    // in-memory ClauseDb on the paper's figure-1 program, with nonzero
    // hit AND miss counts proving the cache actually mediated the search.
    let program = parse_program(PAPER_FIGURE_1).unwrap();
    let expected = reference_solutions(&program);
    assert_eq!(expected.len(), 2, "figure 1 has solutions den and doug");

    let (got, stats) = paged_solutions(&program, paged_config(2, 2, program.db.len()));
    assert_eq!(got, expected);
    assert!(stats.hits > 0, "expected cache hits, got {stats:?}");
    assert!(stats.misses > 0, "expected cache misses, got {stats:?}");
    assert!(stats.fault_ticks > 0, "faults must cost ticks: {stats:?}");
}

#[test]
fn eviction_is_semantically_invisible() {
    // A single-track cache thrashes constantly; solutions must not change.
    let (program, _) = family_program(&FamilyParams {
        generations: 4,
        branching: 3,
        seed: 7,
        ..FamilyParams::default()
    });
    let expected = reference_solutions(&program);

    let (got, stats) = paged_solutions(&program, paged_config(1, 2, program.db.len()));
    assert_eq!(got, expected, "thrashing cache changed the solution set");
    assert!(
        stats.evictions > 0,
        "single-track cache over {} clauses must evict: {stats:?}",
        program.db.len()
    );
}

#[test]
fn hit_rate_is_monotone_in_capacity() {
    // LRU is a stack algorithm, so for the identical access stream the
    // hit count can only grow with capacity. The stream *is* identical at
    // every capacity because paging never alters the search.
    let (program, _) = family_program(&FamilyParams {
        generations: 4,
        branching: 3,
        seed: 7,
        ..FamilyParams::default()
    });
    let mut last_hits = 0u64;
    let mut accesses = None;
    for capacity in [1, 2, 4, 8, 16] {
        let (_, stats) = paged_solutions(&program, paged_config(capacity, 2, program.db.len()));
        assert!(
            stats.hits >= last_hits,
            "hits dropped from {last_hits} to {} at capacity {capacity}",
            stats.hits
        );
        last_hits = stats.hits;
        // Same search => same number of clause touches at every capacity.
        match accesses {
            None => accesses = Some(stats.accesses),
            Some(a) => assert_eq!(a, stats.accesses, "access stream changed with capacity"),
        }
    }
    assert!(last_hits > 0, "largest cache should finally hit");
}

#[test]
fn figure_1_trace_replay_smoke() {
    // Record the engine's clause-touch order on figure 1, then replay it
    // through a fresh store: replay must see the same access count as a
    // live run at the same capacity, and a warm second replay must hit
    // more than the cold first.
    let program = parse_program(PAPER_FIGURE_1).unwrap();
    let cfg = paged_config(2, 2, program.db.len());

    // Live run, capturing the access stream via a tracing wrapper run.
    let paged = PagedClauseStore::new(&program.db, cfg);
    let store = WeightStore::new(WeightParams::default());
    let mut local = HashMap::new();
    let mut view = WeightView::new(&mut local, &store);
    let trace_cfg = BestFirstConfig {
        record_trace: true,
        ..BestFirstConfig::default()
    };
    let r = best_first_with(&paged, &program.queries[0], &mut view, &trace_cfg);
    assert!(!r.trace.is_empty(), "record_trace must capture arcs");
    let live = paged.stats();

    // Replay the popped-arc trace (a subset of all touches: one per
    // expanded chain) against a fresh store.
    let trace: Vec<ClauseId> = r.trace.iter().map(|arc| arc.target).collect();
    let fresh = PagedClauseStore::new(&program.db, cfg);
    let cold = fresh.replay(&trace);
    assert_eq!(cold.accesses, trace.len() as u64);
    assert!(cold.misses > 0);
    assert!(cold.accesses < live.accesses, "popped-arc trace is sparser");

    // Warm replay: residency carries over, so hits can only improve.
    let before_hits = cold.hits;
    let warm = fresh.replay(&trace);
    assert!(
        warm.hits - before_hits >= before_hits,
        "warm replay should hit at least as often as the cold one: {warm:?}"
    );
}

#[test]
fn learning_through_the_cache_matches_learning_without() {
    // Two trained runs (learn on) must produce the same node counts and
    // solutions whether or not the clauses come through the cache: the
    // cache must not perturb weight updates either.
    let program = parse_program(PAPER_FIGURE_1).unwrap();
    let cfg = BestFirstConfig::default();

    let run_plain = || {
        let store = WeightStore::new(WeightParams::default());
        let mut local = HashMap::new();
        let first = {
            let mut view = WeightView::new(&mut local, &store);
            best_first(&program.db, &program.queries[0], &mut view, &cfg)
        };
        let mut view = WeightView::new(&mut local, &store);
        let second = best_first(&program.db, &program.queries[0], &mut view, &cfg);
        (first.stats.nodes_expanded, second.stats.nodes_expanded)
    };
    let run_paged = || {
        let paged = PagedClauseStore::new(&program.db, paged_config(2, 2, program.db.len()));
        let store = WeightStore::new(WeightParams::default());
        let mut local = HashMap::new();
        let first = {
            let mut view = WeightView::new(&mut local, &store);
            best_first_with(&paged, &program.queries[0], &mut view, &cfg)
        };
        let mut view = WeightView::new(&mut local, &store);
        let second = best_first_with(&paged, &program.queries[0], &mut view, &cfg);
        (first.stats.nodes_expanded, second.stats.nodes_expanded)
    };

    assert_eq!(run_plain(), run_paged());
}
