//! Integration tests for the paged clause-store backend: the best-first
//! engine must see *exactly* the in-memory database's semantics through
//! the cache — under every replacement policy — while the cache reports
//! the search's real paging behavior.

mod support;

use std::collections::HashMap;

use blog_core::engine::{best_first_with, BestFirstConfig};
use blog_core::weight::{WeightParams, WeightStore, WeightView};
use blog_logic::ClauseId;
use blog_spd::{PagedClauseStore, PolicyKind};

use support::{
    family_workload, figure_1_program, paged_config, paged_solutions, reference_solutions,
};

#[test]
fn figure_1_solutions_identical_with_live_cache_stats() {
    // The PR-1 acceptance criterion: identical solutions to the
    // in-memory ClauseDb on the paper's figure-1 program, with nonzero
    // hit AND miss counts proving the cache actually mediated the search.
    let program = figure_1_program();
    let expected = reference_solutions(&program);
    assert_eq!(expected.len(), 2, "figure 1 has solutions den and doug");

    let (got, stats) = paged_solutions(
        &program,
        paged_config(PolicyKind::Lru, 2, 2, program.db.len()),
    );
    assert_eq!(got, expected);
    assert!(stats.hits > 0, "expected cache hits, got {stats:?}");
    assert!(stats.misses > 0, "expected cache misses, got {stats:?}");
    assert!(stats.fault_ticks > 0, "faults must cost ticks: {stats:?}");
}

#[test]
fn every_policy_is_semantically_transparent() {
    // This PR's acceptance criterion: whatever the replacement policy,
    // the engine's results must be identical to the unpaged ClauseDb
    // path — on the paper's program and on a generated workload, at a
    // thrashing capacity and at a comfortable one.
    for program in [figure_1_program(), family_workload()] {
        let expected = reference_solutions(&program);
        for policy in PolicyKind::ALL {
            for capacity in [1, 4] {
                let (got, stats) = paged_solutions(
                    &program,
                    paged_config(policy, capacity, 2, program.db.len()),
                );
                assert_eq!(
                    got, expected,
                    "policy {policy} at capacity {capacity} changed the solution set"
                );
                assert!(stats.accesses > 0, "{policy}: cache saw no accesses");
            }
        }
    }
}

#[test]
fn access_stream_is_policy_invariant() {
    // Transparency has a sharper corollary: since no policy may alter
    // the search, every policy sees the *identical* access stream — same
    // count, same hit+miss split.
    let program = family_workload();
    let mut accesses = None;
    for policy in PolicyKind::ALL {
        let (_, stats) = paged_solutions(
            &program,
            paged_config(policy, 4, 2, program.db.len()),
        );
        assert_eq!(stats.hits + stats.misses, stats.accesses, "{policy}");
        match accesses {
            None => accesses = Some(stats.accesses),
            Some(a) => assert_eq!(a, stats.accesses, "{policy} changed the stream"),
        }
    }
}

#[test]
fn eviction_is_semantically_invisible() {
    // A single-track cache thrashes constantly; solutions must not change.
    let program = family_workload();
    let expected = reference_solutions(&program);

    let (got, stats) = paged_solutions(
        &program,
        paged_config(PolicyKind::Lru, 1, 2, program.db.len()),
    );
    assert_eq!(got, expected, "thrashing cache changed the solution set");
    assert!(
        stats.evictions > 0,
        "single-track cache over {} clauses must evict: {stats:?}",
        program.db.len()
    );
}

#[test]
fn hit_rate_is_monotone_in_capacity() {
    // LRU is a stack algorithm, so for the identical access stream the
    // hit count can only grow with capacity. The stream *is* identical at
    // every capacity because paging never alters the search. (2Q and
    // CLOCK are deliberately *not* stack algorithms — this only holds
    // for LRU.)
    let program = family_workload();
    let mut last_hits = 0u64;
    let mut accesses = None;
    for capacity in [1, 2, 4, 8, 16] {
        let (_, stats) = paged_solutions(
            &program,
            paged_config(PolicyKind::Lru, capacity, 2, program.db.len()),
        );
        assert!(
            stats.hits >= last_hits,
            "hits dropped from {last_hits} to {} at capacity {capacity}",
            stats.hits
        );
        last_hits = stats.hits;
        // Same search => same number of clause touches at every capacity.
        match accesses {
            None => accesses = Some(stats.accesses),
            Some(a) => assert_eq!(a, stats.accesses, "access stream changed with capacity"),
        }
    }
    assert!(last_hits > 0, "largest cache should finally hit");
}

#[test]
fn figure_1_trace_replay_smoke() {
    // Record the engine's clause-touch order on figure 1, then replay it
    // through a fresh store: replay must see the same access count as a
    // live run at the same capacity, and a warm second replay must hit
    // more than the cold first.
    let program = figure_1_program();
    let cfg = paged_config(PolicyKind::Lru, 2, 2, program.db.len());

    // Live run, capturing the access stream via a tracing wrapper run.
    let paged = PagedClauseStore::new(&program.db, cfg.clone());
    let store = WeightStore::new(WeightParams::default());
    let mut local = HashMap::new();
    let mut view = WeightView::new(&mut local, &store);
    let trace_cfg = BestFirstConfig {
        record_trace: true,
        ..BestFirstConfig::default()
    };
    let r = best_first_with(&paged, &program.queries[0], &mut view, &trace_cfg);
    assert!(!r.trace.is_empty(), "record_trace must capture arcs");
    let live = paged.stats();

    // Replay the popped-arc trace (a subset of all touches: one per
    // expanded chain) against a fresh store.
    let trace: Vec<ClauseId> = r.trace.iter().map(|arc| arc.target).collect();
    let fresh = PagedClauseStore::new(&program.db, cfg);
    let cold = fresh.replay(&trace);
    assert_eq!(cold.accesses, trace.len() as u64);
    assert!(cold.misses > 0);
    assert!(cold.accesses < live.accesses, "popped-arc trace is sparser");

    // Warm replay: residency carries over, so hits can only improve.
    let before_hits = cold.hits;
    let warm = fresh.replay(&trace);
    assert!(
        warm.hits - before_hits >= before_hits,
        "warm replay should hit at least as often as the cold one: {warm:?}"
    );
}

#[test]
fn learning_through_the_cache_matches_learning_without() {
    // Two trained runs (learn on) must produce the same node counts and
    // solutions whether or not the clauses come through the cache —
    // under every policy: the cache must not perturb weight updates
    // either.
    let program = figure_1_program();
    let cfg = BestFirstConfig::default();

    let run_plain = || {
        let store = WeightStore::new(WeightParams::default());
        let mut local = HashMap::new();
        let first = {
            let mut view = WeightView::new(&mut local, &store);
            blog_core::engine::best_first(&program.db, &program.queries[0], &mut view, &cfg)
        };
        let mut view = WeightView::new(&mut local, &store);
        let second =
            blog_core::engine::best_first(&program.db, &program.queries[0], &mut view, &cfg);
        (first.stats.nodes_expanded, second.stats.nodes_expanded)
    };
    let run_paged = |policy: PolicyKind| {
        let paged = PagedClauseStore::new(
            &program.db,
            paged_config(policy, 2, 2, program.db.len()),
        );
        let store = WeightStore::new(WeightParams::default());
        let mut local = HashMap::new();
        let first = {
            let mut view = WeightView::new(&mut local, &store);
            best_first_with(&paged, &program.queries[0], &mut view, &cfg)
        };
        let mut view = WeightView::new(&mut local, &store);
        let second = best_first_with(&paged, &program.queries[0], &mut view, &cfg);
        (first.stats.nodes_expanded, second.stats.nodes_expanded)
    };

    let plain = run_plain();
    for policy in PolicyKind::ALL {
        assert_eq!(plain, run_paged(policy), "policy {policy}");
    }
}
