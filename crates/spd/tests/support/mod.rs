//! Shared builders for the `blog-spd` integration tests.
//!
//! `paged_store.rs`, `policy_props.rs`, and `trace_replay.rs` all need
//! the same plumbing — a store config sized to a clause database, a
//! reference best-first run over the unpaged `ClauseDb`, the same run
//! routed through a `PagedClauseStore`, and a way to record the clause
//! stream a search actually fetches. It lives here once instead of
//! inline in each test file.
//!
//! Each test crate uses a subset of these helpers, so the module as a
//! whole allows dead code.
#![allow(dead_code)]

use std::collections::HashMap;
use std::sync::Mutex;

use blog_core::engine::{best_first, best_first_with, BestFirstConfig};
use blog_core::weight::{WeightParams, WeightStore, WeightView};
use blog_logic::{
    parse_program, BindingLookup, Clause, ClauseDb, ClauseId, ClauseSource, Program, Term,
};
use blog_spd::{CostModel, Geometry, IndexPolicy, PagedClauseStore, PagedStoreConfig, PolicyKind};
use blog_workloads::{
    family_program, queens_program, FamilyParams, QueensParams, PAPER_FIGURE_1,
};
use std::borrow::Cow;

/// A store config whose geometry is just big enough for `n_clauses` at
/// the given track width, split over two SPs.
pub fn paged_config(
    policy: PolicyKind,
    capacity_tracks: usize,
    blocks_per_track: u32,
    n_clauses: usize,
) -> PagedStoreConfig {
    let tracks_needed = (n_clauses as u32).div_ceil(blocks_per_track);
    PagedStoreConfig {
        geometry: Geometry {
            n_sps: 2,
            n_cylinders: tracks_needed.div_ceil(2).max(1),
            blocks_per_track,
        },
        cost: CostModel::default(),
        capacity_tracks,
        policy,
        // Pinned off: the goldens and counter assertions that predate the
        // first-argument index were recorded against full predicate
        // ranges. Indexed tests opt in with `.with_index(...)`.
        index: IndexPolicy::None,
        fault: None,
    }
}

/// Shrink-friendly clause-id set generator for the bitmap model tests
/// (`index_props.rs`). The mix matters: dense low ids exercise packed
/// leaf words, the 4 000–4 200 band straddles the 4 096-id summary-word
/// boundary, and the wide band leaves empty summary words in the middle
/// of the tree. Sets shrink toward small-and-low, so failures minimize
/// to a handful of ids.
///
/// Full `proptest::` paths on purpose: this module is compiled into
/// test crates that do not otherwise import proptest, and a top-level
/// `use` would trip their unused-import lint.
pub fn arb_clause_ids(
) -> impl proptest::Strategy<Value = std::collections::BTreeSet<u32>> {
    proptest::collection::btree_set(
        proptest::prop_oneof![
            0u32..200,
            4_000u32..4_200,
            0u32..50_000,
        ],
        0..64,
    )
}

/// The paper's figure-1 program.
pub fn figure_1_program() -> Program {
    parse_program(PAPER_FIGURE_1).unwrap()
}

/// The standard scaled family workload these tests share (the same
/// parameters `paged_store.rs` has used since PR 1).
pub fn family_workload() -> Program {
    let (program, _) = family_program(&FamilyParams {
        generations: 4,
        branching: 3,
        seed: 7,
        ..FamilyParams::default()
    });
    program
}

/// A queens instance small enough for per-policy trace replay but large
/// enough to spread over many tracks.
pub fn queens_workload() -> Program {
    let (program, _) = queens_program(&QueensParams { n: 5 });
    program
}

/// Solutions of a fresh (untrained) best-first run over the plain db.
pub fn reference_solutions(program: &Program) -> Vec<String> {
    let store = WeightStore::new(WeightParams::default());
    let mut local = HashMap::new();
    let mut view = WeightView::new(&mut local, &store);
    let r = best_first(
        &program.db,
        &program.queries[0],
        &mut view,
        &BestFirstConfig::default(),
    );
    let mut texts = r.solution_texts(&program.db);
    texts.sort();
    texts
}

/// Solutions of the same run routed through a paged store, plus its stats.
pub fn paged_solutions(
    program: &Program,
    cfg: PagedStoreConfig,
) -> (Vec<String>, blog_spd::PagedStoreStats) {
    let paged = PagedClauseStore::new(&program.db, cfg);
    let store = WeightStore::new(WeightParams::default());
    let mut local = HashMap::new();
    let mut view = WeightView::new(&mut local, &store);
    let r = best_first_with(
        &paged,
        &program.queries[0],
        &mut view,
        &BestFirstConfig::default(),
    );
    let mut texts = r.solution_texts(&program.db);
    texts.sort();
    (texts, paged.stats())
}

/// A transparent [`ClauseSource`] over a [`ClauseDb`] that records every
/// clause fetch, in order — the access stream a paged store would see.
pub struct RecordingSource<'a> {
    db: &'a ClauseDb,
    trace: Mutex<Vec<ClauseId>>,
}

impl<'a> RecordingSource<'a> {
    pub fn new(db: &'a ClauseDb) -> Self {
        RecordingSource {
            db,
            trace: Mutex::new(Vec::new()),
        }
    }

    /// The fetches recorded so far, in access order.
    pub fn trace(&self) -> Vec<ClauseId> {
        self.trace.lock().unwrap().clone()
    }
}

impl ClauseSource for RecordingSource<'_> {
    fn try_fetch_clause(&self, id: ClauseId) -> Result<&Clause, blog_logic::StoreError> {
        self.trace.lock().unwrap().push(id);
        Ok(self.db.clause(id))
    }

    fn try_candidate_clauses<'a>(
        &'a self,
        goal: &Term,
        bindings: &dyn BindingLookup,
    ) -> Result<Cow<'a, [ClauseId]>, blog_logic::StoreError> {
        Ok(self.db.candidates_for_resolved(goal, bindings))
    }

    fn clause_count(&self) -> usize {
        self.db.len()
    }
}

/// The clause-fetch stream of an untrained best-first run on `program`'s
/// first query.
pub fn record_access_trace(program: &Program) -> Vec<ClauseId> {
    let recorder = RecordingSource::new(&program.db);
    let store = WeightStore::new(WeightParams::default());
    let mut local = HashMap::new();
    let mut view = WeightView::new(&mut local, &store);
    best_first_with(
        &recorder,
        &program.queries[0],
        &mut view,
        &BestFirstConfig::default(),
    );
    recorder.trace()
}
