//! Differential index-oracle battery for the first-argument bitmap
//! index.
//!
//! The index is an *optimization contract*: for any program and any
//! goal, the candidate list a store hands the engines must be exactly
//! what a brute-force scan of the predicate range — keeping every
//! clause whose raw head first-argument key is absent or equal to the
//! goal's dereferenced key — would produce, in the same (program)
//! order. Three independent implementations are held to that single
//! oracle on generated programs and goal streams:
//!
//! - the bitmap index inside `PagedClauseStore` (`IndexPolicy::FirstArg`),
//!   across all four replacement policies;
//! - the per-epoch bitmap index inside an `MvccClauseStore` snapshot;
//! - the `ClauseDb`'s own merge-based `FirstArgIndex`
//!   (`IndexMode::FirstArg`).
//!
//! Baseline stores (`IndexPolicy::None`) must keep returning the full
//! predicate range untouched. Goals arrive with their first argument
//! ground in the source text, bound through a flat [`Bindings`] chain,
//! bound through live [`DeltaBindings`], bound through a frozen
//! [`BindingFrame`] (both `StateRepr`s' read paths), or unbound — the
//! unbound forms must fall back to the full range, which is the
//! satellite regression: a variable-headed goal sees *every* clause.
//!
//! Also here: the `ClauseBitmap` vs `BTreeSet` model property on the
//! shared shrink-friendly id generator, and engine-level runs proving
//! solution sets are index-invariant under both `StateRepr`s.
//!
//! Case counts honor the `PROPTEST_CASES` environment variable (the CI
//! profile sets a reduced count; see `.github/workflows/ci.yml`).

mod support;

use std::collections::{BTreeSet, HashMap};

use blog_core::engine::{best_first_with, BestFirstConfig};
use blog_core::weight::{WeightParams, WeightStore, WeightView};
use blog_logic::{
    arg_key, parse_program, parse_query, BindingFrame, BindingLookup, BindingWrite, Bindings,
    ClauseDb, ClauseId, ClauseSource, DeltaBindings, IndexMode, Program, SolveConfig, StateRepr,
    Term, Trail, VarId, DEFAULT_FLATTEN_THRESHOLD,
};
use blog_spd::{
    ClauseBitmap, CommitMode, IndexPolicy, MvccClauseStore, PagedClauseStore, PolicyKind,
};
use proptest::prelude::*;

use support::{arb_clause_ids, paged_config};

// ---------------------------------------------------------------------------
// Bitmap vs BTreeSet model
// ---------------------------------------------------------------------------

fn bitmap_of(ids: &BTreeSet<u32>) -> ClauseBitmap {
    ClauseBitmap::from_ids(ids.iter().map(|&i| ClauseId(i)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Insert/remove/contains/len/iter against the obvious model.
    #[test]
    fn bitmap_matches_btreeset_model(ids in arb_clause_ids(), removals in arb_clause_ids()) {
        let mut bm = bitmap_of(&ids);
        let mut model = ids.clone();
        prop_assert_eq!(bm.len(), model.len());

        for r in &removals {
            prop_assert_eq!(bm.remove(ClauseId(*r)), model.remove(r));
        }
        prop_assert_eq!(bm.len(), model.len());
        prop_assert_eq!(bm.is_empty(), model.is_empty());

        // Membership agrees on every id we ever mentioned (hits and
        // misses both), and iteration is exactly the sorted model.
        for probe in ids.iter().chain(removals.iter()) {
            prop_assert_eq!(bm.contains(ClauseId(*probe)), model.contains(probe));
        }
        let got: Vec<u32> = bm.iter().map(|c| c.0).collect();
        let want: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(got, want);

        // Re-inserting everything removed restores the original set.
        for r in &removals {
            bm.insert(ClauseId(*r));
            model.insert(*r);
        }
        if model == ids {
            let got: Vec<u32> = bm.iter().map(|c| c.0).collect();
            let want: Vec<u32> = ids.iter().copied().collect();
            prop_assert_eq!(got, want);
        }
    }

    /// The lazy `a ∩ (b ∪ c)` iterator against set algebra on the model.
    #[test]
    fn intersect_union_matches_model(
        a in arb_clause_ids(),
        b in arb_clause_ids(),
        c in arb_clause_ids(),
    ) {
        let (bm_a, bm_b, bm_c) = (bitmap_of(&a), bitmap_of(&b), bitmap_of(&c));

        let got: Vec<u32> = blog_spd::intersect_union(&bm_a, &bm_b, Some(&bm_c))
            .map(|id| id.0)
            .collect();
        let want: Vec<u32> = a
            .iter()
            .filter(|i| b.contains(i) || c.contains(i))
            .copied()
            .collect();
        prop_assert_eq!(got, want);

        let got2: Vec<u32> = blog_spd::intersect_union(&bm_a, &bm_b, None)
            .map(|id| id.0)
            .collect();
        let want2: Vec<u32> = a.intersection(&b).copied().collect();
        prop_assert_eq!(got2, want2);
    }
}

// ---------------------------------------------------------------------------
// Generated programs + goal streams
// ---------------------------------------------------------------------------

const ATOMS: [&str; 4] = ["a", "b", "c", "d"];

/// Predicates the generator defines; goal selectors beyond this table
/// produce unknown-predicate / wrong-arity probes.
const PREDS: [(&str, usize); 3] = [("p", 2), ("q", 1), ("r", 3)];

/// Render the head first-argument for clause `ci` from selector `sel`.
///
/// The table covers every [`blog_logic::ArgKey`] shape plus the two
/// unkeyed forms: atoms, ints, structs of two arities, a struct with a
/// variable *inside* (still keyed — the key is the principal functor
/// only), and a bare variable (unkeyed: matches any goal key).
fn first_arg_src(sel: u8, ci: usize) -> String {
    match sel % 12 {
        s @ 0..=3 => ATOMS[s as usize].to_string(),
        s @ 4..=6 => format!("{}", s - 4),
        7 => "s(a)".to_string(),
        8 => "s(b)".to_string(),
        9 => "t(a, z)".to_string(),
        10 => format!("s(W{ci})"),
        _ => format!("V{ci}"),
    }
}

/// Render one generated clause as source text.
fn clause_src(pred_sel: u8, arg_sel: u8, ci: usize) -> String {
    let (name, arity) = PREDS[pred_sel as usize % PREDS.len()];
    let mut args = vec![first_arg_src(arg_sel, ci)];
    args.extend((1..arity).map(|_| "z".to_string()));
    format!("{name}({}).\n", args.join(", "))
}

/// Render one goal's source text with the first argument spelled
/// `first` (a ground key, or a variable name). Selectors past the known
/// predicates probe an unknown predicate and a wrong arity.
fn goal_src(pred_sel: u8, first: &str) -> String {
    match pred_sel % 5 {
        s @ 0..=2 => {
            let (name, arity) = PREDS[s as usize];
            let mut args = vec![first.to_string()];
            args.extend((1..arity).map(|i| format!("G{i}")));
            format!("{name}({})", args.join(", "))
        }
        3 => format!("nosuch({first})"),
        // p/1 — right functor, wrong arity: a distinct predicate.
        _ => format!("p({first})"),
    }
}

/// Goal first-argument selectors reuse the clause table and extend it
/// with keys no clause head uses (unknown atom / int / struct).
fn goal_first_src(sel: u8) -> String {
    match sel % 15 {
        12 => "zed".to_string(),
        13 => "99".to_string(),
        14 => "u(a)".to_string(),
        s => first_arg_src(s, 9000),
    }
}

/// The brute-force oracle: the full predicate range, filtered by the
/// goal's dereferenced first-argument key against each clause's **raw**
/// head key (clause variables are clause-local — they are never
/// dereferenced through the goal's bindings). Unkeyed heads survive any
/// goal key; an unkeyed goal keeps the full range.
fn oracle_candidates(db: &ClauseDb, goal: &Term, bindings: &dyn BindingLookup) -> Vec<ClauseId> {
    let full = db.candidates_for(goal).to_vec();
    let Term::Struct(_, args) = goal else {
        return full;
    };
    let Some(key) = arg_key(bindings.walk(&args[0])) else {
        return full;
    };
    full.into_iter()
        .filter(|id| match &db.clause(*id).head {
            Term::Struct(_, hargs) => arg_key(&hargs[0]).is_none_or(|hk| hk == key),
            _ => true,
        })
        .collect()
}

/// One goal in the three binding presentations the stores must treat
/// identically: key ground in the source text, key reached through a
/// binding chain, or first argument unbound.
struct GoalCase {
    /// The goal term whose first argument is written ground (absent for
    /// variable-first-arg selectors).
    inline: Option<Term>,
    /// The goal term whose first argument is the variable `Q`.
    var_goal: Term,
    /// `Q`'s id in `var_goal`.
    q: VarId,
    /// The ground key term to bind `Q` to (absent when the selector
    /// asked for an unbound first argument).
    key_term: Option<Term>,
}

/// Parse the two goal forms against a scratch clone of `db`, so probe
/// symbols (`zed`, `nosuch`, …) intern consistently without mutating
/// the database the stores were built over.
fn build_goal_case(db: &ClauseDb, pred_sel: u8, key_sel: u8) -> GoalCase {
    let mut scratch = db.clone();
    let first = goal_first_src(key_sel);
    let unbound = key_sel % 15 == 11;

    let var_q = parse_query(&mut scratch, &goal_src(pred_sel, "Q")).unwrap();
    let var_goal = var_q.goals[0].clone();
    let q = match &var_goal {
        Term::Struct(_, args) => match &args[0] {
            Term::Var(v) => *v,
            other => panic!("Q parsed as {other:?}"),
        },
        other => panic!("goal parsed as {other:?}"),
    };

    if unbound {
        return GoalCase {
            inline: None,
            var_goal,
            q,
            key_term: None,
        };
    }
    let inline_q = parse_query(&mut scratch, &goal_src(pred_sel, &first)).unwrap();
    let inline = inline_q.goals[0].clone();
    let key_term = match &inline {
        Term::Struct(_, args) => args[0].clone(),
        other => panic!("goal parsed as {other:?}"),
    };
    GoalCase {
        inline: Some(inline),
        var_goal,
        q,
        key_term: Some(key_term),
    }
}

/// Every (goal, bindings) presentation for one case: the engines read
/// candidates through flat trail-backed `Bindings` under
/// `StateRepr::Cloned` and through `DeltaBindings` / frozen
/// `BindingFrame`s under `StateRepr::Shared`, so the differential check
/// runs the lookup through all of them. The bound presentations route
/// `Q` through a two-step chain (`Q -> M -> key`) so `walk` has real
/// dereferencing to do.
fn check_case(
    case: &GoalCase,
    check: &mut dyn FnMut(&Term, &dyn BindingLookup) -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError> {
    // Ground in the text; nothing bound.
    if let Some(inline) = &case.inline {
        check(inline, &Bindings::new())?;
    }

    let mid = VarId(case.q.0 + 101);
    match &case.key_term {
        Some(key) => {
            // Flat bindings, chained.
            let mut flat = Bindings::new();
            let mut trail = Trail::new();
            flat.bind(&mut trail, case.q, Term::Var(mid));
            flat.bind(&mut trail, mid, key.clone());
            check(&case.var_goal, &flat)?;

            // Live delta over the root frame.
            let root = BindingFrame::root();
            let mut delta = DeltaBindings::new(&root);
            let mut trail = Trail::new();
            delta.bind(&mut trail, case.q, Term::Var(mid));
            delta.bind(&mut trail, mid, key.clone());
            check(&case.var_goal, &delta)?;

            // Frozen frames, at the default threshold and with
            // flattening forced on every freeze.
            let (frame, _) = delta.freeze(DEFAULT_FLATTEN_THRESHOLD);
            check(&case.var_goal, &*frame)?;
            let root2 = BindingFrame::root();
            let mut delta2 = DeltaBindings::new(&root2);
            let mut trail = Trail::new();
            delta2.bind(&mut trail, case.q, Term::Var(mid));
            delta2.bind(&mut trail, mid, key.clone());
            let (flattened, _) = delta2.freeze(0);
            check(&case.var_goal, &*flattened)?;
        }
        None => {
            // Unbound, and unbound-through-a-chain: both must fall back.
            check(&case.var_goal, &Bindings::new())?;
            let mut flat = Bindings::new();
            let mut trail = Trail::new();
            flat.bind(&mut trail, case.q, Term::Var(mid));
            check(&case.var_goal, &flat)?;
        }
    }
    Ok(())
}

fn program_from(clauses: &[(u8, u8)]) -> Program {
    let mut src = String::new();
    for (ci, (pred_sel, arg_sel)) in clauses.iter().enumerate() {
        src.push_str(&clause_src(*pred_sel, *arg_sel, ci));
    }
    src.push_str("?- q(a).\n");
    parse_program(&src).expect("generated program parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The differential property: on arbitrary programs and goal
    /// streams, every indexed store equals the brute-force oracle and
    /// every baseline store equals the full predicate range — ids *and*
    /// order — across all four replacement policies, the MVCC snapshot
    /// path, the db's own first-argument index, and every binding
    /// representation.
    #[test]
    fn indexed_candidates_equal_brute_force_oracle(
        clauses in proptest::collection::vec((0u8..3, 0u8..12), 1..24),
        goals in proptest::collection::vec((0u8..5, 0u8..15), 1..8),
    ) {
        let p = program_from(&clauses);
        let n = p.db.len();

        // The db's own merge-based index is the third implementation
        // under test.
        let mut db_fa = p.db.clone();
        db_fa.set_index_mode(IndexMode::FirstArg);

        let paged_fa: Vec<PagedClauseStore<'_>> = PolicyKind::ALL
            .iter()
            .map(|&pk| {
                PagedClauseStore::new(
                    &p.db,
                    paged_config(pk, 2, 4, n).with_index(IndexPolicy::FirstArg),
                )
            })
            .collect();
        let paged_none =
            PagedClauseStore::new(&p.db, paged_config(PolicyKind::Lru, 2, 4, n));
        let mvcc_fa = MvccClauseStore::new(
            &p.db,
            paged_config(PolicyKind::TwoQ, 2, 4, n).with_index(IndexPolicy::FirstArg),
            CommitMode::Mvcc,
        );
        let mvcc_none = MvccClauseStore::new(
            &p.db,
            paged_config(PolicyKind::TwoQ, 2, 4, n),
            CommitMode::Mvcc,
        );
        let snap_fa = mvcc_fa.begin_read();
        let snap_none = mvcc_none.begin_read();

        for (pred_sel, key_sel) in &goals {
            let case = build_goal_case(&p.db, *pred_sel, *key_sel);
            check_case(&case, &mut |goal, bindings| {
                let oracle = oracle_candidates(&p.db, goal, bindings);
                let full = p.db.candidates_for(goal);

                // The oracle itself honors the order contract: a
                // strictly ascending subsequence of the full range.
                prop_assert!(oracle.windows(2).all(|w| w[0] < w[1]));

                for store in &paged_fa {
                    let got = store.candidate_clauses(goal, bindings);
                    prop_assert_eq!(got.as_ref(), oracle.as_slice());
                }
                let got = snap_fa.candidate_clauses(goal, bindings);
                prop_assert_eq!(got.as_ref(), oracle.as_slice());
                let got = db_fa.candidates_for_resolved(goal, bindings);
                prop_assert_eq!(got.as_ref(), oracle.as_slice());

                // Baselines: the untouched predicate range.
                let got = paged_none.candidate_clauses(goal, bindings);
                prop_assert_eq!(got.as_ref(), full);
                let got = snap_none.candidate_clauses(goal, bindings);
                prop_assert_eq!(got.as_ref(), full);
                Ok(())
            })?;
        }
    }
}

// ---------------------------------------------------------------------------
// Engine-level regression: unbound first args see every clause
// ---------------------------------------------------------------------------

const FAMILY: &str = "
    gf(X,Z) :- f(X,Y), f(Y,Z).
    gf(X,Z) :- f(X,Y), m(Y,Z).
    f(curt,elain).  f(sam,larry).
    f(dan,pat).     f(larry,den).
    f(pat,john).    f(larry,doug).
    m(elain,john).  m(marian,elain).
    m(peg,den).     m(peg,doug).
";

fn family_query(query: &str) -> Program {
    parse_program(&format!("{FAMILY}\n?- {query}.\n")).unwrap()
}

/// Best-first solutions through a paged store under an explicit
/// `StateRepr`, plus the store's stats.
fn paged_run(
    program: &Program,
    index: IndexPolicy,
    repr: StateRepr,
) -> (Vec<String>, blog_spd::PagedStoreStats) {
    let cfg = paged_config(PolicyKind::Lru, 2, 4, program.db.len()).with_index(index);
    let paged = PagedClauseStore::new(&program.db, cfg);
    let store = WeightStore::new(WeightParams::default());
    let mut local = HashMap::new();
    let mut view = WeightView::new(&mut local, &store);
    let bf = BestFirstConfig {
        solve: SolveConfig::all().with_state_repr(repr),
        ..BestFirstConfig::default()
    };
    let r = best_first_with(&paged, &program.queries[0], &mut view, &bf);
    let mut texts = r.solution_texts(&program.db);
    texts.sort();
    (texts, paged.stats())
}

/// Satellite regression: a goal whose first argument is an unbound
/// variable must see **every** clause of its predicate — under both
/// state representations — so indexing never loses solutions the full
/// scan would find. The fallback is visible in the meters: zero index
/// hits, identical candidate traffic to the unindexed baseline.
#[test]
fn var_headed_goals_see_every_clause_under_both_reprs() {
    let p = family_query("f(A,B)");
    let (base, base_stats) = paged_run(&p, IndexPolicy::None, StateRepr::Cloned);
    assert_eq!(base.len(), 6, "all six f/2 facts answer f(A,B)");

    for repr in [StateRepr::Cloned, StateRepr::shared()] {
        let (sols, stats) = paged_run(&p, IndexPolicy::FirstArg, repr);
        assert_eq!(sols, base);
        assert_eq!(stats.index_hits, 0, "unbound first arg never narrows");
        assert_eq!(stats.candidates_scanned, base_stats.candidates_scanned);
    }
}

/// The complement: a ground first argument narrows (hits and prunes
/// are nonzero) and the solution set still matches the unindexed run,
/// under both state representations.
#[test]
fn bound_goals_narrow_without_changing_solutions() {
    let p = family_query("gf(sam,G)");
    let (base, base_stats) = paged_run(&p, IndexPolicy::None, StateRepr::Cloned);
    assert!(!base.is_empty());

    for repr in [StateRepr::Cloned, StateRepr::shared()] {
        let (sols, stats) = paged_run(&p, IndexPolicy::FirstArg, repr);
        assert_eq!(sols, base);
        assert!(stats.index_hits > 0, "ground subgoals resolve indexed");
        assert!(stats.index_prunes > 0, "f(sam,_) prunes the f/2 range");
        assert!(stats.candidates_scanned < base_stats.candidates_scanned);
    }
}
