//! Property tests for the replacement policies: every implementation is
//! checked against the [`ReplacementPolicy`] contract and against a
//! brute-force reference model on arbitrary small traces.
//!
//! The reference models are deliberately naive — flat `Vec`s, linear
//! scans, the textbook statement of each algorithm — so a bookkeeping
//! bug in the real implementations' intrusive lists, ghost windows, or
//! ring hands cannot hide in shared code.
//!
//! Case counts honor the `PROPTEST_CASES` environment variable (the CI
//! profile sets a reduced count; see `.github/workflows/ci.yml`).

use std::collections::{BTreeSet, VecDeque};

use blog_spd::{PolicyKind, Touch};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Brute-force reference models
// ---------------------------------------------------------------------------

/// What one reference-model step observed: `(hit, evicted)`.
type Step = (bool, Option<u32>);

trait Model {
    fn access(&mut self, key: u32) -> Step;
    fn resident(&self) -> Vec<u32>;
}

/// LRU as a flat vector, front = most recently used.
struct LruModel {
    cap: usize,
    order: Vec<u32>,
}

impl LruModel {
    fn new(cap: usize) -> Self {
        LruModel { cap, order: Vec::new() }
    }
}

impl Model for LruModel {
    fn access(&mut self, key: u32) -> Step {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.insert(0, key);
            return (true, None);
        }
        let evicted = if self.order.len() == self.cap {
            self.order.pop()
        } else {
            None
        };
        self.order.insert(0, key);
        (false, evicted)
    }

    fn resident(&self) -> Vec<u32> {
        self.order.clone()
    }
}

/// FIFO as a flat vector, front = newest admission; hits do not reorder.
struct FifoModel {
    cap: usize,
    order: Vec<u32>,
}

impl FifoModel {
    fn new(cap: usize) -> Self {
        FifoModel { cap, order: Vec::new() }
    }
}

impl Model for FifoModel {
    fn access(&mut self, key: u32) -> Step {
        if self.order.contains(&key) {
            return (true, None);
        }
        let evicted = if self.order.len() == self.cap {
            self.order.pop()
        } else {
            None
        };
        self.order.insert(0, key);
        (false, evicted)
    }

    fn resident(&self) -> Vec<u32> {
        self.order.clone()
    }
}

/// 2Q stated directly from the algorithm: two resident queues (A1in
/// FIFO, Am LRU) plus a bounded ghost queue, with the same tuning the
/// real policy uses (`kin = max(1, cap/4)`, `kout = cap`). Ghost
/// membership is resolved at miss time, before eviction can slide the
/// window.
struct TwoQModel {
    cap: usize,
    kin: usize,
    kout: usize,
    /// Front = newest admission.
    a1in: Vec<u32>,
    /// Front = most recently used.
    am: Vec<u32>,
    /// Front = newest ghost.
    ghosts: VecDeque<u32>,
}

impl TwoQModel {
    fn new(cap: usize) -> Self {
        TwoQModel {
            cap,
            kin: (cap / 4).max(1),
            kout: cap,
            a1in: Vec::new(),
            am: Vec::new(),
            ghosts: VecDeque::new(),
        }
    }

    fn remember_ghost(&mut self, key: u32) {
        self.ghosts.push_front(key);
        while self.ghosts.len() > self.kout {
            self.ghosts.pop_back();
        }
    }
}

impl Model for TwoQModel {
    fn access(&mut self, key: u32) -> Step {
        if let Some(pos) = self.am.iter().position(|&k| k == key) {
            self.am.remove(pos);
            self.am.insert(0, key);
            return (true, None);
        }
        if self.a1in.contains(&key) {
            return (true, None);
        }
        let ghosted = match self.ghosts.iter().position(|&k| k == key) {
            Some(pos) => {
                self.ghosts.remove(pos);
                true
            }
            None => false,
        };
        let mut evicted = None;
        if self.a1in.len() + self.am.len() == self.cap {
            if !self.a1in.is_empty() && (self.a1in.len() > self.kin || self.am.is_empty()) {
                let victim = self.a1in.pop().expect("nonempty A1in");
                self.remember_ghost(victim);
                evicted = Some(victim);
            } else {
                evicted = self.am.pop();
            }
        }
        if ghosted {
            self.am.insert(0, key);
        } else {
            self.a1in.insert(0, key);
        }
        (false, evicted)
    }

    fn resident(&self) -> Vec<u32> {
        self.a1in.iter().chain(self.am.iter()).copied().collect()
    }
}

/// CLOCK stated directly: a fixed ring of `(key, referenced)` frames and
/// a sweeping hand; admissions load with the bit set.
struct ClockModel {
    frames: Vec<Option<(u32, bool)>>,
    hand: usize,
}

impl ClockModel {
    fn new(cap: usize) -> Self {
        ClockModel {
            frames: vec![None; cap],
            hand: 0,
        }
    }
}

impl Model for ClockModel {
    fn access(&mut self, key: u32) -> Step {
        for frame in self.frames.iter_mut().flatten() {
            if frame.0 == key {
                frame.1 = true;
                return (true, None);
            }
        }
        let mut evicted = None;
        if self.frames.iter().all(|f| f.is_some()) {
            loop {
                let slot = self.hand;
                self.hand = (self.hand + 1) % self.frames.len();
                let (k, referenced) = self.frames[slot].expect("full ring");
                if referenced {
                    self.frames[slot] = Some((k, false));
                } else {
                    self.frames[slot] = None;
                    evicted = Some(k);
                    break;
                }
            }
        }
        let free = self
            .frames
            .iter()
            .position(|f| f.is_none())
            .expect("a frame is free after eviction");
        self.frames[free] = Some((key, true));
        (false, evicted)
    }

    fn resident(&self) -> Vec<u32> {
        self.frames.iter().flatten().map(|&(k, _)| k).collect()
    }
}

fn model_for(kind: PolicyKind, cap: usize) -> Box<dyn Model> {
    match kind {
        PolicyKind::Lru => Box::new(LruModel::new(cap)),
        PolicyKind::TwoQ => Box::new(TwoQModel::new(cap)),
        PolicyKind::Clock => Box::new(ClockModel::new(cap)),
        PolicyKind::Fifo => Box::new(FifoModel::new(cap)),
    }
}

// ---------------------------------------------------------------------------
// Contract properties (all policies)
// ---------------------------------------------------------------------------

fn trace_strategy() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..12, 1..120)
}

proptest! {
    /// Resident set is bounded by capacity after every access, the
    /// just-accessed key is always resident, and `resident_keys` agrees
    /// with `len` and `contains`.
    #[test]
    fn resident_set_never_exceeds_capacity(
        cap in 1usize..=6,
        trace in trace_strategy(),
    ) {
        for kind in PolicyKind::ALL {
            let mut p = kind.build::<u32>(cap);
            for &k in &trace {
                p.access(k);
                prop_assert!(p.len() <= cap, "{kind}: {} > {cap}", p.len());
                prop_assert!(p.contains(&k), "{kind}: accessed key not resident");
                let keys = p.resident_keys();
                prop_assert_eq!(keys.len(), p.len(), "{kind}: resident_keys/len");
                for key in &keys {
                    prop_assert!(p.contains(key), "{kind}: listed key not contained");
                }
            }
        }
    }

    /// Counter consistency: touches == accesses, hits + misses == touches,
    /// and evictions never exceed misses.
    #[test]
    fn hits_plus_misses_equals_touches(
        cap in 1usize..=6,
        trace in trace_strategy(),
    ) {
        for kind in PolicyKind::ALL {
            let mut p = kind.build::<u32>(cap);
            let mut hits = 0u64;
            for &k in &trace {
                if p.access(k).is_hit() {
                    hits += 1;
                }
            }
            let s = p.stats();
            prop_assert_eq!(s.touches, trace.len() as u64, "{kind}");
            prop_assert_eq!(s.hits, hits, "{kind}");
            prop_assert_eq!(s.hits + s.misses, s.touches, "{kind}");
            prop_assert!(s.evictions <= s.misses, "{kind}: evictions > misses");
        }
    }

    /// Driving the split primitives by hand: an eviction candidate is
    /// only ever produced at capacity, was resident immediately before
    /// the call, and is gone immediately after.
    #[test]
    fn eviction_only_returns_resident_pages(
        cap in 1usize..=6,
        trace in trace_strategy(),
    ) {
        for kind in PolicyKind::ALL {
            let mut p = kind.build::<u32>(cap);
            for &k in &trace {
                let before: BTreeSet<u32> = p.resident_keys().into_iter().collect();
                if p.touch(k) {
                    prop_assert!(before.contains(&k), "{kind}: hit on non-resident key");
                    continue;
                }
                prop_assert!(!before.contains(&k), "{kind}: miss on resident key");
                let was_full = before.len() == cap;
                match p.evict_candidate() {
                    Some(victim) => {
                        prop_assert!(was_full, "{kind}: eviction below capacity");
                        prop_assert!(
                            before.contains(&victim),
                            "{kind}: evicted non-resident {victim}"
                        );
                        prop_assert!(
                            !p.contains(&victim),
                            "{kind}: victim {victim} still resident"
                        );
                    }
                    None => prop_assert!(!was_full, "{kind}: full set refused to evict"),
                }
                p.admit(k);
                prop_assert!(p.contains(&k), "{kind}: admitted key absent");
            }
        }
    }

    /// Refinement equivalence: each policy produces exactly the hit/miss
    /// sequence, eviction sequence, and resident sets of its brute-force
    /// reference model.
    #[test]
    fn policies_match_reference_models(
        cap in 1usize..=6,
        trace in trace_strategy(),
    ) {
        for kind in PolicyKind::ALL {
            let mut real = kind.build::<u32>(cap);
            let mut model = model_for(kind, cap);
            for (i, &k) in trace.iter().enumerate() {
                let (model_hit, model_evicted) = model.access(k);
                let (real_hit, real_evicted) = match real.access(k) {
                    Touch::Hit => (true, None),
                    Touch::Miss { evicted } => (false, evicted),
                };
                prop_assert_eq!(real_hit, model_hit, "{} step {}: hit", kind, i);
                prop_assert_eq!(
                    real_evicted, model_evicted,
                    "{} step {}: eviction", kind, i
                );
                let real_set: BTreeSet<u32> = real.resident_keys().into_iter().collect();
                let model_set: BTreeSet<u32> = model.resident().into_iter().collect();
                prop_assert_eq!(real_set, model_set, "{} step {}: residency", kind, i);
            }
        }
    }

    /// LRU keeps its stack property on arbitrary traces: every hit at
    /// capacity `k` is a hit at capacity `k + 1`. (2Q and CLOCK are
    /// deliberately not stack algorithms, so this is LRU-only.)
    #[test]
    fn lru_stack_property_on_arbitrary_traces(
        cap in 1usize..=5,
        trace in trace_strategy(),
    ) {
        let hits_at = |c: usize| -> Vec<bool> {
            let mut p = PolicyKind::Lru.build::<u32>(c);
            trace.iter().map(|&k| p.access(k).is_hit()).collect()
        };
        let small = hits_at(cap);
        let large = hits_at(cap + 1);
        for (i, (s, l)) in small.iter().zip(&large).enumerate() {
            prop_assert!(!s || *l, "access {i}: hit at {cap}, miss at {}", cap + 1);
        }
    }
}
