//! Trace-replay regression fixtures: recorded clause-access streams for
//! the family and queens workloads, replayed through every replacement
//! policy against golden hit counts.
//!
//! The traces under `tests/fixtures/` were recorded once from an
//! untrained best-first run (see [`support::record_access_trace`]) and
//! are committed so future pager or engine changes cannot *silently*
//! regress clause-access locality: a legitimate change to the access
//! stream or to a policy's behavior must regenerate the fixtures /
//! goldens in the same commit, where a reviewer sees it.
//!
//! - **LRU goldens are tolerance-free**: the policy's semantics are
//!   frozen (it is the seed behavior), so replaying a fixed trace must
//!   reproduce the hit count exactly.
//! - **2Q and CLOCK goldens allow a bounded window** (±2.5 points of hit
//!   rate): their tuning knobs (`kin`, `kout`, admission reference bits)
//!   are legitimate things to adjust, so the fixtures pin them loosely
//!   enough to tune but tightly enough to catch a scan-resistance
//!   collapse.
//!
//! Regenerate with:
//! `REGEN_TRACE_FIXTURES=1 cargo test -p blog-spd --test trace_replay`
//! (failing golden assertions print the observed numbers to paste in).

mod support;

use std::fs;
use std::path::PathBuf;

use blog_logic::{ClauseId, Program};
use blog_spd::{PagedClauseStore, PolicyKind};

use support::{family_workload, paged_config, queens_workload, record_access_trace};

/// Blocks per track used by every replay in this file.
const BLOCKS_PER_TRACK: u32 = 4;

/// Hit-rate window (absolute) allowed for the tunable policies.
const TUNABLE_WINDOW: f64 = 0.025;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Load a fixture, regenerating it first when `REGEN_TRACE_FIXTURES` is
/// set. Asserts the fixture was recorded against a database of the same
/// size as `program`'s (a mismatch means the workload generator changed
/// under the fixture).
fn load_or_regen(name: &str, describe: &str, program: &Program) -> Vec<ClauseId> {
    let path = fixture_path(name);
    if std::env::var_os("REGEN_TRACE_FIXTURES").is_some() {
        let trace = record_access_trace(program);
        let mut out = String::new();
        out.push_str(&format!("# clause-access trace: {describe}\n"));
        out.push_str("# recorded from an untrained best-first run of the first query\n");
        out.push_str(&format!("# clauses: {}\n", program.db.len()));
        for cid in &trace {
            out.push_str(&format!("{}\n", cid.0));
        }
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, out).unwrap();
        eprintln!("regenerated {} ({} accesses)", path.display(), trace.len());
    }
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); regenerate with REGEN_TRACE_FIXTURES=1", path.display()));
    let mut clauses_recorded = None;
    let mut trace = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(n) = rest.trim().strip_prefix("clauses:") {
                clauses_recorded = Some(n.trim().parse::<usize>().unwrap());
            }
            continue;
        }
        trace.push(ClauseId(line.parse::<u32>().unwrap()));
    }
    assert_eq!(
        clauses_recorded,
        Some(program.db.len()),
        "{name}: fixture recorded against a different database — regenerate it"
    );
    assert!(
        trace.iter().all(|cid| cid.index() < program.db.len()),
        "{name}: trace references clauses outside the database"
    );
    trace
}

/// Replay `trace` through a fresh store under `policy`; returns
/// `(hits, accesses)`.
fn replay(
    program: &Program,
    trace: &[ClauseId],
    policy: PolicyKind,
    capacity_tracks: usize,
) -> (u64, u64) {
    let store = PagedClauseStore::new(
        &program.db,
        paged_config(policy, capacity_tracks, BLOCKS_PER_TRACK, program.db.len()),
    );
    let stats = store.replay(trace);
    (stats.hits, stats.accesses)
}

/// One golden entry: policy, capacity in tracks, expected hits.
struct Golden {
    policy: PolicyKind,
    capacity_tracks: usize,
    hits: u64,
}

fn check_goldens(name: &str, program: &Program, trace: &[ClauseId], goldens: &[Golden]) {
    for g in goldens {
        let (hits, accesses) = replay(program, trace, g.policy, g.capacity_tracks);
        if g.policy == PolicyKind::Lru {
            // Frozen semantics: exact.
            assert_eq!(
                hits, g.hits,
                "{name}: LRU@{} replay drifted (got {hits} hits of {accesses})",
                g.capacity_tracks
            );
        } else {
            let got = hits as f64 / accesses as f64;
            let want = g.hits as f64 / accesses as f64;
            assert!(
                (got - want).abs() <= TUNABLE_WINDOW,
                "{name}: {}@{} hit rate {:.4} outside golden {:.4} ± {TUNABLE_WINDOW} \
                 (got {hits} hits of {accesses}; update the golden if the tuning change is intended)",
                g.policy,
                g.capacity_tracks,
                got,
                want
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Family workload
// ---------------------------------------------------------------------------

#[test]
fn family_fixture_replays_against_goldens() {
    let program = family_workload();
    let trace = load_or_regen(
        "family_access.trace",
        "family workload (generations=4, branching=3, seed=7)",
        &program,
    );
    assert!(trace.len() > 500, "family trace too short: {}", trace.len());

    // 186 clauses over 47 tracks; 794 recorded accesses. LRU shows the
    // PR-1 cliff (flat 430 hits at every sub-working-set capacity, 747
    // once everything fits); 2Q flattens it (455 at half, 599 at three
    // quarters); CLOCK tracks LRU on this scan-shaped stream.
    let total_tracks = (program.db.len() as u32).div_ceil(BLOCKS_PER_TRACK) as usize;
    let quarter = (total_tracks / 4).max(1);
    let half = (total_tracks / 2).max(1);
    let three_quarters = (3 * total_tracks / 4).max(1);
    check_goldens(
        "family",
        &program,
        &trace,
        &[
            Golden { policy: PolicyKind::Lru, capacity_tracks: quarter, hits: 430 },
            Golden { policy: PolicyKind::Lru, capacity_tracks: half, hits: 430 },
            Golden { policy: PolicyKind::Lru, capacity_tracks: total_tracks, hits: 747 },
            Golden { policy: PolicyKind::TwoQ, capacity_tracks: quarter, hits: 430 },
            Golden { policy: PolicyKind::TwoQ, capacity_tracks: half, hits: 455 },
            Golden { policy: PolicyKind::TwoQ, capacity_tracks: three_quarters, hits: 599 },
            Golden { policy: PolicyKind::Clock, capacity_tracks: quarter, hits: 430 },
            Golden { policy: PolicyKind::Clock, capacity_tracks: half, hits: 430 },
        ],
    );
}

#[test]
fn family_two_q_beats_lru_at_mid_capacities() {
    // The locality property the fixtures exist to protect: on the
    // scan-heavy family trace, 2Q's hit rate dominates LRU's at every
    // sub-working-set capacity.
    let program = family_workload();
    let trace = load_or_regen(
        "family_access.trace",
        "family workload (generations=4, branching=3, seed=7)",
        &program,
    );
    let total_tracks = (program.db.len() as u32).div_ceil(BLOCKS_PER_TRACK) as usize;
    for capacity in [total_tracks / 4, total_tracks / 2, 3 * total_tracks / 4] {
        let capacity = capacity.max(1);
        let (lru, _) = replay(&program, &trace, PolicyKind::Lru, capacity);
        let (twoq, _) = replay(&program, &trace, PolicyKind::TwoQ, capacity);
        assert!(
            twoq >= lru,
            "2Q lost to LRU at capacity {capacity}: {twoq} < {lru}"
        );
    }
}

// ---------------------------------------------------------------------------
// Queens workload
// ---------------------------------------------------------------------------

#[test]
fn queens_fixture_replays_against_goldens() {
    let program = queens_workload();
    let trace = load_or_regen("queens_access.trace", "queens workload (n=5)", &program);
    assert!(trace.len() > 500, "queens trace too short: {}", trace.len());

    // 66 clauses over 17 tracks; 24521 recorded accesses. Same shape as
    // the family trace: LRU cliff at the working set, 2Q ahead at half
    // capacity, CLOCK tracking LRU.
    let total_tracks = (program.db.len() as u32).div_ceil(BLOCKS_PER_TRACK) as usize;
    let half = (total_tracks / 2).max(1);
    check_goldens(
        "queens",
        &program,
        &trace,
        &[
            Golden { policy: PolicyKind::Lru, capacity_tracks: half, hits: 18036 },
            Golden { policy: PolicyKind::Lru, capacity_tracks: total_tracks, hits: 24504 },
            Golden { policy: PolicyKind::TwoQ, capacity_tracks: half, hits: 19347 },
            Golden { policy: PolicyKind::Clock, capacity_tracks: half, hits: 18036 },
        ],
    );
}

#[test]
fn queens_two_q_never_loses_to_lru() {
    // The ISSUE's companion claim to the family dominance test: on
    // workloads where scan resistance cannot help, 2Q must at least
    // never lose.
    let program = queens_workload();
    let trace = load_or_regen("queens_access.trace", "queens workload (n=5)", &program);
    let total_tracks = (program.db.len() as u32).div_ceil(BLOCKS_PER_TRACK) as usize;
    for capacity in [1, total_tracks / 4, total_tracks / 2, 3 * total_tracks / 4, total_tracks] {
        let capacity = capacity.max(1);
        let (lru, _) = replay(&program, &trace, PolicyKind::Lru, capacity);
        let (twoq, _) = replay(&program, &trace, PolicyKind::TwoQ, capacity);
        assert!(
            twoq >= lru,
            "2Q lost to LRU at capacity {capacity}: {twoq} < {lru}"
        );
    }
}
