//! Trace-replay regression fixtures: recorded clause-access streams for
//! the family and queens workloads, replayed through every replacement
//! policy against golden hit counts.
//!
//! The traces under `tests/fixtures/` were recorded once from an
//! untrained best-first run (see [`support::record_access_trace`]) and
//! are committed so future pager or engine changes cannot *silently*
//! regress clause-access locality: a legitimate change to the access
//! stream or to a policy's behavior must regenerate the fixtures /
//! goldens in the same commit, where a reviewer sees it.
//!
//! - **LRU goldens are tolerance-free**: the policy's semantics are
//!   frozen (it is the seed behavior), so replaying a fixed trace must
//!   reproduce the hit count exactly.
//! - **2Q and CLOCK goldens allow a bounded window** (±2.5 points of hit
//!   rate): their tuning knobs (`kin`, `kout`, admission reference bits)
//!   are legitimate things to adjust, so the fixtures pin them loosely
//!   enough to tune but tightly enough to catch a scan-resistance
//!   collapse.
//!
//! Regenerate with:
//! `REGEN_TRACE_FIXTURES=1 cargo test -p blog-spd --test trace_replay`
//! (failing golden assertions print the observed numbers to paste in).

mod support;

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

use blog_core::engine::{best_first_with, BestFirstConfig};
use blog_core::weight::{WeightParams, WeightStore, WeightView};
use blog_logic::{ClauseId, ClauseSource, Program};
use blog_spd::{CommitMode, IndexPolicy, MvccClauseStore, PagedClauseStore, PolicyKind};

use support::{family_workload, paged_config, queens_workload, record_access_trace};

/// Blocks per track used by every replay in this file.
const BLOCKS_PER_TRACK: u32 = 4;

/// Hit-rate window (absolute) allowed for the tunable policies.
const TUNABLE_WINDOW: f64 = 0.025;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Load a fixture, regenerating it first when `REGEN_TRACE_FIXTURES` is
/// set. Asserts the fixture was recorded against a database of the same
/// size as `program`'s (a mismatch means the workload generator changed
/// under the fixture).
fn load_or_regen(name: &str, describe: &str, program: &Program) -> Vec<ClauseId> {
    let path = fixture_path(name);
    if std::env::var_os("REGEN_TRACE_FIXTURES").is_some() {
        let trace = record_access_trace(program);
        let mut out = String::new();
        out.push_str(&format!("# clause-access trace: {describe}\n"));
        out.push_str("# recorded from an untrained best-first run of the first query\n");
        out.push_str(&format!("# clauses: {}\n", program.db.len()));
        for cid in &trace {
            out.push_str(&format!("{}\n", cid.0));
        }
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, out).unwrap();
        eprintln!("regenerated {} ({} accesses)", path.display(), trace.len());
    }
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); regenerate with REGEN_TRACE_FIXTURES=1", path.display()));
    let mut clauses_recorded = None;
    let mut trace = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(n) = rest.trim().strip_prefix("clauses:") {
                clauses_recorded = Some(n.trim().parse::<usize>().unwrap());
            }
            continue;
        }
        trace.push(ClauseId(line.parse::<u32>().unwrap()));
    }
    assert_eq!(
        clauses_recorded,
        Some(program.db.len()),
        "{name}: fixture recorded against a different database — regenerate it"
    );
    assert!(
        trace.iter().all(|cid| cid.index() < program.db.len()),
        "{name}: trace references clauses outside the database"
    );
    trace
}

/// Replay `trace` through a fresh store under `policy`; returns
/// `(hits, accesses)`.
fn replay(
    program: &Program,
    trace: &[ClauseId],
    policy: PolicyKind,
    capacity_tracks: usize,
) -> (u64, u64) {
    let store = PagedClauseStore::new(
        &program.db,
        paged_config(policy, capacity_tracks, BLOCKS_PER_TRACK, program.db.len()),
    );
    let stats = store.replay(trace);
    (stats.hits, stats.accesses)
}

/// One golden entry: policy, capacity in tracks, expected hits.
struct Golden {
    policy: PolicyKind,
    capacity_tracks: usize,
    hits: u64,
}

fn check_goldens(name: &str, program: &Program, trace: &[ClauseId], goldens: &[Golden]) {
    for g in goldens {
        let (hits, accesses) = replay(program, trace, g.policy, g.capacity_tracks);
        if g.policy == PolicyKind::Lru {
            // Frozen semantics: exact.
            assert_eq!(
                hits, g.hits,
                "{name}: LRU@{} replay drifted (got {hits} hits of {accesses})",
                g.capacity_tracks
            );
        } else {
            let got = hits as f64 / accesses as f64;
            let want = g.hits as f64 / accesses as f64;
            assert!(
                (got - want).abs() <= TUNABLE_WINDOW,
                "{name}: {}@{} hit rate {:.4} outside golden {:.4} ± {TUNABLE_WINDOW} \
                 (got {hits} hits of {accesses}; update the golden if the tuning change is intended)",
                g.policy,
                g.capacity_tracks,
                got,
                want
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Family workload
// ---------------------------------------------------------------------------

#[test]
fn family_fixture_replays_against_goldens() {
    let program = family_workload();
    let trace = load_or_regen(
        "family_access.trace",
        "family workload (generations=4, branching=3, seed=7)",
        &program,
    );
    assert!(trace.len() > 500, "family trace too short: {}", trace.len());

    // 186 clauses over 47 tracks; 794 recorded accesses. LRU shows the
    // PR-1 cliff (flat 430 hits at every sub-working-set capacity, 747
    // once everything fits); 2Q flattens it (455 at half, 599 at three
    // quarters); CLOCK tracks LRU on this scan-shaped stream.
    let total_tracks = (program.db.len() as u32).div_ceil(BLOCKS_PER_TRACK) as usize;
    let quarter = (total_tracks / 4).max(1);
    let half = (total_tracks / 2).max(1);
    let three_quarters = (3 * total_tracks / 4).max(1);
    check_goldens(
        "family",
        &program,
        &trace,
        &[
            Golden { policy: PolicyKind::Lru, capacity_tracks: quarter, hits: 430 },
            Golden { policy: PolicyKind::Lru, capacity_tracks: half, hits: 430 },
            Golden { policy: PolicyKind::Lru, capacity_tracks: total_tracks, hits: 747 },
            Golden { policy: PolicyKind::TwoQ, capacity_tracks: quarter, hits: 430 },
            Golden { policy: PolicyKind::TwoQ, capacity_tracks: half, hits: 455 },
            Golden { policy: PolicyKind::TwoQ, capacity_tracks: three_quarters, hits: 599 },
            Golden { policy: PolicyKind::Clock, capacity_tracks: quarter, hits: 430 },
            Golden { policy: PolicyKind::Clock, capacity_tracks: half, hits: 430 },
        ],
    );
}

#[test]
fn family_two_q_beats_lru_at_mid_capacities() {
    // The locality property the fixtures exist to protect: on the
    // scan-heavy family trace, 2Q's hit rate dominates LRU's at every
    // sub-working-set capacity.
    let program = family_workload();
    let trace = load_or_regen(
        "family_access.trace",
        "family workload (generations=4, branching=3, seed=7)",
        &program,
    );
    let total_tracks = (program.db.len() as u32).div_ceil(BLOCKS_PER_TRACK) as usize;
    for capacity in [total_tracks / 4, total_tracks / 2, 3 * total_tracks / 4] {
        let capacity = capacity.max(1);
        let (lru, _) = replay(&program, &trace, PolicyKind::Lru, capacity);
        let (twoq, _) = replay(&program, &trace, PolicyKind::TwoQ, capacity);
        assert!(
            twoq >= lru,
            "2Q lost to LRU at capacity {capacity}: {twoq} < {lru}"
        );
    }
}

// ---------------------------------------------------------------------------
// Queens workload
// ---------------------------------------------------------------------------

#[test]
fn queens_fixture_replays_against_goldens() {
    let program = queens_workload();
    let trace = load_or_regen("queens_access.trace", "queens workload (n=5)", &program);
    assert!(trace.len() > 500, "queens trace too short: {}", trace.len());

    // 66 clauses over 17 tracks; 24521 recorded accesses. Same shape as
    // the family trace: LRU cliff at the working set, 2Q ahead at half
    // capacity, CLOCK tracking LRU.
    let total_tracks = (program.db.len() as u32).div_ceil(BLOCKS_PER_TRACK) as usize;
    let half = (total_tracks / 2).max(1);
    check_goldens(
        "queens",
        &program,
        &trace,
        &[
            Golden { policy: PolicyKind::Lru, capacity_tracks: half, hits: 18036 },
            Golden { policy: PolicyKind::Lru, capacity_tracks: total_tracks, hits: 24504 },
            Golden { policy: PolicyKind::TwoQ, capacity_tracks: half, hits: 19347 },
            Golden { policy: PolicyKind::Clock, capacity_tracks: half, hits: 18036 },
        ],
    );
}

// ---------------------------------------------------------------------------
// MVCC write path
// ---------------------------------------------------------------------------

/// Segments the family trace is split into (one commit between each).
const MVCC_SEGMENTS: usize = 4;

/// One write-path golden line: counters after segment `seg`'s replay and
/// the commit that follows it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct MvccGolden {
    policy: PolicyKind,
    seg: usize,
    epoch: u64,
    accesses: u64,
    hits: u64,
    evictions: u64,
    stash: usize,
}

/// Replay the family trace through an [`MvccClauseStore`] under `policy`
/// at half the working-set capacity, committing one small transaction
/// (retract the previous probe, assert a new one) between segments while
/// an epoch-0 snapshot stays pinned — so the stash grows by exactly the
/// committed page versions and nothing retires until the pin drops.
fn mvcc_write_path_replay(
    program: &Program,
    trace: &[ClauseId],
    policy: PolicyKind,
) -> Vec<MvccGolden> {
    let total_tracks = (program.db.len() as u32).div_ceil(BLOCKS_PER_TRACK) as usize;
    let store = MvccClauseStore::new(
        &program.db,
        paged_config(
            policy,
            (total_tracks / 2).max(1),
            BLOCKS_PER_TRACK,
            program.db.len() + 2 * MVCC_SEGMENTS,
        ),
        CommitMode::Mvcc,
    );
    let pin = store.begin_read();
    let chunk = trace.len().div_ceil(MVCC_SEGMENTS);
    let mut out = Vec::new();
    let mut last_probe: Option<ClauseId> = None;
    for (seg, ids) in trace.chunks(chunk).enumerate() {
        let snap = store.begin_read();
        for &cid in ids {
            let _ = snap.fetch_clause(cid);
        }
        drop(snap);
        let mut txn = store.begin_write();
        if let Some(old) = last_probe.take() {
            txn.retract(old).unwrap();
        }
        last_probe = Some(txn.assert_text(&format!("mvcc_probe(s{seg}).")).unwrap()[0]);
        let epoch = txn.commit();
        let s = store.stats();
        out.push(MvccGolden {
            policy,
            seg,
            epoch,
            accesses: s.accesses,
            hits: s.hits,
            evictions: store.policy_stats().evictions,
            stash: store.stash_depth(),
        });
    }
    // Dropping the epoch-0 pin retires every stashed version.
    drop(pin);
    assert_eq!(store.stash_depth(), 0, "{policy}: stash leak after pin drop");
    out
}

fn mvcc_golden_line(g: &MvccGolden) -> String {
    format!(
        "{} seg={} epoch={} accesses={} hits={} evictions={} stash={}",
        g.policy.name(),
        g.seg,
        g.epoch,
        g.accesses,
        g.hits,
        g.evictions,
        g.stash
    )
}

fn parse_mvcc_golden(line: &str) -> MvccGolden {
    let mut parts = line.split_whitespace();
    let policy = PolicyKind::parse(parts.next().unwrap()).unwrap();
    let mut field = |name: &str| -> u64 {
        let kv = parts.next().unwrap_or_else(|| panic!("missing {name}: {line}"));
        kv.strip_prefix(name)
            .and_then(|v| v.strip_prefix('='))
            .unwrap_or_else(|| panic!("bad field {kv}, wanted {name}: {line}"))
            .parse()
            .unwrap()
    };
    MvccGolden {
        policy,
        seg: field("seg") as usize,
        epoch: field("epoch"),
        accesses: field("accesses"),
        hits: field("hits"),
        evictions: field("evictions"),
        stash: field("stash") as usize,
    }
}

#[test]
fn family_mvcc_write_path_replays_against_goldens() {
    let program = family_workload();
    let trace = load_or_regen(
        "family_access.trace",
        "family workload (generations=4, branching=3, seed=7)",
        &program,
    );
    let path = fixture_path("family_mvcc_write.golden");
    if std::env::var_os("REGEN_TRACE_FIXTURES").is_some() {
        let mut out = String::new();
        out.push_str("# MVCC write-path goldens: family trace in 4 segments, one\n");
        out.push_str("# commit (retract previous probe + assert new) between segments,\n");
        out.push_str("# an epoch-0 snapshot pinned throughout. Cache at half the\n");
        out.push_str(&format!("# working set. clauses: {}\n", program.db.len()));
        for kind in PolicyKind::ALL {
            for g in mvcc_write_path_replay(&program, &trace, kind) {
                out.push_str(&mvcc_golden_line(&g));
                out.push('\n');
            }
        }
        fs::write(&path, out).unwrap();
        eprintln!("regenerated {}", path.display());
    }
    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with REGEN_TRACE_FIXTURES=1",
            path.display()
        )
    });
    let goldens: Vec<MvccGolden> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(parse_mvcc_golden)
        .collect();
    assert_eq!(goldens.len(), PolicyKind::ALL.len() * MVCC_SEGMENTS);

    for kind in PolicyKind::ALL {
        let got = mvcc_write_path_replay(&program, &trace, kind);
        let want: Vec<&MvccGolden> = goldens.iter().filter(|g| g.policy == kind).collect();
        assert_eq!(got.len(), want.len(), "{kind}: segment count drifted");
        for (g, w) in got.iter().zip(&want) {
            // Version bookkeeping is policy-independent: epoch, access
            // count, and stash depth are exact for every policy.
            assert_eq!(g.seg, w.seg, "{kind}");
            assert_eq!(g.epoch, w.epoch, "{kind} seg {}: epoch drifted", g.seg);
            assert_eq!(
                g.accesses, w.accesses,
                "{kind} seg {}: access count drifted",
                g.seg
            );
            assert_eq!(g.stash, w.stash, "{kind} seg {}: stash depth drifted", g.seg);
            if matches!(kind, PolicyKind::Lru | PolicyKind::Fifo) {
                // Frozen semantics: exact.
                assert_eq!(g.hits, w.hits, "{kind} seg {}: hits drifted", g.seg);
                assert_eq!(
                    g.evictions, w.evictions,
                    "{kind} seg {}: evictions drifted",
                    g.seg
                );
            } else {
                let got_rate = g.hits as f64 / g.accesses as f64;
                let want_rate = w.hits as f64 / w.accesses as f64;
                assert!(
                    (got_rate - want_rate).abs() <= TUNABLE_WINDOW,
                    "{kind} seg {}: hit rate {got_rate:.4} outside golden {want_rate:.4} \
                     ± {TUNABLE_WINDOW} (update the golden if the tuning change is intended)",
                    g.seg
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Indexed candidate selection
// ---------------------------------------------------------------------------

/// One indexed-run golden line: the whole counter picture of a live
/// best-first run through a `FirstArg` store at half working-set
/// capacity. Unlike the replay goldens above, the *access stream itself*
/// is what's under test here — it is produced by indexed candidate
/// selection, so an index bug shows up as a drifted access or
/// index-counter line before any hit-rate wobble.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct IndexedGolden {
    policy: PolicyKind,
    accesses: u64,
    hits: u64,
    evictions: u64,
    index_hits: u64,
    index_prunes: u64,
    candidates_scanned: u64,
    solutions: usize,
}

/// Untrained best-first run of the family workload's first query through
/// a paged store under `policy` and `index`, at half the working set.
fn indexed_family_run(
    program: &Program,
    policy: PolicyKind,
    index: IndexPolicy,
) -> IndexedGolden {
    let total_tracks = (program.db.len() as u32).div_ceil(BLOCKS_PER_TRACK) as usize;
    let cfg = paged_config(
        policy,
        (total_tracks / 2).max(1),
        BLOCKS_PER_TRACK,
        program.db.len(),
    )
    .with_index(index);
    let store = PagedClauseStore::new(&program.db, cfg);
    let weights = WeightStore::new(WeightParams::default());
    let mut local = HashMap::new();
    let mut view = WeightView::new(&mut local, &weights);
    let r = best_first_with(
        &store,
        &program.queries[0],
        &mut view,
        &BestFirstConfig::default(),
    );
    let s = store.stats();
    IndexedGolden {
        policy,
        accesses: s.accesses,
        hits: s.hits,
        evictions: store.policy_stats().evictions,
        index_hits: s.index_hits,
        index_prunes: s.index_prunes,
        candidates_scanned: s.candidates_scanned,
        solutions: r.solutions.len(),
    }
}

fn indexed_golden_line(g: &IndexedGolden) -> String {
    format!(
        "{} accesses={} hits={} evictions={} index_hits={} index_prunes={} scanned={} solutions={}",
        g.policy.name(),
        g.accesses,
        g.hits,
        g.evictions,
        g.index_hits,
        g.index_prunes,
        g.candidates_scanned,
        g.solutions
    )
}

fn parse_indexed_golden(line: &str) -> IndexedGolden {
    let mut parts = line.split_whitespace();
    let policy = PolicyKind::parse(parts.next().unwrap()).unwrap();
    let mut field = |name: &str| -> u64 {
        let kv = parts.next().unwrap_or_else(|| panic!("missing {name}: {line}"));
        kv.strip_prefix(name)
            .and_then(|v| v.strip_prefix('='))
            .unwrap_or_else(|| panic!("bad field {kv}, wanted {name}: {line}"))
            .parse()
            .unwrap()
    };
    IndexedGolden {
        policy,
        accesses: field("accesses"),
        hits: field("hits"),
        evictions: field("evictions"),
        index_hits: field("index_hits"),
        index_prunes: field("index_prunes"),
        candidates_scanned: field("scanned"),
        solutions: field("solutions") as usize,
    }
}

#[test]
fn family_indexed_run_replays_against_goldens() {
    let program = family_workload();
    let path = fixture_path("family_indexed.golden");
    if std::env::var_os("REGEN_TRACE_FIXTURES").is_some() {
        let mut out = String::new();
        out.push_str("# Indexed-run goldens: untrained best-first on the family\n");
        out.push_str("# workload (generations=4, branching=3, seed=7) through a\n");
        out.push_str("# FirstArg paged store at half the working set. The access\n");
        out.push_str("# stream is index-determined, so accesses and the index\n");
        out.push_str(&format!(
            "# counters are exact for every policy. clauses: {}\n",
            program.db.len()
        ));
        for kind in PolicyKind::ALL {
            out.push_str(&indexed_golden_line(&indexed_family_run(
                &program,
                kind,
                IndexPolicy::FirstArg,
            )));
            out.push('\n');
        }
        fs::write(&path, out).unwrap();
        eprintln!("regenerated {}", path.display());
    }
    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with REGEN_TRACE_FIXTURES=1",
            path.display()
        )
    });
    let goldens: Vec<IndexedGolden> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(parse_indexed_golden)
        .collect();
    assert_eq!(goldens.len(), PolicyKind::ALL.len());

    let baseline = indexed_family_run(&program, PolicyKind::Lru, IndexPolicy::None);
    for w in &goldens {
        let g = indexed_family_run(&program, w.policy, IndexPolicy::FirstArg);

        // The candidate stream is determined by the index, not the
        // replacement policy: the engine-work picture is exact for every
        // policy, and it must show the index actually pruning.
        assert_eq!(g.accesses, w.accesses, "{}: access count drifted", w.policy);
        assert_eq!(g.index_hits, w.index_hits, "{}: index_hits drifted", w.policy);
        assert_eq!(
            g.index_prunes, w.index_prunes,
            "{}: index_prunes drifted",
            w.policy
        );
        assert_eq!(
            g.candidates_scanned, w.candidates_scanned,
            "{}: candidates_scanned drifted",
            w.policy
        );
        assert!(g.index_prunes > 0, "{}: index never pruned", w.policy);
        assert!(
            g.accesses < baseline.accesses,
            "{}: indexed run touched no fewer clauses than baseline ({} >= {})",
            w.policy,
            g.accesses,
            baseline.accesses
        );
        // Index transparency at the answer level, per policy.
        assert_eq!(
            g.solutions, baseline.solutions,
            "{}: solution count diverged from the unindexed run",
            w.policy
        );
        assert_eq!(g.solutions, w.solutions, "{}: solution count drifted", w.policy);

        if matches!(w.policy, PolicyKind::Lru | PolicyKind::Fifo) {
            // Frozen semantics: exact.
            assert_eq!(g.hits, w.hits, "{}: hits drifted", w.policy);
            assert_eq!(g.evictions, w.evictions, "{}: evictions drifted", w.policy);
        } else {
            let got_rate = g.hits as f64 / g.accesses as f64;
            let want_rate = w.hits as f64 / w.accesses as f64;
            assert!(
                (got_rate - want_rate).abs() <= TUNABLE_WINDOW,
                "{}: hit rate {got_rate:.4} outside golden {want_rate:.4} ± {TUNABLE_WINDOW} \
                 (update the golden if the tuning change is intended)",
                w.policy
            );
        }
    }
}

#[test]
fn queens_two_q_never_loses_to_lru() {
    // The ISSUE's companion claim to the family dominance test: on
    // workloads where scan resistance cannot help, 2Q must at least
    // never lose.
    let program = queens_workload();
    let trace = load_or_regen("queens_access.trace", "queens workload (n=5)", &program);
    let total_tracks = (program.db.len() as u32).div_ceil(BLOCKS_PER_TRACK) as usize;
    for capacity in [1, total_tracks / 4, total_tracks / 2, 3 * total_tracks / 4, total_tracks] {
        let capacity = capacity.max(1);
        let (lru, _) = replay(&program, &trace, PolicyKind::Lru, capacity);
        let (twoq, _) = replay(&program, &trace, PolicyKind::TwoQ, capacity);
        assert!(
            twoq >= lru,
            "2Q lost to LRU at capacity {capacity}: {twoq} < {lru}"
        );
    }
}
