//! The shared weighted frontier.
//!
//! Per-worker chain pools with a minimum-seeking acquisition rule: a free
//! worker compares its own cheapest chain against the cheapest chain on
//! any other worker and takes the remote one only when it is more than
//! `D` cheaper — §6's arbitration, with a mutex-protected scan playing
//! the comparator tree's role.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use blog_core::chain::Chain;
use blog_core::weight::Bound;
use parking_lot::{Condvar, Mutex};

/// How workers share chains.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrontierPolicy {
    /// One global pool: every acquisition takes the global minimum
    /// (idealized best-first, the "sorting network" design of §3).
    SharedHeap,
    /// Per-worker pools with the §6 D-threshold arbitration.
    LocalPools {
        /// The communication threshold `D`, in bound units.
        d: u64,
    },
}

struct Item {
    key: (u64, u64), // (bound, seq)
    chain: Chain,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Item {}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

struct State {
    pools: Vec<BinaryHeap<Reverse<Item>>>,
    /// Chains popped and still being expanded.
    active: usize,
    /// Monotone sequence for deterministic per-pool tie-breaks.
    seq: u64,
    /// Set when the search is complete or aborted.
    done: bool,
    /// Remote acquisitions (chains taken from another worker's pool).
    steals: u64,
    /// Local acquisitions.
    local: u64,
    /// Largest total frontier size observed.
    max_len: usize,
}

/// Outcome counters returned by [`Frontier::counters`].
#[derive(Clone, Copy, Default, Debug)]
pub struct FrontierCounters {
    /// Chains taken from another worker's pool.
    pub steals: u64,
    /// Chains taken from the worker's own pool.
    pub local: u64,
    /// Peak total frontier size.
    pub max_len: usize,
}

/// The shared frontier (one per parallel query).
pub struct Frontier {
    policy: FrontierPolicy,
    state: Mutex<State>,
    cv: Condvar,
}

impl Frontier {
    /// A frontier for `n_workers` workers, seeded with the root chain in
    /// worker 0's pool (the paper: "initially, one processor is given the
    /// initial query").
    pub fn new(n_workers: usize, policy: FrontierPolicy, root: Chain) -> Frontier {
        assert!(n_workers >= 1);
        let n_pools = match policy {
            FrontierPolicy::SharedHeap => 1,
            FrontierPolicy::LocalPools { .. } => n_workers,
        };
        let mut pools: Vec<BinaryHeap<Reverse<Item>>> =
            (0..n_pools).map(|_| BinaryHeap::new()).collect();
        pools[0].push(Reverse(Item {
            key: (root.bound.0, 0),
            chain: root,
        }));
        Frontier {
            policy,
            state: Mutex::new(State {
                pools,
                active: 0,
                seq: 1,
                done: false,
                steals: 0,
                local: 0,
                max_len: 1,
            }),
            cv: Condvar::new(),
        }
    }

    fn pool_of(&self, worker: usize) -> usize {
        match self.policy {
            FrontierPolicy::SharedHeap => 0,
            FrontierPolicy::LocalPools { .. } => worker,
        }
    }

    /// Push freshly sprouted chains from `worker`.
    pub fn push_children(&self, worker: usize, children: Vec<Chain>) {
        if children.is_empty() {
            return;
        }
        let mut st = self.state.lock();
        let pool = self.pool_of(worker);
        let n = children.len();
        for chain in children {
            st.seq += 1;
            let key = (chain.bound.0, st.seq);
            st.pools[pool].push(Reverse(Item { key, chain }));
        }
        let total: usize = st.pools.iter().map(BinaryHeap::len).sum();
        st.max_len = st.max_len.max(total);
        drop(st);
        for _ in 0..n {
            self.cv.notify_one();
        }
    }

    /// Acquire the next chain for `worker`, blocking while the frontier
    /// is temporarily empty but other workers are still expanding.
    /// Returns `None` when the search is complete (or aborted).
    pub fn acquire(&self, worker: usize) -> Option<Chain> {
        let mut st = self.state.lock();
        loop {
            if st.done {
                return None;
            }
            let my_pool = self.pool_of(worker);
            let chosen = self.choose_pool(&st, my_pool);
            if let Some(pool) = chosen {
                let Reverse(item) = st.pools[pool].pop().expect("chosen pool non-empty");
                st.active += 1;
                if pool == my_pool {
                    st.local += 1;
                } else {
                    st.steals += 1;
                }
                return Some(item.chain);
            }
            if st.active == 0 {
                // Nothing in flight and nothing queued: search over.
                st.done = true;
                self.cv.notify_all();
                return None;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Pick the pool to pop from, honoring the D-threshold.
    fn choose_pool(&self, st: &State, my_pool: usize) -> Option<usize> {
        let min_of = |p: usize| st.pools[p].peek().map(|Reverse(i)| i.key.0);
        match self.policy {
            FrontierPolicy::SharedHeap => min_of(0).map(|_| 0),
            FrontierPolicy::LocalPools { d } => {
                let local = min_of(my_pool);
                let mut best_remote: Option<(usize, u64)> = None;
                for p in 0..st.pools.len() {
                    if p == my_pool {
                        continue;
                    }
                    if let Some(b) = min_of(p) {
                        if best_remote.is_none_or(|(_, bb)| b < bb) {
                            best_remote = Some((p, b));
                        }
                    }
                }
                match (local, best_remote) {
                    (None, None) => None,
                    (Some(_), None) => Some(my_pool),
                    (None, Some((p, _))) => Some(p),
                    (Some(lb), Some((p, rb))) => {
                        if rb.saturating_add(d) < lb {
                            Some(p)
                        } else {
                            Some(my_pool)
                        }
                    }
                }
            }
        }
    }

    /// Mark one acquired chain as fully processed. Must be called exactly
    /// once per successful [`acquire`](Self::acquire).
    pub fn finish(&self, _worker: usize) {
        let mut st = self.state.lock();
        st.active -= 1;
        if st.active == 0 && st.pools.iter().all(BinaryHeap::is_empty) {
            st.done = true;
            self.cv.notify_all();
        } else if st.active == 0 {
            // Waiters may now be able to pick up the remaining work.
            self.cv.notify_all();
        }
    }

    /// Abort the search: wake everyone, acquire returns `None`.
    pub fn abort(&self) {
        let mut st = self.state.lock();
        st.done = true;
        self.cv.notify_all();
    }

    /// The globally cheapest queued bound, if any (for tests/monitoring).
    pub fn global_min(&self) -> Option<Bound> {
        let st = self.state.lock();
        st.pools
            .iter()
            .filter_map(|p| p.peek().map(|Reverse(i)| i.key.0))
            .min()
            .map(Bound)
    }

    /// Steal/local counters.
    pub fn counters(&self) -> FrontierCounters {
        let st = self.state.lock();
        FrontierCounters {
            steals: st.steals,
            local: st.local,
            max_len: st.max_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blog_logic::SearchNode;

    fn chain(bound: u64) -> Chain {
        let mut c = Chain::root(SearchNode::root(&[]));
        c.bound = Bound(bound);
        c
    }

    #[test]
    fn seeded_root_is_acquired_first() {
        let f = Frontier::new(2, FrontierPolicy::SharedHeap, chain(7));
        let c = f.acquire(0).unwrap();
        assert_eq!(c.bound, Bound(7));
        f.finish(0);
        assert!(f.acquire(0).is_none());
    }

    #[test]
    fn shared_heap_pops_global_minimum() {
        let f = Frontier::new(2, FrontierPolicy::SharedHeap, chain(5));
        let first = f.acquire(0).unwrap();
        assert_eq!(first.bound, Bound(5));
        f.push_children(0, vec![chain(9), chain(3), chain(6)]);
        let next = f.acquire(1).unwrap();
        assert_eq!(next.bound, Bound(3));
        f.abort();
    }

    #[test]
    fn local_pools_respect_d() {
        // Worker 0 holds bounds {10}; worker 1 holds {13}. With D=5 the
        // remote 10 is not 5 cheaper than 13, so worker 1 stays local.
        let f = Frontier::new(2, FrontierPolicy::LocalPools { d: 5 }, chain(10));
        // Seed worker 1's pool by pushing from worker 1.
        f.push_children(1, vec![chain(13)]);
        let got = f.acquire(1).unwrap();
        assert_eq!(got.bound, Bound(13), "D gate keeps worker 1 local");
        // With D=1, worker 1 steals the 10.
        let f2 = Frontier::new(2, FrontierPolicy::LocalPools { d: 1 }, chain(10));
        f2.push_children(1, vec![chain(13)]);
        let got2 = f2.acquire(1).unwrap();
        assert_eq!(got2.bound, Bound(10));
        assert_eq!(f2.counters().steals, 1);
        f.abort();
        f2.abort();
    }

    #[test]
    fn empty_local_pool_always_steals() {
        let f = Frontier::new(2, FrontierPolicy::LocalPools { d: 1_000 }, chain(42));
        let got = f.acquire(1).unwrap();
        assert_eq!(got.bound, Bound(42));
        assert_eq!(f.counters().steals, 1);
        f.abort();
    }

    #[test]
    fn finish_without_work_terminates_all() {
        let f = Frontier::new(1, FrontierPolicy::SharedHeap, chain(1));
        let _c = f.acquire(0).unwrap();
        f.finish(0); // no children pushed → done
        assert!(f.acquire(0).is_none());
    }

    #[test]
    fn blocking_acquire_wakes_on_push() {
        use std::sync::Arc;
        let f = Arc::new(Frontier::new(2, FrontierPolicy::SharedHeap, chain(1)));
        let c = f.acquire(0).unwrap();
        assert_eq!(c.bound, Bound(1));
        let f2 = Arc::clone(&f);
        let handle = std::thread::spawn(move || f2.acquire(1).map(|c| c.bound));
        // The spawned worker blocks (active == 1, pool empty); pushing
        // work must wake it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        f.push_children(0, vec![chain(8)]);
        f.finish(0);
        let got = handle.join().unwrap();
        assert_eq!(got, Some(Bound(8)));
        f.abort();
    }

    #[test]
    fn max_len_tracks_peak() {
        let f = Frontier::new(1, FrontierPolicy::SharedHeap, chain(1));
        let _ = f.acquire(0).unwrap();
        f.push_children(0, vec![chain(2), chain(3), chain(4)]);
        assert_eq!(f.counters().max_len, 3);
        f.abort();
    }
}
