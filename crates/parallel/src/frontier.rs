//! The shared weighted frontier.
//!
//! Per-worker chain pools with a minimum-seeking acquisition rule: a free
//! worker compares its own cheapest chain against the cheapest chain on
//! any other worker and takes the remote one only when it is more than
//! `D` cheaper — §6's arbitration network. Three reproductions of that
//! hardware, from most to least serialized:
//!
//! - [`FrontierPolicy::SharedHeap`] — one global heap under one mutex
//!   (idealized best-first, the "sorting network" design of §3);
//! - [`FrontierPolicy::LocalPools`] — per-worker heaps, still under one
//!   global mutex, with the D-threshold scan playing the comparator tree
//!   (the PR-0 baseline);
//! - [`FrontierPolicy::Sharded`] — per-worker heaps each under their own
//!   small lock, plus a lock-free comparator: an `AtomicU64`
//!   published-minimum per pool, refreshed on every push/pop, so the §6
//!   D-threshold decision reads N atomics instead of peeking N heaps
//!   under a global lock. Termination is an atomic outstanding-chain
//!   count plus an eventcount-style sleep protocol (no global condvar on
//!   the hot path).
//!
//! The sharded shape also enables two executor-side levers (see
//! `orparallel`): **batched sprouts** (all children of one expansion enter
//! the owner's shard under a single lock acquisition, publishing the new
//! minimum once) and **local dives** ([`Frontier::should_dive`] — the
//! paper's "a processor keeps its own cheapest chain").

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::Ordering::{Relaxed, SeqCst};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

use blog_core::chain::Chain;
use blog_core::weight::Bound;
use parking_lot::{Condvar, Mutex};

/// How workers share chains.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrontierPolicy {
    /// One global pool: every acquisition takes the global minimum
    /// (idealized best-first, the "sorting network" design of §3).
    SharedHeap,
    /// Per-worker pools with the §6 D-threshold arbitration, all under a
    /// single global mutex (the pre-sharding baseline).
    LocalPools {
        /// The communication threshold `D`, in bound units.
        d: u64,
    },
    /// Per-worker pools, each under its own lock, with the D-threshold
    /// decision made over per-pool `AtomicU64` published minimums.
    Sharded {
        /// The communication threshold `D`, in bound units.
        d: u64,
    },
}

impl FrontierPolicy {
    /// Short label for tables and JSON rows.
    pub fn label(&self) -> &'static str {
        match self {
            FrontierPolicy::SharedHeap => "shared-heap",
            FrontierPolicy::LocalPools { .. } => "local-pools",
            FrontierPolicy::Sharded { .. } => "sharded",
        }
    }
}

struct Item {
    key: (u64, u64), // (bound, seq)
    chain: Chain,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Item {}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Outcome counters returned by [`Frontier::counters`].
#[derive(Clone, Copy, Default, Debug)]
pub struct FrontierCounters {
    /// Chains taken from another worker's pool.
    pub steals: u64,
    /// Chains taken from the worker's own pool.
    pub local: u64,
    /// Peak total frontier size.
    pub max_len: usize,
    /// Chains expanded without a frontier round-trip (filled in by the
    /// executor, which is where dives happen; always 0 straight from
    /// [`Frontier::counters`]).
    pub dives: u64,
    /// Lock acquisitions on the chain store: shard locks (one per push
    /// batch or pop) under [`FrontierPolicy::Sharded`]; under the
    /// global-mutex policies, every acquisition of the one state mutex
    /// from push/acquire/finish — including condvar re-acquisitions,
    /// which re-enter that same store-protecting mutex. The sharded
    /// store's small sleep mutex guards no chain state and is not
    /// counted.
    pub shard_locks: u64,
    /// Published-minimum refreshes (sharded only; each covers a whole
    /// push batch or pop).
    pub min_publishes: u64,
    /// Wakeups after which the woken worker found nothing to pop.
    pub spurious_wakeups: u64,
}

impl blog_obs::RecordInto for FrontierCounters {
    fn record_into(&self, registry: &blog_obs::Registry) {
        registry.counter("frontier.steals").add(self.steals);
        registry.counter("frontier.local").add(self.local);
        registry.gauge("frontier.max_len").set(self.max_len as f64);
        registry.counter("frontier.dives").add(self.dives);
        registry.counter("frontier.shard_locks").add(self.shard_locks);
        registry.counter("frontier.min_publishes").add(self.min_publishes);
        registry
            .counter("frontier.spurious_wakeups")
            .add(self.spurious_wakeups);
    }
}

// ---------------------------------------------------------------------------
// Legacy global-mutex frontier (SharedHeap + LocalPools)
// ---------------------------------------------------------------------------

struct GlobalState {
    pools: Vec<BinaryHeap<Reverse<Item>>>,
    /// Chains popped and still being expanded.
    active: usize,
    /// Monotone sequence for deterministic per-pool tie-breaks.
    seq: u64,
    /// Set when the search is complete or aborted.
    done: bool,
    /// Workers currently blocked in the condvar.
    waiting: usize,
    steals: u64,
    local: u64,
    max_len: usize,
    spurious: u64,
    locks: u64,
}

struct GlobalFrontier {
    state: Mutex<GlobalState>,
    cv: Condvar,
}

impl GlobalFrontier {
    fn new(n_pools: usize, root: Chain) -> GlobalFrontier {
        let mut pools: Vec<BinaryHeap<Reverse<Item>>> =
            (0..n_pools).map(|_| BinaryHeap::new()).collect();
        pools[0].push(Reverse(Item {
            key: (root.bound.0, 0),
            chain: root,
        }));
        GlobalFrontier {
            state: Mutex::new(GlobalState {
                pools,
                active: 0,
                seq: 1,
                done: false,
                waiting: 0,
                steals: 0,
                local: 0,
                max_len: 1,
                spurious: 0,
                locks: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn push_children(&self, pool: usize, children: &mut Vec<Chain>) {
        let n = children.len();
        let mut st = self.state.lock();
        st.locks += 1;
        for chain in children.drain(..) {
            st.seq += 1;
            let key = (chain.bound.0, st.seq);
            st.pools[pool].push(Reverse(Item { key, chain }));
        }
        let total: usize = st.pools.iter().map(BinaryHeap::len).sum();
        st.max_len = st.max_len.max(total);
        // Wake at most the number of sleeping workers: more wakeups than
        // waiters (the old notify-per-child storm) only produce spurious
        // condvar traffic.
        let wake = n.min(st.waiting);
        drop(st);
        for _ in 0..wake {
            self.cv.notify_one();
        }
    }

    fn acquire(&self, policy: FrontierPolicy, my_pool: usize) -> Option<Chain> {
        let mut st = self.state.lock();
        st.locks += 1;
        let mut woke = false;
        loop {
            if st.done {
                return None;
            }
            let chosen = Self::choose_pool(policy, &st, my_pool);
            if let Some(pool) = chosen {
                let Reverse(item) = st.pools[pool].pop().expect("chosen pool non-empty");
                st.active += 1;
                if pool == my_pool {
                    st.local += 1;
                } else {
                    st.steals += 1;
                }
                return Some(item.chain);
            }
            if woke {
                // Woken with nothing to show for it.
                st.spurious += 1;
            }
            if st.active == 0 {
                // Nothing in flight and nothing queued: search over.
                st.done = true;
                self.cv.notify_all();
                return None;
            }
            st.waiting += 1;
            // Timed for the same liveness-belt reason as the sharded
            // store: a lost wakeup degrades to a bounded nap, not a hang.
            self.cv.wait_for(&mut st, std::time::Duration::from_millis(2));
            st.waiting -= 1;
            st.locks += 1; // condvar re-acquisition
            woke = true;
        }
    }

    /// Pick the pool to pop from, honoring the D-threshold.
    fn choose_pool(policy: FrontierPolicy, st: &GlobalState, my_pool: usize) -> Option<usize> {
        let min_of = |p: usize| st.pools[p].peek().map(|Reverse(i)| i.key.0);
        match policy {
            FrontierPolicy::SharedHeap => min_of(0).map(|_| 0),
            FrontierPolicy::LocalPools { d } | FrontierPolicy::Sharded { d } => {
                let local = min_of(my_pool);
                let mut best_remote: Option<(usize, u64)> = None;
                for p in 0..st.pools.len() {
                    if p == my_pool {
                        continue;
                    }
                    if let Some(b) = min_of(p) {
                        if best_remote.is_none_or(|(_, bb)| b < bb) {
                            best_remote = Some((p, b));
                        }
                    }
                }
                match (local, best_remote) {
                    (None, None) => None,
                    (Some(_), None) => Some(my_pool),
                    (None, Some((p, _))) => Some(p),
                    (Some(lb), Some((p, rb))) => {
                        if rb.saturating_add(d) < lb {
                            Some(p)
                        } else {
                            Some(my_pool)
                        }
                    }
                }
            }
        }
    }

    fn finish(&self) {
        let mut st = self.state.lock();
        st.locks += 1;
        st.active -= 1;
        if st.active == 0 {
            // Either the search is over (everything empty) or the waiters
            // may now be able to pick up the remaining work.
            if st.pools.iter().all(BinaryHeap::is_empty) {
                st.done = true;
            }
            self.cv.notify_all();
        }
    }

    fn abort(&self) {
        let mut st = self.state.lock();
        st.done = true;
        self.cv.notify_all();
    }

    fn global_min(&self) -> Option<Bound> {
        let st = self.state.lock();
        st.pools
            .iter()
            .filter_map(|p| p.peek().map(|Reverse(i)| i.key.0))
            .min()
            .map(Bound)
    }

    fn counters(&self) -> FrontierCounters {
        let st = self.state.lock();
        FrontierCounters {
            steals: st.steals,
            local: st.local,
            max_len: st.max_len,
            dives: 0,
            shard_locks: st.locks,
            min_publishes: 0,
            spurious_wakeups: st.spurious,
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded frontier
// ---------------------------------------------------------------------------

/// Sentinel published by an empty shard.
const EMPTY_MIN: u64 = u64::MAX;

struct ShardHeap {
    heap: BinaryHeap<Reverse<Item>>,
    /// Per-shard monotone sequence for deterministic tie-breaks.
    seq: u64,
}

struct Shard {
    heap: Mutex<ShardHeap>,
    /// Cheapest queued bound in this shard, [`EMPTY_MIN`] when empty.
    /// Written only under the shard lock; read lock-free by the §6
    /// comparator ([`ShardedFrontier::choose_shard`]) and the dive rule.
    published_min: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            heap: Mutex::new(ShardHeap {
                heap: BinaryHeap::new(),
                seq: 0,
            }),
            published_min: AtomicU64::new(EMPTY_MIN),
        }
    }
}

struct ShardedFrontier {
    shards: Vec<Shard>,
    d: u64,
    /// Chains pushed but not yet `finish`ed (queued + being expanded).
    /// Zero means the search is exhausted — the termination detector.
    outstanding: AtomicU64,
    done: AtomicBool,
    /// Sleep protocol: a worker that finds every published minimum empty
    /// registers in `sleepers`, re-checks under `sleep`, then waits.
    /// Pushers store the new minimum *before* loading `sleepers` (both
    /// `SeqCst`), so either the pusher sees the sleeper and notifies, or
    /// the sleeper's re-check sees the new minimum — no lost wakeup.
    sleep: Mutex<()>,
    cv: Condvar,
    sleepers: AtomicUsize,
    // Counters (all Relaxed: monotone telemetry, not synchronization).
    steals: AtomicU64,
    local: AtomicU64,
    shard_locks: AtomicU64,
    min_publishes: AtomicU64,
    spurious: AtomicU64,
    total_len: AtomicU64,
    max_len: AtomicU64,
}

impl ShardedFrontier {
    fn new(n_shards: usize, d: u64, root: Chain) -> ShardedFrontier {
        let shards: Vec<Shard> = (0..n_shards).map(|_| Shard::new()).collect();
        let root_bound = root.bound.0;
        shards[0].heap.lock().heap.push(Reverse(Item {
            key: (root_bound, 0),
            chain: root,
        }));
        shards[0].published_min.store(root_bound, SeqCst);
        ShardedFrontier {
            shards,
            d,
            outstanding: AtomicU64::new(1),
            done: AtomicBool::new(false),
            sleep: Mutex::new(()),
            cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            local: AtomicU64::new(0),
            shard_locks: AtomicU64::new(1),
            min_publishes: AtomicU64::new(1),
            spurious: AtomicU64::new(0),
            total_len: AtomicU64::new(1),
            max_len: AtomicU64::new(1),
        }
    }

    /// Push a whole expansion batch into `pool` under one lock
    /// acquisition, publishing the new minimum once.
    fn push_children(&self, pool: usize, children: &mut Vec<Chain>) {
        let n = children.len() as u64;
        // Count the new chains as outstanding *before* they become
        // poppable, so the termination detector can never observe zero
        // while queued work exists.
        self.outstanding.fetch_add(n, SeqCst);
        let shard = &self.shards[pool];
        {
            let mut sh = shard.heap.lock();
            self.shard_locks.fetch_add(1, Relaxed);
            for chain in children.drain(..) {
                sh.seq += 1;
                let key = (chain.bound.0, sh.seq);
                sh.heap.push(Reverse(Item { key, chain }));
            }
            // Update the length gauge BEFORE the items become poppable
            // (i.e. before this lock is released): a racing pop could
            // otherwise decrement first and wrap the counter.
            let cur = self.total_len.fetch_add(n, Relaxed) + n;
            self.max_len.fetch_max(cur, Relaxed);
            let new_min = sh.heap.peek().map_or(EMPTY_MIN, |Reverse(i)| i.key.0);
            shard.published_min.store(new_min, SeqCst);
            self.min_publishes.fetch_add(1, Relaxed);
        }
        // Wake at most ONE sleeper per push batch (SeqCst pairs with the
        // sleeper's registration; see the `sleep` field docs). Waking a
        // thief per chain just produces a wake-steal-sleep convoy; a
        // woken thief that finds surplus work wakes the next sleeper
        // itself (see `acquire`), so throughput ramps without the storm.
        if self.sleepers.load(SeqCst) > 0 {
            let _g = self.sleep.lock();
            self.cv.notify_one();
        }
    }

    /// The §6 comparator: read every shard's published minimum (N atomic
    /// loads, no locks) and apply the D rule. Relaxed loads suffice: a
    /// stale minimum costs at most a futile `try_pop` retry or a detour
    /// through the sleep path, whose registered re-check reads `SeqCst`.
    fn choose_shard(&self, my_pool: usize) -> Option<usize> {
        let local = self.shards[my_pool].published_min.load(Relaxed);
        let mut best_remote: Option<(usize, u64)> = None;
        for (p, shard) in self.shards.iter().enumerate() {
            if p == my_pool {
                continue;
            }
            let b = shard.published_min.load(Relaxed);
            if b != EMPTY_MIN && best_remote.is_none_or(|(_, bb)| b < bb) {
                best_remote = Some((p, b));
            }
        }
        match (local != EMPTY_MIN, best_remote) {
            (false, None) => None,
            (true, None) => Some(my_pool),
            (false, Some((p, _))) => Some(p),
            (true, Some((p, rb))) => {
                if rb.saturating_add(self.d) < local {
                    Some(p)
                } else {
                    Some(my_pool)
                }
            }
        }
    }

    /// Pop from one shard, republishing its minimum. `None` if the shard
    /// was drained by a racing worker since the comparator read. The
    /// republish can be `Release`: a pop only *raises* the minimum, so a
    /// reader acting on the stale (lower) value merely retries — the
    /// no-lost-wakeup argument needs only *pushes* to be promptly
    /// visible.
    fn try_pop(&self, pool: usize) -> Option<Chain> {
        let shard = &self.shards[pool];
        let mut sh = shard.heap.lock();
        self.shard_locks.fetch_add(1, Relaxed);
        let popped = sh.heap.pop();
        if popped.is_some() {
            // Under the lock, pairing with the push-side increment: each
            // item's increment happens-before its decrement, so the
            // gauge can never transiently wrap below zero.
            self.total_len.fetch_sub(1, Relaxed);
        }
        let new_min = sh.heap.peek().map_or(EMPTY_MIN, |Reverse(i)| i.key.0);
        shard.published_min.store(new_min, std::sync::atomic::Ordering::Release);
        drop(sh);
        self.min_publishes.fetch_add(1, Relaxed);
        popped.map(|Reverse(item)| item.chain)
    }

    fn acquire(&self, my_pool: usize) -> Option<Chain> {
        let mut woke = false;
        loop {
            if self.done.load(SeqCst) {
                return None;
            }
            if let Some(pool) = self.choose_shard(my_pool) {
                if let Some(chain) = self.try_pop(pool) {
                    // The chain moves from queued to active: `outstanding`
                    // is unchanged until `finish`.
                    if pool == my_pool {
                        self.local.fetch_add(1, Relaxed);
                    } else {
                        self.steals.fetch_add(1, Relaxed);
                        // Wake chaining: a *woken* thief that finds the
                        // victim still has surplus recruits the next
                        // sleeper (pushes wake only one, so the wake tree
                        // fans out at the rate work actually appears,
                        // without a futex call per steal).
                        if woke
                            && self.shards[pool].published_min.load(Relaxed) != EMPTY_MIN
                            && self.sleepers.load(SeqCst) > 0
                        {
                            let _g = self.sleep.lock();
                            self.cv.notify_one();
                        }
                    }
                    return Some(chain);
                }
                // Raced: the published minimum was stale. Rescan.
                continue;
            }
            if woke {
                self.spurious.fetch_add(1, Relaxed);
                woke = false;
            }
            if self.outstanding.load(SeqCst) == 0 {
                self.terminate();
                return None;
            }
            // Every published minimum is empty but chains are in flight:
            // sleep until a pusher or the termination detector wakes us.
            self.sleepers.fetch_add(1, SeqCst);
            let mut g = self.sleep.lock();
            // Re-check after registering (the other half of the pusher's
            // store-then-load); skip the wait if anything changed.
            let work_appeared = self.done.load(SeqCst)
                || self.outstanding.load(SeqCst) == 0
                || self
                    .shards
                    .iter()
                    .any(|s| s.published_min.load(SeqCst) != EMPTY_MIN);
            if !work_appeared {
                // Timed wait as a liveness belt: if a wakeup were ever
                // lost despite the protocol, the sleeper re-scans after a
                // bounded nap instead of hanging the search.
                self.cv
                    .wait_for(&mut g, std::time::Duration::from_millis(2));
                woke = true;
            }
            drop(g);
            self.sleepers.fetch_sub(1, SeqCst);
        }
    }

    fn finish(&self) {
        if self.outstanding.fetch_sub(1, SeqCst) == 1 {
            // Last outstanding chain: every pushed chain has been fully
            // expanded, so every heap is empty. Search over.
            self.terminate();
        }
    }

    fn terminate(&self) {
        self.done.store(true, SeqCst);
        let _g = self.sleep.lock();
        self.cv.notify_all();
    }

    fn global_min(&self) -> Option<Bound> {
        self.shards
            .iter()
            .map(|s| s.published_min.load(SeqCst))
            .filter(|&b| b != EMPTY_MIN)
            .min()
            .map(Bound)
    }

    fn counters(&self) -> FrontierCounters {
        FrontierCounters {
            steals: self.steals.load(Relaxed),
            local: self.local.load(Relaxed),
            max_len: self.max_len.load(Relaxed) as usize,
            dives: 0,
            shard_locks: self.shard_locks.load(Relaxed),
            min_publishes: self.min_publishes.load(Relaxed),
            spurious_wakeups: self.spurious.load(Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Public facade
// ---------------------------------------------------------------------------

enum Imp {
    Global(GlobalFrontier),
    Sharded(ShardedFrontier),
}

/// The shared frontier (one per parallel query).
pub struct Frontier {
    policy: FrontierPolicy,
    imp: Imp,
}

impl Frontier {
    /// A frontier for `n_workers` workers, seeded with the root chain in
    /// worker 0's pool (the paper: "initially, one processor is given the
    /// initial query").
    pub fn new(n_workers: usize, policy: FrontierPolicy, root: Chain) -> Frontier {
        assert!(n_workers >= 1);
        let imp = match policy {
            FrontierPolicy::SharedHeap => Imp::Global(GlobalFrontier::new(1, root)),
            FrontierPolicy::LocalPools { .. } => Imp::Global(GlobalFrontier::new(n_workers, root)),
            FrontierPolicy::Sharded { d } => Imp::Sharded(ShardedFrontier::new(n_workers, d, root)),
        };
        Frontier { policy, imp }
    }

    fn pool_of(&self, worker: usize) -> usize {
        match self.policy {
            FrontierPolicy::SharedHeap => 0,
            FrontierPolicy::LocalPools { .. } | FrontierPolicy::Sharded { .. } => worker,
        }
    }

    /// Push freshly sprouted chains from `worker`, draining `children` so
    /// the caller can reuse the buffer across expansions. The whole batch
    /// enters the worker's pool under one lock acquisition.
    pub fn push_children_from(&self, worker: usize, children: &mut Vec<Chain>) {
        if children.is_empty() {
            return;
        }
        let pool = self.pool_of(worker);
        match &self.imp {
            Imp::Global(g) => g.push_children(pool, children),
            Imp::Sharded(s) => s.push_children(pool, children),
        }
    }

    /// Push freshly sprouted chains from `worker` (owned-vector form).
    pub fn push_children(&self, worker: usize, mut children: Vec<Chain>) {
        self.push_children_from(worker, &mut children);
    }

    /// Acquire the next chain for `worker`, blocking while the frontier
    /// is temporarily empty but other workers are still expanding.
    /// Returns `None` when the search is complete (or aborted).
    pub fn acquire(&self, worker: usize) -> Option<Chain> {
        match &self.imp {
            Imp::Global(g) => g.acquire(self.policy, self.pool_of(worker)),
            Imp::Sharded(s) => s.acquire(self.pool_of(worker)),
        }
    }

    /// Mark one acquired chain as fully processed. Must be called exactly
    /// once per successful [`acquire`](Self::acquire) — a local dive
    /// (expanding a child without re-acquiring) extends the chain's
    /// active slot rather than opening a new one.
    pub fn finish(&self, _worker: usize) {
        match &self.imp {
            Imp::Global(g) => g.finish(),
            Imp::Sharded(s) => s.finish(),
        }
    }

    /// Abort the search: wake everyone, acquire returns `None`.
    pub fn abort(&self) {
        match &self.imp {
            Imp::Global(g) => g.abort(),
            Imp::Sharded(s) => s.terminate(),
        }
    }

    /// Whether the search has completed or been aborted (advisory, for
    /// tests and monitoring; the executor's dive cutoff after an abort
    /// happens inside [`should_dive`](Self::should_dive)).
    pub fn is_done(&self) -> bool {
        match &self.imp {
            Imp::Global(g) => g.state.lock().done,
            Imp::Sharded(s) => s.done.load(SeqCst),
        }
    }

    /// The §6 dive rule: keep expanding the freshly sprouted child
    /// (bound `child_bound`) when it is within `D` of the **global**
    /// published minimum — the paper's "each processor compares its
    /// cheapest chain against the global minimum", read here as N
    /// lock-free atomic loads over the per-pool published minimums.
    /// A child more than `D` above the global minimum goes back through
    /// arbitration instead (diving on it would pin the worker to a
    /// globally uncompetitive subtree). Always false for the
    /// global-mutex policies, whose store publishes no minimums to
    /// compare against, and after an abort.
    pub fn should_dive(&self, _worker: usize, child_bound: Bound) -> bool {
        match &self.imp {
            Imp::Global(_) => false,
            Imp::Sharded(s) => {
                // Lock-free — `step` runs this once per expansion.
                if s.done.load(Relaxed) {
                    return false;
                }
                let global_min = s
                    .shards
                    .iter()
                    .map(|shard| shard.published_min.load(Relaxed))
                    .min()
                    .unwrap_or(EMPTY_MIN);
                child_bound.0 <= global_min.saturating_add(s.d)
            }
        }
    }

    /// The globally cheapest queued bound, if any (for tests/monitoring).
    /// Under [`FrontierPolicy::Sharded`] this reads the published
    /// minimums, so it can briefly trail the heaps during a push.
    pub fn global_min(&self) -> Option<Bound> {
        match &self.imp {
            Imp::Global(g) => g.global_min(),
            Imp::Sharded(s) => s.global_min(),
        }
    }

    /// Steal/local/contention counters.
    pub fn counters(&self) -> FrontierCounters {
        match &self.imp {
            Imp::Global(g) => g.counters(),
            Imp::Sharded(s) => s.counters(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blog_logic::SearchNode;

    fn chain(bound: u64) -> Chain {
        let mut c = Chain::root(SearchNode::root(&[]));
        c.bound = Bound(bound);
        c
    }

    fn policies() -> [FrontierPolicy; 3] {
        [
            FrontierPolicy::SharedHeap,
            FrontierPolicy::LocalPools { d: 5 },
            FrontierPolicy::Sharded { d: 5 },
        ]
    }

    #[test]
    fn seeded_root_is_acquired_first() {
        for policy in policies() {
            let f = Frontier::new(2, policy, chain(7));
            let c = f.acquire(0).unwrap();
            assert_eq!(c.bound, Bound(7), "{policy:?}");
            f.finish(0);
            assert!(f.acquire(0).is_none(), "{policy:?}");
        }
    }

    #[test]
    fn shared_heap_pops_global_minimum() {
        let f = Frontier::new(2, FrontierPolicy::SharedHeap, chain(5));
        let first = f.acquire(0).unwrap();
        assert_eq!(first.bound, Bound(5));
        f.push_children(0, vec![chain(9), chain(3), chain(6)]);
        let next = f.acquire(1).unwrap();
        assert_eq!(next.bound, Bound(3));
        f.abort();
    }

    #[test]
    fn local_pools_respect_d() {
        for mk in [
            |d| FrontierPolicy::LocalPools { d },
            |d| FrontierPolicy::Sharded { d },
        ] {
            // Worker 0 holds bounds {10}; worker 1 holds {13}. With D=5
            // the remote 10 is not 5 cheaper than 13, so worker 1 stays
            // local.
            let f = Frontier::new(2, mk(5), chain(10));
            // Seed worker 1's pool by pushing from worker 1.
            f.push_children(1, vec![chain(13)]);
            let got = f.acquire(1).unwrap();
            assert_eq!(got.bound, Bound(13), "D gate keeps worker 1 local");
            // With D=1, worker 1 steals the 10.
            let f2 = Frontier::new(2, mk(1), chain(10));
            f2.push_children(1, vec![chain(13)]);
            let got2 = f2.acquire(1).unwrap();
            assert_eq!(got2.bound, Bound(10));
            assert_eq!(f2.counters().steals, 1);
            f.abort();
            f2.abort();
        }
    }

    #[test]
    fn empty_local_pool_always_steals() {
        for mk in [
            |d| FrontierPolicy::LocalPools { d },
            |d| FrontierPolicy::Sharded { d },
        ] {
            let f = Frontier::new(2, mk(1_000), chain(42));
            let got = f.acquire(1).unwrap();
            assert_eq!(got.bound, Bound(42));
            assert_eq!(f.counters().steals, 1);
            f.abort();
        }
    }

    #[test]
    fn finish_without_work_terminates_all() {
        for policy in policies() {
            let f = Frontier::new(1, policy, chain(1));
            let _c = f.acquire(0).unwrap();
            f.finish(0); // no children pushed → done
            assert!(f.acquire(0).is_none(), "{policy:?}");
            assert!(f.is_done(), "{policy:?}");
        }
    }

    #[test]
    fn blocking_acquire_wakes_on_push() {
        use std::sync::Arc;
        for policy in policies() {
            let f = Arc::new(Frontier::new(2, policy, chain(1)));
            let c = f.acquire(0).unwrap();
            assert_eq!(c.bound, Bound(1));
            let f2 = Arc::clone(&f);
            let handle = std::thread::spawn(move || f2.acquire(1).map(|c| c.bound));
            // The spawned worker blocks (active == 1, pool empty);
            // pushing work must wake it.
            std::thread::sleep(std::time::Duration::from_millis(20));
            f.push_children(0, vec![chain(8)]);
            f.finish(0);
            let got = handle.join().unwrap();
            assert_eq!(got, Some(Bound(8)), "{policy:?}");
            f.abort();
        }
    }

    #[test]
    fn max_len_tracks_peak() {
        for policy in policies() {
            let f = Frontier::new(1, policy, chain(1));
            let _ = f.acquire(0).unwrap();
            f.push_children(0, vec![chain(2), chain(3), chain(4)]);
            assert_eq!(f.counters().max_len, 3, "{policy:?}");
            f.abort();
        }
    }

    #[test]
    fn sharded_publishes_minimums() {
        let f = Frontier::new(2, FrontierPolicy::Sharded { d: 0 }, chain(9));
        assert_eq!(f.global_min(), Some(Bound(9)));
        let _root = f.acquire(0).unwrap();
        assert_eq!(f.global_min(), None, "popped root leaves empty pools");
        f.push_children(0, vec![chain(4), chain(6)]);
        assert_eq!(f.global_min(), Some(Bound(4)));
        let c = f.counters();
        assert!(c.min_publishes >= 3, "seed + pop + batch push");
        assert!(c.shard_locks >= 3);
        f.abort();
    }

    #[test]
    fn batch_push_takes_one_lock_and_one_publish() {
        let f = Frontier::new(1, FrontierPolicy::Sharded { d: 0 }, chain(1));
        let _ = f.acquire(0).unwrap();
        let before = f.counters();
        f.push_children(0, vec![chain(2), chain(3), chain(4), chain(5)]);
        let after = f.counters();
        assert_eq!(after.shard_locks - before.shard_locks, 1);
        assert_eq!(after.min_publishes - before.min_publishes, 1);
        f.abort();
    }

    #[test]
    fn dive_rule_follows_the_d_margin() {
        let f = Frontier::new(1, FrontierPolicy::Sharded { d: 5 }, chain(10));
        let _root = f.acquire(0).unwrap();
        // Empty pool: any child is worth keeping.
        assert!(f.should_dive(0, Bound(1_000)));
        f.push_children(0, vec![chain(10)]);
        // Child within D of the queued minimum: keep diving.
        assert!(f.should_dive(0, Bound(15)));
        // Queued chain more than D cheaper: go through the frontier.
        assert!(!f.should_dive(0, Bound(16)));
        // Global-mutex policies never dive.
        let g = Frontier::new(1, FrontierPolicy::LocalPools { d: 5 }, chain(10));
        let _ = g.acquire(0).unwrap();
        assert!(!g.should_dive(0, Bound(0)));
        f.abort();
        g.abort();
    }

    #[test]
    fn push_children_from_reuses_the_buffer() {
        let f = Frontier::new(1, FrontierPolicy::Sharded { d: 0 }, chain(1));
        let _ = f.acquire(0).unwrap();
        let mut buf = vec![chain(2), chain(3)];
        f.push_children_from(0, &mut buf);
        assert!(buf.is_empty(), "buffer drained for reuse");
        assert_eq!(f.global_min(), Some(Bound(2)));
        f.abort();
    }

    #[test]
    fn sharded_termination_under_contention() {
        use std::sync::Arc;
        // 4 workers × a seeded pool; every worker drains until the
        // termination detector fires. Repeated to shake races out.
        for _ in 0..50 {
            let f = Arc::new(Frontier::new(4, FrontierPolicy::Sharded { d: 2 }, chain(1)));
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let f = Arc::clone(&f);
                    std::thread::spawn(move || {
                        let mut popped = 0u64;
                        while let Some(c) = f.acquire(w) {
                            // Fan out a little synthetic work.
                            if c.bound.0 < 6 {
                                f.push_children(
                                    w,
                                    vec![chain(c.bound.0 + 2), chain(c.bound.0 + 3)],
                                );
                            }
                            f.finish(w);
                            popped += 1;
                        }
                        popped
                    })
                })
                .collect();
            let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert!(total >= 1, "at least the root is processed");
            assert!(f.is_done());
        }
    }
}
