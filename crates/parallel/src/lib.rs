//! # blog-parallel — B-LOG on real threads
//!
//! The `blog-machine` crate *simulates* the paper's MIMD computer; this
//! crate *runs* the same scheduling policy on actual OS threads, which is
//! the closest a 2020s machine gets to the architecture the authors
//! sketched in 1985:
//!
//! - [`frontier`] — the shared weighted frontier: per-worker chain pools
//!   with the communication threshold **D** gating remote acquisition.
//!   Three reproductions of the §6 comparator network are selectable via
//!   [`FrontierPolicy`]: a global heap, per-worker pools under one mutex,
//!   and the sharded store (per-pool locks + lock-free `AtomicU64`
//!   published minimums + atomic-count termination).
//! - [`orparallel`] — OR-parallel best-first search: workers expand the
//!   globally cheapest chains concurrently, with incumbent-bound pruning
//!   shared through an atomic, batched sprouts, and (under the sharded
//!   policy) local dives that keep a worker on its own cheapest child.
//! - [`andparallel`] — the §7 extensions: variable-sharing independence
//!   analysis, fork-join evaluation of independent goal groups, and the
//!   semi-join strategy for goals that do share variables.
//!
//! ## Weight-update semantics under parallelism
//!
//! Within one parallel query the weight database is frozen (workers read
//! an immutable snapshot); solved and failed chains are logged and the §5
//! updates are applied when the query completes. The paper itself keeps
//! strong updates in a session-local database and only consults weights
//! to *guide* the search, so deferring the writes to the query boundary
//! preserves the methodology while keeping workers lock-free on the hot
//! path. (The simulator in `blog-machine` has no such relaxation — its
//! single-threaded event loop updates mid-search like the paper's
//! machine.)

pub mod andparallel;
pub mod frontier;
pub mod orparallel;

pub use andparallel::{
    and_or_parallel_solve, and_parallel_solve, independent_groups, semijoin_conjunction,
    SemiJoinStats,
};
pub use frontier::{Frontier, FrontierCounters, FrontierPolicy};
pub use orparallel::{par_best_first, par_best_first_with, ParallelConfig, ParallelResult};
