//! OR-parallel best-first execution on real threads.
//!
//! "Parallel searching is possible in a branch-and-bound problem …
//! Each processor works on the chains with the lowest bounds" (§3).
//! Workers are OS threads; the frontier is [`Frontier`]; pruning shares
//! the incumbent bound through an atomic; weight learning is applied at
//! the query boundary (see the crate docs for why).
//!
//! Under [`FrontierPolicy::Sharded`] the worker loop adds the paper's "a
//! processor keeps its own cheapest chain": after an expansion, if the
//! cheapest sprouted child is within `D` of the **global** published
//! minimum (N lock-free atomic loads — the §6 comparison; see
//! [`Frontier::should_dive`](crate::frontier::Frontier::should_dive)),
//! the worker **dives** — it expands that child immediately, pushing
//! only the siblings, so the common deepening step costs one shard lock
//! instead of a push + acquire round-trip. A per-acquisition dive budget
//! bounds how far a worker may run ahead of the frontier order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use blog_core::chain::Chain;
use blog_core::engine::{BoundedSolution, PruneMode};
use blog_core::update::{failure_update, success_update, InfinityPlacement};
use blog_core::util::SplitMix64;
use blog_core::weight::{Bound, WeightParams, WeightState, WeightStore, WeightView};
use blog_logic::node::ExpandStats;
use blog_logic::{
    try_expand_via, CancelToken, ClauseDb, ClauseSource, PointerKey, Query, SearchNode,
    SearchStats, Solution, SolveConfig, StoreError,
};
use parking_lot::Mutex;

use crate::frontier::{Frontier, FrontierCounters, FrontierPolicy};

/// Configuration for [`par_best_first`].
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Worker threads (the paper's processors).
    pub n_workers: usize,
    /// Frontier sharing policy.
    pub policy: FrontierPolicy,
    /// Incumbent pruning mode.
    pub prune: PruneMode,
    /// Limits shared with the sequential engines.
    pub solve: SolveConfig,
    /// Apply the §5 weight updates (at query end) and return the overlay.
    pub learn: bool,
    /// Failure-infinity placement for learning.
    pub infinity_placement: InfinityPlacement,
    /// Seed for the `Random` placement ablation.
    pub seed: u64,
    /// Maximum consecutive local dives per acquisition (sharded policy
    /// only; 0 disables diving). Each acquire refreshes the budget.
    pub dive_budget: u32,
    /// Cooperative cancellation, observed once per processed chain and
    /// folded into the frontier's abort flag (the same flag the node
    /// budget and `max_solutions` exits use), so every worker drains and
    /// joins promptly. Reported as [`SearchStats::truncated`].
    pub cancel: Option<CancelToken>,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            n_workers: 4,
            policy: FrontierPolicy::Sharded { d: 512 },
            prune: PruneMode::None,
            solve: SolveConfig::all(),
            learn: true,
            infinity_placement: InfinityPlacement::NearestLeaf,
            seed: 0x5EED,
            dive_budget: 64,
            cancel: None,
        }
    }
}

/// Result of a parallel run.
#[derive(Debug)]
pub struct ParallelResult {
    /// Solutions in discovery order (non-deterministic across runs; the
    /// *set* is deterministic when pruning is off).
    pub solutions: Vec<BoundedSolution>,
    /// Merged work counters.
    pub stats: SearchStats,
    /// Chains discarded by incumbent pruning.
    pub pruned: u64,
    /// Frontier counters (steals, locals, dives, lock/publish traffic).
    pub counters: FrontierCounters,
    /// Nodes expanded by each worker (the load-balance picture).
    pub per_worker_expanded: Vec<u64>,
    /// The weight overlay learned from this query (empty when
    /// `learn == false`); merge it into a session or store as desired.
    pub learned: HashMap<PointerKey, WeightState>,
    /// The first storage fault any worker hit, if one did. `Some` only
    /// when searching a fault-planned source: the run aborted (every
    /// worker drained via the frontier's abort flag, `stats.truncated`
    /// set) and `solutions` holds whatever closed before the fault —
    /// callers must treat the set as partial, never complete.
    pub store_error: Option<StoreError>,
}

struct SharedCtx<'a, S: ClauseSource + ?Sized> {
    source: &'a S,
    weights: &'a WeightStore,
    frontier: Frontier,
    config: &'a ParallelConfig,
    incumbent: AtomicU64,
    nodes: AtomicU64,
    solutions: Mutex<Vec<BoundedSolution>>,
    /// First storage fault observed by any worker (first writer wins;
    /// later faults are aftershocks of the same abort).
    store_error: Mutex<Option<StoreError>>,
    var_names: Arc<Vec<String>>,
    n_query_vars: u32,
}

/// Per-worker outcome, merged (deterministically, by worker id) at join.
#[derive(Default)]
struct WorkerStats {
    stats: SearchStats,
    pruned: u64,
    dives: u64,
    /// §5 chain log, kept thread-local so the hot path never touches a
    /// shared mutex; `(arcs root→leaf, success)` in completion order.
    chain_log: Vec<(Vec<PointerKey>, bool)>,
}

/// What to do with the active slot after processing one chain.
enum Step {
    /// The chain's lineage ended (solution, failure, cutoff, pushed).
    Done,
    /// Keep the slot: expand this dived child next.
    Dive(Chain),
}

/// Process one chain: prune/solution/limit checks, expansion, sprouting
/// into `buf`, then either dive into the cheapest child or push the whole
/// batch. Shared by the acquired chain and every dived descendant.
#[allow(clippy::too_many_arguments)]
fn step<S: ClauseSource + ?Sized>(
    ctx: &SharedCtx<'_, S>,
    w: usize,
    out: &mut WorkerStats,
    chain: Chain,
    buf: &mut Vec<Chain>,
    dives_left: &mut u32,
    params: WeightParams,
) -> Step {
    // Cooperative cancellation (a deadline reaper, a server shedding
    // load): fold into the frontier's abort flag so every worker exits.
    if ctx.config.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
        out.stats.truncated = true;
        ctx.frontier.abort();
        return Step::Done;
    }

    // Incumbent pruning.
    if let PruneMode::Incumbent { slack } = ctx.config.prune {
        let best = ctx.incumbent.load(Ordering::Acquire);
        if best != u64::MAX && chain.bound.0 > best.saturating_add(slack.0 as u64) {
            out.pruned += 1;
            return Step::Done;
        }
    }

    if chain.node.is_solution() {
        // Resolves through the shared frame chain under the default
        // representation — frames are `Arc`-shared across workers, so
        // extraction never copies another thread's state.
        let terms = (0..ctx.n_query_vars)
            .map(|i| chain.node.resolve_var(i))
            .collect();
        let bounded = BoundedSolution {
            solution: Solution {
                var_names: Arc::clone(&ctx.var_names),
                terms,
                depth: chain.node.depth,
            },
            bound: chain.bound,
        };
        out.stats.solutions += 1;
        ctx.incumbent.fetch_min(chain.bound.0, Ordering::AcqRel);
        if ctx.config.learn {
            out.chain_log.push((chain.arcs_root_to_leaf(), true));
        }
        let mut sols = ctx.solutions.lock();
        sols.push(bounded);
        let enough = ctx
            .config
            .solve
            .max_solutions
            .is_some_and(|m| sols.len() >= m);
        drop(sols);
        if enough {
            ctx.frontier.abort();
        }
        return Step::Done;
    }

    if let Some(limit) = ctx.config.solve.max_depth {
        if chain.node.depth >= limit {
            out.stats.depth_cutoff = true;
            return Step::Done;
        }
    }
    if let Some(budget) = ctx.config.solve.max_nodes {
        if ctx.nodes.fetch_add(1, Ordering::Relaxed) >= budget {
            out.stats.truncated = true;
            ctx.frontier.abort();
            return Step::Done;
        }
    } else {
        ctx.nodes.fetch_add(1, Ordering::Relaxed);
    }

    out.stats.nodes_expanded += 1;
    let mut est = ExpandStats::default();
    let children = match try_expand_via(ctx.source, &chain.node, &mut est) {
        Ok(children) => children,
        Err(e) => {
            // A storage fault aborts the whole query: record the first
            // error, mark the run truncated, and drain every worker
            // through the frontier's abort flag (the same path a node
            // budget or cancel uses), so no worker strands.
            let mut slot = ctx.store_error.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
            drop(slot);
            out.stats.truncated = true;
            ctx.frontier.abort();
            return Step::Done;
        }
    };
    out.stats.unify_attempts += est.unify_attempts;
    out.stats.unify_successes += est.unify_successes;
    out.stats.bytes_copied += est.bytes_copied;

    if children.is_empty() {
        out.stats.failures += 1;
        if ctx.config.learn {
            out.chain_log.push((chain.arcs_root_to_leaf(), false));
        }
        return Step::Done;
    }

    // Batched sprout: build the whole batch in the reusable buffer, then
    // hand it to the frontier under one shard-lock acquisition.
    debug_assert!(buf.is_empty());
    buf.extend(children.into_iter().map(|c| {
        let wgt = ctx.weights.get(c.arc).effective(params);
        chain.extend(c.arc, wgt, c.node)
    }));

    // Local dive: keep the cheapest child when it is within D of the
    // global published minimum, pushing only the siblings.
    if *dives_left > 0 {
        let (min_idx, min_bound) = buf
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.bound))
            .min_by_key(|&(_, b)| b)
            .expect("children non-empty");
        if ctx.frontier.should_dive(w, min_bound) {
            *dives_left -= 1;
            out.dives += 1;
            if let Some(t) = &ctx.config.solve.trace {
                t.event("dive", format!("worker {w} bound {min_bound}"));
            }
            let next = buf.swap_remove(min_idx);
            ctx.frontier.push_children_from(w, buf);
            return Step::Dive(next);
        }
    }
    ctx.frontier.push_children_from(w, buf);
    Step::Done
}

/// Aborts the frontier if the worker unwinds, so a panicking worker
/// (whose `finish` never runs) fails the whole query loudly at join
/// instead of leaving its active slot leaked and the surviving workers
/// waiting for a termination signal that can never come.
struct AbortOnPanic<'a>(&'a Frontier);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort();
        }
    }
}

fn worker_loop<S: ClauseSource + ?Sized>(ctx: &SharedCtx<'_, S>, w: usize) -> WorkerStats {
    let _abort_guard = AbortOnPanic(&ctx.frontier);
    // One span per worker thread, parented under the request's engine
    // span: the flight record shows each worker's busy interval, with
    // its dive events nested by timestamp.
    let _worker_span = ctx
        .config
        .solve
        .trace
        .as_ref()
        .map(|t| t.span(format!("worker{w}")));
    let mut out = WorkerStats::default();
    let params = ctx.weights.params();
    // Reused across every expansion this worker performs.
    let mut buf: Vec<Chain> = Vec::new();
    while let Some(chain) = ctx.frontier.acquire(w) {
        let mut cur = chain;
        let mut dives_left = ctx.config.dive_budget;
        while let Step::Dive(next) = step(ctx, w, &mut out, cur, &mut buf, &mut dives_left, params)
        {
            cur = next;
        }
        // One `finish` per acquire: the dive lineage shares the slot.
        ctx.frontier.finish(w);
    }
    out
}

/// Run OR-parallel best-first search with `config.n_workers` threads,
/// reading weights from the frozen `weights` snapshot.
pub fn par_best_first(
    db: &ClauseDb,
    query: &Query,
    weights: &WeightStore,
    config: &ParallelConfig,
) -> ParallelResult {
    par_best_first_with(db, query, weights, config)
}

/// [`par_best_first`], generalized over any [`ClauseSource`] — the same
/// seam [`best_first_with`](blog_core::engine) opened for the sequential
/// engine. Pass `blog-spd`'s `PagedClauseStore` (or one of its per-pool
/// views) and every worker thread resolves clauses *through the shared
/// cache*: the source's `Sync` bound is what makes this sound. Results
/// are identical to running over the backing [`ClauseDb`] directly.
pub fn par_best_first_with<S: ClauseSource + ?Sized>(
    source: &S,
    query: &Query,
    weights: &WeightStore,
    config: &ParallelConfig,
) -> ParallelResult {
    assert!(config.n_workers >= 1);
    let root = Chain::root(SearchNode::root_with(&query.goals, config.solve.state_repr));
    let ctx = SharedCtx {
        source,
        weights,
        frontier: Frontier::new(config.n_workers, config.policy, root),
        config,
        incumbent: AtomicU64::new(u64::MAX),
        nodes: AtomicU64::new(0),
        solutions: Mutex::new(Vec::new()),
        store_error: Mutex::new(None),
        var_names: Arc::new(query.var_names.clone()),
        n_query_vars: query.var_names.len() as u32,
    };

    let mut per_worker: Vec<WorkerStats> = Vec::with_capacity(config.n_workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.n_workers)
            .map(|w| {
                let ctx_ref = &ctx;
                scope.spawn(move || worker_loop(ctx_ref, w))
            })
            .collect();
        for h in handles {
            per_worker.push(h.join().expect("worker thread panicked"));
        }
    });

    let mut stats = SearchStats::default();
    let mut pruned = 0;
    let mut dives = 0;
    let mut per_worker_expanded = Vec::with_capacity(per_worker.len());
    for w in &per_worker {
        stats.merge(&w.stats);
        pruned += w.pruned;
        dives += w.dives;
        per_worker_expanded.push(w.stats.nodes_expanded);
    }
    let mut counters = ctx.frontier.counters();
    counters.dives = dives;
    stats.max_frontier = counters.max_len;
    if let Some(t) = &config.solve.trace {
        t.event(
            "frontier",
            format!(
                "steals {} local {} dives {} max_len {}",
                counters.steals, counters.local, counters.dives, counters.max_len
            ),
        );
    }

    // Apply the deferred §5 updates from the per-worker logs, merged
    // deterministically: by worker id, then per-worker completion order.
    let mut learned: HashMap<PointerKey, WeightState> = HashMap::new();
    if config.learn {
        let mut rng = SplitMix64::new(config.seed);
        let mut view = WeightView::new(&mut learned, weights);
        for wstats in &per_worker {
            for (arcs, success) in &wstats.chain_log {
                if *success {
                    success_update(&mut view, arcs);
                } else {
                    failure_update(&mut view, arcs, config.infinity_placement, &mut rng);
                }
            }
        }
    }

    let solutions = ctx.solutions.into_inner();
    stats.solutions = solutions.len() as u64;
    let store_error = ctx.store_error.into_inner();
    ParallelResult {
        solutions,
        stats,
        pruned,
        counters,
        per_worker_expanded,
        learned,
        store_error,
    }
}

/// Convenience: the incumbent bound as a [`Bound`], if any solution was
/// found.
pub fn best_bound(result: &ParallelResult) -> Option<Bound> {
    result.solutions.iter().map(|s| s.bound).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blog_core::weight::WeightParams;
    use blog_logic::{dfs_all, parse_program};

    const FAMILY: &str = "
        gf(X,Z) :- f(X,Y), f(Y,Z).
        gf(X,Z) :- f(X,Y), m(Y,Z).
        f(curt,elain). f(sam,larry). f(dan,pat). f(larry,den).
        f(pat,john). f(larry,doug).
        m(elain,john). m(marian,elain). m(peg,den). m(peg,doug).
        ?- gf(sam,G).
    ";

    fn sorted_texts(db: &ClauseDb, r: &ParallelResult) -> Vec<String> {
        let mut v: Vec<String> = r
            .solutions
            .iter()
            .map(|s| s.solution.to_text(db))
            .collect();
        v.sort();
        v
    }

    fn all_policies() -> [FrontierPolicy; 3] {
        [
            FrontierPolicy::SharedHeap,
            FrontierPolicy::LocalPools { d: 512 },
            FrontierPolicy::Sharded { d: 512 },
        ]
    }

    #[test]
    fn family_solution_set_matches_dfs() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let d = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        let mut expect: Vec<String> =
            d.solutions.iter().map(|s| s.to_text(&p.db)).collect();
        expect.sort();
        for policy in all_policies() {
            let r = par_best_first(
                &p.db,
                &p.queries[0],
                &weights,
                &ParallelConfig {
                    policy,
                    ..ParallelConfig::default()
                },
            );
            assert_eq!(sorted_texts(&p.db, &r), expect, "{policy:?}");
        }
    }

    #[test]
    fn single_worker_matches_multi_worker_set() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let one = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                n_workers: 1,
                ..ParallelConfig::default()
            },
        );
        let eight = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                n_workers: 8,
                ..ParallelConfig::default()
            },
        );
        assert_eq!(sorted_texts(&p.db, &one), sorted_texts(&p.db, &eight));
        assert_eq!(
            one.stats.nodes_expanded, eight.stats.nodes_expanded,
            "without pruning, total work is the whole tree either way"
        );
    }

    #[test]
    fn policies_agree_on_set_and_total_work() {
        // The T8 equivalence claim in miniature: same solution set and
        // (pruning off) same nodes expanded under every frontier policy.
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let runs: Vec<_> = all_policies()
            .into_iter()
            .map(|policy| {
                par_best_first(
                    &p.db,
                    &p.queries[0],
                    &weights,
                    &ParallelConfig {
                        n_workers: 4,
                        policy,
                        ..ParallelConfig::default()
                    },
                )
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(sorted_texts(&p.db, &runs[0]), sorted_texts(&p.db, r));
            assert_eq!(runs[0].stats.nodes_expanded, r.stats.nodes_expanded);
        }
    }

    #[test]
    fn sharded_runs_dive() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                n_workers: 2,
                policy: FrontierPolicy::Sharded { d: 512 },
                ..ParallelConfig::default()
            },
        );
        assert!(r.counters.dives > 0, "family search deepens via dives");
        // Dived chains never pass through the frontier store.
        assert!(
            r.counters.dives + r.counters.local + r.counters.steals
                >= r.stats.nodes_expanded
        );
    }

    #[test]
    fn dive_budget_zero_disables_dives() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                dive_budget: 0,
                ..ParallelConfig::default()
            },
        );
        assert_eq!(r.counters.dives, 0);
        assert_eq!(r.solutions.len(), 2);
    }

    #[test]
    fn pre_cancelled_token_aborts_every_policy() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        for policy in all_policies() {
            let token = CancelToken::new();
            token.cancel();
            let r = par_best_first(
                &p.db,
                &p.queries[0],
                &weights,
                &ParallelConfig {
                    policy,
                    cancel: Some(token),
                    ..ParallelConfig::default()
                },
            );
            assert!(r.stats.truncated, "{policy:?}");
            assert_eq!(r.stats.nodes_expanded, 0, "{policy:?}");
        }
    }

    #[test]
    fn untripped_token_is_transparent() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let base = par_best_first(&p.db, &p.queries[0], &weights, &ParallelConfig::default());
        let r = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                cancel: Some(CancelToken::new()),
                ..ParallelConfig::default()
            },
        );
        assert!(!r.stats.truncated);
        assert_eq!(sorted_texts(&p.db, &r), sorted_texts(&p.db, &base));
        assert_eq!(r.stats.nodes_expanded, base.stats.nodes_expanded);
    }

    #[test]
    fn generalized_source_matches_clause_db() {
        // par_best_first_with over the db as a ClauseSource must be the
        // identity generalization.
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let direct = par_best_first(&p.db, &p.queries[0], &weights, &ParallelConfig::default());
        let source: &dyn blog_logic::ClauseSource = &p.db;
        let via = par_best_first_with(source, &p.queries[0], &weights, &ParallelConfig::default());
        assert_eq!(sorted_texts(&p.db, &via), sorted_texts(&p.db, &direct));
        assert_eq!(via.stats.nodes_expanded, direct.stats.nodes_expanded);
    }

    #[test]
    fn max_solutions_stops_early() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                solve: SolveConfig::first(),
                ..ParallelConfig::default()
            },
        );
        assert!(!r.solutions.is_empty());
    }

    #[test]
    fn learning_produces_overlay() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = par_best_first(&p.db, &p.queries[0], &weights, &ParallelConfig::default());
        assert!(!r.learned.is_empty());
        let known = r
            .learned
            .values()
            .filter(|s| matches!(s, WeightState::Known(_)))
            .count();
        let infinite = r
            .learned
            .values()
            .filter(|s| matches!(s, WeightState::Infinite))
            .count();
        assert!(known >= 3, "solution chains become known");
        assert!(infinite >= 1, "the m dead-end is marked");
    }

    #[test]
    fn learned_overlay_is_stable_across_workers_and_policies() {
        // The per-worker chain logs (merged by worker id at join) must
        // produce the same overlay the old shared-mutex log did: on the
        // family workload the §5 updates commute, so any worker count and
        // any policy lands on the same weights.
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let base = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                n_workers: 1,
                policy: FrontierPolicy::SharedHeap,
                ..ParallelConfig::default()
            },
        );
        for policy in all_policies() {
            for n_workers in [1, 4, 8] {
                let r = par_best_first(
                    &p.db,
                    &p.queries[0],
                    &weights,
                    &ParallelConfig {
                        n_workers,
                        policy,
                        ..ParallelConfig::default()
                    },
                );
                assert_eq!(
                    r.learned, base.learned,
                    "{policy:?} x{n_workers}: overlay must be unchanged"
                );
            }
        }
    }

    #[test]
    fn learn_false_returns_empty_overlay() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                learn: false,
                ..ParallelConfig::default()
            },
        );
        assert!(r.learned.is_empty());
    }

    #[test]
    fn shared_heap_policy_works() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                policy: FrontierPolicy::SharedHeap,
                ..ParallelConfig::default()
            },
        );
        assert_eq!(r.solutions.len(), 2);
    }

    #[test]
    fn trained_weights_plus_pruning_skip_dead_branches() {
        let p = parse_program(FAMILY).unwrap();
        // Train sequentially first.
        let mut mgr = blog_core::session::SessionManager::new(WeightParams::default());
        let mut session = mgr.begin_session();
        mgr.query(
            &mut session,
            &p.db,
            &p.queries[0],
            &blog_core::engine::BestFirstConfig::default(),
        );
        mgr.end_session(session, blog_core::session::MergePolicy::Overwrite);
        // Parallel re-run with pruning: the infinite m-branch dies.
        let r = par_best_first(
            &p.db,
            &p.queries[0],
            mgr.global(),
            &ParallelConfig {
                prune: PruneMode::Incumbent {
                    slack: blog_core::weight::Weight::from_bits_int(2),
                },
                ..ParallelConfig::default()
            },
        );
        assert_eq!(r.solutions.len(), 2, "pruning keeps all real solutions");
        assert!(r.pruned > 0, "the dead branch must be pruned");
    }

    #[test]
    fn node_budget_truncates() {
        let p = parse_program(
            "
            edge(a,b). edge(b,a).
            path(X,Y) :- edge(X,Y).
            path(X,Z) :- edge(X,Y), path(Y,Z).
            ?- path(a,b).
        ",
        )
        .unwrap();
        let weights = WeightStore::new(WeightParams::default());
        for policy in all_policies() {
            let r = par_best_first(
                &p.db,
                &p.queries[0],
                &weights,
                &ParallelConfig {
                    policy,
                    solve: SolveConfig {
                        max_nodes: Some(500),
                        ..SolveConfig::all()
                    },
                    ..ParallelConfig::default()
                },
            );
            assert!(r.stats.truncated, "{policy:?}");
        }
    }

    #[test]
    fn queens_parallel_matches_sequential_count() {
        // A bigger nondeterministic workload exercises real contention.
        let src = {
            // Inline 4-queens via the dom/ok encoding.
            let mut s = String::new();
            for c in 1..=4 {
                s.push_str(&format!("dom({c}).\n"));
            }
            for d in 1..4i64 {
                for c1 in 1..=4i64 {
                    for c2 in 1..=4i64 {
                        let dc = c1 - c2;
                        if dc != 0 && dc.abs() != d {
                            s.push_str(&format!("ok({d},{c1},{c2}).\n"));
                        }
                    }
                }
            }
            s.push_str(
                "q(Q1,Q2,Q3,Q4) :- dom(Q1), dom(Q2), ok(1,Q1,Q2), dom(Q3), \
                 ok(2,Q1,Q3), ok(1,Q2,Q3), dom(Q4), ok(3,Q1,Q4), ok(2,Q2,Q4), \
                 ok(1,Q3,Q4).\n?- q(Q1,Q2,Q3,Q4).\n",
            );
            s
        };
        let p = parse_program(&src).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        for policy in all_policies() {
            let r = par_best_first(
                &p.db,
                &p.queries[0],
                &weights,
                &ParallelConfig {
                    n_workers: 8,
                    policy,
                    ..ParallelConfig::default()
                },
            );
            assert_eq!(r.solutions.len(), 2, "4-queens has two solutions");
            // Per-worker counters account for all the work. (Whether work
            // actually spreads across workers depends on the host's core
            // count and scheduling; on a single-core CI box one worker can
            // drain the whole frontier.)
            assert_eq!(
                r.per_worker_expanded.iter().sum::<u64>(),
                r.stats.nodes_expanded,
                "{policy:?}"
            );
        }
    }
}
