//! OR-parallel best-first execution on real threads.
//!
//! "Parallel searching is possible in a branch-and-bound problem …
//! Each processor works on the chains with the lowest bounds" (§3).
//! Workers are OS threads; the frontier is [`Frontier`]; pruning shares
//! the incumbent bound through an atomic; weight learning is applied at
//! the query boundary (see the crate docs for why).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use blog_core::chain::Chain;
use blog_core::engine::{BoundedSolution, PruneMode};
use blog_core::update::{failure_update, success_update, InfinityPlacement};
use blog_core::util::SplitMix64;
use blog_core::weight::{Bound, WeightState, WeightStore, WeightView};
use blog_logic::node::ExpandStats;
use blog_logic::{
    expand, ClauseDb, PointerKey, Query, SearchNode, SearchStats, Solution, SolveConfig,
};
use parking_lot::Mutex;

use crate::frontier::{Frontier, FrontierCounters, FrontierPolicy};

/// Configuration for [`par_best_first`].
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Worker threads (the paper's processors).
    pub n_workers: usize,
    /// Frontier sharing policy.
    pub policy: FrontierPolicy,
    /// Incumbent pruning mode.
    pub prune: PruneMode,
    /// Limits shared with the sequential engines.
    pub solve: SolveConfig,
    /// Apply the §5 weight updates (at query end) and return the overlay.
    pub learn: bool,
    /// Failure-infinity placement for learning.
    pub infinity_placement: InfinityPlacement,
    /// Seed for the `Random` placement ablation.
    pub seed: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            n_workers: 4,
            policy: FrontierPolicy::LocalPools { d: 512 },
            prune: PruneMode::None,
            solve: SolveConfig::all(),
            learn: true,
            infinity_placement: InfinityPlacement::NearestLeaf,
            seed: 0x5EED,
        }
    }
}

/// Result of a parallel run.
#[derive(Debug)]
pub struct ParallelResult {
    /// Solutions in discovery order (non-deterministic across runs; the
    /// *set* is deterministic when pruning is off).
    pub solutions: Vec<BoundedSolution>,
    /// Merged work counters.
    pub stats: SearchStats,
    /// Chains discarded by incumbent pruning.
    pub pruned: u64,
    /// Frontier counters (steals, local acquisitions, peak size).
    pub counters: FrontierCounters,
    /// Nodes expanded by each worker (the load-balance picture).
    pub per_worker_expanded: Vec<u64>,
    /// The weight overlay learned from this query (empty when
    /// `learn == false`); merge it into a session or store as desired.
    pub learned: HashMap<PointerKey, WeightState>,
}

struct SharedCtx<'a> {
    db: &'a ClauseDb,
    weights: &'a WeightStore,
    frontier: Frontier,
    config: &'a ParallelConfig,
    incumbent: AtomicU64,
    nodes: AtomicU64,
    solutions: Mutex<Vec<BoundedSolution>>,
    chain_log: Mutex<Vec<(Vec<PointerKey>, bool)>>,
    var_names: Arc<Vec<String>>,
    n_query_vars: u32,
}

/// Per-worker outcome.
#[derive(Default)]
struct WorkerStats {
    stats: SearchStats,
    pruned: u64,
}

fn worker_loop(ctx: &SharedCtx<'_>, w: usize) -> WorkerStats {
    let mut out = WorkerStats::default();
    let params = ctx.weights.params();
    while let Some(chain) = ctx.frontier.acquire(w) {
        // Incumbent pruning.
        if let PruneMode::Incumbent { slack } = ctx.config.prune {
            let best = ctx.incumbent.load(Ordering::Acquire);
            if best != u64::MAX && chain.bound.0 > best.saturating_add(slack.0 as u64) {
                out.pruned += 1;
                ctx.frontier.finish(w);
                continue;
            }
        }

        if chain.node.is_solution() {
            // Resolves through the shared frame chain under the default
            // representation — frames are `Arc`-shared across workers, so
            // extraction never copies another thread's state.
            let terms = (0..ctx.n_query_vars)
                .map(|i| chain.node.resolve_var(i))
                .collect();
            let bounded = BoundedSolution {
                solution: Solution {
                    var_names: Arc::clone(&ctx.var_names),
                    terms,
                    depth: chain.node.depth,
                },
                bound: chain.bound,
            };
            out.stats.solutions += 1;
            ctx.incumbent.fetch_min(chain.bound.0, Ordering::AcqRel);
            if ctx.config.learn {
                ctx.chain_log
                    .lock()
                    .push((chain.arcs_root_to_leaf(), true));
            }
            let mut sols = ctx.solutions.lock();
            sols.push(bounded);
            let enough = ctx
                .config
                .solve
                .max_solutions
                .is_some_and(|m| sols.len() >= m);
            drop(sols);
            ctx.frontier.finish(w);
            if enough {
                ctx.frontier.abort();
            }
            continue;
        }

        if let Some(limit) = ctx.config.solve.max_depth {
            if chain.node.depth >= limit {
                out.stats.depth_cutoff = true;
                ctx.frontier.finish(w);
                continue;
            }
        }
        if let Some(budget) = ctx.config.solve.max_nodes {
            if ctx.nodes.fetch_add(1, Ordering::Relaxed) >= budget {
                out.stats.truncated = true;
                ctx.frontier.finish(w);
                ctx.frontier.abort();
                continue;
            }
        } else {
            ctx.nodes.fetch_add(1, Ordering::Relaxed);
        }

        out.stats.nodes_expanded += 1;
        let mut est = ExpandStats::default();
        let children = expand(ctx.db, &chain.node, &mut est);
        out.stats.unify_attempts += est.unify_attempts;
        out.stats.unify_successes += est.unify_successes;
        out.stats.bytes_copied += est.bytes_copied;

        if children.is_empty() {
            out.stats.failures += 1;
            if ctx.config.learn {
                ctx.chain_log
                    .lock()
                    .push((chain.arcs_root_to_leaf(), false));
            }
            ctx.frontier.finish(w);
            continue;
        }
        let sprouted: Vec<Chain> = children
            .into_iter()
            .map(|c| {
                let wgt = ctx.weights.get(c.arc).effective(params);
                chain.extend(c.arc, wgt, c.node)
            })
            .collect();
        ctx.frontier.push_children(w, sprouted);
        ctx.frontier.finish(w);
    }
    out
}

/// Run OR-parallel best-first search with `config.n_workers` threads,
/// reading weights from the frozen `weights` snapshot.
pub fn par_best_first(
    db: &ClauseDb,
    query: &Query,
    weights: &WeightStore,
    config: &ParallelConfig,
) -> ParallelResult {
    assert!(config.n_workers >= 1);
    let root = Chain::root(SearchNode::root_with(&query.goals, config.solve.state_repr));
    let ctx = SharedCtx {
        db,
        weights,
        frontier: Frontier::new(config.n_workers, config.policy, root),
        config,
        incumbent: AtomicU64::new(u64::MAX),
        nodes: AtomicU64::new(0),
        solutions: Mutex::new(Vec::new()),
        chain_log: Mutex::new(Vec::new()),
        var_names: Arc::new(query.var_names.clone()),
        n_query_vars: query.var_names.len() as u32,
    };

    let mut per_worker: Vec<WorkerStats> = Vec::with_capacity(config.n_workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.n_workers)
            .map(|w| {
                let ctx_ref = &ctx;
                scope.spawn(move || worker_loop(ctx_ref, w))
            })
            .collect();
        for h in handles {
            per_worker.push(h.join().expect("worker thread panicked"));
        }
    });

    let mut stats = SearchStats::default();
    let mut pruned = 0;
    let mut per_worker_expanded = Vec::with_capacity(per_worker.len());
    for w in &per_worker {
        stats.merge(&w.stats);
        pruned += w.pruned;
        per_worker_expanded.push(w.stats.nodes_expanded);
    }
    let counters = ctx.frontier.counters();
    stats.max_frontier = counters.max_len;

    // Apply the deferred §5 updates in completion-log order.
    let mut learned: HashMap<PointerKey, WeightState> = HashMap::new();
    if config.learn {
        let mut rng = SplitMix64::new(config.seed);
        let mut view = WeightView::new(&mut learned, weights);
        for (arcs, success) in ctx.chain_log.into_inner() {
            if success {
                success_update(&mut view, &arcs);
            } else {
                failure_update(&mut view, &arcs, config.infinity_placement, &mut rng);
            }
        }
    }

    let solutions = ctx.solutions.into_inner();
    stats.solutions = solutions.len() as u64;
    ParallelResult {
        solutions,
        stats,
        pruned,
        counters,
        per_worker_expanded,
        learned,
    }
}

/// Convenience: the incumbent bound as a [`Bound`], if any solution was
/// found.
pub fn best_bound(result: &ParallelResult) -> Option<Bound> {
    result.solutions.iter().map(|s| s.bound).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blog_core::weight::WeightParams;
    use blog_logic::{dfs_all, parse_program};

    const FAMILY: &str = "
        gf(X,Z) :- f(X,Y), f(Y,Z).
        gf(X,Z) :- f(X,Y), m(Y,Z).
        f(curt,elain). f(sam,larry). f(dan,pat). f(larry,den).
        f(pat,john). f(larry,doug).
        m(elain,john). m(marian,elain). m(peg,den). m(peg,doug).
        ?- gf(sam,G).
    ";

    fn sorted_texts(db: &ClauseDb, r: &ParallelResult) -> Vec<String> {
        let mut v: Vec<String> = r
            .solutions
            .iter()
            .map(|s| s.solution.to_text(db))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn family_solution_set_matches_dfs() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = par_best_first(&p.db, &p.queries[0], &weights, &ParallelConfig::default());
        let d = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        let mut expect: Vec<String> =
            d.solutions.iter().map(|s| s.to_text(&p.db)).collect();
        expect.sort();
        assert_eq!(sorted_texts(&p.db, &r), expect);
    }

    #[test]
    fn single_worker_matches_multi_worker_set() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let one = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                n_workers: 1,
                ..ParallelConfig::default()
            },
        );
        let eight = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                n_workers: 8,
                ..ParallelConfig::default()
            },
        );
        assert_eq!(sorted_texts(&p.db, &one), sorted_texts(&p.db, &eight));
        assert_eq!(
            one.stats.nodes_expanded, eight.stats.nodes_expanded,
            "without pruning, total work is the whole tree either way"
        );
    }

    #[test]
    fn max_solutions_stops_early() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                solve: SolveConfig::first(),
                ..ParallelConfig::default()
            },
        );
        assert!(!r.solutions.is_empty());
    }

    #[test]
    fn learning_produces_overlay() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = par_best_first(&p.db, &p.queries[0], &weights, &ParallelConfig::default());
        assert!(!r.learned.is_empty());
        let known = r
            .learned
            .values()
            .filter(|s| matches!(s, WeightState::Known(_)))
            .count();
        let infinite = r
            .learned
            .values()
            .filter(|s| matches!(s, WeightState::Infinite))
            .count();
        assert!(known >= 3, "solution chains become known");
        assert!(infinite >= 1, "the m dead-end is marked");
    }

    #[test]
    fn learn_false_returns_empty_overlay() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                learn: false,
                ..ParallelConfig::default()
            },
        );
        assert!(r.learned.is_empty());
    }

    #[test]
    fn shared_heap_policy_works() {
        let p = parse_program(FAMILY).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                policy: FrontierPolicy::SharedHeap,
                ..ParallelConfig::default()
            },
        );
        assert_eq!(r.solutions.len(), 2);
    }

    #[test]
    fn trained_weights_plus_pruning_skip_dead_branches() {
        let p = parse_program(FAMILY).unwrap();
        // Train sequentially first.
        let mut mgr = blog_core::session::SessionManager::new(WeightParams::default());
        let mut session = mgr.begin_session();
        mgr.query(
            &mut session,
            &p.db,
            &p.queries[0],
            &blog_core::engine::BestFirstConfig::default(),
        );
        mgr.end_session(session, blog_core::session::MergePolicy::Overwrite);
        // Parallel re-run with pruning: the infinite m-branch dies.
        let r = par_best_first(
            &p.db,
            &p.queries[0],
            mgr.global(),
            &ParallelConfig {
                prune: PruneMode::Incumbent {
                    slack: blog_core::weight::Weight::from_bits_int(2),
                },
                ..ParallelConfig::default()
            },
        );
        assert_eq!(r.solutions.len(), 2, "pruning keeps all real solutions");
        assert!(r.pruned > 0, "the dead branch must be pruned");
    }

    #[test]
    fn node_budget_truncates() {
        let p = parse_program(
            "
            edge(a,b). edge(b,a).
            path(X,Y) :- edge(X,Y).
            path(X,Z) :- edge(X,Y), path(Y,Z).
            ?- path(a,b).
        ",
        )
        .unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                solve: SolveConfig {
                    max_nodes: Some(500),
                    ..SolveConfig::all()
                },
                ..ParallelConfig::default()
            },
        );
        assert!(r.stats.truncated);
    }

    #[test]
    fn queens_parallel_matches_sequential_count() {
        // A bigger nondeterministic workload exercises real contention.
        let src = {
            // Inline 4-queens via the dom/ok encoding.
            let mut s = String::new();
            for c in 1..=4 {
                s.push_str(&format!("dom({c}).\n"));
            }
            for d in 1..4i64 {
                for c1 in 1..=4i64 {
                    for c2 in 1..=4i64 {
                        let dc = c1 - c2;
                        if dc != 0 && dc.abs() != d {
                            s.push_str(&format!("ok({d},{c1},{c2}).\n"));
                        }
                    }
                }
            }
            s.push_str(
                "q(Q1,Q2,Q3,Q4) :- dom(Q1), dom(Q2), ok(1,Q1,Q2), dom(Q3), \
                 ok(2,Q1,Q3), ok(1,Q2,Q3), dom(Q4), ok(3,Q1,Q4), ok(2,Q2,Q4), \
                 ok(1,Q3,Q4).\n?- q(Q1,Q2,Q3,Q4).\n",
            );
            s
        };
        let p = parse_program(&src).unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = par_best_first(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                n_workers: 8,
                ..ParallelConfig::default()
            },
        );
        assert_eq!(r.solutions.len(), 2, "4-queens has two solutions");
        // Per-worker counters account for all the work. (Whether work
        // actually spreads across workers depends on the host's core
        // count and scheduling; on a single-core CI box one worker can
        // drain the whole frontier.)
        assert_eq!(
            r.per_worker_expanded.iter().sum::<u64>(),
            r.stats.nodes_expanded
        );
    }
}
