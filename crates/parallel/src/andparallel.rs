//! AND-parallel extensions (§7).
//!
//! "Its inclusion is a relatively simple issue for conjunctions of goals
//! which do not share variables … Calls which share variables can be
//! executed in sequence using the same scheme as Prolog. Alternatively a
//! join algorithm can be applied. In our implementation a highly
//! efficient semi-join algorithm can use the marking capabilities of the
//! SPD's."
//!
//! Three pieces, matching that paragraph:
//! - [`independent_groups`] — the variable-sharing analysis partitioning
//!   a conjunction into independent groups;
//! - [`and_parallel_solve`] — fork-join evaluation: each group solved on
//!   its own thread, solutions cross-joined (sound because the groups
//!   bind disjoint variables);
//! - [`semijoin_conjunction`] — for goals that *do* share variables:
//!   evaluate the producer, project the distinct shared bindings (the
//!   SPD "marking"), and evaluate the consumer once per distinct binding
//!   instead of once per producer solution.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use blog_core::weight::WeightStore;
use blog_logic::{
    dfs_all, Bindings, ClauseDb, Query, SearchStats, Solution, SolveConfig, SolveResult, Term,
    Trail, VarId,
};
use serde::Serialize;

use crate::orparallel::{par_best_first, ParallelConfig};

/// Collect the variables occurring in a term.
fn vars_of(term: &Term, out: &mut HashSet<VarId>) {
    match term {
        Term::Var(v) => {
            out.insert(*v);
        }
        Term::Atom(_) | Term::Int(_) => {}
        Term::Struct(_, args) => {
            for a in args.iter() {
                vars_of(a, out);
            }
        }
    }
}

/// Partition the goals of a conjunction into groups such that goals in
/// different groups share no variables. Ground goals form singleton
/// groups. Group order follows the first goal of each group.
pub fn independent_groups(goals: &[Term]) -> Vec<Vec<usize>> {
    // Union-find over goal indices.
    let mut parent: Vec<usize> = (0..goals.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    let mut owner: HashMap<VarId, usize> = HashMap::new();
    for (i, g) in goals.iter().enumerate() {
        let mut vs = HashSet::new();
        vars_of(g, &mut vs);
        for v in vs {
            match owner.get(&v) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        parent[a.max(b)] = a.min(b);
                    }
                }
                None => {
                    owner.insert(v, i);
                }
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut root_to_group: HashMap<usize, usize> = HashMap::new();
    for i in 0..goals.len() {
        let r = find(&mut parent, i);
        match root_to_group.get(&r) {
            Some(&g) => groups[g].push(i),
            None => {
                root_to_group.insert(r, groups.len());
                groups.push(vec![i]);
            }
        }
    }
    groups
}

/// Solve a conjunction by fork-join over its independent goal groups.
///
/// Each group runs (depth-first) on its own thread; the final solution
/// set is the cross product of the group solution sets — sound because
/// groups bind disjoint variables. Falls back to plain depth-first search
/// when the conjunction has a single group. The returned stats are the
/// *sum* of per-group work: with `g` independent groups of `s` solutions
/// each, sequential execution costs `O(s^g)` goal evaluations while this
/// costs `O(g·s)` plus the join.
pub fn and_parallel_solve(db: &ClauseDb, query: &Query, config: &SolveConfig) -> SolveResult {
    let groups = independent_groups(&query.goals);
    if groups.len() <= 1 {
        return dfs_all(db, query, config);
    }

    // Solve groups concurrently.
    let group_results: Vec<SolveResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .iter()
            .map(|idxs| {
                let sub = Query {
                    goals: idxs.iter().map(|&i| query.goals[i].clone()).collect(),
                    var_names: query.var_names.clone(),
                };
                let cfg = SolveConfig {
                    // Per-group limits: solutions cap applies to the join,
                    // not the factors; keep factors unbounded except for
                    // safety budgets.
                    max_solutions: None,
                    ..config.clone()
                };
                scope.spawn(move || dfs_all(db, &sub, &cfg))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("group solver panicked"))
            .collect()
    });

    let mut stats = SearchStats::default();
    for r in &group_results {
        stats.merge(&r.stats);
    }
    let factors: Vec<Vec<Solution>> = group_results.into_iter().map(|r| r.solutions).collect();
    let solutions = cross_join(query, &groups, &factors, config.max_solutions);
    stats.solutions = solutions.len() as u64;
    SolveResult { solutions, stats }
}

/// Cross-join per-group solution sets back into whole-query solutions —
/// sound because the groups bind disjoint variables. Any empty factor
/// empties the product.
fn cross_join(
    query: &Query,
    groups: &[Vec<usize>],
    factors: &[Vec<Solution>],
    max_solutions: Option<usize>,
) -> Vec<Solution> {
    // Which variables each group binds.
    let group_vars: Vec<HashSet<VarId>> = groups
        .iter()
        .map(|idxs| {
            let mut vs = HashSet::new();
            for &i in idxs {
                vars_of(&query.goals[i], &mut vs);
            }
            vs
        })
        .collect();

    let var_names = Arc::new(query.var_names.clone());
    let n_vars = query.var_names.len();
    let mut solutions: Vec<Solution> = Vec::new();
    if factors.iter().all(|f| !f.is_empty()) {
        let mut index = vec![0usize; factors.len()];
        'outer: loop {
            let mut terms: Vec<Term> = (0..n_vars).map(|i| Term::Var(VarId(i as u32))).collect();
            let mut depth = 0;
            for (g, f) in factors.iter().enumerate() {
                let s = &f[index[g]];
                depth += s.depth;
                for (v, t) in s.terms.iter().enumerate() {
                    if group_vars[g].contains(&VarId(v as u32)) {
                        terms[v] = t.clone();
                    }
                }
            }
            solutions.push(Solution {
                var_names: Arc::clone(&var_names),
                terms,
                depth,
            });
            if max_solutions.is_some_and(|m| solutions.len() >= m) {
                break;
            }
            // Odometer increment.
            for g in (0..index.len()).rev() {
                index[g] += 1;
                if index[g] < factors[g].len() {
                    continue 'outer;
                }
                index[g] = 0;
            }
            break;
        }
    }
    solutions
}

/// AND-parallelism over OR-parallelism: fork-join over the independent
/// goal groups, with each group enumerated by the OR-parallel best-first
/// executor (and its frontier policy — sharded by default) instead of a
/// single depth-first thread. Pruning and `max_solutions` are join-level
/// concerns, so each factor runs unpruned and unbounded (safety budgets
/// aside); the solution *set* therefore matches [`and_parallel_solve`].
pub fn and_or_parallel_solve(
    db: &ClauseDb,
    query: &Query,
    weights: &WeightStore,
    config: &ParallelConfig,
) -> SolveResult {
    let groups = independent_groups(&query.goals);
    let factor_config = ParallelConfig {
        prune: blog_core::engine::PruneMode::None,
        learn: false,
        solve: SolveConfig {
            max_solutions: None,
            ..config.solve.clone()
        },
        ..config.clone()
    };
    if groups.len() <= 1 {
        // Single group: no join, so the solutions cap passes straight
        // through (par_best_first aborts early on it — important on
        // unbounded trees, where enumerate-then-truncate would never
        // return).
        let single_config = ParallelConfig {
            solve: config.solve.clone(),
            ..factor_config
        };
        let r = par_best_first(db, query, weights, &single_config);
        let mut stats = r.stats;
        let solutions: Vec<Solution> =
            r.solutions.into_iter().map(|b| b.solution).collect();
        stats.solutions = solutions.len() as u64;
        return SolveResult { solutions, stats };
    }

    // Each group gets its own OR-parallel frontier; the groups themselves
    // run sequentially here since every group already fans out across
    // `config.n_workers` worker threads.
    let mut stats = SearchStats::default();
    let mut factors: Vec<Vec<Solution>> = Vec::with_capacity(groups.len());
    for idxs in &groups {
        let sub = Query {
            goals: idxs.iter().map(|&i| query.goals[i].clone()).collect(),
            var_names: query.var_names.clone(),
        };
        let r = par_best_first(db, &sub, weights, &factor_config);
        stats.merge(&r.stats);
        factors.push(r.solutions.into_iter().map(|b| b.solution).collect());
    }
    let solutions = cross_join(query, &groups, &factors, config.solve.max_solutions);
    stats.solutions = solutions.len() as u64;
    SolveResult { solutions, stats }
}

/// Work counters for the semi-join strategy.
#[derive(Clone, Copy, Default, Debug, Serialize)]
pub struct SemiJoinStats {
    /// Solutions of the producer (first goal).
    pub producer_solutions: usize,
    /// Distinct shared-variable bindings (the "marked" set).
    pub distinct_keys: usize,
    /// Consumer evaluations performed (`== distinct_keys`; a naive
    /// nested-loop join performs `producer_solutions`).
    pub consumer_evaluations: usize,
}

/// Solve a two-part conjunction `g1, rest…` whose parts share variables,
/// using the semi-join strategy: enumerate `g1`, project the distinct
/// shared bindings, solve `rest` once per distinct binding, and join.
///
/// Returns the same solution set as sequential resolution (up to order).
pub fn semijoin_conjunction(
    db: &ClauseDb,
    query: &Query,
    config: &SolveConfig,
) -> (SolveResult, SemiJoinStats) {
    assert!(
        query.goals.len() >= 2,
        "semi-join needs a producer and a consumer"
    );
    let producer_goal = &query.goals[0];
    let rest: Vec<Term> = query.goals[1..].to_vec();

    // Shared variables between producer and consumer.
    let mut pv = HashSet::new();
    vars_of(producer_goal, &mut pv);
    let mut cv = HashSet::new();
    for g in &rest {
        vars_of(g, &mut cv);
    }
    let mut shared: Vec<VarId> = pv.intersection(&cv).copied().collect();
    shared.sort_unstable();

    // Producer pass.
    let producer = dfs_all(
        db,
        &Query {
            goals: vec![producer_goal.clone()],
            var_names: query.var_names.clone(),
        },
        &SolveConfig {
            max_solutions: None,
            ..config.clone()
        },
    );
    let mut stats = producer.stats;

    // Project distinct keys (the SPD "marking" step).
    let mut by_key: HashMap<Vec<Term>, Vec<usize>> = HashMap::new();
    for (i, s) in producer.solutions.iter().enumerate() {
        let key: Vec<Term> = shared.iter().map(|v| s.terms[v.index()].clone()).collect();
        by_key.entry(key).or_default().push(i);
    }
    let mut sj = SemiJoinStats {
        producer_solutions: producer.solutions.len(),
        distinct_keys: by_key.len(),
        consumer_evaluations: 0,
    };

    // Consumer pass: once per distinct key.
    let var_names = Arc::new(query.var_names.clone());
    let n_vars = query.var_names.len();
    let mut solutions: Vec<Solution> = Vec::new();
    let mut keys: Vec<&Vec<Term>> = by_key.keys().collect();
    keys.sort_by_key(|k| format!("{k:?}")); // deterministic order
    'keys: for key in keys {
        sj.consumer_evaluations += 1;
        // Substitute the key into the consumer goals.
        let mut bindings = Bindings::new();
        let mut trail = Trail::new();
        for (v, t) in shared.iter().zip(key.iter()) {
            bindings.ensure(v.index() + 1);
            bindings.bind(&mut trail, *v, t.clone());
        }
        let consumer_goals: Vec<Term> = rest.iter().map(|g| bindings.resolve(g)).collect();
        let consumer = dfs_all(
            db,
            &Query {
                goals: consumer_goals,
                var_names: query.var_names.clone(),
            },
            &SolveConfig {
                max_solutions: None,
                ..config.clone()
            },
        );
        stats.merge(&consumer.stats);
        if consumer.solutions.is_empty() {
            continue;
        }
        for &pi in &by_key[key] {
            let ps = &producer.solutions[pi];
            for cs in &consumer.solutions {
                let mut terms: Vec<Term> =
                    (0..n_vars).map(|i| Term::Var(VarId(i as u32))).collect();
                for (v, t) in ps.terms.iter().enumerate() {
                    if pv.contains(&VarId(v as u32)) {
                        terms[v] = t.clone();
                    }
                }
                for (v, t) in cs.terms.iter().enumerate() {
                    if cv.contains(&VarId(v as u32)) && !matches!(t, Term::Var(_)) {
                        terms[v] = t.clone();
                    }
                }
                solutions.push(Solution {
                    var_names: Arc::clone(&var_names),
                    terms,
                    depth: ps.depth + cs.depth,
                });
                if config.max_solutions.is_some_and(|m| solutions.len() >= m) {
                    break 'keys;
                }
            }
        }
    }
    stats.solutions = solutions.len() as u64;
    (SolveResult { solutions, stats }, sj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blog_logic::parse_program;

    #[test]
    fn grouping_separates_disjoint_goals() {
        let mut p = parse_program("a(1). b(2). c(3).").unwrap();
        let q = blog_logic::parse_query(&mut p.db, "a(X), b(Y), c(Z)").unwrap();
        let groups = independent_groups(&q.goals);
        assert_eq!(groups, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn grouping_links_shared_vars_transitively() {
        let mut p = parse_program("a(1,1). b(1,1). c(1).").unwrap();
        // X links goals 0-1, Y links 1-2 → one group; Z separate.
        let q = blog_logic::parse_query(&mut p.db, "a(X,Y), b(Y,W), c(Z)").unwrap();
        let groups = independent_groups(&q.goals);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![0, 1]);
        assert_eq!(groups[1], vec![2]);
    }

    #[test]
    fn ground_goals_are_singletons() {
        let mut p = parse_program("a(1). b(2).").unwrap();
        let q = blog_logic::parse_query(&mut p.db, "a(1), b(2)").unwrap();
        assert_eq!(independent_groups(&q.goals).len(), 2);
    }

    #[test]
    fn fork_join_matches_sequential_on_independent_conjunction() {
        let p = parse_program(
            "
            a(1). a(2). a(3).
            b(x). b(y).
            ?- a(X), b(Y).
        ",
        )
        .unwrap();
        let seq = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        let par = and_parallel_solve(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(par.solutions.len(), 6);
        let mut a: Vec<String> = seq.solutions.iter().map(|s| s.to_text(&p.db)).collect();
        let mut b: Vec<String> = par.solutions.iter().map(|s| s.to_text(&p.db)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn fork_join_does_less_work_than_sequential() {
        // Each of three independent goals enumerates k facts; sequential
        // resolution re-solves inner goals per outer solution, fork-join
        // solves each exactly once.
        let mut src = String::new();
        for i in 0..10 {
            src.push_str(&format!("a({i}). b({i}). c({i}).\n"));
        }
        src.push_str("?- a(X), b(Y), c(Z).\n");
        let p = parse_program(&src).unwrap();
        let seq = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        let par = and_parallel_solve(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(par.solutions.len(), 1000);
        assert_eq!(seq.solutions.len(), 1000);
        assert!(
            par.stats.nodes_expanded * 10 < seq.stats.nodes_expanded,
            "fork-join {} vs sequential {}",
            par.stats.nodes_expanded,
            seq.stats.nodes_expanded
        );
    }

    #[test]
    fn fork_join_empty_factor_gives_no_solutions() {
        let p = parse_program("a(1). ?- a(X), nosuch(Y).").unwrap();
        let r = and_parallel_solve(&p.db, &p.queries[0], &SolveConfig::all());
        assert!(r.solutions.is_empty());
    }

    #[test]
    fn single_group_falls_back_to_dfs() {
        let p = parse_program("a(1,2). b(2,3). ?- a(X,Y), b(Y,Z).").unwrap();
        let r = and_parallel_solve(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(r.solutions.len(), 1);
        assert_eq!(r.solutions[0].to_text(&p.db), "X = 1, Y = 2, Z = 3");
    }

    #[test]
    fn and_or_parallel_matches_fork_join_set() {
        use blog_core::weight::{WeightParams, WeightStore};
        let p = parse_program(
            "
            a(1). a(2). a(3).
            b(x). b(y).
            ?- a(X), b(Y).
        ",
        )
        .unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let seq = and_parallel_solve(&p.db, &p.queries[0], &SolveConfig::all());
        let par = and_or_parallel_solve(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                n_workers: 3,
                ..ParallelConfig::default()
            },
        );
        let mut a: Vec<String> = seq.solutions.iter().map(|s| s.to_text(&p.db)).collect();
        let mut b: Vec<String> = par.solutions.iter().map(|s| s.to_text(&p.db)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn and_or_parallel_single_group_honors_max_solutions_early() {
        use blog_core::weight::{WeightParams, WeightStore};
        // Cyclic graph: the OR-tree is unbounded, so the solutions cap
        // must abort the search rather than truncate afterwards.
        let p = parse_program(
            "
            edge(a,b). edge(b,c). edge(c,a).
            path(X,Y) :- edge(X,Y).
            path(X,Z) :- edge(X,Y), path(Y,Z).
            ?- path(a,c).
        ",
        )
        .unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = and_or_parallel_solve(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig {
                n_workers: 2,
                solve: SolveConfig {
                    max_solutions: Some(1),
                    max_nodes: Some(20_000), // safety net, never hit
                    ..SolveConfig::all()
                },
                ..ParallelConfig::default()
            },
        );
        assert_eq!(r.solutions.len(), 1);
        assert!(!r.stats.truncated, "must stop on the cap, not the budget");
        assert!(r.stats.nodes_expanded < 10_000);
    }

    #[test]
    fn and_or_parallel_single_group_matches_dfs() {
        use blog_core::weight::{WeightParams, WeightStore};
        let p = parse_program("a(1,2). b(2,3). ?- a(X,Y), b(Y,Z).").unwrap();
        let weights = WeightStore::new(WeightParams::default());
        let r = and_or_parallel_solve(
            &p.db,
            &p.queries[0],
            &weights,
            &ParallelConfig::default(),
        );
        assert_eq!(r.solutions.len(), 1);
        assert_eq!(r.solutions[0].to_text(&p.db), "X = 1, Y = 2, Z = 3");
    }

    #[test]
    fn semijoin_matches_sequential_set() {
        let p = parse_program(
            "
            f(a,k1). f(b,k1). f(c,k2).
            g(k1,r1). g(k1,r2). g(k2,r3).
            ?- f(X,K), g(K,R).
        ",
        )
        .unwrap();
        let seq = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        let (sj, stats) = semijoin_conjunction(&p.db, &p.queries[0], &SolveConfig::all());
        let mut a: Vec<String> = seq.solutions.iter().map(|s| s.to_text(&p.db)).collect();
        let mut b: Vec<String> = sj.solutions.iter().map(|s| s.to_text(&p.db)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // 3 producer solutions but only 2 distinct keys.
        assert_eq!(stats.producer_solutions, 3);
        assert_eq!(stats.distinct_keys, 2);
        assert_eq!(stats.consumer_evaluations, 2);
    }

    #[test]
    fn semijoin_saves_consumer_evaluations_on_skew() {
        // 50 producer rows share one key: one consumer evaluation total.
        let mut src = String::new();
        for i in 0..50 {
            src.push_str(&format!("f(p{i},k).\n"));
        }
        src.push_str("g(k,win).\n?- f(X,K), g(K,R).\n");
        let p = parse_program(&src).unwrap();
        let (r, stats) = semijoin_conjunction(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(r.solutions.len(), 50);
        assert_eq!(stats.producer_solutions, 50);
        assert_eq!(stats.consumer_evaluations, 1);
    }

    #[test]
    fn semijoin_handles_no_shared_vars() {
        // Degenerate: empty key → single consumer evaluation.
        let p = parse_program("a(1). a(2). b(7). ?- a(X), b(Y).").unwrap();
        let (r, stats) = semijoin_conjunction(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(r.solutions.len(), 2);
        assert_eq!(stats.distinct_keys, 1);
    }
}
