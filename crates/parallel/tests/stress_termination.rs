//! Termination stress for the sharded frontier's atomic-count + eventcount
//! protocol: many workers, many iterations, tiny node budgets (aborting
//! mid-flight with chains still queued), and `max_solutions` early exits.
//! Any lost wakeup or missed termination shows up as a hang, which the
//! per-iteration watchdog converts into a test failure; any accounting
//! slip shows up as `per_worker_expanded` not summing to `nodes_expanded`.

use std::sync::{mpsc, Arc};
use std::time::Duration;

use blog_core::weight::{WeightParams, WeightStore};
use blog_logic::{parse_program, Program, SolveConfig};
use blog_parallel::{par_best_first, FrontierPolicy, ParallelConfig};

/// A cyclic graph program whose OR-tree is infinite: every run must end
/// by budget or early exit, never by exhaustion — the adversarial case
/// for termination detection.
fn cyclic_program() -> Arc<Program> {
    Arc::new(parse_program(
        "
        edge(a,b). edge(b,c). edge(c,a). edge(b,a).
        path(X,Y) :- edge(X,Y).
        path(X,Z) :- edge(X,Y), path(Y,Z).
        ?- path(a,c).
    ",
    )
    .unwrap())
}

/// Run one configuration under a watchdog; panics (failing the test) if
/// the run deadlocks. The search runs on a *detached* thread — a scoped
/// thread would block the panic in the join on exactly the hang this
/// suite exists to catch. On timeout the stuck thread is leaked, which
/// is fine: the test still fails loudly instead of hanging the suite.
fn run_with_watchdog(p: &Arc<Program>, cfg: ParallelConfig, timeout: Duration, what: &str) {
    let (tx, rx) = mpsc::channel();
    let p = Arc::clone(p);
    let n_workers = cfg.n_workers;
    std::thread::spawn(move || {
        let weights = WeightStore::new(WeightParams::default());
        let r = par_best_first(&p.db, &p.queries[0], &weights, &cfg);
        // The accounting invariant must hold on every exit path,
        // including aborts: each expansion belongs to one worker.
        assert_eq!(
            r.per_worker_expanded.iter().sum::<u64>(),
            r.stats.nodes_expanded,
            "accounting"
        );
        assert_eq!(r.per_worker_expanded.len(), n_workers);
        let _ = tx.send(());
    });
    rx.recv_timeout(timeout)
        .unwrap_or_else(|_| panic!("deadlock: {what} did not terminate"));
}

#[test]
fn sharded_termination_survives_budget_aborts_and_early_exits() {
    let p = cyclic_program();
    let iterations = 200;
    for i in 0..iterations {
        // Vary budget, D, and dive budget so aborts land at different
        // points of the push/acquire/sleep protocol every iteration.
        let budget = 20 + (i % 37) as u64 * 3;
        let cfg = ParallelConfig {
            n_workers: 8,
            policy: FrontierPolicy::Sharded { d: (i % 5) as u64 * 64 },
            dive_budget: (i % 4) as u32 * 8,
            learn: false,
            solve: SolveConfig {
                max_nodes: Some(budget),
                ..SolveConfig::all()
            },
            ..ParallelConfig::default()
        };
        run_with_watchdog(
            &p,
            cfg,
            Duration::from_secs(10),
            &format!("budget-abort iteration {i}"),
        );
    }
}

#[test]
fn sharded_termination_survives_max_solutions_exits() {
    let p = cyclic_program();
    for i in 0..200 {
        let cfg = ParallelConfig {
            n_workers: 8,
            policy: FrontierPolicy::Sharded { d: 128 },
            dive_budget: (i % 3) as u32 * 16,
            learn: false,
            solve: SolveConfig {
                max_solutions: Some(1 + i % 3),
                // Safety net so a scheduling pathology can't run away.
                max_nodes: Some(200_000),
                ..SolveConfig::all()
            },
            ..ParallelConfig::default()
        };
        run_with_watchdog(
            &p,
            cfg,
            Duration::from_secs(10),
            &format!("max-solutions iteration {i}"),
        );
    }
}

#[test]
fn legacy_policies_survive_the_same_stress() {
    // The wake-storm fix changed the global-mutex wakeup path; give it
    // the same adversarial treatment (fewer iterations — it is the
    // baseline, not the subject).
    let p = cyclic_program();
    for policy in [
        FrontierPolicy::SharedHeap,
        FrontierPolicy::LocalPools { d: 128 },
    ] {
        for i in 0..50 {
            let cfg = ParallelConfig {
                n_workers: 8,
                policy,
                learn: false,
                solve: SolveConfig {
                    max_nodes: Some(20 + (i % 23) as u64 * 5),
                    ..SolveConfig::all()
                },
                ..ParallelConfig::default()
            };
            run_with_watchdog(
                &p,
                cfg,
                Duration::from_secs(10),
                &format!("{policy:?} iteration {i}"),
            );
        }
    }
}
