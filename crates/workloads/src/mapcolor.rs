//! Grid map coloring as a pure Horn program.
//!
//! Regions form an `rows × cols` grid; adjacent regions (4-neighborhood)
//! must take different colors. Colors are `colour/1` facts and
//! disequality is pre-tabled as `ne/2` facts over the color constants —
//! again no builtins, so every engine sees the identical OR-tree.

use std::fmt::Write as _;

use blog_logic::{parse_program, Program};

/// Parameters for [`mapcolor_program`].
#[derive(Clone, Copy, Debug)]
pub struct MapColorParams {
    /// Grid rows.
    pub rows: u32,
    /// Grid columns.
    pub cols: u32,
    /// Number of colors.
    pub colors: u32,
}

impl Default for MapColorParams {
    fn default() -> Self {
        MapColorParams {
            rows: 3,
            cols: 3,
            colors: 3,
        }
    }
}

/// Metadata about a generated instance.
#[derive(Clone, Copy, Debug)]
pub struct MapColorMeta {
    /// Number of regions (`rows * cols`).
    pub regions: u32,
    /// Number of adjacency constraints.
    pub adjacencies: usize,
}

/// Generate the map-coloring program with query `?- mc(R0, …, Rk)`.
pub fn mapcolor_program(params: &MapColorParams) -> (Program, MapColorMeta) {
    let MapColorParams { rows, cols, colors } = *params;
    assert!(rows * cols >= 2, "need at least two regions");
    assert!((2..=6).contains(&colors), "2..=6 colors supported");
    let mut src = String::new();
    let color_names = ["red", "green", "blue", "yellow", "cyan", "magenta"];
    for c in 0..colors {
        writeln!(src, "colour({}).", color_names[c as usize]).expect("write");
    }
    for a in 0..colors {
        for b in 0..colors {
            if a != b {
                writeln!(
                    src,
                    "ne({},{}).",
                    color_names[a as usize], color_names[b as usize]
                )
                .expect("write");
            }
        }
    }
    let var = |r: u32, c: u32| format!("R{}", r * cols + c);
    // Body: color each region in row-major order, checking against the
    // already-colored north and west neighbors immediately.
    let mut body: Vec<String> = Vec::new();
    let mut adjacencies = 0usize;
    for r in 0..rows {
        for c in 0..cols {
            body.push(format!("colour({})", var(r, c)));
            if r > 0 {
                body.push(format!("ne({},{})", var(r - 1, c), var(r, c)));
                adjacencies += 1;
            }
            if c > 0 {
                body.push(format!("ne({},{})", var(r, c - 1), var(r, c)));
                adjacencies += 1;
            }
        }
    }
    let vars: Vec<String> = (0..rows * cols).map(|i| format!("R{i}")).collect();
    writeln!(src, "mc({}) :- {}.", vars.join(","), body.join(", ")).expect("write");
    writeln!(src, "?- mc({}).", vars.join(",")).expect("write");
    let program = parse_program(&src).expect("generated mapcolor program parses");
    (
        program,
        MapColorMeta {
            regions: rows * cols,
            adjacencies,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use blog_logic::{dfs_all, SolveConfig};

    #[test]
    fn two_by_one_two_colors() {
        let (p, meta) = mapcolor_program(&MapColorParams {
            rows: 1,
            cols: 2,
            colors: 2,
        });
        assert_eq!(meta.adjacencies, 1);
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        // Two regions, two colors, must differ: 2 orderings.
        assert_eq!(r.solutions.len(), 2);
    }

    #[test]
    fn chromatic_polynomial_of_a_path() {
        // A 1×3 path with k colors has k*(k-1)^2 proper colorings.
        let (p, _) = mapcolor_program(&MapColorParams {
            rows: 1,
            cols: 3,
            colors: 3,
        });
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(r.solutions.len(), 3 * 2 * 2);
    }

    #[test]
    fn two_by_two_grid_count() {
        // C4 cycle with 3 colors: (k-1)^4 + (k-1) = 16 + 2 = 18.
        let (p, _) = mapcolor_program(&MapColorParams {
            rows: 2,
            cols: 2,
            colors: 3,
        });
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(r.solutions.len(), 18);
    }

    #[test]
    fn two_colors_on_odd_structure_still_solvable_for_grid() {
        // Grids are bipartite: 2-colorable, exactly 2 colorings.
        let (p, _) = mapcolor_program(&MapColorParams {
            rows: 2,
            cols: 3,
            colors: 2,
        });
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(r.solutions.len(), 2);
    }

    #[test]
    fn solutions_respect_adjacency() {
        let (p, _) = mapcolor_program(&MapColorParams::default());
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::first());
        let s = &r.solutions[0];
        let color = |i: u32| s.binding_text(&p.db, &format!("R{i}")).unwrap();
        // Check the 3x3 grid's horizontal and vertical neighbors.
        for row in 0..3u32 {
            for col in 0..3u32 {
                let idx = row * 3 + col;
                if col > 0 {
                    assert_ne!(color(idx), color(idx - 1));
                }
                if row > 0 {
                    assert_ne!(color(idx), color(idx - 3));
                }
            }
        }
    }
}
