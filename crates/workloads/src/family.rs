//! Scaled-up figure-1 genealogies.
//!
//! A `b`-ary family tree of `g` generations of persons, with `f/2`
//! (father-of) facts along the tree edges, a configurable density of
//! `m/2` (mother-of) facts, and the paper's two `gf/2` rules. The second
//! rule (`gf(X,Z) :- f(X,Y), m(Y,Z)`) succeeds only when a mother is
//! herself a tree person with a father — exactly the failure branch the
//! paper's figure 3 walks into.

use std::fmt::Write as _;

use blog_logic::{parse_program, Program};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`family_program`].
#[derive(Clone, Copy, Debug)]
pub struct FamilyParams {
    /// Generations below the root (the paper's example is effectively 2).
    pub generations: u32,
    /// Children per person.
    pub branching: u32,
    /// Fraction of children that also get an `m/2` fact whose mother is a
    /// *tree* person (making the `m`-rule succeed there).
    pub tree_mother_density: f64,
    /// Fraction of children that get an `m/2` fact with an *external*
    /// mother (no father — a guaranteed dead end for the `m`-rule).
    pub external_mother_density: f64,
    /// Also emit the two-level `ggf/2` (great-grandfather) rules, built
    /// on `gf/2`. Their OR-trees are five arcs deep with compounded
    /// failure branches — the regime where session learning pays most.
    pub deep_rules: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FamilyParams {
    fn default() -> Self {
        FamilyParams {
            generations: 4,
            branching: 3,
            tree_mother_density: 0.2,
            external_mother_density: 0.4,
            deep_rules: false,
            seed: 1,
        }
    }
}

/// Metadata about a generated family.
#[derive(Clone, Debug)]
pub struct FamilyMeta {
    /// Person names per generation (`persons[g]` is generation `g`).
    pub persons: Vec<Vec<String>>,
    /// Total `f/2` facts.
    pub f_facts: usize,
    /// Total `m/2` facts.
    pub m_facts: usize,
}

impl FamilyMeta {
    /// The root person's name.
    pub fn root(&self) -> &str {
        &self.persons[0][0]
    }

    /// All persons that have grandchildren (useful query subjects).
    pub fn grandparents(&self) -> Vec<&str> {
        self.persons[..self.persons.len().saturating_sub(2)]
            .iter()
            .flatten()
            .map(String::as_str)
            .collect()
    }

    /// All persons that have great-grandchildren (subjects for the
    /// `deep_rules` `ggf/2` queries).
    pub fn great_grandparents(&self) -> Vec<&str> {
        self.persons[..self.persons.len().saturating_sub(3)]
            .iter()
            .flatten()
            .map(String::as_str)
            .collect()
    }
}

/// Generate a family program. The emitted program carries one query,
/// `?- gf(<root>, G)`.
pub fn family_program(params: &FamilyParams) -> (Program, FamilyMeta) {
    let (mut src, meta) = family_source(params, "");
    writeln!(src, "?- gf({}, G).", meta.root()).expect("write to string");
    let program = parse_program(&src).expect("generated family program parses");
    (program, meta)
}

/// The clause text of a family (no query), with every predicate name
/// prefixed by `prefix` — `family_source(p, "t3_")` emits `t3_gf/2`,
/// `t3_f/2`, `t3_m/2` (and `t3_ggf/2` under `deep_rules`).
///
/// Prefixing the *predicates* is what gives multi-tenant workloads
/// disjoint working sets: concatenating differently-prefixed families
/// into one program yields one clause database in which no candidate
/// (figure-4 pointer) list ever crosses a tenant boundary, so each
/// tenant's queries touch only that tenant's clause blocks — and
/// therefore that tenant's SPD tracks. Person constants are deliberately
/// *shared* across prefixes (they are plain atoms; sharing keeps the
/// symbol table small and changes no semantics).
pub fn family_source(params: &FamilyParams, prefix: &str) -> (String, FamilyMeta) {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut src = String::new();
    // The paper's two rules, verbatim shape.
    writeln!(src, "{prefix}gf(X,Z) :- {prefix}f(X,Y), {prefix}f(Y,Z).").expect("write");
    writeln!(src, "{prefix}gf(X,Z) :- {prefix}f(X,Y), {prefix}m(Y,Z).").expect("write");
    if params.deep_rules {
        writeln!(src, "{prefix}ggf(X,Z) :- {prefix}gf(X,Y), {prefix}f(Y,Z).").expect("write");
        writeln!(src, "{prefix}ggf(X,Z) :- {prefix}gf(X,Y), {prefix}m(Y,Z).").expect("write");
    }

    let mut persons: Vec<Vec<String>> = vec![vec!["p0_0".to_owned()]];
    let mut f_facts = 0usize;
    let mut m_facts = 0usize;
    let mut external_counter = 0usize;

    for g in 1..=params.generations {
        let parents = persons[(g - 1) as usize].clone();
        let mut level = Vec::new();
        for parent in &parents {
            for c in 0..params.branching {
                let child = format!("p{}_{}", g, level.len());
                let _ = c;
                writeln!(src, "{prefix}f({parent},{child}).").expect("write to string");
                f_facts += 1;
                // Mother facts.
                let roll: f64 = rng.gen();
                if roll < params.tree_mother_density && g >= 2 {
                    // Mother is a tree person of the parent's generation
                    // (she has a father, so the m-rule can succeed).
                    let pool = &persons[(g - 1) as usize];
                    let mother = &pool[rng.gen_range(0..pool.len())];
                    writeln!(src, "{prefix}m({mother},{child}).").expect("write to string");
                    m_facts += 1;
                } else if roll < params.tree_mother_density + params.external_mother_density {
                    let mother = format!("ext{external_counter}");
                    external_counter += 1;
                    writeln!(src, "{prefix}m({mother},{child}).").expect("write to string");
                    m_facts += 1;
                }
                level.push(child);
            }
        }
        persons.push(level);
    }

    (
        src,
        FamilyMeta {
            persons,
            f_facts,
            m_facts,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use blog_logic::{dfs_all, SolveConfig};

    #[test]
    fn generated_family_has_expected_tree_size() {
        let params = FamilyParams {
            generations: 3,
            branching: 2,
            ..FamilyParams::default()
        };
        let (_, meta) = family_program(&params);
        // 2 + 4 + 8 children.
        assert_eq!(meta.f_facts, 2 + 4 + 8);
        assert_eq!(meta.persons[3].len(), 8);
    }

    #[test]
    fn root_query_finds_all_grandchildren() {
        let params = FamilyParams {
            generations: 3,
            branching: 2,
            tree_mother_density: 0.0,
            external_mother_density: 0.0,
            seed: 7,
            ..FamilyParams::default()
        };
        let (p, _) = family_program(&params);
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        // Root has branching^2 grandchildren, each reachable only via the
        // f-f rule.
        assert_eq!(r.solutions.len(), 4);
    }

    #[test]
    fn tree_mothers_add_extra_solutions() {
        let params = FamilyParams {
            generations: 3,
            branching: 3,
            tree_mother_density: 1.0,
            external_mother_density: 0.0,
            seed: 3,
            ..FamilyParams::default()
        };
        let (p, _) = family_program(&params);
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        // f-f rule alone gives 9; m-rule adds more (mothers are gen-1
        // persons whose father might be the root).
        assert!(r.solutions.len() >= 9, "got {}", r.solutions.len());
    }

    #[test]
    fn prefixed_source_isolates_predicates() {
        let params = FamilyParams {
            generations: 3,
            branching: 2,
            seed: 7,
            ..FamilyParams::default()
        };
        let (a, meta_a) = family_source(&params, "t0_");
        let (b, meta_b) = family_source(&params, "t1_");
        // Same tree shape, disjoint predicate namespaces.
        assert_eq!(meta_a.f_facts, meta_b.f_facts);
        let merged = blog_logic::parse_program(&format!("{a}{b}")).unwrap();
        let t0_gf = merged.db.sym("t0_gf").unwrap();
        let t1_gf = merged.db.sym("t1_gf").unwrap();
        assert_eq!(merged.db.resolvers((t0_gf, 2)).len(), 2);
        assert_eq!(merged.db.resolvers((t1_gf, 2)).len(), 2);
        // A t0 query resolves exclusively through t0 clauses.
        let mut db = merged.db.clone();
        let q = blog_logic::parse_query(&mut db, &format!("t0_gf({}, G)", meta_a.root()))
            .unwrap();
        let r = dfs_all(&db, &q, &SolveConfig::all());
        assert_eq!(r.solutions.len(), 4, "branching^2 grandchildren");
        let _ = t1_gf;
    }

    #[test]
    fn empty_prefix_matches_family_program() {
        let params = FamilyParams {
            generations: 3,
            branching: 2,
            seed: 11,
            ..FamilyParams::default()
        };
        let (src, meta) = family_source(&params, "");
        let (p, meta2) = family_program(&params);
        assert_eq!(meta.f_facts, meta2.f_facts);
        assert_eq!(meta.m_facts, meta2.m_facts);
        // family_program = family_source + the root query.
        let parsed = blog_logic::parse_program(&src).unwrap();
        assert_eq!(parsed.db.len(), p.db.len());
    }

    #[test]
    fn determinism_per_seed() {
        let params = FamilyParams::default();
        let (a, _) = family_program(&params);
        let (b, _) = family_program(&params);
        assert_eq!(a.db.len(), b.db.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = family_program(&FamilyParams {
            seed: 1,
            ..FamilyParams::default()
        });
        let b = family_program(&FamilyParams {
            seed: 2,
            ..FamilyParams::default()
        });
        // Mother placement is random, so fact counts should differ
        // (overwhelmingly likely with default densities).
        assert_ne!(
            (a.1.m_facts, a.0.db.len()),
            (b.1.m_facts, b.0.db.len())
        );
    }

    #[test]
    fn deep_rules_answer_great_grandchildren() {
        let params = FamilyParams {
            generations: 3,
            branching: 2,
            tree_mother_density: 0.0,
            external_mother_density: 0.0,
            deep_rules: true,
            seed: 7,
        };
        let (mut p, meta) = family_program(&params);
        let root = meta.root().to_string();
        let q = blog_logic::parse_query(&mut p.db, &format!("ggf({root}, G)"))
            .unwrap();
        let r = dfs_all(&p.db, &q, &SolveConfig::all());
        // branching^3 great-grandchildren, only via the f-f-f chain.
        assert_eq!(r.solutions.len(), 8);
        // Proofs are five arcs deep (ggf → gf → f, f → fact × 3).
        assert!(r.solutions.iter().all(|s| s.depth == 5), "{:?}",
            r.solutions.iter().map(|s| s.depth).collect::<Vec<_>>());
    }

    #[test]
    fn great_grandparents_listing() {
        let (_, meta) = family_program(&FamilyParams {
            generations: 4,
            branching: 2,
            deep_rules: true,
            ..FamilyParams::default()
        });
        // Generations 0 and 1 have great-grandchildren in a 4-gen tree.
        assert_eq!(meta.great_grandparents().len(), 1 + 2);
    }

    #[test]
    fn grandparents_listing_excludes_last_two_generations() {
        let (_, meta) = family_program(&FamilyParams {
            generations: 3,
            branching: 2,
            ..FamilyParams::default()
        });
        // Generations 0 and 1 have grandchildren; 2 and 3 do not.
        assert_eq!(meta.grandparents().len(), 1 + 2);
    }
}
