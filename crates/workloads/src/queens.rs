//! N-queens as a pure Horn program.
//!
//! The classic non-deterministic benchmark for OR-parallel Prolog systems
//! (Aurora and Muse both report it), encoded without arithmetic builtins:
//! column-domain facts `dom/1` plus pre-tabled no-attack facts
//! `ok(D, C1, C2)` asserting that queens in columns `C1`, `C2` of rows
//! `D` apart do not attack each other. One rule places the queens row by
//! row, checking each new queen against all previous ones immediately —
//! the standard constraint-interleaved ordering, so failed placements
//! prune early.

use std::fmt::Write as _;

use blog_logic::{parse_program, Program};

/// Parameters for [`queens_program`].
#[derive(Clone, Copy, Debug)]
pub struct QueensParams {
    /// Board size (n queens on an n×n board). Kept small (≤ 8) because
    /// the pure-Horn search tree grows as n^n.
    pub n: u32,
}

impl Default for QueensParams {
    fn default() -> Self {
        QueensParams { n: 6 }
    }
}

/// Metadata about a generated instance.
#[derive(Clone, Copy, Debug)]
pub struct QueensMeta {
    /// Number of `ok/3` facts emitted.
    pub ok_facts: usize,
}

/// Generate the N-queens program with query `?- q(Q1, …, Qn)`.
pub fn queens_program(params: &QueensParams) -> (Program, QueensMeta) {
    let n = params.n;
    assert!((2..=10).contains(&n), "n-queens generator supports 2..=10");
    let mut src = String::new();
    for c in 1..=n {
        writeln!(src, "dom({c}).").expect("write");
    }
    let mut ok_facts = 0usize;
    for d in 1..n {
        for c1 in 1..=n {
            for c2 in 1..=n {
                let dc = c1 as i64 - c2 as i64;
                if dc != 0 && dc.unsigned_abs() as u32 != d {
                    writeln!(src, "ok({d},{c1},{c2}).").expect("write");
                    ok_facts += 1;
                }
            }
        }
    }
    // q(Q1,…,Qn) :- dom(Q1), dom(Q2), ok(1,Q1,Q2), dom(Q3), ok(2,Q1,Q3),
    //               ok(1,Q2,Q3), …
    let vars: Vec<String> = (1..=n).map(|i| format!("Q{i}")).collect();
    let mut body: Vec<String> = Vec::new();
    for (i, v) in vars.iter().enumerate() {
        body.push(format!("dom({v})"));
        for (j, u) in vars.iter().enumerate().take(i) {
            let d = i - j;
            body.push(format!("ok({d},{u},{v})"));
        }
    }
    writeln!(src, "q({}) :- {}.", vars.join(","), body.join(", ")).expect("write");
    writeln!(src, "?- q({}).", vars.join(",")).expect("write");
    let program = parse_program(&src).expect("generated queens program parses");
    (program, QueensMeta { ok_facts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blog_logic::{dfs_all, SolveConfig};

    /// Known solution counts for small n.
    const COUNTS: [(u32, usize); 5] = [(4, 2), (5, 10), (6, 4), (7, 40), (8, 92)];

    #[test]
    fn four_queens_has_two_solutions() {
        let (p, _) = queens_program(&QueensParams { n: 4 });
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(r.solutions.len(), 2);
    }

    #[test]
    fn six_queens_has_four_solutions() {
        let (p, _) = queens_program(&QueensParams { n: 6 });
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(r.solutions.len(), 4);
    }

    #[test]
    fn five_queens_has_ten_solutions() {
        let (p, _) = queens_program(&QueensParams { n: 5 });
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(r.solutions.len(), 10);
    }

    #[test]
    fn solution_counts_table() {
        for (n, expected) in COUNTS.iter().take(3).copied() {
            let (p, _) = queens_program(&QueensParams { n });
            let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
            assert_eq!(r.solutions.len(), expected, "n = {n}");
        }
    }

    #[test]
    fn solutions_are_valid_placements() {
        let (p, _) = queens_program(&QueensParams { n: 5 });
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        for s in &r.solutions {
            let cols: Vec<i64> = (1..=5)
                .map(|i| {
                    s.binding_text(&p.db, &format!("Q{i}"))
                        .unwrap()
                        .parse()
                        .unwrap()
                })
                .collect();
            for i in 0..cols.len() {
                for j in (i + 1)..cols.len() {
                    assert_ne!(cols[i], cols[j], "column clash in {cols:?}");
                    assert_ne!(
                        (cols[i] - cols[j]).unsigned_abs() as usize,
                        j - i,
                        "diagonal clash in {cols:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn ok_fact_count_formula() {
        // For each of the n-1 distances: n^2 pairs minus n equal-column
        // minus the diagonal pairs at that distance.
        let n = 5u32;
        let (_, meta) = queens_program(&QueensParams { n });
        let mut expect = 0usize;
        for d in 1..n {
            let diag = 2 * (n - d); // c1-c2 = ±d
            expect += (n * n - n - diag) as usize;
        }
        assert_eq!(meta.ok_facts, expect);
    }
}
