//! DAG reachability workloads.
//!
//! `path/2` over `edge/2` with the textbook two rules. Graphs are layered
//! DAGs so plain depth-first search terminates; the number of distinct
//! proofs (paths) grows combinatorially with width and density, which is
//! what stresses the search strategies differently.

use std::fmt::Write as _;

use blog_logic::{parse_program, Program};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`dag_reach_program`].
#[derive(Clone, Copy, Debug)]
pub struct DagParams {
    /// Number of layers (path length from source to sink is `layers`).
    pub layers: u32,
    /// Nodes per layer.
    pub width: u32,
    /// Probability of an edge between consecutive-layer node pairs (edges
    /// from node `u` in layer `i` to node `v` in layer `i+1`).
    pub density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DagParams {
    fn default() -> Self {
        DagParams {
            layers: 6,
            width: 4,
            density: 0.5,
            seed: 1,
        }
    }
}

/// Metadata about a generated DAG.
#[derive(Clone, Debug)]
pub struct DagMeta {
    /// Edge count.
    pub edges: usize,
    /// Source node name.
    pub source: String,
    /// Sink node name.
    pub sink: String,
}

/// Generate a layered-DAG reachability program with query
/// `?- path(<source>, <sink>)`.
///
/// A guaranteed backbone path source → … → sink is always included so the
/// query succeeds regardless of the random draws.
pub fn dag_reach_program(params: &DagParams) -> (Program, DagMeta) {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut src = String::new();
    src.push_str("path(X,Y) :- edge(X,Y).\n");
    src.push_str("path(X,Z) :- edge(X,Y), path(Y,Z).\n");

    let name = |layer: u32, i: u32| format!("n{layer}_{i}");
    let mut edges = 0usize;
    // Source connects into layer 1.
    let source = "src".to_owned();
    let sink = "snk".to_owned();
    for i in 0..params.width {
        if i == 0 || rng.gen::<f64>() < params.density {
            writeln!(src, "edge({source},{}).", name(1, i)).expect("write");
            edges += 1;
        }
    }
    for layer in 1..params.layers {
        for u in 0..params.width {
            for v in 0..params.width {
                // Backbone: node 0 of each layer links to node 0 of the next.
                let backbone = u == 0 && v == 0;
                if backbone || rng.gen::<f64>() < params.density {
                    writeln!(src, "edge({},{}).", name(layer, u), name(layer + 1, v))
                        .expect("write");
                    edges += 1;
                }
            }
        }
    }
    for u in 0..params.width {
        if u == 0 || rng.gen::<f64>() < params.density {
            writeln!(src, "edge({},{sink}).", name(params.layers, u)).expect("write");
            edges += 1;
        }
    }
    writeln!(src, "?- path({source},{sink}).").expect("write");
    let program = parse_program(&src).expect("generated DAG program parses");
    (
        program,
        DagMeta {
            edges,
            source,
            sink,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use blog_logic::{dfs_all, SolveConfig};

    #[test]
    fn backbone_guarantees_a_solution() {
        let params = DagParams {
            density: 0.0,
            ..DagParams::default()
        };
        let (p, meta) = dag_reach_program(&params);
        // Density 0: only the backbone, exactly one path.
        assert_eq!(meta.edges as u32, params.layers + 1);
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(r.solutions.len(), 1);
    }

    #[test]
    fn denser_graphs_have_more_proofs() {
        let sparse = dag_reach_program(&DagParams {
            density: 0.1,
            ..DagParams::default()
        });
        let dense = dag_reach_program(&DagParams {
            density: 0.9,
            ..DagParams::default()
        });
        let rs = dfs_all(&sparse.0.db, &sparse.0.queries[0], &SolveConfig::all());
        let rd = dfs_all(&dense.0.db, &dense.0.queries[0], &SolveConfig::all());
        assert!(rd.solutions.len() > rs.solutions.len());
    }

    #[test]
    fn dfs_terminates_on_dag() {
        let (p, _) = dag_reach_program(&DagParams::default());
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        assert!(!r.stats.truncated);
        assert!(!r.solutions.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = dag_reach_program(&DagParams::default());
        let b = dag_reach_program(&DagParams::default());
        assert_eq!(a.1.edges, b.1.edges);
    }
}
