//! Churn workloads: seeded assert/retract streams over a tenant mix.
//!
//! The serving story so far treats the clause base as frozen; the MVCC
//! write path makes it *live*. This module generates the update half of
//! that workload: a deterministic stream of [`ChurnUpdate`]s against the
//! merged [`tenant_mix_program`](crate::tenant_mix_program) database —
//! each one either **asserts** a fresh `t<k>_f/2` fact (with a
//! brand-new child constant, so the update lane's symbol interning is
//! genuinely exercised) or **retracts** a currently-live fact of the
//! same tenant.
//!
//! The generator tracks clause-id allocation the same way the store
//! does (dense ids, never reused, one per asserted clause), so every
//! retract in the stream targets a clause that is provably alive when
//! the updates are applied *in order* by a single update lane. That
//! makes the stream replayable against both the real
//! `MvccClauseStore` and a brute-force oracle, which is exactly what
//! the churn test suites diff.

use blog_logic::{ClauseDb, ClauseId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::family::FamilyMeta;

/// Parameters for [`churn_updates`].
#[derive(Clone, Copy, Debug)]
pub struct ChurnSpec {
    /// Number of update transactions to generate.
    pub n_updates: usize,
    /// Ops per update (each update commits as one atomic transaction).
    pub ops_per_update: usize,
    /// Probability an op is an assert (the rest are retracts; a tenant
    /// with no live facts left always asserts).
    pub assert_share: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec {
            n_updates: 16,
            ops_per_update: 2,
            assert_share: 0.6,
            seed: 1,
        }
    }
}

/// One mutation in a churn stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChurnOp {
    /// Assert this clause text (always a single fact, ending in `.`).
    Assert {
        /// Fact source text, e.g. `"t1_f(p2_3,fresh7)."`.
        text: String,
    },
    /// Retract this clause (alive at this point of the stream).
    Retract {
        /// The clause to retract.
        id: ClauseId,
    },
}

/// One update transaction: a tenant's batch of ops.
#[derive(Clone, Debug)]
pub struct ChurnUpdate {
    /// The tenant whose working set this update touches.
    pub tenant: usize,
    /// The ops, applied in order inside one transaction.
    pub ops: Vec<ChurnOp>,
}

/// Generate a deterministic churn stream against the merged tenant-mix
/// database `db` (`metas` as returned by
/// [`tenant_mix_program`](crate::tenant_mix_program)).
///
/// Asserts attach a fresh child (constants `fresh0`, `fresh1`, … — new
/// symbols by construction) to a random person that already has
/// children-with-children, so every assert adds at least one new
/// `t<k>_gf` answer once committed. Retracts target a uniformly random
/// *live* `t<k>_f/2` fact of the update's tenant — seed facts and
/// earlier churn asserts alike.
///
/// # Panics
/// Panics if `db` contains none of the expected `t<k>_f` predicates.
pub fn churn_updates(db: &ClauseDb, metas: &[FamilyMeta], spec: &ChurnSpec) -> Vec<ChurnUpdate> {
    assert!(!metas.is_empty(), "need at least one tenant");
    assert!(spec.ops_per_update >= 1, "updates need at least one op");
    let n_tenants = metas.len();

    // Live f/2 facts per tenant, tracked exactly as the store allocates
    // ids: dense, never reused.
    let mut alive: Vec<Vec<(ClauseId, String, String)>> = vec![Vec::new(); n_tenants];
    for (t, tenant_alive) in alive.iter_mut().enumerate() {
        let pred = db
            .sym(&format!("t{t}_f"))
            .unwrap_or_else(|| panic!("db has no t{t}_f predicate — not a tenant mix?"));
        for &cid in db.resolvers((pred, 2)) {
            if db.clause(cid).body.is_empty() {
                tenant_alive.push((cid, String::new(), String::new()));
            }
        }
        assert!(!tenant_alive.is_empty(), "tenant {t} has no f/2 facts");
    }

    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut next_id = db.len() as u32;
    let mut fresh = 0usize;
    let mut out = Vec::with_capacity(spec.n_updates);
    for _ in 0..spec.n_updates {
        let tenant = rng.gen_range(0..n_tenants);
        let mut ops = Vec::with_capacity(spec.ops_per_update);
        for _ in 0..spec.ops_per_update {
            let must_assert = alive[tenant].is_empty();
            if must_assert || rng.gen::<f64>() < spec.assert_share {
                // New children go under persons that already have
                // grandchildren, so the tenant's gf queries see the
                // churn: pick a *child* of a random grandparent-capable
                // generation person.
                let persons = &metas[tenant].persons;
                let gen = rng.gen_range(1..persons.len().saturating_sub(1).max(2));
                let pool = &persons[gen.min(persons.len() - 1)];
                let parent = &pool[rng.gen_range(0..pool.len())];
                let child = format!("fresh{fresh}");
                fresh += 1;
                let text = format!("t{tenant}_f({parent},{child}).");
                ops.push(ChurnOp::Assert { text });
                alive[tenant].push((ClauseId(next_id), parent.clone(), child));
                next_id += 1;
            } else {
                let i = rng.gen_range(0..alive[tenant].len());
                let (id, _, _) = alive[tenant].swap_remove(i);
                ops.push(ChurnOp::Retract { id });
            }
        }
        out.push(ChurnUpdate { tenant, ops });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sessions::{tenant_mix_program, TenantMix};
    use std::collections::HashSet;

    fn mix() -> TenantMix {
        TenantMix {
            n_tenants: 2,
            queries_per_tenant: 4,
            ..TenantMix::default()
        }
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let (p, metas) = tenant_mix_program(&mix());
        let spec = ChurnSpec::default();
        let a = churn_updates(&p.db, &metas, &spec);
        let b = churn_updates(&p.db, &metas, &spec);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = churn_updates(&p.db, &metas, &ChurnSpec { seed: 9, ..spec });
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn retracts_always_target_live_clauses() {
        let (p, metas) = tenant_mix_program(&mix());
        let spec = ChurnSpec {
            n_updates: 64,
            ops_per_update: 3,
            assert_share: 0.3,
            seed: 5,
        };
        // Replay the stream against a model of dense id allocation.
        let mut live: HashSet<u32> = (0..p.db.len() as u32).collect();
        let mut next = p.db.len() as u32;
        let mut retracts = 0;
        for u in churn_updates(&p.db, &metas, &spec) {
            for op in &u.ops {
                match op {
                    ChurnOp::Assert { text } => {
                        assert!(text.starts_with(&format!("t{}_f(", u.tenant)), "{text}");
                        live.insert(next);
                        next += 1;
                    }
                    ChurnOp::Retract { id } => {
                        assert!(live.remove(&id.0), "retract of dead clause {id:?}");
                        retracts += 1;
                    }
                }
            }
        }
        assert!(retracts > 0, "assert_share 0.3 must produce retracts");
    }

    #[test]
    fn asserted_constants_are_new_symbols() {
        let (p, metas) = tenant_mix_program(&mix());
        let updates = churn_updates(&p.db, &metas, &ChurnSpec::default());
        let mut symbols = p.db.symbols().clone();
        let before = symbols.len();
        let mut asserts = 0;
        for u in &updates {
            for op in &u.ops {
                if let ChurnOp::Assert { text } = op {
                    let clauses =
                        blog_logic::parse_clauses_interning(&mut symbols, text).unwrap();
                    assert_eq!(clauses.len(), 1);
                    asserts += 1;
                }
            }
        }
        assert!(asserts > 0);
        assert!(
            symbols.len() > before,
            "fresh child constants must extend the symbol table"
        );
    }
}
