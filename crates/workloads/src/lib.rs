//! # blog-workloads — workload generators for the B-LOG experiments
//!
//! The 1985 paper sketches its evaluation on the kinds of programs its
//! introduction motivates — database-flavoured deduction (the family
//! example of figure 1), graph search, and classic non-deterministic
//! constraint puzzles. This crate generates parameterized, deterministic
//! (seeded) instances of each, as ordinary Horn-clause programs:
//!
//! - [`family`] — scaled-up versions of the paper's figure-1 genealogy,
//!   with controllable failure branches (the `m`-rule dead end).
//! - [`graph`] — DAG reachability (`path/2` over `edge/2`).
//! - [`queens`] — N-queens as a pure Horn program (domain facts plus
//!   pre-tabled no-attack facts; no arithmetic builtins needed).
//! - [`mapcolor`] — grid map coloring with `ne/2` disequality facts.
//! - [`sessions`] — query *sequences* with controllable similarity drift,
//!   the workload shape the paper's session concept (§5) targets.
//! - [`churn`] — seeded assert/retract streams over the tenant mix, the
//!   update half of the live-knowledge (MVCC) serving workload.
//!
//! Everything is emitted as program text and run through the real parser,
//! so generated workloads exercise exactly the same pipeline as
//! hand-written programs.

pub mod churn;
pub mod family;
pub mod graph;
pub mod mapcolor;
pub mod queens;
pub mod sessions;

pub use churn::{churn_updates, ChurnOp, ChurnSpec, ChurnUpdate};
pub use family::{family_program, family_source, FamilyMeta, FamilyParams};
pub use graph::{dag_reach_program, DagParams};
pub use mapcolor::{mapcolor_program, MapColorParams};
pub use queens::{queens_program, QueensParams};
pub use sessions::{
    session_queries, tenant_mix_program, tenant_mix_requests, SessionSpec, TenantMix,
    TenantRequest,
};

/// The verbatim figure-1 program from the paper, used by tests, examples
/// and the F1/F3/W1 experiments.
pub const PAPER_FIGURE_1: &str = "
    gf(X,Z) :- f(X,Y), f(Y,Z).
    gf(X,Z) :- f(X,Y), m(Y,Z).
    f(curt,elain). f(sam,larry). f(dan,pat). f(larry,den).
    f(pat,john). f(larry,doug).
    m(elain,john). m(marian,elain). m(peg,den). m(peg,doug).
    ?- gf(sam,G).
";

#[cfg(test)]
mod tests {
    use super::*;
    use blog_logic::{dfs_all, parse_program, SolveConfig};

    #[test]
    fn paper_figure_1_parses_and_solves() {
        let p = parse_program(PAPER_FIGURE_1).unwrap();
        let r = dfs_all(&p.db, &p.queries[0], &SolveConfig::all());
        assert_eq!(r.solutions.len(), 2);
    }
}
