//! Session workloads: sequences of similar queries.
//!
//! "Especially where a user tries a second and third query that is
//! similar to the first one with some minor changes, later searches
//! should become more efficient" (§5). A [`SessionSpec`] produces exactly
//! that shape: a random walk over query subjects where each step repeats
//! the previous subject with probability `1 - drift` and jumps to a fresh
//! one with probability `drift`.

use blog_logic::{parse_query, ClauseDb, Query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`session_queries`].
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Number of queries in the session.
    pub n_queries: usize,
    /// Probability that a query switches to a new random subject
    /// (0 = the same query repeated, 1 = unrelated queries every time).
    pub drift: f64,
    /// The queried predicate (`gf` for grandfather queries, `ggf` for the
    /// deep-rule great-grandfather queries).
    pub predicate: &'static str,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            n_queries: 16,
            drift: 0.2,
            predicate: "gf",
            seed: 1,
        }
    }
}

/// Generate a session of `gf(<subject>, G)` queries over `subjects`
/// (typically [`FamilyMeta::grandparents`](crate::family::FamilyMeta::grandparents)).
///
/// Returns the parsed queries plus the index of the subject used by each
/// (so experiments can correlate cost with repetition).
pub fn session_queries(
    db: &mut ClauseDb,
    subjects: &[&str],
    spec: &SessionSpec,
) -> (Vec<Query>, Vec<usize>) {
    assert!(!subjects.is_empty(), "need at least one query subject");
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut queries = Vec::with_capacity(spec.n_queries);
    let mut subject_trace = Vec::with_capacity(spec.n_queries);
    let mut current = rng.gen_range(0..subjects.len());
    for _ in 0..spec.n_queries {
        if rng.gen::<f64>() < spec.drift {
            current = rng.gen_range(0..subjects.len());
        }
        let text = format!("{}({}, G)", spec.predicate, subjects[current]);
        let q = parse_query(db, &text).expect("generated session query parses");
        queries.push(q);
        subject_trace.push(current);
    }
    (queries, subject_trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{family_program, FamilyParams};

    fn db_and_subjects() -> (blog_logic::Program, Vec<String>) {
        let (p, meta) = family_program(&FamilyParams {
            generations: 3,
            branching: 2,
            ..FamilyParams::default()
        });
        let subjects: Vec<String> =
            meta.grandparents().iter().map(|s| s.to_string()).collect();
        (p, subjects)
    }

    #[test]
    fn zero_drift_repeats_one_subject() {
        let (mut p, subjects) = db_and_subjects();
        let refs: Vec<&str> = subjects.iter().map(String::as_str).collect();
        let spec = SessionSpec {
            n_queries: 8,
            drift: 0.0,
            seed: 5,
                ..SessionSpec::default()
        };
        let (queries, trace) = session_queries(&mut p.db, &refs, &spec);
        assert_eq!(queries.len(), 8);
        assert!(trace.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn full_drift_changes_subjects() {
        let (mut p, subjects) = db_and_subjects();
        let refs: Vec<&str> = subjects.iter().map(String::as_str).collect();
        let spec = SessionSpec {
            n_queries: 32,
            drift: 1.0,
            seed: 5,
                ..SessionSpec::default()
        };
        let (_, trace) = session_queries(&mut p.db, &refs, &spec);
        // With 3 subjects and 32 fully-random draws, at least one switch.
        assert!(trace.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn queries_are_runnable() {
        let (mut p, subjects) = db_and_subjects();
        let refs: Vec<&str> = subjects.iter().map(String::as_str).collect();
        let (queries, _) = session_queries(&mut p.db, &refs, &SessionSpec::default());
        for q in &queries {
            let r = blog_logic::dfs_all(&p.db, q, &blog_logic::SolveConfig::all());
            // Grandparent subjects always have at least one grandchild.
            assert!(r.stats.nodes_expanded > 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (mut p, subjects) = db_and_subjects();
        let refs: Vec<&str> = subjects.iter().map(String::as_str).collect();
        let spec = SessionSpec::default();
        let (_, t1) = session_queries(&mut p.db, &refs, &spec);
        let (_, t2) = session_queries(&mut p.db, &refs, &spec);
        assert_eq!(t1, t2);
    }
}
