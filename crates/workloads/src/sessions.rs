//! Session workloads: sequences of similar queries.
//!
//! "Especially where a user tries a second and third query that is
//! similar to the first one with some minor changes, later searches
//! should become more efficient" (§5). A [`SessionSpec`] produces exactly
//! that shape: a random walk over query subjects where each step repeats
//! the previous subject with probability `1 - drift` and jumps to a fresh
//! one with probability `drift`.
//!
//! [`TenantMix`] lifts the same shape to a *population*: many tenants,
//! each running its own drifting §5 session over its own **disjoint**
//! clause working set (per-tenant predicate namespaces — see
//! [`family_source`]), with query texts
//! emitted in burst-interleaved arrival order. This is the offered load
//! a multi-session query server schedules; whether the server's routing
//! keeps each tenant's warm tracks warm is exactly what the T9 serving
//! sweep measures.

use blog_logic::{parse_program, parse_query, ClauseDb, Program, Query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::family::{family_source, FamilyMeta, FamilyParams};

/// Parameters for [`session_queries`].
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Number of queries in the session.
    pub n_queries: usize,
    /// Probability that a query switches to a new random subject
    /// (0 = the same query repeated, 1 = unrelated queries every time).
    pub drift: f64,
    /// The queried predicate (`gf` for grandfather queries, `ggf` for the
    /// deep-rule great-grandfather queries).
    pub predicate: &'static str,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            n_queries: 16,
            drift: 0.2,
            predicate: "gf",
            seed: 1,
        }
    }
}

/// Generate a session of `gf(<subject>, G)` queries over `subjects`
/// (typically [`FamilyMeta::grandparents`](crate::family::FamilyMeta::grandparents)).
///
/// Returns the parsed queries plus the index of the subject used by each
/// (so experiments can correlate cost with repetition).
pub fn session_queries(
    db: &mut ClauseDb,
    subjects: &[&str],
    spec: &SessionSpec,
) -> (Vec<Query>, Vec<usize>) {
    assert!(!subjects.is_empty(), "need at least one query subject");
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut queries = Vec::with_capacity(spec.n_queries);
    let mut subject_trace = Vec::with_capacity(spec.n_queries);
    let mut current = rng.gen_range(0..subjects.len());
    for _ in 0..spec.n_queries {
        if rng.gen::<f64>() < spec.drift {
            current = rng.gen_range(0..subjects.len());
        }
        let text = format!("{}({}, G)", spec.predicate, subjects[current]);
        let q = parse_query(db, &text).expect("generated session query parses");
        queries.push(q);
        subject_trace.push(current);
    }
    (queries, subject_trace)
}

/// Parameters for the multi-tenant traffic generator.
///
/// Each of `n_tenants` tenants owns a private family tree (predicates
/// `t<k>_gf`, `t<k>_f`, … — disjoint working sets by construction) and
/// runs a drifting [`SessionSpec`]-style walk over its own query
/// subjects. Queries are *mixed-predicate*: with `deep_share > 0` (and
/// `family.deep_rules` on) a step asks the five-arc-deep `t<k>_ggf`
/// instead of `t<k>_gf`, so a tenant's stream is not one predicate
/// repeated but a mix over one working set — the "similar query with
/// some minor changes" of §5.
#[derive(Clone, Debug)]
pub struct TenantMix {
    /// Number of tenants (disjoint working sets).
    pub n_tenants: usize,
    /// Shape of each tenant's family tree (the tenant index is folded
    /// into the seed, so trees differ in mother placement).
    pub family: FamilyParams,
    /// Queries each tenant issues over the whole run.
    pub queries_per_tenant: usize,
    /// Probability a step jumps to a fresh subject (see [`SessionSpec`]).
    pub drift: f64,
    /// Fraction of steps that ask the deep `ggf` predicate (requires
    /// `family.deep_rules`; clamped to 0 otherwise).
    pub deep_share: f64,
    /// Consecutive queries one tenant contributes before the arrival
    /// stream moves to the next tenant — the "second and third query"
    /// burst. Arrival order round-robins bursts across tenants until
    /// every stream is drained.
    pub burst: usize,
    /// Zipf skew over tenants. `None` (the default) keeps the classic
    /// round-robin burst interleave where every tenant issues exactly
    /// `queries_per_tenant` queries. `Some(s)` draws each burst's tenant
    /// from a Zipf distribution over tenant rank (`P(t) ∝ 1/(t+1)^s`):
    /// tenant 0 is the hot tenant issuing most of the traffic, the tail
    /// tenants stay cold — the repeated-query-heavy population an answer
    /// cache feeds on. The total request count is unchanged
    /// (`n_tenants × queries_per_tenant`); only its split across tenants
    /// skews.
    pub zipf_s: Option<f64>,
    /// RNG seed for subject walks and predicate choice.
    pub seed: u64,
}

impl Default for TenantMix {
    fn default() -> Self {
        TenantMix {
            n_tenants: 4,
            family: FamilyParams {
                generations: 3,
                branching: 3,
                ..FamilyParams::default()
            },
            queries_per_tenant: 16,
            drift: 0.25,
            deep_share: 0.0,
            burst: 3,
            zipf_s: None,
            seed: 1,
        }
    }
}

/// One generated request: which tenant asked, and the query text to be
/// parsed against the merged program's database (e.g. `t2_gf(p1_3, G)`).
#[derive(Clone, Debug)]
pub struct TenantRequest {
    /// Tenant index in `0..n_tenants`.
    pub tenant: usize,
    /// Query text (parse with
    /// [`parse_query_shared`](blog_logic::parse_query_shared)).
    pub text: String,
    /// Subject index within the tenant's subject pool (for correlating
    /// cost with repetition, as [`session_queries`] does).
    pub subject: usize,
    /// Whether this step asked the deep `ggf` predicate.
    pub deep: bool,
}

/// Build the merged multi-tenant program: every tenant's prefixed family
/// clauses concatenated into **one** clause database (one paged store),
/// plus each tenant's [`FamilyMeta`] for subject pools.
pub fn tenant_mix_program(mix: &TenantMix) -> (Program, Vec<FamilyMeta>) {
    assert!(mix.n_tenants >= 1, "need at least one tenant");
    assert!(
        mix.family.generations >= 2,
        "tenants need grandparents to query"
    );
    let mut src = String::new();
    let mut metas = Vec::with_capacity(mix.n_tenants);
    for t in 0..mix.n_tenants {
        let params = FamilyParams {
            seed: mix.family.seed.wrapping_add(t as u64),
            ..mix.family
        };
        let (tenant_src, meta) = family_source(&params, &format!("t{t}_"));
        src.push_str(&tenant_src);
        metas.push(meta);
    }
    let program = parse_program(&src).expect("generated tenant mix parses");
    (program, metas)
}

/// One tenant's drifting subject walk, generated a query at a time (so
/// Zipf arrival schedules can draw on one tenant far past
/// `queries_per_tenant` without pregenerating everything).
struct TenantWalker<'a> {
    tenant: usize,
    rng: SmallRng,
    subjects: Vec<&'a str>,
    deep_subjects: Vec<&'a str>,
    drift: f64,
    deep_share: f64,
    current: usize,
}

impl<'a> TenantWalker<'a> {
    fn new(mix: &TenantMix, t: usize, meta: &'a FamilyMeta, deep_share: f64) -> TenantWalker<'a> {
        let mut rng = SmallRng::seed_from_u64(mix.seed.wrapping_add(0x9E37 * t as u64));
        let subjects = meta.grandparents();
        assert!(!subjects.is_empty());
        let current = rng.gen_range(0..subjects.len());
        TenantWalker {
            tenant: t,
            rng,
            subjects,
            deep_subjects: meta.great_grandparents(),
            drift: mix.drift,
            deep_share,
            current,
        }
    }

    fn next(&mut self) -> TenantRequest {
        if self.rng.gen::<f64>() < self.drift {
            self.current = self.rng.gen_range(0..self.subjects.len());
        }
        let deep = !self.deep_subjects.is_empty() && self.rng.gen::<f64>() < self.deep_share;
        let t = self.tenant;
        let (pred, subject_idx, subject) = if deep {
            // Great-grandparents are a prefix of the grandparent pool,
            // so the walk index folds onto it.
            let i = self.current % self.deep_subjects.len();
            ("ggf", i, self.deep_subjects[i])
        } else {
            ("gf", self.current, self.subjects[self.current])
        };
        TenantRequest {
            tenant: t,
            text: format!("t{t}_{pred}({subject}, G)"),
            subject: subject_idx,
            deep,
        }
    }
}

/// Generate the burst-interleaved arrival stream for `mix`.
///
/// Each tenant's subject walk is independent and deterministic in
/// `mix.seed`. With [`zipf_s`](TenantMix::zipf_s) unset, the returned
/// order is the *offered* order a server admits requests in: `burst`
/// queries from tenant 0, `burst` from tenant 1, …, wrapping until all
/// `n_tenants × queries_per_tenant` are emitted. With `zipf_s: Some(s)`,
/// each burst's tenant is instead drawn Zipf-distributed over tenant
/// rank — tenant 0 hot, the tail cold — and per-tenant counts float
/// while the total stays `n_tenants × queries_per_tenant`.
pub fn tenant_mix_requests(mix: &TenantMix, metas: &[FamilyMeta]) -> Vec<TenantRequest> {
    assert_eq!(metas.len(), mix.n_tenants, "one meta per tenant");
    assert!(mix.burst >= 1, "burst must be at least 1");
    let deep_share = if mix.family.deep_rules {
        mix.deep_share
    } else {
        0.0
    };
    let mut walkers: Vec<TenantWalker<'_>> = metas
        .iter()
        .enumerate()
        .map(|(t, meta)| TenantWalker::new(mix, t, meta, deep_share))
        .collect();
    let total = mix.n_tenants * mix.queries_per_tenant;
    let mut out = Vec::with_capacity(total);
    match mix.zipf_s {
        None => {
            // Classic round-robin bursts, each tenant capped at its
            // stream length.
            let mut remaining: Vec<usize> = vec![mix.queries_per_tenant; mix.n_tenants];
            while out.len() < total {
                for (walker, left) in walkers.iter_mut().zip(remaining.iter_mut()) {
                    let take = mix.burst.min(*left);
                    for _ in 0..take {
                        out.push(walker.next());
                    }
                    *left -= take;
                }
            }
        }
        Some(s) => {
            assert!(s > 0.0, "zipf_s must be positive");
            // Cumulative Zipf weights over tenant rank; a dedicated RNG
            // keeps the arrival schedule independent of the walks.
            let mut cum = Vec::with_capacity(mix.n_tenants);
            let mut sum = 0.0;
            for t in 0..mix.n_tenants {
                sum += 1.0 / ((t + 1) as f64).powf(s);
                cum.push(sum);
            }
            let mut arrivals = SmallRng::seed_from_u64(mix.seed.wrapping_add(0x51_7C_C1));
            while out.len() < total {
                let u: f64 = arrivals.gen::<f64>() * sum;
                let t = cum.partition_point(|&c| c < u).min(mix.n_tenants - 1);
                for _ in 0..mix.burst.min(total - out.len()) {
                    out.push(walkers[t].next());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::family_program;

    fn db_and_subjects() -> (blog_logic::Program, Vec<String>) {
        let (p, meta) = family_program(&FamilyParams {
            generations: 3,
            branching: 2,
            ..FamilyParams::default()
        });
        let subjects: Vec<String> =
            meta.grandparents().iter().map(|s| s.to_string()).collect();
        (p, subjects)
    }

    #[test]
    fn zero_drift_repeats_one_subject() {
        let (mut p, subjects) = db_and_subjects();
        let refs: Vec<&str> = subjects.iter().map(String::as_str).collect();
        let spec = SessionSpec {
            n_queries: 8,
            drift: 0.0,
            seed: 5,
                ..SessionSpec::default()
        };
        let (queries, trace) = session_queries(&mut p.db, &refs, &spec);
        assert_eq!(queries.len(), 8);
        assert!(trace.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn full_drift_changes_subjects() {
        let (mut p, subjects) = db_and_subjects();
        let refs: Vec<&str> = subjects.iter().map(String::as_str).collect();
        let spec = SessionSpec {
            n_queries: 32,
            drift: 1.0,
            seed: 5,
                ..SessionSpec::default()
        };
        let (_, trace) = session_queries(&mut p.db, &refs, &spec);
        // With 3 subjects and 32 fully-random draws, at least one switch.
        assert!(trace.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn queries_are_runnable() {
        let (mut p, subjects) = db_and_subjects();
        let refs: Vec<&str> = subjects.iter().map(String::as_str).collect();
        let (queries, _) = session_queries(&mut p.db, &refs, &SessionSpec::default());
        for q in &queries {
            let r = blog_logic::dfs_all(&p.db, q, &blog_logic::SolveConfig::all());
            // Grandparent subjects always have at least one grandchild.
            assert!(r.stats.nodes_expanded > 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (mut p, subjects) = db_and_subjects();
        let refs: Vec<&str> = subjects.iter().map(String::as_str).collect();
        let spec = SessionSpec::default();
        let (_, t1) = session_queries(&mut p.db, &refs, &spec);
        let (_, t2) = session_queries(&mut p.db, &refs, &spec);
        assert_eq!(t1, t2);
    }

    #[test]
    fn tenant_mix_requests_are_runnable_and_tenant_local() {
        let mix = TenantMix {
            n_tenants: 3,
            queries_per_tenant: 6,
            ..TenantMix::default()
        };
        let (p, metas) = tenant_mix_program(&mix);
        let requests = tenant_mix_requests(&mix, &metas);
        assert_eq!(requests.len(), 3 * 6);
        for r in &requests {
            let q = blog_logic::parse_query_shared(&p.db, &r.text)
                .unwrap_or_else(|e| panic!("{}: {e}", r.text));
            let res = blog_logic::dfs_all(&p.db, &q, &blog_logic::SolveConfig::all());
            assert!(
                !res.solutions.is_empty(),
                "grandparent subjects always answer: {}",
                r.text
            );
        }
    }

    #[test]
    fn tenant_mix_interleaves_in_bursts() {
        let mix = TenantMix {
            n_tenants: 2,
            queries_per_tenant: 4,
            burst: 2,
            ..TenantMix::default()
        };
        let (_, metas) = tenant_mix_program(&mix);
        let requests = tenant_mix_requests(&mix, &metas);
        let tenants: Vec<usize> = requests.iter().map(|r| r.tenant).collect();
        assert_eq!(tenants, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn tenant_mix_working_sets_are_disjoint() {
        let mix = TenantMix {
            n_tenants: 2,
            ..TenantMix::default()
        };
        let (p, _) = tenant_mix_program(&mix);
        // No predicate is defined by clauses of two tenants: every
        // resolver list stays within one tenant's prefix.
        for pred in p.db.predicates() {
            let name = p.db.symbols().name(pred.0).to_string();
            let prefix: String = name.chars().take_while(|c| *c != '_').collect();
            for &cid in p.db.resolvers(pred) {
                let head = &p.db.clause(cid).head;
                let head_name = match head {
                    blog_logic::Term::Struct(f, _) => p.db.symbols().name(*f),
                    blog_logic::Term::Atom(f) => p.db.symbols().name(*f),
                    _ => unreachable!("heads are callable"),
                };
                assert!(
                    head_name.starts_with(&prefix),
                    "{head_name} resolved under {name}"
                );
            }
        }
    }

    #[test]
    fn tenant_mix_mixed_predicates_appear_with_deep_rules() {
        let mix = TenantMix {
            n_tenants: 2,
            queries_per_tenant: 24,
            family: FamilyParams {
                generations: 3,
                branching: 2,
                deep_rules: true,
                ..FamilyParams::default()
            },
            deep_share: 0.5,
            ..TenantMix::default()
        };
        let (p, metas) = tenant_mix_program(&mix);
        let requests = tenant_mix_requests(&mix, &metas);
        let deep = requests.iter().filter(|r| r.deep).count();
        assert!(deep > 0 && deep < requests.len(), "a real mix: {deep}");
        for r in requests.iter().filter(|r| r.deep) {
            assert!(r.text.contains("_ggf("), "{}", r.text);
            assert!(blog_logic::parse_query_shared(&p.db, &r.text).is_ok());
        }
    }

    #[test]
    fn zipf_arrivals_skew_toward_the_hot_tenant() {
        let mix = TenantMix {
            n_tenants: 6,
            queries_per_tenant: 32,
            zipf_s: Some(1.5),
            ..TenantMix::default()
        };
        let (p, metas) = tenant_mix_program(&mix);
        let requests = tenant_mix_requests(&mix, &metas);
        // Total offered load is unchanged; only its split skews.
        assert_eq!(requests.len(), 6 * 32);
        let mut counts = vec![0usize; 6];
        for r in &requests {
            counts[r.tenant] += 1;
        }
        assert!(
            counts[0] > requests.len() / 3,
            "tenant 0 is hot: {counts:?}"
        );
        assert!(
            counts[0] > 3 * counts[5].max(1),
            "the tail is cold: {counts:?}"
        );
        // Still runnable against the merged program.
        for r in requests.iter().take(10) {
            assert!(blog_logic::parse_query_shared(&p.db, &r.text).is_ok());
        }
        // And deterministic per seed.
        let again = tenant_mix_requests(&mix, &metas);
        assert_eq!(
            requests.iter().map(|r| &r.text).collect::<Vec<_>>(),
            again.iter().map(|r| &r.text).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zipf_none_keeps_the_classic_interleave() {
        // The None path must stay byte-identical to the legacy
        // round-robin generator (T9's published numbers depend on it).
        let legacy = TenantMix {
            n_tenants: 2,
            queries_per_tenant: 4,
            burst: 2,
            ..TenantMix::default()
        };
        let (_, metas) = tenant_mix_program(&legacy);
        let requests = tenant_mix_requests(&legacy, &metas);
        let tenants: Vec<usize> = requests.iter().map(|r| r.tenant).collect();
        assert_eq!(tenants, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn tenant_mix_deterministic_and_seed_sensitive() {
        let mix = TenantMix::default();
        let (_, metas) = tenant_mix_program(&mix);
        let a = tenant_mix_requests(&mix, &metas);
        let b = tenant_mix_requests(&mix, &metas);
        assert_eq!(
            a.iter().map(|r| &r.text).collect::<Vec<_>>(),
            b.iter().map(|r| &r.text).collect::<Vec<_>>()
        );
        let other = TenantMix {
            seed: 99,
            ..TenantMix::default()
        };
        let c = tenant_mix_requests(&other, &metas);
        assert_ne!(
            a.iter().map(|r| &r.text).collect::<Vec<_>>(),
            c.iter().map(|r| &r.text).collect::<Vec<_>>()
        );
    }
}
