//! The section-4 theoretical weight model.
//!
//! "Let p(k) be the (unnormalized) probability that arc k is in a
//! successful solution … the probability of each chain representing a
//! successful solution must be equal to 1/(the number of successful
//! solutions) \[and\] the probability of each chain representing an
//! unsuccessful search must be 0. … If N is the number of both complete
//! solutions and unsuccessful solutions, and M arcs are used in them, we
//! have N equations in M unknowns to solve" (§4).
//!
//! This module enumerates the complete OR-tree of a query, builds exactly
//! those equations over the arc weights, and solves them by Kaczmarz
//! projection (with a non-negativity clamp). Pathological instances — a
//! failure chain all of whose arcs also serve successful solutions — are
//! detected and reported, matching the paper's observation that "patho-
//! logical cases exist where no solution is possible".
//!
//! Arc identity: the paper's requirement 1 makes duplicated search arcs
//! share one probability (its figure-3 example shares the arc to
//! `(sam)-f->(larry)` between the two rule branches). [`ArcIdentity::
//! SharedGoal`] implements that by keying on (goal predicate, resolving
//! clause); [`ArcIdentity::PointerExact`] keys on the figure-4 pointer,
//! matching what the machine actually stores.

use std::collections::{HashMap, HashSet, VecDeque};

use blog_logic::node::ExpandStats;
use blog_logic::{expand, ClauseDb, ClauseId, PointerKey, Query, SearchNode, SolveConfig, Sym};
use serde::Serialize;

/// How arcs are identified when building the equation system.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum ArcIdentity {
    /// One unknown per figure-4 pointer (caller, goal index, target).
    PointerExact,
    /// One unknown per (goal predicate, target clause): duplicated search
    /// arcs share a probability, as the paper's requirement 1 demands.
    SharedGoal,
}

/// An arc in the theoretical model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum ArcKey {
    /// Exact figure-4 pointer.
    Exact(PointerKey),
    /// Shared (goal predicate, target clause) identity.
    Shared {
        /// Goal predicate functor.
        pred: Sym,
        /// Goal predicate arity.
        arity: u32,
        /// Resolving clause.
        target: ClauseId,
    },
}

/// One complete root-to-leaf chain.
#[derive(Clone, Debug)]
pub struct TheoryChain {
    /// Arcs root → leaf.
    pub arcs: Vec<ArcKey>,
    /// Whether the chain ended in a solution.
    pub success: bool,
}

/// The fully-enumerated OR-tree, as chains.
#[derive(Clone, Debug, Default)]
pub struct EnumeratedChains {
    /// All complete chains (solutions and failures).
    pub chains: Vec<TheoryChain>,
    /// Number of successful chains.
    pub n_solutions: usize,
    /// Number of failing chains.
    pub n_failures: usize,
    /// True if limits stopped the enumeration early (results are then a
    /// lower bound, not the complete tree).
    pub truncated: bool,
}

impl EnumeratedChains {
    /// Distinct arcs across all chains.
    pub fn arc_set(&self) -> HashSet<ArcKey> {
        self.chains
            .iter()
            .flat_map(|c| c.arcs.iter().copied())
            .collect()
    }
}

/// Enumerate every complete chain of the query's OR-tree (breadth-first,
/// bounded by `limits`).
pub fn enumerate_chains(
    db: &ClauseDb,
    query: &Query,
    limits: &SolveConfig,
    identity: ArcIdentity,
) -> EnumeratedChains {
    let mut out = EnumeratedChains::default();
    let mut queue: VecDeque<(SearchNode, Vec<ArcKey>)> = VecDeque::new();
    queue.push_back((
        SearchNode::root_with(&query.goals, limits.state_repr),
        Vec::new(),
    ));
    let mut expanded: u64 = 0;
    let mut stats = ExpandStats::default();

    while let Some((node, arcs)) = queue.pop_front() {
        if node.is_solution() {
            out.n_solutions += 1;
            out.chains.push(TheoryChain { arcs, success: true });
            continue;
        }
        if let Some(limit) = limits.max_depth {
            if node.depth >= limit {
                out.truncated = true;
                continue;
            }
        }
        if let Some(budget) = limits.max_nodes {
            if expanded >= budget {
                out.truncated = true;
                break;
            }
        }
        expanded += 1;
        // The goal being resolved, for the shared identity.
        let goal_pred = node
            .first_goal()
            .and_then(|g| node.walk_cow(&g.term).functor());
        let children = expand(db, &node, &mut stats);
        if children.is_empty() {
            out.n_failures += 1;
            out.chains.push(TheoryChain {
                arcs,
                success: false,
            });
            continue;
        }
        for child in children {
            let key = match identity {
                ArcIdentity::PointerExact => ArcKey::Exact(child.arc),
                ArcIdentity::SharedGoal => {
                    let (pred, arity) =
                        goal_pred.expect("expandable goal has a functor");
                    ArcKey::Shared {
                        pred,
                        arity,
                        target: child.arc.target,
                    }
                }
            };
            let mut child_arcs = arcs.clone();
            child_arcs.push(key);
            queue.push_back((child.node, child_arcs));
        }
    }
    out
}

/// A solved theoretical weight assignment.
#[derive(Clone, Debug, Default)]
pub struct TheoreticalWeights {
    /// Finite weights (in bits) for arcs serving successful solutions.
    pub finite: HashMap<ArcKey, f64>,
    /// Arcs assigned infinite weight (appear only in failing chains).
    pub infinite: HashSet<ArcKey>,
    /// True if some failure chain has no arc that can be made infinite —
    /// the paper's pathological case.
    pub pathological: bool,
    /// Largest |chain bound − N| over success chains after solving.
    pub max_residual: f64,
    /// The target bound `N` used (in bits).
    pub target_bits: f64,
}

impl TheoreticalWeights {
    /// The unnormalized probability `2^-w` of an arc (0 for infinite,
    /// 1 for arcs the model never constrained).
    pub fn probability(&self, arc: ArcKey) -> f64 {
        if self.infinite.contains(&arc) {
            return 0.0;
        }
        match self.finite.get(&arc) {
            Some(w) => 2f64.powf(-w),
            None => 1.0,
        }
    }

    /// Product of arc probabilities along a chain.
    pub fn chain_probability(&self, chain: &TheoryChain) -> f64 {
        chain.arcs.iter().map(|&a| self.probability(a)).product()
    }
}

/// The `N` (in bits) that makes every solution chain's probability equal
/// `1/n_solutions`, per the paper's requirement 2.
pub fn target_bits_for(n_solutions: usize) -> f64 {
    (n_solutions.max(1) as f64).log2()
}

/// Solve the section-4 linear system by Kaczmarz projection.
///
/// Every success chain contributes the equation `Σ w(arc) = N`; arcs that
/// appear only in failing chains become infinite; every failing chain must
/// contain at least one infinite arc or the instance is pathological.
pub fn solve_weights(
    chains: &EnumeratedChains,
    target_bits: f64,
    iterations: usize,
) -> TheoreticalWeights {
    let mut result = TheoreticalWeights {
        target_bits,
        ..Default::default()
    };

    // Arcs that serve at least one successful chain must stay finite.
    let success_arcs: HashSet<ArcKey> = chains
        .chains
        .iter()
        .filter(|c| c.success)
        .flat_map(|c| c.arcs.iter().copied())
        .collect();

    for chain in chains.chains.iter().filter(|c| !c.success) {
        let killable: Vec<ArcKey> = chain
            .arcs
            .iter()
            .copied()
            .filter(|a| !success_arcs.contains(a))
            .collect();
        if killable.is_empty() {
            // Every arc of this failing chain also serves a success: no
            // consistent assignment exists.
            result.pathological = true;
        } else {
            result.infinite.extend(killable);
        }
    }

    // Kaczmarz over the success equations, clamped non-negative.
    for &arc in &success_arcs {
        result.finite.insert(arc, 0.0);
    }
    let success_chains: Vec<&TheoryChain> =
        chains.chains.iter().filter(|c| c.success).collect();
    for _ in 0..iterations {
        for chain in &success_chains {
            if chain.arcs.is_empty() {
                continue;
            }
            let sum: f64 = chain
                .arcs
                .iter()
                .map(|a| result.finite.get(a).copied().unwrap_or(0.0))
                .sum();
            let delta = (target_bits - sum) / chain.arcs.len() as f64;
            for a in &chain.arcs {
                let w = result.finite.get_mut(a).expect("success arc seeded");
                *w = (*w + delta).max(0.0);
            }
        }
    }

    // Residual check.
    result.max_residual = success_chains
        .iter()
        .map(|chain| {
            let sum: f64 = chain
                .arcs
                .iter()
                .map(|a| result.finite.get(a).copied().unwrap_or(0.0))
                .sum();
            (sum - target_bits).abs()
        })
        .fold(0.0, f64::max);
    result
}

/// Check that an arbitrary assignment satisfies the section-4 constraints
/// on `chains`; returns the maximum residual over success chains and
/// whether every failing chain carries an infinite arc.
pub fn validate_assignment(
    chains: &EnumeratedChains,
    finite: &HashMap<ArcKey, f64>,
    infinite: &HashSet<ArcKey>,
    target_bits: f64,
) -> (f64, bool) {
    let mut max_residual: f64 = 0.0;
    let mut all_failures_dead = true;
    for chain in &chains.chains {
        if chain.success {
            let sum: f64 = chain
                .arcs
                .iter()
                .map(|a| finite.get(a).copied().unwrap_or(0.0))
                .sum();
            max_residual = max_residual.max((sum - target_bits).abs());
            // A success chain through an "infinite" arc is inconsistent.
            if chain.arcs.iter().any(|a| infinite.contains(a)) {
                all_failures_dead = false;
            }
        } else if !chain.arcs.iter().any(|a| infinite.contains(a)) {
            all_failures_dead = false;
        }
    }
    (max_residual, all_failures_dead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blog_logic::parse_program;

    const FAMILY: &str = "
        gf(X,Z) :- f(X,Y), f(Y,Z).
        gf(X,Z) :- f(X,Y), m(Y,Z).
        f(curt,elain). f(sam,larry). f(dan,pat). f(larry,den).
        f(pat,john). f(larry,doug).
        m(elain,john). m(marian,elain). m(peg,den). m(peg,doug).
        ?- gf(sam,G).
    ";

    fn family_chains(identity: ArcIdentity) -> EnumeratedChains {
        let p = parse_program(FAMILY).unwrap();
        enumerate_chains(&p.db, &p.queries[0], &SolveConfig::all(), identity)
    }

    #[test]
    fn family_tree_has_two_solutions_one_failure() {
        let c = family_chains(ArcIdentity::SharedGoal);
        assert_eq!(c.n_solutions, 2);
        assert_eq!(c.n_failures, 1);
        assert!(!c.truncated);
        // Solution chains have 3 arcs (rule, f-fact, f-fact); the failure
        // chain stops after 2 (rule, f-fact) when m(larry,G) finds nothing.
        for chain in &c.chains {
            assert_eq!(chain.arcs.len(), if chain.success { 3 } else { 2 });
        }
    }

    #[test]
    fn shared_identity_merges_the_duplicated_arc() {
        // Figure 3 duplicates the (sam)-f->(larry) arc between the two
        // rule branches; with SharedGoal identity it is one unknown.
        let shared = family_chains(ArcIdentity::SharedGoal).arc_set();
        let exact = family_chains(ArcIdentity::PointerExact).arc_set();
        assert_eq!(exact.len(), shared.len() + 1);
    }

    #[test]
    fn solver_meets_paper_requirements_on_family() {
        let chains = family_chains(ArcIdentity::SharedGoal);
        let n = target_bits_for(chains.n_solutions); // log2(2) = 1 bit
        assert!((n - 1.0).abs() < 1e-12);
        let w = solve_weights(&chains, n, 200);
        assert!(!w.pathological);
        assert!(w.max_residual < 1e-9, "residual {}", w.max_residual);
        // Requirement 2: each success chain has probability 1/2.
        for chain in chains.chains.iter().filter(|c| c.success) {
            let p = w.chain_probability(chain);
            assert!((p - 0.5).abs() < 1e-6, "chain probability {p}");
        }
        // Requirement 3: the failing chain has probability 0.
        for chain in chains.chains.iter().filter(|c| !c.success) {
            assert_eq!(w.chain_probability(chain), 0.0);
        }
    }

    #[test]
    fn papers_inspection_assignment_validates() {
        // §4: "The arcs above (sam)-f->(Y)-f->(G) and both instances of
        // (sam)-f->(larry) have probability 1, those above (larry)-f->(den)
        // and (larry)-f->(doug) have probability 1/2 and that above
        // (sam)-f->(Y)-m->(G) has probability 0."
        let p = parse_program(FAMILY).unwrap();
        let chains = enumerate_chains(
            &p.db,
            &p.queries[0],
            &SolveConfig::all(),
            ArcIdentity::SharedGoal,
        );
        // Reconstruct the paper's weights keyed on our arc identities:
        // weight 0 (prob 1) for rule-1 and f(sam,larry); weight 1 (prob
        // 1/2) for f(larry,den)/f(larry,doug); infinite for rule 2.
        let mut finite = HashMap::new();
        let mut infinite = HashSet::new();
        for chain in &chains.chains {
            if chain.success {
                // arcs: [rule1, f(sam,larry), f(larry,X)]
                finite.insert(chain.arcs[0], 0.0);
                finite.insert(chain.arcs[1], 0.0);
                finite.insert(chain.arcs[2], 1.0);
            } else {
                // arcs: [rule2, f(sam,larry)] — rule2 goes infinite.
                infinite.insert(chain.arcs[0]);
            }
        }
        let (residual, failures_dead) =
            validate_assignment(&chains, &finite, &infinite, 1.0);
        assert!(residual < 1e-12);
        assert!(failures_dead);
    }

    #[test]
    fn pathological_case_detected() {
        // p :- q. with q both succeeding (q.) and... build the paper's
        // pathology: an unsuccessful query whose only arc also serves a
        // success. Query ?- p, p2 where p succeeds via arc A and p2 fails:
        // chain [A] serves success in another query — within a single
        // query: ?- q, r. with q. succeeding and r undefined: failure
        // chain = [arc q], which also appears in no success chain here, so
        // that's not pathological. Construct instead: p :- a. p :- a, bad.
        // Solutions via [p1, a]; failure via [p2, a]: killable = {p2} so
        // fine. True pathology needs the *same* arcs: q twice:
        // ?- a, bad_or_ok. Use: s :- a, t. t. (success [s-arc, a-arc,
        // t-arc]) and ?- a, u. — single query model: s1 :- a. s2 :- a.
        // Both s1 chain succeed... Simplest: query ?- a, a_fail where the
        // failure chain's arcs are a subset of a success chain's arcs:
        //   ok :- e.  e.
        //   ?- e, missing.   (fails after following arc e)
        //   vs ?- e.         (succeeds via arc e)
        // Within ONE enumeration, pathology needs a failing chain fully
        // covered by success arcs. Use two clauses with a common prefix:
        //   top :- e.            (success: arcs [top1, e])
        //   top :- e.            (success: arcs [top2, e])
        //   plus a failing chain [e] alone cannot arise. So instead make
        // the failure chain share *all* arcs via SharedGoal identity:
        //   win :- e.  lose :- e, nope.
        //   ?- q(X) with q->win / q->lose both via pred-shared arcs? Keep
        // it direct: ?- e, e, nope after e succeeds twice: failure chain
        // arcs = {shared e-arc} ⊂ success arcs of query ?- e, e? Different
        // queries don't mix. Final approach: a single query whose failure
        // chain shares its one arc with a success chain:
        //   p :- e.        % clause 0
        //   p :- e, nope.  % clause 1  (nope undefined)
        //   e.             % clause 2
        //   ?- p.
        // SharedGoal identity: arc (p→clause0), (p→clause1), (e→clause2).
        // Failure chain [p→c1, e→c2]: killable = {p→c1} → NOT pathological.
        // To kill killability, make clause 1 also succeed some other way:
        //   p :- e, maybe(X). maybe(yes). and query ?- p, with a second
        // failing route through the SAME arcs only. This is genuinely hard
        // to produce with distinct targets — which is the point of the
        // paper's remark; emulate it directly on a hand-built chain set.
        let a = ArcKey::Shared {
            pred: blog_logic::Sym(0),
            arity: 0,
            target: blog_logic::ClauseId(0),
        };
        let chains = EnumeratedChains {
            chains: vec![
                TheoryChain {
                    arcs: vec![a],
                    success: true,
                },
                TheoryChain {
                    arcs: vec![a],
                    success: false,
                },
            ],
            n_solutions: 1,
            n_failures: 1,
            truncated: false,
        };
        let w = solve_weights(&chains, target_bits_for(1), 50);
        assert!(w.pathological);
    }

    #[test]
    fn truncation_is_reported() {
        let p = parse_program(
            "
            edge(a,b). edge(b,a).
            path(X,Y) :- edge(X,Y).
            path(X,Z) :- edge(X,Y), path(Y,Z).
            ?- path(a,b).
        ",
        )
        .unwrap();
        let limits = SolveConfig::all().with_max_depth(6);
        let c = enumerate_chains(&p.db, &p.queries[0], &limits, ArcIdentity::SharedGoal);
        assert!(c.truncated);
    }

    #[test]
    fn single_solution_target_is_zero_bits() {
        assert_eq!(target_bits_for(1), 0.0);
        assert_eq!(target_bits_for(4), 2.0);
    }

    #[test]
    fn probabilities_multiply_along_chains() {
        let chains = family_chains(ArcIdentity::SharedGoal);
        let w = solve_weights(&chains, 1.0, 200);
        let total: f64 = chains
            .chains
            .iter()
            .filter(|c| c.success)
            .map(|c| w.chain_probability(c))
            .sum();
        assert!((total - 1.0).abs() < 1e-6, "success probabilities sum to 1");
    }
}
